"""PROTOCOL.md must track the protocol module (the CI check, as a
tier-1 test so drift fails locally too, not just in Actions)."""

import importlib.util
import sys
from pathlib import Path

CHECKER = Path(__file__).resolve().parent.parent / "tools" / "check_protocol_doc.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_protocol_doc", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_protocol_spec_matches_protocol_module(capsys):
    checker = _load_checker()
    status = checker.check()
    out = capsys.readouterr()
    assert status == 0, out.err
    assert "documents all" in out.out


def test_checker_flags_missing_and_phantom_names():
    checker = _load_checker()
    code = checker.defined_names("MSG_FETCH = 1\nERR_BAD_SPACE = 2\n")
    assert code == {"MSG_FETCH", "ERR_BAD_SPACE"}
    doc = checker.documented_names("`MSG_FETCH` and the phantom MSG_GHOST")
    assert doc == {"MSG_FETCH", "MSG_GHOST"}
    # a comparison on these sets is exactly what check() reports on
    assert sorted(code - doc) == ["ERR_BAD_SPACE"]   # undocumented
    assert sorted(doc - code) == ["MSG_GHOST"]       # phantom


def test_checker_ignores_prose_that_is_not_a_constant():
    checker = _load_checker()
    assert checker.documented_names("messages, features, errors") == set()
    # definitions must be at column 0 (not mentions in comments/docstrings)
    assert checker.defined_names("# MSG_OLD = 9\n    MSG_INNER = 3\n") == set()


def test_checker_runs_as_a_script():
    import subprocess
    proc = subprocess.run([sys.executable, str(CHECKER)],
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
