"""Event engine tests: stepping, conditional breakpoints, handlers.

These exercise the paper's future-work designs (Sec. 7.1): source-level
stepping built on breakpoints, event-driven internals, and conditional
breakpoints as an event-handling special case.
"""

import pytest

from repro.ldb.events import (
    BreakpointHit,
    SignalStop,
    StepDone,
    TargetExited,
)

from .helpers import FIB, session

COUNTDOWN = """int tick(int n) {
    int twice = n * 2;
    return twice;
}
int main(void) {
    int i;
    int total = 0;
    for (i = 3; i > 0; i--)
        total += tick(i);
    return total;
}
"""

ALL_ARCHES = ["rmips", "rsparc", "rvax"]


@pytest.fixture(params=ALL_ARCHES)
def arch(request):
    return request.param


class TestStep:
    def test_step_visits_consecutive_stops(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        lines = []
        for _ in range(5):
            event = ldb.step()
            assert isinstance(event, StepDone), event
            lines.append(event.frame.location_line()[1])
        # fib entry(1) -> if cond(4) -> (branch untaken) a[0]= (5)
        #   -> for init i=2 (7) -> i<n (7) -> body a[i]= (8)
        assert lines == [4, 5, 7, 7, 8]

    def test_step_enters_calls(self, arch):
        ldb, target = session(COUNTDOWN, arch, filename="c.c")
        ldb.break_at_line("c.c", 9)    # total += tick(i)
        ldb.run_to_stop()
        event = ldb.step()
        assert isinstance(event, StepDone)
        assert event.frame.proc_name() == "tick"

    def test_next_steps_over_calls(self, arch):
        ldb, target = session(COUNTDOWN, arch, filename="c.c")
        ldb.break_at_line("c.c", 9)
        ldb.run_to_stop()
        target.breakpoints.remove_all()
        event = ldb.step_over()
        assert isinstance(event, StepDone)
        assert event.frame.proc_name() == "main"

    def test_step_cleans_temporaries(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        before = dict(target.breakpoints.planted)
        ldb.step()
        after = dict(target.breakpoints.planted)
        assert set(after) == set(before)

    def test_step_to_exit(self, arch):
        source = "int main(void) { return 5; }"
        ldb, target = session(source, arch, filename="tiny.c")
        ldb.break_at_function("main")
        ldb.run_to_stop()
        event = ldb.step()        # the closing brace
        assert isinstance(event, StepDone)
        event = ldb.step()        # past the end: exit
        assert isinstance(event, TargetExited)
        assert event.status == 5

    def test_unexpected_fault_during_step(self, arch):
        """The event that is expected may not be the one that occurs."""
        source = """
        int zero = 0;
        int main(void) {
            int a = 1;
            a = a / zero;    /* faults mid-step */
            return a;
        }
        """
        ldb, target = session(source, arch, filename="f.c")
        user_addrs = set(ldb.break_at_line("f.c", 5))
        ldb.run_to_stop()
        event = ldb.step()
        assert isinstance(event, SignalStop)
        from repro.machines import SIGFPE
        assert event.signo == SIGFPE
        # temporaries were cleaned even though the step never completed;
        # the user's own breakpoints survive
        assert set(target.breakpoints.planted) == user_addrs

    def test_user_breakpoint_wins_during_step(self):
        ldb, target = session(COUNTDOWN, "rmips", filename="c.c")
        line_addrs = set(ldb.break_at_line("c.c", 9))
        ldb.run_to_stop()
        user_addr = ldb.break_at_function("tick")
        event = ldb.step()
        assert isinstance(event, BreakpointHit)
        assert event.breakpoint.note == "tick"
        assert set(target.breakpoints.planted) == line_addrs | {user_addr}


class TestConditionalBreakpoints:
    def test_condition_filters_hits(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_if("fib.c:8", "i == 5")   # a[i] = ... in the loop
        event = ldb.events.wait()
        assert isinstance(event, BreakpointHit)
        assert ldb.evaluate("i") == 5

    def test_condition_false_resumes_silently(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_if("fib.c:8", "i > 100")   # never true
        event = ldb.events.wait()
        assert isinstance(event, TargetExited)
        assert target.process.output() == "1 1 2 3 5 8 13 21 34 55 \n"

    def test_condition_on_function(self, arch):
        source = """
        int poke(int v) { return v + 1; }
        int main(void) {
            int k, sum = 0;
            for (k = 0; k < 6; k++) sum += poke(k);
            return sum;
        }
        """
        ldb, target = session(source, arch, filename="p.c")
        ldb.break_if("poke", "v == 4")
        event = ldb.events.wait()
        assert isinstance(event, BreakpointHit)
        assert ldb.evaluate("v") == 4


class TestHandlers:
    def test_handlers_see_every_event(self, arch):
        ldb, target = session(arch=arch)
        seen = []
        ldb.events.on_event(lambda e: seen.append(e.kind))
        ldb.break_at_stop("fib", 6)
        event = ldb.events.wait()
        assert isinstance(event, BreakpointHit)
        assert seen == ["breakpoint"]

    def test_handler_driven_trace(self):
        """An event-action client: auto-continue, recording i each hit
        (the Dalek-style tool the paper says belongs above ldb)."""
        ldb, target = session(arch="rmips")
        trace = []

        def record(event):
            if event.kind == "breakpoint":
                trace.append(ldb.evaluate("i", frame=event.frame))
                event.resume = True

        ldb.events.on_event(record)
        ldb.break_at_stop("fib", 6)
        event = ldb.events.wait()
        assert isinstance(event, TargetExited)
        assert trace == [2, 3, 4, 5, 6, 7, 8, 9]
