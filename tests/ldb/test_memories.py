"""Abstract-memory DAG tests (paper Fig. 4, Sec. 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldb.memories import (
    AliasMemory,
    JoinedMemory,
    LocalMemory,
    MemoryStats,
    RegisterMemory,
    decode_value,
    encode_value,
)
from repro.postscript import Location, PSError


def loc(space, offset):
    return Location.absolute(space, offset)


class TestWireCoding:
    @pytest.mark.parametrize("value,kind", [
        (0, "i32"), (1, "i32"), (-1, "i32"), (2**31 - 1, "i32"),
        (-(2**31), "i32"), (127, "i8"), (-128, "i8"), (-1, "i16"),
        (1.5, "f32"), (-2.25, "f64"), (3.75, "f80"),
    ])
    def test_round_trip(self, value, kind):
        assert decode_value(encode_value(value, kind), kind) == value

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_i32_round_trip_property(self, value):
        assert decode_value(encode_value(value, "i32"), "i32") == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_round_trip_property(self, value):
        assert decode_value(encode_value(value, "f64"), "f64") == value

    def test_wire_values_are_little_endian(self):
        assert encode_value(0x01020304, "i32") == b"\x04\x03\x02\x01"


class TestAliasMemory:
    def test_register_alias_to_context(self):
        """Register 30 aliased to a data-space slot (the paper's i)."""
        backing = LocalMemory()
        backing.store(loc("d", 0x192), "i32", 7)   # context + 92 words in
        alias = AliasMemory(backing)
        alias.alias("r", 30, loc("d", 0x192))
        assert alias.fetch(loc("r", 30), "i32") == 7

    def test_alias_to_immediate(self):
        """The extra registers (pc, vfp) alias immediate locations."""
        alias = AliasMemory(LocalMemory())
        alias.alias("x", 0, Location.immediate(0x2270))
        assert alias.fetch(loc("x", 0), "i32") == 0x2270

    def test_store_through_alias(self):
        backing = LocalMemory()
        alias = AliasMemory(backing).alias("r", 2, loc("d", 0x10))
        alias.store(loc("r", 2), "i32", 99)
        assert backing.fetch(loc("d", 0x10), "i32") == 99

    def test_missing_alias_raises(self):
        alias = AliasMemory(LocalMemory())
        with pytest.raises(PSError):
            alias.fetch(loc("r", 5), "i32")


class TestRegisterMemory:
    """The byte-order fix: sub-word register accesses become full-word
    operations, so the same debugger code serves both byte orders."""

    def make(self, word_value):
        backing = LocalMemory()
        backing.store(loc("r", 30), "i32", word_value)
        return backing, RegisterMemory(backing, {"r": "i32", "f": "f64"})

    def test_byte_fetch_returns_low_bits(self):
        _backing, regmem = self.make(0x11223341)
        assert regmem.fetch(loc("r", 30), "i8") == 0x41

    def test_byte_fetch_sign_extends(self):
        _backing, regmem = self.make(0x112233F0)
        assert regmem.fetch(loc("r", 30), "i8") == -16

    def test_half_fetch(self):
        _backing, regmem = self.make(0x1122ABCD)
        assert regmem.fetch(loc("r", 30), "i16") == -21555  # 0xABCD signed

    def test_byte_store_merges(self):
        backing, regmem = self.make(0x11223344)
        regmem.store(loc("r", 30), "i8", 0x7F)
        assert backing.fetch(loc("r", 30), "i32") == 0x1122337F

    def test_full_word_passthrough(self):
        _backing, regmem = self.make(123456)
        assert regmem.fetch(loc("r", 30), "i32") == 123456

    def test_float_space_width(self):
        backing = LocalMemory()
        backing.store(loc("f", 2), "f64", 2.5)
        regmem = RegisterMemory(backing, {"r": "i32", "f": "f64"})
        assert regmem.fetch(loc("f", 2), "f64") == 2.5

    @given(st.integers(0, 2**32 - 1))
    def test_byte_extraction_is_order_independent(self, word):
        """The property the paper claims: identical results regardless
        of target byte order, because only word values are exchanged."""
        signed = word - (1 << 32) if word >= 1 << 31 else word
        backing = LocalMemory()
        backing.store(loc("r", 1), "i32", signed)
        regmem = RegisterMemory(backing, {"r": "i32"})
        low = regmem.fetch(loc("r", 1), "i8")
        expected = word & 0xFF
        assert low & 0xFF == expected


class TestJoinedMemory:
    def make_dag(self):
        """wire(c,d) <- alias <- register <- joined: Fig. 4."""
        stats = MemoryStats()
        wire = LocalMemory()
        alias = AliasMemory(wire, stats=stats)
        register = RegisterMemory(alias, {"r": "i32"}, stats=stats)
        joined = JoinedMemory({"c": wire, "d": wire, "r": register},
                              stats=stats)
        return wire, alias, joined, stats

    def test_data_requests_route_to_wire(self):
        wire, _alias, joined, stats = self.make_dag()
        wire.store(loc("d", 100), "i32", 5)
        assert joined.fetch(loc("d", 100), "i32") == 5
        assert stats.of("alias", "fetch") == 0

    def test_register_requests_route_through_alias(self):
        wire, alias, joined, stats = self.make_dag()
        wire.store(loc("d", 0x192), "i32", 7)
        alias.alias("r", 30, loc("d", 0x192))
        assert joined.fetch(loc("r", 30), "i32") == 7
        assert stats.of("register", "fetch") == 1
        assert stats.of("alias", "fetch") == 1

    def test_unserved_space_raises(self):
        _wire, _alias, joined, _stats = self.make_dag()
        with pytest.raises(PSError):
            joined.fetch(loc("q", 0), "i32")

    def test_paper_example_i_in_register_30(self):
        """The full Sec. 4.1 walk-through: i is at register 30; the
        alias notes register 30 lives 92 bytes into the context; the
        fetch lands on the wire as a data request."""
        wire, alias, joined, stats = self.make_dag()
        context = 0x100
        wire.store(loc("d", context + 92), "i32", 4)     # i == 4
        alias.alias("r", 30, loc("d", context + 92))
        value = joined.fetch(loc("r", 30), "i32")
        assert value == 4
        assert stats.of("joined", "fetch") == 1
        assert stats.of("register", "fetch") == 1
        assert stats.of("alias", "fetch") == 1
