"""Abstract-memory DAG tests (paper Fig. 4, Sec. 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldb.memories import (
    AliasMemory,
    BlockUnsupported,
    CachingMemory,
    JoinedMemory,
    LocalMemory,
    MemoryStats,
    RegisterMemory,
    WireMemory,
    decode_value,
    encode_value,
)
from repro.nub import protocol
from repro.nub.session import NubError, Transport, TransportError
from repro.postscript import Location, PSError


def loc(space, offset):
    return Location.absolute(space, offset)


class FakeNubTransport(Transport):
    """A Transport served straight out of a bytearray, mimicking the
    nub's value semantics: FETCH replies little-endian values, BLOCK
    messages move raw memory images."""

    def __init__(self, size=512, byteorder="little", blocks=True):
        self.mem = bytearray(size)
        self.byteorder = byteorder
        self.blocks = blocks          # does the "nub" do block messages?
        self.block_active = True      # what the connection negotiated
        self.dead = False
        self.log = []

    def poke(self, address, raw):
        """Plant a raw memory image (what the target would hold)."""
        self.mem[address:address + len(raw)] = raw

    def transact(self, msg, expect=(protocol.MSG_OK,), timeout=None):
        if self.dead:
            raise TransportError("connection lost")
        if msg.mtype == protocol.MSG_FETCH:
            space, address, size = protocol.parse_fetch(msg)
            self.log.append(("fetch", space, address, size))
            if address + size > len(self.mem):
                raise NubError(protocol.ERR_BAD_ADDRESS, msg)
            raw = bytes(self.mem[address:address + size])
            return protocol.data(raw[::-1] if self.byteorder == "big"
                                 else raw)
        if msg.mtype == protocol.MSG_STORE:
            space, address, raw_le = protocol.parse_store(msg)
            self.log.append(("store", space, address, len(raw_le)))
            if address + len(raw_le) > len(self.mem):
                raise NubError(protocol.ERR_BAD_ADDRESS, msg)
            self.poke(address, raw_le[::-1] if self.byteorder == "big"
                      else raw_le)
            return protocol.ok()
        if msg.mtype == protocol.MSG_BLOCKFETCH:
            space, address, length = protocol.parse_blockfetch(msg)
            self.log.append(("blockfetch", space, address, length))
            if not self.blocks:
                raise NubError(protocol.ERR_UNSUPPORTED, msg)
            if address >= len(self.mem):
                raise NubError(protocol.ERR_BAD_ADDRESS, msg)
            return protocol.data(
                bytes(self.mem[address:address + length]))  # short at end
        raise NubError(protocol.ERR_BAD_MESSAGE, msg)

    def control(self, msg):
        pass

    def recv_event(self, timeout=None):
        raise TransportError("no events on a fake")

    def close(self):
        self.dead = True

    def sent(self, what):
        return [entry for entry in self.log if entry[0] == what]


class TestWireCoding:
    @pytest.mark.parametrize("value,kind", [
        (0, "i32"), (1, "i32"), (-1, "i32"), (2**31 - 1, "i32"),
        (-(2**31), "i32"), (127, "i8"), (-128, "i8"), (-1, "i16"),
        (1.5, "f32"), (-2.25, "f64"), (3.75, "f80"),
    ])
    def test_round_trip(self, value, kind):
        assert decode_value(encode_value(value, kind), kind) == value

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_i32_round_trip_property(self, value):
        assert decode_value(encode_value(value, "i32"), "i32") == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_round_trip_property(self, value):
        assert decode_value(encode_value(value, "f64"), "f64") == value

    def test_wire_values_are_little_endian(self):
        assert encode_value(0x01020304, "i32") == b"\x04\x03\x02\x01"


class TestAliasMemory:
    def test_register_alias_to_context(self):
        """Register 30 aliased to a data-space slot (the paper's i)."""
        backing = LocalMemory()
        backing.store(loc("d", 0x192), "i32", 7)   # context + 92 words in
        alias = AliasMemory(backing)
        alias.alias("r", 30, loc("d", 0x192))
        assert alias.fetch(loc("r", 30), "i32") == 7

    def test_alias_to_immediate(self):
        """The extra registers (pc, vfp) alias immediate locations."""
        alias = AliasMemory(LocalMemory())
        alias.alias("x", 0, Location.immediate(0x2270))
        assert alias.fetch(loc("x", 0), "i32") == 0x2270

    def test_store_through_alias(self):
        backing = LocalMemory()
        alias = AliasMemory(backing).alias("r", 2, loc("d", 0x10))
        alias.store(loc("r", 2), "i32", 99)
        assert backing.fetch(loc("d", 0x10), "i32") == 99

    def test_missing_alias_raises(self):
        alias = AliasMemory(LocalMemory())
        with pytest.raises(PSError):
            alias.fetch(loc("r", 5), "i32")


class TestRegisterMemory:
    """The byte-order fix: sub-word register accesses become full-word
    operations, so the same debugger code serves both byte orders."""

    def make(self, word_value):
        backing = LocalMemory()
        backing.store(loc("r", 30), "i32", word_value)
        return backing, RegisterMemory(backing, {"r": "i32", "f": "f64"})

    def test_byte_fetch_returns_low_bits(self):
        _backing, regmem = self.make(0x11223341)
        assert regmem.fetch(loc("r", 30), "i8") == 0x41

    def test_byte_fetch_sign_extends(self):
        _backing, regmem = self.make(0x112233F0)
        assert regmem.fetch(loc("r", 30), "i8") == -16

    def test_half_fetch(self):
        _backing, regmem = self.make(0x1122ABCD)
        assert regmem.fetch(loc("r", 30), "i16") == -21555  # 0xABCD signed

    def test_byte_store_merges(self):
        backing, regmem = self.make(0x11223344)
        regmem.store(loc("r", 30), "i8", 0x7F)
        assert backing.fetch(loc("r", 30), "i32") == 0x1122337F

    def test_full_word_passthrough(self):
        _backing, regmem = self.make(123456)
        assert regmem.fetch(loc("r", 30), "i32") == 123456

    def test_float_space_width(self):
        backing = LocalMemory()
        backing.store(loc("f", 2), "f64", 2.5)
        regmem = RegisterMemory(backing, {"r": "i32", "f": "f64"})
        assert regmem.fetch(loc("f", 2), "f64") == 2.5

    @given(st.integers(0, 2**32 - 1))
    def test_byte_extraction_is_order_independent(self, word):
        """The property the paper claims: identical results regardless
        of target byte order, because only word values are exchanged."""
        signed = word - (1 << 32) if word >= 1 << 31 else word
        backing = LocalMemory()
        backing.store(loc("r", 1), "i32", signed)
        regmem = RegisterMemory(backing, {"r": "i32"})
        low = regmem.fetch(loc("r", 1), "i8")
        expected = word & 0xFF
        assert low & 0xFF == expected


class TestJoinedMemory:
    def make_dag(self):
        """wire(c,d) <- alias <- register <- joined: Fig. 4."""
        stats = MemoryStats()
        wire = LocalMemory()
        alias = AliasMemory(wire, stats=stats)
        register = RegisterMemory(alias, {"r": "i32"}, stats=stats)
        joined = JoinedMemory({"c": wire, "d": wire, "r": register},
                              stats=stats)
        return wire, alias, joined, stats

    def test_data_requests_route_to_wire(self):
        wire, _alias, joined, stats = self.make_dag()
        wire.store(loc("d", 100), "i32", 5)
        assert joined.fetch(loc("d", 100), "i32") == 5
        assert stats.of("alias", "fetch") == 0

    def test_register_requests_route_through_alias(self):
        wire, alias, joined, stats = self.make_dag()
        wire.store(loc("d", 0x192), "i32", 7)
        alias.alias("r", 30, loc("d", 0x192))
        assert joined.fetch(loc("r", 30), "i32") == 7
        assert stats.of("register", "fetch") == 1
        assert stats.of("alias", "fetch") == 1

    def test_unserved_space_raises(self):
        _wire, _alias, joined, _stats = self.make_dag()
        with pytest.raises(PSError):
            joined.fetch(loc("q", 0), "i32")

    def test_paper_example_i_in_register_30(self):
        """The full Sec. 4.1 walk-through: i is at register 30; the
        alias notes register 30 lives 92 bytes into the context; the
        fetch lands on the wire as a data request."""
        wire, alias, joined, stats = self.make_dag()
        context = 0x100
        wire.store(loc("d", context + 92), "i32", 4)     # i == 4
        alias.alias("r", 30, loc("d", context + 92))
        value = joined.fetch(loc("r", 30), "i32")
        assert value == 4
        assert stats.of("joined", "fetch") == 1
        assert stats.of("register", "fetch") == 1
        assert stats.of("alias", "fetch") == 1


class TestMemoryStats:
    def test_snapshot_is_frozen(self):
        stats = MemoryStats()
        stats.note("wire", "fetch")
        before = stats.snapshot()
        stats.note("wire", "fetch")
        assert before == {"wire.fetch": 1}
        assert stats.of("wire", "fetch") == 2

    def test_diff_against_snapshot_and_stats(self):
        stats = MemoryStats()
        stats.note("wire", "fetch")
        other = MemoryStats()
        assert stats.diff(other) == {"wire.fetch": 1}
        assert stats.diff(stats.snapshot()) == {}   # zero deltas omitted

    def test_diff_omits_unchanged_keys(self):
        stats = MemoryStats()
        stats.note("wire", "fetch")
        stats.note("cache", "hit")
        before = stats.snapshot()
        stats.note("cache", "hit")
        assert stats.diff(before) == {"cache.hit": 1}

    def test_round_trips_counts_only_wire_messages(self):
        stats = MemoryStats()
        for name, what in (("wire", "fetch"), ("wire", "store"),
                           ("wire", "blockfetch"), ("cache", "hit"),
                           ("joined", "fetch"), ("cache", "fetch")):
            stats.note(name, what)
        assert stats.round_trips() == 3


class TestWireMemoryTransport:
    """Satellite: WireMemory takes an explicit Transport and surfaces
    nub errors identically whatever the transport implementation."""

    def test_rejects_non_transport(self):
        with pytest.raises(TypeError):
            WireMemory(object())

    def test_fetch_and_store_through_fake(self):
        for order in ("little", "big"):
            fake = FakeNubTransport(byteorder=order)
            wire = WireMemory(fake)
            wire.store(loc("d", 16), "i32", 0x01020304)
            assert wire.fetch(loc("d", 16), "i32") == 0x01020304, order

    def test_nub_error_is_invalidaccess(self):
        wire = WireMemory(FakeNubTransport(size=64))
        with pytest.raises(PSError) as err:
            wire.fetch(loc("d", 4096), "i32")
        assert err.value.errname == "invalidaccess"

    def test_dead_transport_is_ioerror(self):
        fake = FakeNubTransport()
        wire = WireMemory(fake)
        fake.close()
        with pytest.raises(PSError) as err:
            wire.fetch(loc("d", 0), "i32")
        assert err.value.errname == "ioerror"

    def test_fetch_block_raises_when_negotiated_off(self):
        fake = FakeNubTransport()
        fake.block_active = False     # HELLO said no
        wire = WireMemory(fake)
        with pytest.raises(BlockUnsupported):
            wire.fetch_block("d", 0, 64)
        assert fake.log == []         # never even sent

    def test_fetch_block_maps_unsupported_answer(self):
        wire = WireMemory(FakeNubTransport(blocks=False))
        with pytest.raises(BlockUnsupported):
            wire.fetch_block("d", 0, 64)


class TestCachingMemory:
    def make(self, byteorder="little", fixup=None, size=512, blocks=True):
        fake = FakeNubTransport(size=size, byteorder=byteorder,
                                blocks=blocks)
        stats = MemoryStats()
        wire = WireMemory(fake, stats=stats)
        cache = CachingMemory(wire, byteorder=byteorder, fixup=fixup,
                              stats=stats)
        return fake, cache, stats

    def test_second_fetch_is_a_hit(self):
        fake, cache, stats = self.make()
        fake.poke(8, (1234).to_bytes(4, "little"))
        assert cache.fetch(loc("d", 8), "i32") == 1234
        assert cache.fetch(loc("d", 12), "i32") == 0   # same block
        assert len(fake.sent("blockfetch")) == 1
        assert fake.sent("fetch") == []
        assert stats.of("cache", "miss") == 1
        assert stats.of("cache", "hit") == 1

    def test_big_endian_interpretation_matches_fetch(self):
        fake, cache, stats = self.make(byteorder="big")
        fake.poke(8, (1234).to_bytes(4, "big"))       # raw target image
        uncached = WireMemory(fake).fetch(loc("d", 8), "i32")
        assert cache.fetch(loc("d", 8), "i32") == uncached == 1234

    def test_fixup_replicates_nub_fix_fetched(self):
        """The rmips saved-float word swap (footnote 3), on the cached
        path: fixup sees the little-endian image and restores it."""
        import struct

        def swap_at_16(space, address, raw_le):
            if address == 16 and len(raw_le) == 8:
                return raw_le[4:] + raw_le[:4]
            return raw_le

        fake, cache, stats = self.make(byteorder="big", fixup=swap_at_16)
        good_le = struct.pack("<d", 1.5)
        swapped_le = good_le[4:] + good_le[:4]        # as the kernel saved it
        fake.poke(16, swapped_le[::-1])               # big-endian image
        assert cache.fetch(loc("d", 16), "f64") == 1.5

    def test_span_crossing_block_boundary(self):
        fake, cache, stats = self.make()
        edge = CachingMemory.BLOCK - 2
        fake.poke(edge, (77).to_bytes(4, "little"))
        assert cache.fetch(loc("d", edge), "i32") == 77
        assert len(fake.sent("blockfetch")) == 2      # both blocks filled

    def test_short_block_serves_prefix_and_falls_back_past_it(self):
        fake, cache, stats = self.make(size=CachingMemory.BLOCK + 8)
        fake.poke(CachingMemory.BLOCK, (9).to_bytes(4, "little"))
        assert cache.fetch(loc("d", CachingMemory.BLOCK), "i32") == 9
        # past the mapped prefix: the per-word fallback surfaces the
        # same invalidaccess the uncached path would
        with pytest.raises(PSError) as err:
            cache.fetch(loc("d", CachingMemory.BLOCK + 6), "i32")
        assert err.value.errname == "invalidaccess"
        assert stats.of("cache", "fallback") == 1

    def test_store_writes_through_and_invalidates(self):
        fake, cache, stats = self.make()
        cache.fetch(loc("d", 8), "i32")               # warm the block
        cache.store(loc("d", 8), "i32", 4242)
        assert fake.sent("store") != []               # write-through
        assert cache.fetch(loc("d", 8), "i32") == 4242
        assert len(fake.sent("blockfetch")) == 2      # span was dropped

    def test_invalidate_drops_everything(self):
        fake, cache, stats = self.make()
        cache.fetch(loc("d", 8), "i32")
        cache.invalidate()
        assert cache.blocks == {}
        cache.fetch(loc("d", 8), "i32")
        assert len(fake.sent("blockfetch")) == 2

    def test_invalidate_range_is_surgical(self):
        fake, cache, stats = self.make()
        cache.fetch(loc("d", 8), "i32")               # block 0
        cache.fetch(loc("d", CachingMemory.BLOCK + 8), "i32")   # block 1
        cache.invalidate_range("d", 4, 8)
        assert ("d", 0) not in cache.blocks
        assert ("d", CachingMemory.BLOCK) in cache.blocks

    def test_prefetch_warms_a_span_in_one_message(self):
        fake, cache, stats = self.make()
        cache.prefetch("d", 8, 200)                   # spans two blocks
        assert len(fake.sent("blockfetch")) == 1
        cache.fetch(loc("d", 8), "i32")
        cache.fetch(loc("d", 180), "i32")
        assert len(fake.sent("blockfetch")) == 1      # all hits
        assert stats.of("cache", "prefetch") == 1

    def test_legacy_nub_disables_cache_permanently(self):
        fake, cache, stats = self.make(blocks=False)
        fake.poke(8, (55).to_bytes(4, "little"))
        assert cache.fetch(loc("d", 8), "i32") == 55  # per-word fallback
        cache.fetch(loc("d", 8), "i32")
        cache.prefetch("d", 0, 64)
        assert len(fake.sent("blockfetch")) == 1      # one probe, ever
        assert len(fake.sent("fetch")) == 2
        assert not cache._block_ok

    def test_negotiated_off_never_sends_a_block_message(self):
        fake, cache, stats = self.make()
        fake.block_active = False                     # HELLO settled it
        fake.poke(8, (55).to_bytes(4, "little"))
        assert cache.fetch(loc("d", 8), "i32") == 55
        assert fake.sent("blockfetch") == []
        assert len(fake.sent("fetch")) == 1

    def test_rejects_bad_byteorder(self):
        fake = FakeNubTransport()
        with pytest.raises(ValueError):
            CachingMemory(WireMemory(fake), byteorder="middle")


class TestTimeTravelStats:
    """The time-travel verbs are wire traffic too: each one notes
    itself so `info stats`-style tooling can account for it."""

    def make_target(self):
        from .helpers import session
        ldb, target = session()
        return ldb, target

    def test_checkpoint_restore_and_drop_are_counted(self):
        ldb, target = self.make_target()
        before = target.stats.snapshot()
        cid, _ = target.take_checkpoint()
        target.restore_checkpoint(cid)
        target.drop_checkpoint(cid)
        delta = target.stats.diff(before)
        assert delta.get("wire.checkpoint") == 1
        assert delta.get("wire.restore") == 1
        assert delta.get("wire.dropckpt") == 1

    def test_runto_is_counted_per_chunk(self):
        ldb, target = self.make_target()
        before = target.stats.snapshot()
        here = target.current_icount()
        # resume past the entry-pause no-op, like any resume from a trap
        target.run_to_icount(here + 5,
                             at_pc=target.breakpoints.resume_pc(
                                 target.stop_pc()))
        target.wait_for_stop()
        assert target.at_icount_stop()
        delta = target.stats.diff(before)
        assert delta.get("wire.runto") == 1
