"""Breakpoint tests: no-op overwrite, restore, resume (paper Sec. 3)."""

import pytest

from repro.ldb import BreakpointError

from .helpers import FIB, run_to_exit, session


class TestPlanting:
    def test_plant_overwrites_noop_with_trap(self):
        ldb, target = session()
        address = ldb.break_at_function("fib")
        planted = target.breakpoints.fetch_insn(address)
        assert planted == target.breakpoints.break_pattern

    def test_plant_requires_noop(self):
        """The interim scheme: breakpoints only at stopping points."""
        ldb, target = session()
        address = ldb.break_at_function("fib")
        with pytest.raises(BreakpointError):
            target.breakpoints.plant(address + 8)  # a real instruction

    def test_remove_restores_noop(self):
        ldb, target = session()
        address = ldb.break_at_function("fib")
        target.breakpoints.remove(address)
        assert target.breakpoints.fetch_insn(address) == \
            target.breakpoints.nop_pattern

    def test_double_plant_is_idempotent(self):
        ldb, target = session()
        address = ldb.break_at_function("fib")
        bp1 = target.breakpoints.plant(address)
        assert target.breakpoints.at(address) is bp1

    def test_remove_unknown_raises(self):
        ldb, target = session()
        with pytest.raises(BreakpointError):
            target.breakpoints.remove(0x5555)

    def test_unknown_function_raises(self):
        ldb, target = session()
        with pytest.raises(BreakpointError):
            ldb.break_at_function("nonesuch")

    @pytest.mark.parametrize("arch", ["rmips", "rsparc", "rm68k", "rvax"])
    def test_machine_dependent_patterns(self, arch):
        """The four MD breakpoint data items differ per target."""
        ldb, target = session(arch=arch)
        table = target.breakpoints
        sizes = {"rmips": 4, "rsparc": 4, "rm68k": 2, "rvax": 1}
        assert table.noop_advance == sizes[arch]
        assert table.break_pattern != table.nop_pattern


class TestHitting:
    def test_break_and_hit(self):
        ldb, target = session()
        ldb.break_at_function("fib")
        assert ldb.run_to_stop() == "stopped"
        assert target.at_breakpoint()
        assert target.top_frame().proc_name() == "fib"

    def test_hit_reports_source_position(self):
        ldb, target = session()
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        proc, filename, _line = ldb.where_am_i()
        assert (proc, filename) == ("fib", "fib.c")

    def test_break_by_line(self):
        ldb, target = session()
        ldb.break_at_line("fib.c", 7)   # the first for loop
        ldb.run_to_stop()
        _, _, line = ldb.where_am_i()
        assert line == 7

    def test_loop_breakpoint_hits_repeatedly(self):
        ldb, target = session()
        ldb.break_at_stop("fib", 6)    # the first loop body
        hits = 0
        while ldb.run_to_stop() == "stopped" and hits < 50:
            hits += 1
        assert hits == 8               # i = 2..9

    def test_program_completes_correctly_with_breakpoints(self):
        """Planting, hitting, and resuming must not perturb output."""
        ldb, target = session()
        ldb.break_at_stop("fib", 9)
        state = run_to_exit(ldb, target)
        assert state == "exited"
        assert target.process.output() == "1 1 2 3 5 8 13 21 34 55 \n"

    def test_multiple_breakpoints(self):
        ldb, target = session()
        a1 = ldb.break_at_function("fib")
        a2 = ldb.break_at_function("main")
        assert a1 != a2
        ldb.run_to_stop()
        assert target.top_frame().proc_name() == "main"
        ldb.run_to_stop()
        assert target.top_frame().proc_name() == "fib"

    def test_remove_all(self):
        ldb, target = session()
        ldb.break_at_function("fib")
        ldb.break_at_function("main")
        target.breakpoints.remove_all()
        assert not target.breakpoints.planted
        assert run_to_exit(ldb, target) == "exited"
