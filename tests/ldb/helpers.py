"""Shared helpers: spin up debug sessions for ldb tests."""

import io

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

FIB = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


def session(source=FIB, arch="rmips", filename="fib.c"):
    """(ldb, target) stopped at the entry pause."""
    exe = compile_and_link({filename: source}, arch, debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    return ldb, target


def run_to_exit(ldb, target, limit=200):
    for _ in range(limit):
        if ldb.run_to_stop(target=target) != "stopped":
            break
    return target.state
