"""Expression-server tests: the Fig. 3 conversation and the rewriter."""

import pytest

from repro.cc.ir import BINOP, CNST, CVT, INDIR, IRNode
from repro.ldb.exprserver import EvalError, rewrite_to_ps
from repro.postscript import new_interp

from .helpers import FIB, session


def run_ps(source):
    import io
    interp = new_interp(stdout=io.StringIO())
    interp.run(source)
    return interp.pop()


class TestRewriter:
    """IR -> PostScript (the paper's 124-line rewriter analog)."""

    def test_constants(self):
        assert run_ps(rewrite_to_ps(CNST("i4", 42))) == 42
        assert run_ps(rewrite_to_ps(CNST("f8", 2.5))) == 2.5

    @pytest.mark.parametrize("op,a,b,expected", [
        ("ADD", 3, 4, 7), ("SUB", 10, 4, 6), ("MUL", 6, 7, 42),
        ("BAND", 12, 10, 8), ("BOR", 12, 10, 14), ("BXOR", 12, 10, 6),
    ])
    def test_arith(self, op, a, b, expected):
        node = BINOP(op, "i4", CNST("i4", a), CNST("i4", b))
        assert run_ps(rewrite_to_ps(node)) == expected

    def test_add_wraps_to_32_bits(self):
        node = BINOP("ADD", "i4", CNST("i4", 2**31 - 1), CNST("i4", 1))
        assert run_ps(rewrite_to_ps(node)) == -(2**31)

    def test_signed_division_truncates(self):
        node = BINOP("DIV", "i4", CNST("i4", -7), CNST("i4", 2))
        assert run_ps(rewrite_to_ps(node)) == -3

    def test_unsigned_division(self):
        node = BINOP("DIV", "u4", CNST("u4", -2), CNST("u4", 3))
        assert run_ps(rewrite_to_ps(node)) == (2**32 - 2) // 3

    def test_signed_shift_right(self):
        node = BINOP("RSH", "i4", CNST("i4", -16), CNST("i4", 2))
        assert run_ps(rewrite_to_ps(node)) == -4

    def test_unsigned_shift_right(self):
        node = BINOP("RSH", "u4", CNST("u4", -16), CNST("u4", 2))
        assert run_ps(rewrite_to_ps(node)) == (2**32 - 16) >> 2

    @pytest.mark.parametrize("op,a,b,expected", [
        ("EQ", 3, 3, 1), ("NE", 3, 4, 1), ("LT", 3, 4, 1),
        ("GE", 3, 4, 0), ("GT", 5, 4, 1), ("LE", 5, 4, 0),
    ])
    def test_compares(self, op, a, b, expected):
        node = BINOP(op, "i4", CNST("i4", a), CNST("i4", b))
        assert run_ps(rewrite_to_ps(node)) == expected

    def test_unsigned_compare(self):
        # -1 as unsigned is huge
        node = BINOP("LT", "u4", CNST("u4", -1), CNST("u4", 1))
        assert run_ps(rewrite_to_ps(node)) == 0

    def test_cond_and_logic(self):
        cond = IRNode("COND", "i4", [CNST("i4", 1), CNST("i4", 10), CNST("i4", 20)])
        assert run_ps(rewrite_to_ps(cond)) == 10
        andand = IRNode("ANDAND", "i4", [CNST("i4", 2), CNST("i4", 0)])
        assert run_ps(rewrite_to_ps(andand)) == 0
        oror = IRNode("OROR", "i4", [CNST("i4", 0), CNST("i4", 5)])
        assert run_ps(rewrite_to_ps(oror)) == 1
        notn = IRNode("NOT", "i4", [CNST("i4", 0)])
        assert run_ps(rewrite_to_ps(notn)) == 1

    def test_conversions(self):
        to_float = CVT("f8", "i4", CNST("i4", 7))
        assert run_ps(rewrite_to_ps(to_float)) == 7.0
        to_int = CVT("i4", "f8", CNST("f8", 3.9))
        assert run_ps(rewrite_to_ps(to_int)) == 3
        narrow = CVT("i1", "i4", CNST("i4", 300))
        assert run_ps(rewrite_to_ps(narrow)) == 300 - 256

    def test_neg_and_bcom(self):
        assert run_ps(rewrite_to_ps(IRNode("NEG", "i4", [CNST("i4", 5)]))) == -5
        assert run_ps(rewrite_to_ps(IRNode("BCOM", "i4", [CNST("i4", 0)]))) == -1

    def test_rewriter_is_compact(self):
        """The paper: 124 lines of C rewrote 112 IR operators.  Our
        rewriter should be the same order of magnitude."""
        import inspect
        from repro.ldb import exprserver
        source = inspect.getsource(exprserver.rewrite_to_ps) \
            + inspect.getsource(exprserver._rewrite_cvt)
        lines = [l for l in source.splitlines()
                 if l.strip() and not l.strip().startswith("#")]
        assert len(lines) <= 200


class TestConversation:
    """The lookup round trip of Fig. 3."""

    def stopped(self, arch="rmips"):
        ldb, target = session(arch=arch)
        ldb.break_at_stop("fib", 9)
        ldb.run_to_stop()
        return ldb, target

    def test_simple_expression(self):
        ldb, _target = self.stopped()
        assert ldb.evaluate("2 + 3 * 4") == 14

    def test_symbol_lookup_round_trip(self):
        ldb, _target = self.stopped()
        assert ldb.evaluate("n") == 10

    def test_static_array_subscript(self):
        ldb, _target = self.stopped()
        assert ldb.evaluate("a[4]") == 5

    def test_out_of_scope_name_fails(self):
        ldb, _target = self.stopped()
        with pytest.raises(EvalError):
            ldb.evaluate("i")   # the other block's local

    def test_parse_error_reported(self):
        ldb, _target = self.stopped()
        with pytest.raises(EvalError):
            ldb.evaluate("n +")

    def test_call_rejected_like_the_paper(self):
        """Sec. 7.1: expressions with procedure calls are future work."""
        ldb, _target = self.stopped()
        with pytest.raises(EvalError) as info:
            ldb.evaluate("fib(3)")
        assert "not yet supported" in str(info.value)

    def test_assignment_writes_target(self):
        ldb, target = self.stopped()
        ldb.evaluate("j = 3")
        assert ldb.evaluate("j") == 3

    def test_server_survives_errors(self):
        """An error must not wedge the conversation."""
        ldb, _target = self.stopped()
        with pytest.raises(EvalError):
            ldb.evaluate("totally bogus +++")
        assert ldb.evaluate("1 + 1") == 2

    def test_struct_types_reconstructed(self):
        """The server rebuilds type info from C tokens (Sec. 3)."""
        source = """
        struct pair { int first; int second; };
        struct pair g;
        int main(void) {
            g.first = 11; g.second = 22;
            return g.first;    /* line 6 */
        }
        """
        ldb, target = session(source, filename="pair.c")
        ldb.break_at_line("pair.c", 6)
        ldb.run_to_stop()
        assert ldb.evaluate("g.first + g.second") == 33

    def test_type_info_persists_between_expressions(self):
        source = """
        struct pair { int first; int second; };
        struct pair g;
        int main(void) {
            g.first = 11; g.second = 22;
            return g.first;    /* line 6 */
        }
        """
        ldb, target = session(source, filename="pair.c")
        ldb.break_at_line("pair.c", 6)
        ldb.run_to_stop()
        assert ldb.evaluate("g.first") == 11
        # the second expression reuses the saved struct definition
        assert ldb.evaluate("g.second") == 22

    def test_pointer_dereference(self):
        source = """
        int value = 55;
        int *ptr = &value;
        int main(void) { return *ptr; /* line 4 */ }
        """
        ldb, target = session(source, filename="ptr.c")
        ldb.break_at_line("ptr.c", 4)
        ldb.run_to_stop()
        assert ldb.evaluate("*ptr") == 55
        assert ldb.evaluate("ptr == &value") == 1
