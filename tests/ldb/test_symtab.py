"""Symbol-table machinery tests: forcing, lookup maps, memoization."""

import pytest

from repro.postscript import Location, String

from .helpers import FIB, session


class TestProcedureMapping:
    def test_pc_to_procedure_entry(self):
        ldb, target = session()
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        pc = target.stop_pc()
        entry = target.symtab.proc_entry_for_pc(pc)
        assert entry["name"].text == "fib"

    def test_pc_in_middle_of_procedure(self):
        ldb, target = session()
        ldb.break_at_stop("fib", 6)
        ldb.run_to_stop()
        entry = target.symtab.proc_entry_for_pc(target.stop_pc())
        assert entry["name"].text == "fib"

    def test_externs_lookup(self):
        ldb, target = session()
        assert target.symtab.extern_entry("main") is not None
        assert target.symtab.extern_entry("nothere") is None


class TestForcing:
    def test_where_forced_once(self):
        """Anchor fetches happen at most once per entry (Sec. 7)."""
        ldb, target = session()
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        frame = target.top_frame()
        entry = frame.resolve("a")          # the static array
        assert isinstance(entry["where"], String)   # still deferred
        before = target.stats.snapshot()
        loc1 = target.location_of(entry, frame)
        mid = target.stats.snapshot()
        loc2 = target.location_of(entry, frame)
        assert isinstance(entry["where"], Location)  # memoized
        assert loc1 == loc2
        # the first force fetched the anchor (served by the cache or the
        # wire, depending on what is warm), the second did not
        first = target.stats.diff(before)
        assert first.get("cache.fetch", 0) + first.get("wire.fetch", 0) > 0
        second = target.stats.diff(mid)
        assert second.get("cache.fetch", 0) + second.get("wire.fetch", 0) == 0

    def test_frame_relative_where_not_memoized(self):
        """Local locations depend on the frame and must be recomputed."""
        source = """
        int force_mem(int *p) { return *p; }
        int outer(int depth) {
            int mine = depth;
            if (depth == 0) return force_mem(&mine);    /* line 5: break */
            return outer(depth - 1) + mine;
        }
        int main(void) { return outer(2); }
        """
        ldb, target = session(source, filename="o.c")
        ldb.break_at_line("o.c", 5)
        ldb.run_to_stop()
        frames = target.frames()
        entry0 = frames[0].resolve("mine")
        loc0 = target.location_of(entry0, frames[0])
        loc1 = target.location_of(entry0, frames[1])
        assert loc0 != loc1          # different frames, different slots
        assert not isinstance(entry0["where"], Location)  # not memoized

    def test_stop_addresses_forced_lazily(self):
        ldb, target = session()
        entry = target.symtab.extern_entry("fib")
        stop = target.symtab.loci(entry)[3]
        address = target.symtab.stop_address(stop)
        assert isinstance(address, int)
        # forced in place
        assert target.symtab.stop_address(stop) == address


class TestSourceMapping:
    def test_stops_for_line(self):
        ldb, target = session()
        hits = target.symtab.stops_for_line("fib.c", 7)
        assert len(hits) >= 2   # init, cond, incr share the for line

    def test_multiple_stops_on_one_line(self):
        """One source line can hold several stopping points (Sec. 2)."""
        source = "int main(void) { int i; i = 1; i = 2; i = 3; return i; }"
        ldb, target = session(source, filename="one.c")
        hits = target.symtab.stops_for_line("one.c", 1)
        assert len(hits) >= 5

    def test_unknown_file_empty(self):
        ldb, target = session()
        assert target.symtab.stops_for_line("other.c", 3) == []

    def test_decl_of(self):
        ldb, target = session()
        ldb.break_at_stop("fib", 9)
        ldb.run_to_stop()
        frame = target.top_frame()
        assert target.symtab.decl_of(frame.resolve("a")) == "int a[20]"
        assert target.symtab.decl_of(frame.resolve("j")) == "int j"


class TestValuePrinting:
    def test_int_value(self):
        ldb, target = session()
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        assert ldb.print_variable("n").strip() == "10"

    def test_array_value_uses_printer_procedure(self):
        ldb, target = session()
        ldb.break_at_stop("fib", 9)
        ldb.run_to_stop()
        text = ldb.print_variable("a").strip()
        assert text.startswith("{1, 1, 2, 3, 5")
        assert text.endswith("...}")  # 20 elements exceed ArrayLimit

    def test_struct_value(self):
        source = """
        struct point { int x; int y; };
        int main(void) {
            struct point p;
            p.x = 3; p.y = 4;
            return p.x;     /* line 6 */
        }
        """
        ldb, target = session(source, filename="p.c")
        ldb.break_at_line("p.c", 6)
        ldb.run_to_stop()
        assert ldb.print_variable("p").strip() == "{x = 3, y = 4}"

    def test_char_pointer_prints_string(self):
        source = """
        char *msg = "hello world";
        int main(void) { return msg[0]; }
        """
        ldb, target = session(source, filename="s.c")
        ldb.break_at_line("s.c", 3)
        ldb.run_to_stop()
        assert ldb.print_variable("msg").strip() == '"hello world"'

    def test_function_pointer_prints_name(self):
        """Printing a function pointer needs the loader table (Sec. 7)."""
        source = """
        int helper(int x) { return x; }
        int (*fp)(int) = helper;
        int main(void) { return fp(1); }
        """
        ldb, target = session(source, filename="f.c")
        ldb.break_at_line("f.c", 4)
        ldb.run_to_stop()
        assert ldb.print_variable("fp").strip() == "helper"

    def test_enum_prints_tag(self):
        source = """
        enum color { RED, GREEN, BLUE };
        enum color c = GREEN;
        int main(void) { return c; }
        """
        ldb, target = session(source, filename="e.c")
        ldb.break_at_line("e.c", 4)
        ldb.run_to_stop()
        assert ldb.print_variable("c").strip() == "GREEN"

    def test_double_value(self):
        source = """
        double d = 6.25;
        int main(void) { return (int) d; }
        """
        ldb, target = session(source, filename="d.c")
        ldb.break_at_line("d.c", 3)
        ldb.run_to_stop()
        assert ldb.print_variable("d").strip() == "6.25"
