"""Post-mortem debugging acceptance tests.

The robustness contract under test:

* a fatal fault on any architecture auto-writes a versioned core file;
* ``open_core`` rebuilds the whole debugger stack over the recorded
  image — backtraces and variable values are *byte-identical* to the
  live session at the same stop, with no nub anywhere;
* mutating verbs refuse a corpse with clear, typed errors;
* a smashed stack yields a truncated backtrace ending in
  ``<corrupt frame>`` — on live and core targets alike, never an
  unhandled exception;
* a nub that dies mid-session surfaces as the typed ``died`` event,
  pointing at the core it left behind, instead of an endless retry.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.ldb.breakpoints import BreakpointError
from repro.ldb.exprserver import EvalError
from repro.ldb.postmortem import CoreTransport, PostMortemError
from repro.ldb.target import TargetDiedError, TargetError
from repro.postscript import PSError
from repro.machines import ARCH_NAMES, Process, SIGSEGV, SIGTRAP
from repro.machines.core import CoreError, CoreFile
from repro.nub import (
    FaultSchedule,
    Listener,
    Nub,
    NubRunner,
    RetryPolicy,
    connect,
    protocol,
)
BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""

RECUR = """int depth;
int down(int n) { depth = n; if (n == 0) return 1; return n + down(n - 1); }
int main(void) { return down(6); }
"""

_EXES = {}


def exe_for(arch, name, source):
    key = (arch, name)
    if key not in _EXES:
        _EXES[key] = compile_and_link({name: source}, arch, debug=True)
    return _EXES[key]


def crashed_session(arch, core_path):
    """A live session stopped at BOOM's SIGSEGV, with auto-cores on."""
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe_for(arch, "boom.c", BOOM),
                              core_path=core_path)
    assert ldb.run_to_stop() == "stopped"
    assert target.signo == SIGSEGV
    return ldb, target


def deep_session(arch):
    """A live session stopped at RECUR's deepest ``down`` activation."""
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe_for(arch, "recur.c", RECUR))
    ldb.break_at_function("down")
    for _ in range(7):
        assert ldb.run_to_stop() == "stopped"
    assert target.at_breakpoint()
    return ldb, target


def open_core(path, **kw):
    ldb = Ldb(stdout=io.StringIO())
    return ldb, ldb.open_core(str(path), **kw)


class TestAutoCore:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_segfault_writes_a_core(self, arch, tmp_path):
        path = tmp_path / ("%s.core" % arch)
        crashed_session(arch, str(path))
        core = CoreFile.load(str(path))
        assert core.arch_name == arch
        assert core.signo == SIGSEGV
        assert core.segments  # the image is there, sparsely
        assert core.loader_ps  # standalone: the symbol table rode along
        assert core.icount > 0

    def test_no_core_path_means_no_core(self, tmp_path):
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe_for("rmips", "boom.c", BOOM))
        assert ldb.run_to_stop() == "stopped"
        assert target.signo == SIGSEGV  # the fault still surfaces cleanly


class TestCoreRoundTrip:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_auto_core_matches_live_session(self, arch, tmp_path):
        path = tmp_path / "boom.core"
        live_ldb, live = crashed_session(arch, str(path))
        live_bt = live_ldb.backtrace_text()
        live_g = live_ldb.print_variable("g")
        live_regs = live_ldb.registers_text()

        core_ldb, post = open_core(path)
        assert post.post_mortem
        assert post.arch_name == arch
        assert post.signo == SIGSEGV
        assert post.state == "stopped"
        assert core_ldb.backtrace_text() == live_bt
        assert core_ldb.print_variable("g") == live_g
        assert core_ldb.registers_text() == live_regs
        assert post.core.icount == live.current_icount()

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_explicit_dumpcore_at_a_breakpoint(self, arch, tmp_path):
        path = tmp_path / "recur.core"
        live_ldb, live = deep_session(arch)
        live.dump_core(str(path))
        core_ldb, post = open_core(path)
        assert core_ldb.backtrace_text() == live_ldb.backtrace_text()
        assert core_ldb.print_variable("n") == live_ldb.print_variable("n")
        assert (core_ldb.print_variable("depth")
                == live_ldb.print_variable("depth"))
        # the recorded planted-breakpoint table rode along
        assert sorted(post.breakpoints.planted) \
            == sorted(live.breakpoints.planted)

    def test_core_embeds_enough_to_open_standalone(self, tmp_path):
        # no executable, no explicit table: only the file
        path = tmp_path / "alone.core"
        crashed_session("rsparc", str(path))
        ldb, target = open_core(path)
        assert "poke" in ldb.backtrace_text() or "main" in ldb.backtrace_text()

    def test_resaving_a_core_round_trips(self, tmp_path):
        first = tmp_path / "first.core"
        again = tmp_path / "again.core"
        crashed_session("rmips", str(first))
        ldb, target = open_core(first)
        target.dump_core(str(again))  # DUMPCORE served from the core itself
        ldb2, target2 = open_core(again)
        assert ldb2.backtrace_text() == ldb.backtrace_text()


class TestPostMortemRefusals:
    @pytest.fixture()
    def post(self, tmp_path):
        path = tmp_path / "boom.core"
        crashed_session("rmips", str(path))
        return open_core(path)

    def test_continue_refused(self, post):
        ldb, target = post
        with pytest.raises(TargetError, match="post-mortem"):
            target.cont()

    def test_kill_and_detach_refused(self, post):
        ldb, target = post
        with pytest.raises(TargetError, match="post-mortem"):
            target.kill()
        with pytest.raises(TargetError, match="post-mortem"):
            target.detach()

    def test_breakpoints_refused(self, post):
        ldb, target = post
        with pytest.raises(BreakpointError, match="post-mortem"):
            ldb.break_at_function("main")

    def test_assignment_refused(self, post):
        ldb, target = post
        with pytest.raises(EvalError, match="post-mortem"):
            ldb.assign("g = 7")
        # the recorded value is untouched, and the expression client
        # is still in sync for the next evaluation
        assert ldb.evaluate("g") == 15

    def test_raw_control_refused_with_typed_error(self, post):
        ldb, target = post
        with pytest.raises(PostMortemError, match="cannot continue"):
            target.transport.control(protocol.cont())

    def test_inspection_still_works(self, post):
        ldb, target = post
        assert target.frames()
        assert target.stop_pc() != 0
        assert ldb.evaluate("g + 1") is not None


class TestLegacyNubDegrades:
    def test_dumpcore_against_a_legacy_nub_is_a_clear_error(self):
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe_for("rmips", "recur.c", RECUR),
                                  core_nub=False)
        with pytest.raises(TargetError, match="does not support core dumps"):
            target.dump_core("/tmp/never-written.core")
        # forward debugging is unaffected
        ldb.break_at_function("down")
        assert ldb.run_to_stop() == "stopped"


class TestCoreFileDamage:
    @pytest.fixture(scope="class")
    def raw(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cores") / "boom.core"
        crashed_session("rmips", str(path))
        return path.read_bytes()

    def test_bad_magic(self, raw):
        with pytest.raises(CoreError, match="magic"):
            CoreFile.from_bytes(b"ELF!" + raw[4:])

    def test_truncation(self, raw):
        with pytest.raises(CoreError, match="truncated"):
            CoreFile.from_bytes(raw[:len(raw) // 2])

    def test_bit_rot_fails_the_crc(self, raw):
        flipped = bytearray(raw)
        flipped[-1] ^= 0x40
        with pytest.raises(CoreError, match="CRC"):
            CoreFile.from_bytes(bytes(flipped))

    def test_future_version_is_refused(self, raw):
        import struct
        bumped = raw[:4] + struct.pack("<H", 99) + raw[6:]
        with pytest.raises(CoreError, match="version 99"):
            CoreFile.from_bytes(bumped)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.core"
        path.write_bytes(b"")
        with pytest.raises(CoreError):
            CoreFile.load(str(path))

    def test_open_core_maps_damage_to_target_error(self, raw, tmp_path):
        path = tmp_path / "rotten.core"
        path.write_bytes(raw[:32])
        ldb = Ldb(stdout=io.StringIO())
        with pytest.raises(TargetError, match="cannot open core"):
            ldb.open_core(str(path))


def smash(target, lo, data):
    """Overwrite live target memory behind the wire cache's back."""
    mem = target.process.mem
    hi = min(len(mem.bytes), lo + len(data))
    mem.bytes[lo:hi] = data[:hi - lo]
    target.wire.invalidate()
    target._top_frame = None


def assert_defensive(frames):
    """The unwinder's contract: at least one frame, corruption only as
    the terminating sentinel."""
    assert len(frames) >= 1
    for frame in frames[:-1]:
        assert not frame.corrupt
    return frames[-1].corrupt


class TestSmashedStacks:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_smashed_callers_truncate_identically_live_and_core(
            self, arch, tmp_path):
        ldb, target = deep_session(arch)
        clean_depth = len(target.frames())
        assert clean_depth >= 7
        sp = target.top_frame().sp
        smash(target, sp + 32, b"\xff" * 4096)

        frames = target.frames()
        assert assert_defensive(frames)  # truncated, marked corrupt
        assert len(frames) < clean_depth
        assert frames[-1].proc_name() == "<corrupt frame>"
        live_bt = ldb.backtrace_text()
        assert "<corrupt frame>" in live_bt

        # the core records the smashed image; its backtrace matches
        path = tmp_path / "smashed.core"
        target.dump_core(str(path))
        core_ldb, post = open_core(path)
        assert core_ldb.backtrace_text() == live_bt

    def test_smashed_saved_context_still_yields_a_frame(self):
        ldb, target = deep_session("rmips")
        smash(target, target.context_addr, b"\xff" * 256)
        frames = target.frames()
        assert len(frames) >= 1
        assert frames[-1].corrupt

    @settings(max_examples=15, deadline=None)
    @given(arch=st.sampled_from(ARCH_NAMES),
           offset=st.integers(-512, 4096),
           payload=st.binary(min_size=1, max_size=2048))
    def test_random_smashes_never_raise(self, arch, offset, payload):
        ldb, target = deep_session(arch)
        sp = target.top_frame().sp
        lo = max(0, sp + offset)
        smash(target, lo, payload)
        frames = target.frames()  # must not raise, whatever we wrote
        assert_defensive(frames)
        ldb.backtrace_text()  # and the rendered form must not raise


def _attach(exe, listener, policy=None):
    """An Ldb attached through the listener, with a fast retry policy."""
    table_ps = loader_table_ps(exe)
    port = listener.port

    def connector():
        return connect("127.0.0.1", port)

    ldb = Ldb(stdout=io.StringIO())
    target = ldb.adopt_channel(connector(), table_ps, connector=connector)
    target.session.reply_timeout = 0.5
    target.session.policy = policy or RetryPolicy(
        max_attempts=10, base_delay=0.01, max_delay=0.05, seed=1)
    return ldb, target


class TestKilledNub:
    def test_nub_death_surfaces_as_died_event_with_core(self, tmp_path):
        exe = exe_for("rmips", "recur.c", RECUR)
        core_path = tmp_path / "killed.core"
        schedule = FaultSchedule()  # clean until armed below
        listener = Listener()
        nub = Nub(Process(exe), listener=listener, accept_timeout=30.0,
                  core_path=str(core_path), loader_ps=loader_table_ps(exe),
                  fault_schedule=schedule)
        runner = NubRunner(nub).start()
        try:
            ldb, target = _attach(exe, listener)
            target.core_path = str(core_path)
            ldb.break_at_function("down")
            event = ldb.events.wait()
            assert event.kind == "breakpoint"

            target.resume_from_breakpoint()
            schedule.kill_after = 0  # the nub's next send kills it
            event = ldb.events.wait()
            assert event.kind == "died"
            assert event.core_path == str(core_path)
            assert target.state == "disconnected"
            assert nub.killed

            # graceful degradation: the core the nub left behind opens
            core_ldb, post = open_core(core_path)
            assert post.arch_name == "rmips"
            assert core_ldb.backtrace_text()
        finally:
            runner.join(timeout=5.0)

    def test_reconnect_raises_typed_death_when_nub_is_gone(self, tmp_path):
        exe = exe_for("rmips", "recur.c", RECUR)
        core_path = tmp_path / "killed.core"
        schedule = FaultSchedule()
        listener = Listener()
        nub = Nub(Process(exe), listener=listener, accept_timeout=30.0,
                  core_path=str(core_path), loader_ps=loader_table_ps(exe),
                  fault_schedule=schedule)
        runner = NubRunner(nub).start()
        try:
            ldb, target = _attach(exe, listener)
            target.core_path = str(core_path)
            ldb.break_at_function("down")
            assert ldb.run_to_stop() == "stopped"
            schedule.kill_after = 0  # the nub dies answering the fetch
            target.wire.invalidate()
            with pytest.raises(PSError):
                target.stop_pc()
            with pytest.raises(TargetDiedError) as excinfo:
                target.reconnect()
            assert excinfo.value.core_path == str(core_path)
            assert str(core_path) in str(excinfo.value)
            assert target.state == "disconnected"
        finally:
            runner.join(timeout=5.0)


class TestReconnectFindsTargetExited:
    def test_exited_reconnect_raises_instead_of_replanting(self):
        """Regression: a reconnect that finds the nub announcing EXITED
        used to replay BREAKS into the dead target (and pretend the
        session was healthy); it must raise the typed death instead."""
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe_for("rmips", "recur.c", RECUR))
        session = target.session

        resyncs = []
        target.breakpoints.resync = lambda: resyncs.append(True)

        def fake_reconnect():
            # what the real _reconnect does when the nub answers the
            # new connection with EXITED: no stop announced, the exit
            # queued as a pending event, and no reconnect callback
            session.last_signal = None
            session.pending_events.append(protocol.exited(7))

        session.reconnect = fake_reconnect
        session.connector = lambda: None  # satisfies the has-a-path check
        with pytest.raises(TargetDiedError, match="exited"):
            target.reconnect()
        assert target.state == "exited"
        assert resyncs == []  # no BREAKS replay into a corpse

    def test_announced_reconnect_still_resyncs(self):
        """The counterpart: a reconnect that *does* find a stopped
        target keeps the Sec. 7.1 BREAKS replay."""
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe_for("rmips", "recur.c", RECUR))
        session = target.session

        resyncs = []
        target.breakpoints.resync = lambda: resyncs.append(True)
        session.last_signal = (SIGTRAP, 0, target.context_addr)
        target._session_reconnected(session)
        assert resyncs == [True]
