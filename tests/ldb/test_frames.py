"""Stack-frame tests: walking, register restore, scope resolution."""

import pytest

from .helpers import session

RECURSIVE = """int depth_reached = 0;
int dig(int level) {
    int here = level * 10;
    if (level == 3) {
        depth_reached = 1;
        return here;       /* break here: 4 dig frames + main */
    }
    return dig(level + 1) + here;
}
int main(void) { return dig(0) & 0xff; }
"""

ALL_ARCHES = ["rmips", "rmipsel", "rsparc", "rm68k", "rvax"]


@pytest.fixture(params=ALL_ARCHES)
def arch(request):
    return request.param


class TestWalking:
    def stopped_deep(self, arch):
        ldb, target = session(RECURSIVE, arch, filename="dig.c")
        ldb.break_at_line("dig.c", 5)   # depth_reached = 1
        ldb.run_to_stop()
        return ldb, target

    def test_backtrace_depth(self, arch):
        ldb, target = self.stopped_deep(arch)
        frames = target.frames()
        names = [f.proc_name() for f in frames]
        assert names == ["dig", "dig", "dig", "dig", "main"]

    def test_walk_terminates(self, arch):
        ldb, target = self.stopped_deep(arch)
        frames = target.frames(limit=64)
        assert len(frames) == 5  # never walks into startup code

    def test_params_per_frame(self, arch):
        """Each activation sees its own `level` — frame memories differ."""
        ldb, target = self.stopped_deep(arch)
        frames = target.frames()
        levels = []
        for frame in frames[:4]:
            entry = frame.resolve("level")
            levels.append(ldb.evaluate("level", frame=frame))
        assert levels == [3, 2, 1, 0]

    def test_locals_per_frame(self, arch):
        ldb, target = self.stopped_deep(arch)
        frames = target.frames()
        heres = [ldb.evaluate("here", frame=f) for f in frames[:4]]
        assert heres == [30, 20, 10, 0]

    def test_globals_visible_from_any_frame(self, arch):
        ldb, target = self.stopped_deep(arch)
        frames = target.frames()
        for frame in frames:
            assert frame.resolve("depth_reached") is not None

    def test_frame_levels(self, arch):
        ldb, target = self.stopped_deep(arch)
        assert [f.level for f in target.frames()] == [0, 1, 2, 3, 4]


class TestScopeResolution:
    def test_stopping_point_context(self, arch):
        """Name resolution is determined by the stopping point (Sec. 2)."""
        ldb, target = session(arch=arch)
        ldb.break_at_stop("fib", 9)    # inside the j loop
        ldb.run_to_stop()
        frame = target.top_frame()
        assert frame.resolve("j") is not None
        assert frame.resolve("a") is not None
        assert frame.resolve("n") is not None
        assert frame.resolve("i") is None     # the other block's local
        assert frame.resolve("fib") is not None  # via externs

    def test_visible_names(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_at_stop("fib", 9)
        ldb.run_to_stop()
        names = target.top_frame().visible_names()
        assert names[:3] == ["j", "a", "n"]

    def test_entry_scope_has_only_params(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        frame = target.top_frame()
        assert frame.resolve("n") is not None
        assert frame.resolve("j") is None


class TestRegisterAccess:
    def test_read_sp_register(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        frame = target.top_frame()
        machdep = target.machdep
        names = machdep.reg_names()
        sp_index = names.index("sp")
        sp = frame.read_reg(sp_index)
        assert 0 < sp <= target.process.exe.stack_top

    def test_write_register_via_frame(self, arch):
        """Stores flow through alias to the context (Sec. 4.1)."""
        ldb, target = session(arch=arch)
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        frame = target.top_frame()
        frame.write_reg(2, 0x1234)
        assert frame.read_reg(2) == 0x1234
        # and the value really lives in target memory (the context)
        ctx = target.context_addr
        raw = target.process.mem.read_u32(ctx + 4 + 4 * 2)
        assert raw == 0x1234


class TestCalleeSavedRestore:
    def test_register_variable_read_from_caller_frame(self):
        """Walking restores callee-saved registers from the stack: a
        register variable in a calling frame must show its saved value,
        not the callee's current register contents (Sec. 4.1)."""
        source = """
        int leaf(int x) {
            int burn1 = x + 1, burn2 = x + 2, burn3 = x + 3;
            int burn4 = x + 4, burn5 = x + 5, burn6 = x + 6;
            return burn1 * burn2 * burn3 * burn4 * burn5 * burn6;  /* stop */
        }
        int main(void) {
            int keep = 777;
            int r = leaf(1);
            return (keep + r) & 0xff;
        }
        """
        for arch in ("rmips", "rm68k"):   # the register-variable targets
            ldb, target = session(source, arch, filename="leaf.c")
            ldb.break_at_line("leaf.c", 5)
            ldb.run_to_stop()
            frames = target.frames()
            assert frames[1].proc_name() == "main"
            assert ldb.evaluate("keep", frame=frames[1]) == 777, arch
