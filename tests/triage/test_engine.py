"""The triage engine: dedup quality, the corruption matrix, and the
never-abort batch contract."""

import json
import os

import pytest

from repro.obs import Observability
from repro.triage import (ERROR_CORRUPT_CORE, ERROR_CORRUPT_RECORDING,
                          ERROR_DIVERGED, ERROR_NOT_ARTIFACT,
                          ERROR_UNREADABLE, TriageEngine, TriageError,
                          classify, triage_artifact)


def run_triage(directory, **kw):
    kw.setdefault("workers", 1)
    return TriageEngine(**kw).triage_dir(directory)


# -- dedup quality over the seeded corpus (3 ISAs) ------------------------

def test_seeded_duplicates_bucket_together(corpus):
    directory, manifest = corpus
    report = run_triage(directory)
    for family, members in manifest["families"].items():
        hashes = {report.group_of(os.path.join(directory, m)).stack_hash
                  for m in members}
        assert len(hashes) == 1, "family %s split: %s" % (family, hashes)


def test_distinct_families_never_merge(corpus):
    directory, manifest = corpus
    report = run_triage(directory)
    owner = {}
    for family, members in manifest["families"].items():
        for m in members:
            h = report.group_of(os.path.join(directory, m)).stack_hash
            assert owner.setdefault(h, family) == family, \
                "families %s and %s merged" % (owner[h], family)
    # 3 arches x 3 families, each its own group
    assert len(owner) == len(manifest["families"])


def test_cores_and_recordings_of_one_crash_share_a_group(corpus):
    directory, manifest = corpus
    report = run_triage(directory)
    mixed = 0
    for members in manifest["families"].values():
        kinds = {m.rsplit(".", 1)[1] for m in members}
        if kinds == {"core", "ldbrec"}:
            group = report.group_of(os.path.join(directory, members[0]))
            assert {m.kind for m in group.members} == {"core", "recording"}
            mixed += 1
    assert mixed  # the corpus really seeds both artifact kinds


def test_groups_rank_by_count_then_hash(corpus):
    directory, _ = corpus
    report = run_triage(directory)
    keys = [(-g.count, g.stack_hash) for g in report.groups]
    assert keys == sorted(keys)


# -- the corruption matrix ------------------------------------------------

def test_corrupt_artifacts_never_abort_the_batch(corpus):
    directory, manifest = corpus
    report = run_triage(directory)
    assert report.scanned == len(manifest["artifacts"])
    assert report.triaged + len(report.errors) == report.scanned
    expected = {a["path"]: a["expect_error"]
                for a in manifest["artifacts"] if a["family"] is None}
    got = {os.path.basename(e.path): e.kind for e in report.errors}
    assert got == expected


def test_corruption_matrix_kinds(corpus):
    """Truncated core, bad-CRC core, truncated recording, tampered
    (diverging) recording, empty file, non-artifact text — each typed."""
    directory, manifest = corpus
    expected = {a["path"]: a["expect_error"]
                for a in manifest["artifacts"] if a["family"] is None}
    assert set(expected.values()) == {ERROR_CORRUPT_CORE,
                                      ERROR_CORRUPT_RECORDING,
                                      ERROR_DIVERGED, ERROR_NOT_ARTIFACT}
    for name, want in expected.items():
        row = triage_artifact(os.path.join(directory, name))
        assert row["ok"] is False and row["kind"] == want, (name, row)
        assert row["message"]


def test_unreadable_path_is_a_typed_error(tmp_path):
    # a directory where a file should be: open() raises, triage types it
    row = triage_artifact(str(tmp_path))
    assert row["ok"] is False and row["kind"] == ERROR_UNREADABLE


def test_classify_by_magic(corpus, tmp_path):
    directory, manifest = corpus
    healthy = [a for a in manifest["artifacts"] if a["family"]]
    core = next(a["path"] for a in healthy if a["kind"] == "core")
    rec = next(a["path"] for a in healthy if a["kind"] == "recording")
    assert classify(os.path.join(directory, core)) == "core"
    assert classify(os.path.join(directory, rec)) == "recording"
    alien = tmp_path / "a.bin"
    alien.write_bytes(b"ELF\x7f not ours")
    assert classify(str(alien)) == ERROR_NOT_ARTIFACT


# -- pool modes and batch-level errors ------------------------------------

def test_parallel_groups_match_serial(corpus):
    directory, _ = corpus
    serial = run_triage(directory)
    threads = run_triage(directory, workers=3)
    key = lambda r: [(g.stack_hash, sorted(m.path for m in g.members))
                     for g in r.groups]
    assert key(threads) == key(serial)
    assert ({e.path for e in threads.errors}
            == {e.path for e in serial.errors})


def test_engine_rejects_bad_configuration():
    with pytest.raises(TriageError):
        TriageEngine(mode="fleet")
    with pytest.raises(TriageError):
        TriageEngine(workers=0)


def test_empty_and_missing_directories_are_batch_errors(tmp_path):
    with pytest.raises(TriageError):
        TriageEngine().triage_dir(str(tmp_path))  # nothing to triage
    with pytest.raises(TriageError):
        TriageEngine().triage_dir(str(tmp_path / "nope"))


def test_manifest_ingestion_resolves_relative_paths(corpus):
    directory, manifest = corpus
    report = TriageEngine(workers=1).triage(
        os.path.join(directory, "manifest.json"))
    assert report.scanned == len(manifest["artifacts"])
    assert report.triaged > 0


def test_single_artifact_triage(corpus):
    directory, manifest = corpus
    core = next(a["path"] for a in manifest["artifacts"]
                if a["kind"] == "core")
    report = TriageEngine(workers=1).triage(os.path.join(directory, core))
    assert report.scanned == report.triaged == 1
    assert len(report.groups) == 1


# -- the report product ----------------------------------------------------

def test_report_json_and_render(corpus, tmp_path):
    directory, manifest = corpus
    report = run_triage(directory)
    out = tmp_path / "report.json"
    report.dump_json(str(out))
    data = json.loads(out.read_text())
    assert data["scanned"] == len(manifest["artifacts"])
    assert data["groups"][0]["count"] == max(g.count
                                             for g in report.groups)
    assert {e["kind"] for e in data["errors"]} \
        == {e.kind for e in report.errors}
    text = report.render(top=5)
    assert "crash groups" in text
    assert report.groups[0].stack_hash in text
    assert "could not be triaged" in text


def test_exemplar_carries_fault_record_and_backtrace(corpus):
    directory, _ = corpus
    report = run_triage(directory)
    ex = report.groups[0].exemplar
    assert ex.arch in ("rmips", "rsparc", "rvax")
    assert ex.signo in (8, 10, 11) and ex.fault_pc is not None
    assert ex.tokens and ex.frames
    assert {"level", "proc", "pc", "offset", "corrupt"} \
        <= set(ex.frames[0])


# -- observability ---------------------------------------------------------

def test_triage_metrics_family(corpus):
    directory, manifest = corpus
    obs = Observability()
    TriageEngine(workers=1, obs=obs).triage_dir(directory)
    snap = obs.metrics.snapshot()
    assert snap["triage.batches"] == 1
    assert snap["triage.artifacts"] == len(manifest["artifacts"])
    assert snap["triage.cores"] > 0 and snap["triage.recordings"] > 0
    assert snap["triage.errors"] == len(
        [a for a in manifest["artifacts"] if a["family"] is None])
    assert snap["triage.errors.diverged"] == 1
    assert snap["triage.groups"] == len(manifest["families"])
