"""One seeded corpus, built once, shared by the whole triage suite.

Building artifacts means compiling and crashing real programs, so the
suite shares a single session-scoped corpus: three ISAs x three crash
families x two duplicates (cores + recordings) plus the full corrupt
matrix — big enough to exercise dedup across architectures, small
enough to build in seconds.
"""

import importlib.util
import pathlib

import pytest

_TOOL = (pathlib.Path(__file__).resolve().parent.parent.parent
         / "tools" / "make_crash_corpus.py")

CORPUS_ARCHES = ["rmips", "rsparc", "rvax"]
CORPUS_DUPES = 2


def corpus_tool():
    spec = importlib.util.spec_from_file_location("make_crash_corpus",
                                                  _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="session")
def corpus(tmp_path_factory):
    """``(directory, manifest)`` for the shared seeded corpus."""
    outdir = tmp_path_factory.mktemp("triage-corpus")
    manifest = corpus_tool().build_corpus(
        str(outdir), arches=CORPUS_ARCHES, dupes=CORPUS_DUPES,
        corrupt=True)
    return str(outdir), manifest
