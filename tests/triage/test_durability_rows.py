"""Triage over damaged and salvaged artifacts: every degenerate file
yields a *typed* row — zero-length, mid-magic, magic-only — and a
truncated-but-salvageable artifact triages as a normal record whose
row says ``salvaged``.  The batch never aborts, whatever the bytes.
"""

import os
import shutil

from repro.machines.core import MAGIC as CORE_MAGIC
from repro.obs import Observability
from repro.trace.format import TRACE_MAGIC
from repro.triage import (ERROR_CORRUPT_CORE, ERROR_CORRUPT_RECORDING,
                          ERROR_NOT_ARTIFACT, TriageEngine, classify,
                          triage_artifact)


def _healthy(manifest, kind):
    return next(a["path"] for a in manifest["artifacts"]
                if a["family"] and a["kind"] == kind)


# -- degenerate files: typed rows, never an exception ----------------------

def test_zero_length_file_is_not_an_artifact(tmp_path):
    for name in ("empty.core", "empty.ldbrec"):
        path = tmp_path / name
        path.write_bytes(b"")
        row = triage_artifact(str(path))
        assert row["ok"] is False
        assert row["kind"] == ERROR_NOT_ARTIFACT
        assert "0 bytes" in row["message"]


def test_mid_magic_truncation_is_not_an_artifact(tmp_path):
    # cut *inside* the magic: too short to identify, so it types as
    # alien rather than corrupt-<kind>
    for magic in (CORE_MAGIC, TRACE_MAGIC):
        path = tmp_path / ("half-%s.bin" % magic[:2].decode())
        path.write_bytes(magic[:2])
        assert classify(str(path)) == ERROR_NOT_ARTIFACT
        row = triage_artifact(str(path))
        assert row["ok"] is False and row["kind"] == ERROR_NOT_ARTIFACT


def test_magic_only_file_is_corrupt_of_its_kind(tmp_path):
    # the full magic identifies the artifact kind; the missing header
    # makes it corrupt-<kind> with an honest "truncated" message — not
    # "bad magic", not not-an-artifact, and never a raw exception
    cases = [(CORE_MAGIC, ERROR_CORRUPT_CORE),
             (TRACE_MAGIC, ERROR_CORRUPT_RECORDING)]
    for magic, want in cases:
        path = tmp_path / ("just-magic-%s.bin" % want)
        path.write_bytes(magic)
        row = triage_artifact(str(path))
        assert row["ok"] is False and row["kind"] == want, row
        assert "truncated" in row["message"]


def test_magic_plus_partial_header_is_corrupt(tmp_path):
    for magic, want in [(CORE_MAGIC, ERROR_CORRUPT_CORE),
                        (TRACE_MAGIC, ERROR_CORRUPT_RECORDING)]:
        path = tmp_path / ("cut-header-%s.bin" % want)
        path.write_bytes(magic + b"\x01")
        row = triage_artifact(str(path))
        assert row["ok"] is False and row["kind"] == want, row


# -- salvaged artifacts triage as first-class rows -------------------------

def test_truncated_recording_triages_salvaged(corpus, tmp_path):
    directory, manifest = corpus
    source = os.path.join(directory, _healthy(manifest, "recording"))
    raw = open(source, "rb").read()
    cut = tmp_path / "tail-torn.ldbrec"
    cut.write_bytes(raw[:-1])  # the END block is damaged: salvage path
    row = triage_artifact(str(cut))
    assert row["ok"] is True, row
    assert row["salvaged"] is True
    assert row["artifact"] == "recording"
    assert row["stack_hash"]


def test_pristine_rows_are_not_salvaged(corpus):
    directory, manifest = corpus
    row = triage_artifact(os.path.join(directory,
                                       _healthy(manifest, "recording")))
    assert row["ok"] is True and row["salvaged"] is False


def test_truncated_core_rows_stay_typed(corpus, tmp_path):
    # a core's symbol table serializes last, so tail truncation usually
    # costs the table and the salvaged open refuses without table_ps —
    # the row must then be corrupt-core, never an unhandled exception
    directory, manifest = corpus
    raw = open(os.path.join(directory,
                            _healthy(manifest, "core")), "rb").read()
    for fraction in (0.95, 0.75, 0.5, 0.25, 0.05):
        path = tmp_path / ("core-%d.core" % (fraction * 100))
        path.write_bytes(raw[:int(len(raw) * fraction)])
        row = triage_artifact(str(path))
        if row["ok"]:
            assert row["salvaged"] is True
        else:
            assert row["kind"] == ERROR_CORRUPT_CORE


def test_salvaged_member_dedups_into_its_crash_group(corpus, tmp_path):
    """A fleet where one node's disk tore the recording tail: the
    salvaged copy lands in the same crash group as its healthy twin,
    and the batch counts it in ``triage.salvaged``."""
    directory, manifest = corpus
    name = _healthy(manifest, "recording")
    batch = tmp_path / "batch"
    batch.mkdir()
    shutil.copy(os.path.join(directory, name), str(batch / name))
    raw = open(os.path.join(directory, name), "rb").read()
    (batch / ("torn-" + name)).write_bytes(raw[:-1])
    obs = Observability()
    report = TriageEngine(workers=1, obs=obs).triage_dir(str(batch))
    assert report.scanned == 2 and report.triaged == 2
    group = report.group_of(str(batch / name))
    assert group is report.group_of(str(batch / ("torn-" + name)))
    flags = {os.path.basename(m.path): m.salvaged for m in group.members}
    assert flags == {name: False, "torn-" + name: True}
    assert obs.metrics.get("triage.salvaged") == 1


def test_degenerate_zoo_never_aborts_the_batch(corpus, tmp_path):
    directory, manifest = corpus
    zoo = tmp_path / "zoo"
    zoo.mkdir()
    (zoo / "empty.core").write_bytes(b"")
    (zoo / "magic-only.core").write_bytes(CORE_MAGIC)
    (zoo / "magic-only.ldbrec").write_bytes(TRACE_MAGIC)
    (zoo / "half-magic.bin").write_bytes(TRACE_MAGIC[:2])
    name = _healthy(manifest, "recording")
    shutil.copy(os.path.join(directory, name), str(zoo / name))
    raw = open(os.path.join(directory, name), "rb").read()
    (zoo / "torn.ldbrec").write_bytes(raw[:-1])
    report = TriageEngine(workers=1).triage_dir(str(zoo))
    assert report.scanned == 6
    assert report.triaged == 2  # the healthy copy and the salvaged one
    kinds = sorted(e.kind for e in report.errors)
    assert kinds == sorted([ERROR_NOT_ARTIFACT, ERROR_NOT_ARTIFACT,
                            ERROR_CORRUPT_CORE, ERROR_CORRUPT_RECORDING])


# -- the report file itself is written atomically --------------------------

def test_dump_json_is_atomic_and_leaves_no_temp(corpus, tmp_path):
    directory, _ = corpus
    report = TriageEngine(workers=1).triage_dir(directory)
    out = tmp_path / "report.json"
    report.dump_json(str(out))
    assert out.exists()
    leftovers = [n for n in os.listdir(str(tmp_path)) if ".ldbtmp." in n]
    assert leftovers == []
    # salvaged is part of the serialized row schema
    import json
    data = json.loads(out.read_text())
    assert "salvaged" in data["groups"][0]["exemplar"]
