"""Stack-hash normalization: the crash-identity rules, unit-tested."""

from repro.triage import (CORRUPT_TOKEN, MAX_HASH_FRAMES, fold_api_frames,
                          fold_frame, hash_backtrace, stack_hash)


def frame(proc="f", pc=0x100, offset=0x10, corrupt=False, level=0):
    return {"level": level, "proc": proc, "pc": pc, "offset": offset,
            "corrupt": corrupt, "file": "f.c", "line": 1}


def test_fold_frame_is_function_plus_offset():
    assert fold_frame("tick", 0x2040, 0x2000) == "tick+0x40"
    assert fold_frame("tick", 0x2000, 0x2000) == "tick+0x0"


def test_fold_frame_without_symbol_keeps_raw_address():
    assert fold_frame(None, 0xdead, None) == "0xdead"


def test_fold_api_frames_uses_offset_and_proc():
    tokens = fold_api_frames([frame("poke", 0x2044, 0x4),
                              frame("main", 0x20b0, 0x30, level=1)])
    assert tokens == ["poke+0x4", "main+0x30"]


def test_fold_api_frames_raw_pc_when_unsymbolized():
    tokens = fold_api_frames([frame("0x7fffffff", 0x7fffffff, None)])
    assert tokens == ["0x7fffffff"]


def test_corrupt_frame_folds_to_token_and_stops_the_fold():
    tokens = fold_api_frames([frame("poke", 0x2044, 0x4),
                              frame(corrupt=True, level=1),
                              frame("junk", 0x666, 0x6, level=2)])
    assert tokens == ["poke+0x4", CORRUPT_TOKEN]


def test_hash_depth_cap_merges_recursion_tails():
    deep = [frame("r", 0x2000 + i, i, level=i) for i in range(40)]
    deeper = deep + [frame("r", 0x3000, 0, level=40)]
    assert (fold_api_frames(deep) == fold_api_frames(deeper)
            and len(fold_api_frames(deep)) == MAX_HASH_FRAMES)


def test_hash_is_stable_and_distinguishes_identity_parts():
    tokens = ["poke+0x4", "main+0x30"]
    base = stack_hash("rmips", 11, 2, tokens)
    assert base == stack_hash("rmips", 11, 2, list(tokens))
    assert len(base) == 16 and int(base, 16) >= 0
    # arch, signal, code, and tokens each split the identity
    assert base != stack_hash("rsparc", 11, 2, tokens)
    assert base != stack_hash("rmips", 8, 2, tokens)
    assert base != stack_hash("rmips", 11, 0, tokens)
    assert base != stack_hash("rmips", 11, 2, tokens[:1])


def test_hash_backtrace_returns_hash_and_tokens():
    digest, tokens = hash_backtrace("rmips", 11, 2,
                                    [frame("poke", 0x2044, 0x4)])
    assert tokens == ["poke+0x4"]
    assert digest == stack_hash("rmips", 11, 2, tokens)
