"""Triage's three doors — API verbs, the ldb CLI, and the gateway op —
plus the `fault` verb and extended backtrace fields they ride on."""

import io
import json
import os

import pytest

from repro.ldb import Ldb
from repro.ldb.api import DebugAPI
from repro.ldb.cli import Cli, main as cli_main
from repro.serve import RemoteError

from tests.serve.helpers import server


def first_core(corpus):
    directory, manifest = corpus
    name = next(a["path"] for a in manifest["artifacts"]
                if a["kind"] == "core")
    return os.path.join(directory, name)


# -- the DebugAPI additions ------------------------------------------------

def test_fault_verb_on_a_core(corpus):
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.open_core(first_core(corpus))
    fault = DebugAPI(ldb).execute("fault")
    assert fault["arch"] == target.arch_name
    assert fault["signo"] == target.signo and fault["signo"] != 0
    assert fault["code"] == target.sigcode
    assert fault["fault_pc"] == target.core.fault_pc
    assert fault["icount"] == target.core.icount
    assert fault["post_mortem"] is True and fault["replaying"] is False


def test_fault_verb_on_a_recording(corpus):
    directory, manifest = corpus
    name = next(a["path"] for a in manifest["artifacts"]
                if a["kind"] == "recording")
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.open_recording(os.path.join(directory, name))
    fault = DebugAPI(ldb).execute("fault")
    assert fault["replaying"] is True
    assert fault["signo"] == target.signo != 0
    assert fault["icount"] == target.recording.final_icount
    assert fault["fault_pc"] is not None


def test_backtrace_frames_carry_pc_offset_corrupt(corpus):
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.open_core(first_core(corpus))
    frames = DebugAPI(ldb).execute("backtrace")["frames"]
    assert frames
    for row in frames:
        assert {"level", "proc", "file", "line", "pc", "offset",
                "corrupt"} <= set(row)
        assert row["corrupt"] is False
        if row["offset"] is not None:
            hit = target.linker.proc_containing(row["pc"])
            assert row["pc"] - hit[0] == row["offset"]


def test_fault_is_a_listed_nonmutating_verb():
    api = DebugAPI(Ldb(stdout=io.StringIO()))
    assert "fault" in api.commands()
    from repro.ldb.api import MUTATING
    assert "fault" not in MUTATING and "backtrace" not in MUTATING


# -- the CLI ---------------------------------------------------------------

def test_ldb_triage_subcommand(corpus, tmp_path, capsys):
    directory, manifest = corpus
    out_json = tmp_path / "report.json"
    rc = cli_main(["triage", directory, "--workers", "2",
                   "--json", str(out_json)])
    assert rc == 0
    shown = capsys.readouterr().out
    assert "crash groups" in shown and "could not be triaged" in shown
    data = json.loads(out_json.read_text())
    assert data["scanned"] == len(manifest["artifacts"])


def test_ldb_triage_subcommand_batch_error(tmp_path, capsys):
    rc = cli_main(["triage", str(tmp_path / "missing")])
    assert rc == 2
    assert "ldb triage:" in capsys.readouterr().err


def test_repl_triage_verb(corpus):
    directory, manifest = corpus
    out = io.StringIO()
    cli = Cli(stdin=io.StringIO(), stdout=out)
    cli.command("triage %s 2" % directory)
    shown = out.getvalue()
    assert "crash groups" in shown
    # the REPL shares the debugger's registry: stats shows triage.*
    out.truncate(0), out.seek(0)
    cli.command("stats")
    assert "triage.batches" in out.getvalue()


def test_repl_triage_verb_usage_and_errors(tmp_path):
    out = io.StringIO()
    cli = Cli(stdin=io.StringIO(), stdout=out)
    cli.command("triage")
    assert "usage: triage" in out.getvalue()
    out.truncate(0), out.seek(0)
    cli.command("triage %s" % (tmp_path / "missing"))
    assert "ldb: triage:" in out.getvalue()


# -- the gateway op --------------------------------------------------------

def test_gateway_triage_op(corpus):
    directory, manifest = corpus
    with server() as srv:
        client = srv.client()
        report = client.triage(directory, workers=2)
        assert report["scanned"] == len(manifest["artifacts"])
        assert report["triaged"] > 0 and report["groups"]
        kinds = {e["kind"] for e in report["errors"]}
        assert "diverged" in kinds and "corrupt-core" in kinds
        # the batch's metrics land in the server's shared registry
        stats = client.stats()
        assert srv.manager.obs.metrics.get("triage.batches") == 1
        assert stats  # serve.* family still answers beside it


def test_gateway_triage_typed_errors():
    with server() as srv:
        client = srv.client()
        with pytest.raises(RemoteError) as err:
            client.triage("")  # no path at all
        assert err.value.code == "ERR_TRIAGE"
        with pytest.raises(RemoteError) as err:
            client.triage("/nonexistent/corpus")
        assert err.value.code == "ERR_TRIAGE"
        with pytest.raises(RemoteError) as err:
            client.triage("/tmp", mode="fleet")
        assert err.value.code == "ERR_TRIAGE"
