"""CheckpointRing unit tests: ordering, base retention, FIFO eviction,
dedup lookup, and the forget-the-future policy."""

import pytest

from repro.timetravel import Checkpoint, CheckpointRing


def ck(cid, icount, kind="auto"):
    return Checkpoint(cid, icount, pc=0x1000 + icount, sp=None,
                      signo=5, sigcode=0, kind=kind)


class TestOrdering:
    def test_entries_stay_sorted_by_icount(self):
        ring = CheckpointRing(8)
        for cid, icount in ((1, 50), (2, 10), (3, 30)):
            ring.add(ck(cid, icount))
        assert [c.icount for c in ring.entries] == [10, 30, 50]

    def test_before_is_newest_first_and_strict(self):
        ring = CheckpointRing(8)
        for cid, icount in ((1, 10), (2, 20), (3, 30)):
            ring.add(ck(cid, icount))
        assert [c.icount for c in ring.before(30)] == [20, 10]
        assert ring.before(10) == []

    def test_at_or_before_is_inclusive(self):
        ring = CheckpointRing(8)
        ring.add(ck(1, 10))
        ring.add(ck(2, 20))
        assert ring.at_or_before(20).icount == 20
        assert ring.at_or_before(19).icount == 10
        assert ring.at_or_before(9) is None

    def test_find_exact(self):
        ring = CheckpointRing(8)
        ring.add(ck(1, 10))
        assert ring.find(10).cid == 1
        assert ring.find(11) is None


class TestEviction:
    def test_base_is_never_evicted(self):
        ring = CheckpointRing(3)
        ring.add(ck(0, 5, kind="stop"))  # the base
        evicted = []
        for cid in range(1, 6):
            evicted.extend(ring.add(ck(cid, cid * 100)))
        assert len(ring) == 3
        assert ring.entries[0].icount == 5  # still the base
        assert [c.cid for c in evicted] == [1, 2, 3]  # oldest non-base first

    def test_add_reports_what_it_evicted(self):
        ring = CheckpointRing(2)
        ring.add(ck(0, 5))
        assert ring.add(ck(1, 10)) == []
        evicted = ring.add(ck(2, 20))
        assert [c.cid for c in evicted] == [1]

    def test_capacity_must_fit_base_plus_one(self):
        with pytest.raises(ValueError):
            CheckpointRing(1)


class TestDropFuture:
    def test_removes_only_later_entries(self):
        ring = CheckpointRing(8)
        for cid, icount in ((1, 10), (2, 20), (3, 30)):
            ring.add(ck(cid, icount))
        stale = ring.drop_future(20)
        assert [c.icount for c in stale] == [30]
        assert [c.icount for c in ring.entries] == [10, 20]

    def test_noop_when_nothing_is_later(self):
        ring = CheckpointRing(8)
        ring.add(ck(1, 10))
        assert ring.drop_future(10) == []
        assert len(ring) == 1
