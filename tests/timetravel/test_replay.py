"""Acceptance tests for the time-travel engine: recording, the reverse
commands, byte-identical landings on every architecture, survival over
a faulty wire, and graceful degradation against a legacy nub.

The driver program hits a breakpoint in ``poke`` and then dies of
SIGSEGV, so "reverse-continue from the fault" has a well-defined right
answer: the ``poke`` stop."""

import io

import pytest

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.ldb.target import TargetError
from repro.machines import ARCH_NAMES, Process, SIGSEGV, SIGTRAP
from repro.nub import (
    FaultInjectingChannel,
    FaultSchedule,
    Listener,
    Nub,
    NubRunner,
    RetryPolicy,
    connect,
)

BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""

_EXES = {}


def boom_exe(arch):
    if arch not in _EXES:
        _EXES[arch] = compile_and_link({"boom.c": BOOM}, arch, debug=True)
    return _EXES[arch]


def record_session(arch, interval=37, capacity=32, **load_kw):
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(boom_exe(arch), **load_kw)
    ldb.enable_time_travel(interval=interval, capacity=capacity)
    ldb.break_at_function("poke")
    return ldb, target


def machine_state(target):
    p = target.process
    return (list(p.cpu.regs), list(p.cpu.fregs), p.cpu.pc, p.cpu.icount,
            bytes(p.mem.bytes), p.output())


class TestReverseContinue:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_lands_on_prior_hit_byte_identical(self, arch):
        # run to the breakpoint, then on to the fault, then rewind
        ldb, t = record_session(arch)
        assert ldb.run_to_stop() == "stopped" and t.at_breakpoint()
        hit_icount = t.current_icount()
        assert ldb.run_to_stop() == "stopped"
        assert t.signo == SIGSEGV
        assert t.current_icount() > hit_icount

        hit = ldb.reverse_continue()
        assert hit.icount == hit_icount
        assert t.at_breakpoint()
        assert t.signo == SIGTRAP and t.sigcode == 0

        # the landing must be byte-identical to a forward run that
        # simply stopped at the same hit (recording identically)
        ldb2, t2 = record_session(arch)
        assert ldb2.run_to_stop() == "stopped" and t2.at_breakpoint()
        assert machine_state(t) == machine_state(t2)

    def test_repeated_hits_rewind_one_at_a_time(self):
        ldb, t = record_session("rmips", interval=40)
        ldb.break_at_line("boom.c", 5)  # the loop body: 6 hits
        icounts = []
        while True:
            ldb.run_to_stop()
            if t.signo != SIGTRAP:
                break
            icounts.append(t.current_icount())
        assert len(icounts) >= 3
        # reverse-continue walks the hits backwards, newest first
        assert ldb.reverse_continue().icount == icounts[-1]
        assert ldb.reverse_continue().icount == icounts[-2]
        assert ldb.reverse_continue().icount == icounts[-3]

    def test_without_earlier_hit_is_a_clear_error(self):
        ldb, t = record_session("rmips")
        with pytest.raises(TargetError):
            ldb.reverse_continue()  # still at the entry pause
        # and the failed search leaves the target where it was
        assert t.state == "stopped"
        assert ldb.run_to_stop() == "stopped" and t.at_breakpoint()


class TestReverseStepNextGoto:
    def test_reverse_steps_move_strictly_backwards(self):
        ldb, t = record_session("rmips")
        ldb.run_to_stop()
        ldb.run_to_stop()  # the fault
        rc = ldb.reverse_continue()
        assert ldb.evaluate("g") == 15  # 0+1+..+5: the loop finished
        rs = ldb.reverse_step()
        assert rs.icount < rc.icount
        rn = ldb.reverse_next()
        assert rn.icount < rs.icount
        proc, _file, _line = ldb.where_am_i()
        assert proc in ("main", "poke")

    def test_goto_travels_both_directions(self):
        ldb, t = record_session("rmips")
        ldb.run_to_stop()
        hit_icount = t.current_icount()
        base = t.replay.ring.entries[0]
        assert ldb.goto_icount(base.icount) == "stopped"
        assert t.current_icount() == base.icount
        # forward again, landing on the very same breakpoint stop
        assert ldb.goto_icount(hit_icount) == "stopped"
        assert t.current_icount() == hit_icount
        assert t.at_breakpoint() and t.sigcode == 0

    def test_goto_before_history_is_an_error(self):
        ldb, t = record_session("rmips")
        ldb.run_to_stop()
        base = t.replay.ring.entries[0]
        with pytest.raises(TargetError):
            ldb.goto_icount(base.icount - 1)


class TestRecording:
    def test_auto_checkpoints_at_interval_boundaries(self):
        ldb, t = record_session("rmips", interval=25)
        ldb.run_to_stop()
        ring = t.replay.ring
        kinds = [ck.kind for ck in ring.entries]
        assert "auto" in kinds
        assert kinds[0] == "stop"  # the base
        icounts = [ck.icount for ck in ring.entries]
        assert icounts == sorted(icounts)
        # the automatic ones sit exactly on interval boundaries
        base = ring.entries[0].icount
        for ck in ring.entries:
            if ck.kind == "auto":
                assert (ck.icount - base) % 25 == 0

    def test_eviction_keeps_base_and_releases_nub_side(self):
        ldb, t = record_session("rmips", interval=10, capacity=4)
        ldb.enable_time_travel()  # idempotent: same controller
        ldb.run_to_stop()
        ring = t.replay.ring
        assert len(ring) == 4
        assert ring.entries[0].kind == "stop"  # the base survived
        # evicted checkpoints were dropped nub-side too
        assert len(t.nub.checkpoints) == len(ring)

    def test_forward_resume_after_rewind_drops_the_future(self):
        ldb, t = record_session("rmips", interval=30)
        ldb.run_to_stop()
        ldb.run_to_stop()  # the fault
        ldb.reverse_continue()
        here = t.current_icount()
        assert all(ck.icount <= here for ck in t.replay.ring.entries) is False
        ldb.run_to_stop()  # re-executes towards the fault
        # recording again from the hit: nothing stale beyond the new stops
        assert len(t.nub.checkpoints) == len(t.replay.ring)


class TestFaultySession:
    def test_reverse_continue_over_a_lossy_wire(self):
        exe = boom_exe("rmips")
        listener = Listener()
        nub = Nub(Process(exe), listener=listener, accept_timeout=30.0)
        runner = NubRunner(nub).start()
        port = listener.port
        schedule = FaultSchedule(seed=11, drop=0.04, corrupt=0.04, limit=60)

        def connector():
            return FaultInjectingChannel(connect("127.0.0.1", port), schedule)

        ldb = Ldb(stdout=io.StringIO())
        t = ldb.adopt_channel(connector(), loader_table_ps(exe),
                              connector=connector)
        t.session.reply_timeout = 0.5
        t.session.policy = RetryPolicy(max_attempts=10, base_delay=0.01,
                                       max_delay=0.05, seed=1)
        ldb.enable_time_travel(interval=37)
        ldb.break_at_function("poke")
        assert ldb.run_to_stop() == "stopped" and t.at_breakpoint()
        hit_icount = t.current_icount()
        ldb.run_to_stop()
        assert t.signo == SIGSEGV
        hit = ldb.reverse_continue()
        assert hit.icount == hit_icount
        assert t.at_breakpoint()
        # the state the lossy wire delivered matches a clean recording
        ldb2, t2 = record_session("rmips")
        ldb2.run_to_stop()
        assert (list(nub.process.cpu.regs), nub.process.cpu.pc,
                nub.process.cpu.icount, bytes(nub.process.mem.bytes)) == \
               (list(t2.process.cpu.regs), t2.process.cpu.pc,
                t2.process.cpu.icount, bytes(t2.process.mem.bytes))
        t.kill()
        runner.join()


class TestLegacyNub:
    def test_reverse_commands_degrade_with_a_clear_error(self):
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.load_program(boom_exe("rmips"), timetravel_nub=False)
        with pytest.raises(TargetError):
            ldb.enable_time_travel()
        with pytest.raises(TargetError):
            ldb.reverse_continue()  # never enabled

    def test_forward_debugging_is_unchanged(self):
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.load_program(boom_exe("rmips"), timetravel_nub=False)
        ldb.break_at_function("poke")
        assert ldb.run_to_stop() == "stopped" and t.at_breakpoint()
        # the handshake negotiated the feature off
        assert t.session.timetravel_active is False
        assert ldb.evaluate("g") == 15
        ldb.run_to_stop()
        assert t.signo == SIGSEGV

    def test_session_can_opt_out_of_the_feature(self):
        # a modern nub, but the debugger declines the extension: the
        # session must refuse reverse commands *before* sending anything
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.load_program(boom_exe("rmips"))
        t.session.timetravel_active = False  # as if negotiated off
        with pytest.raises(TargetError):
            t.take_checkpoint()
