"""The property time travel rests on: the simulated machines are
deterministic, so snapshot -> run k -> restore -> run k reaches a
byte-identical state — registers, memory, output, everything — on
every target architecture."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.driver import compile_and_link
from repro.machines import ARCH_NAMES, FaultEvent, Process, SIGTRAP

WORK = """int a[20];
void fill(int n) {
    int i;
    a[0] = a[1] = 1;
    for (i = 2; i < n; i++)
        a[i] = a[i-1] + a[i-2];
}
int main(void) {
    int j;
    fill(18);
    for (j = 0; j < 18; j++)
        printf("%d ", a[j]);
    printf("\\n");
    return 0;
}
"""

_EXES = {}


def _exe(arch):
    if arch not in _EXES:
        _EXES[arch] = compile_and_link({"work.c": WORK}, arch, debug=True)
    return _EXES[arch]


def _start(arch):
    """A process just past the entry pause."""
    p = Process(_exe(arch), stdout=io.StringIO())
    event = p.run_until_event()
    assert isinstance(event, FaultEvent) and event.signo == SIGTRAP
    p.cpu.pc = event.pc + p.arch.noop_advance
    return p


def _advance(p, k):
    """Retire up to k more instructions (fewer only if the program
    exits first — which is itself deterministic)."""
    bound = p.cpu.icount + k
    while p.exited is None and p.cpu.icount < bound:
        p.run_until_event(stop_at_icount=bound)


def _state(p):
    return (list(p.cpu.regs), list(p.cpu.fregs), p.cpu.pc, p.cpu.icount,
            bytes(p.mem.bytes), p.output(), p.exited)


@settings(max_examples=40, deadline=None)
@given(arch=st.sampled_from(ARCH_NAMES),
       lead=st.integers(0, 400),
       k=st.integers(1, 600))
def test_snapshot_replay_is_byte_identical(arch, lead, k):
    p = _start(arch)
    _advance(p, lead)
    snap = p.snapshot()
    _advance(p, k)
    first = _state(p)
    p.restore(snap)
    _advance(p, k)
    assert _state(p) == first


@settings(max_examples=10, deadline=None)
@given(arch=st.sampled_from(ARCH_NAMES), lead=st.integers(0, 300))
def test_restore_is_repeatable(arch, lead):
    """One snapshot supports any number of replays (the reverse search
    restores the same checkpoint repeatedly)."""
    p = _start(arch)
    _advance(p, lead)
    snap = p.snapshot()
    results = []
    for _ in range(3):
        _advance(p, 250)
        results.append(_state(p))
        p.restore(snap)
    assert results[0] == results[1] == results[2]
