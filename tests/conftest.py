"""Shared fixtures for the test suite."""

import io

import pytest

from repro.postscript import Interp, new_interp


class CapturingInterp:
    """An interpreter bundled with its captured output stream."""

    def __init__(self, interp: Interp, out: io.StringIO):
        self.interp = interp
        self.out = out

    def run(self, source: str) -> str:
        """Run source and return everything printed since the last call."""
        before = self.out.tell()
        self.interp.run(source)
        self.out.seek(before)
        return self.out.read()

    def eval(self, source: str):
        """Run source and return the single value left on the stack."""
        self.interp.run(source)
        return self.interp.pop()


@pytest.fixture
def ps():
    """A fresh interpreter with prelude, capturing stdout."""
    out = io.StringIO()
    return CapturingInterp(new_interp(stdout=out), out)


@pytest.fixture
def bare_ps():
    """A fresh interpreter without the prelude (standard operators only)."""
    out = io.StringIO()
    return CapturingInterp(new_interp(stdout=out, prelude=False), out)
