"""The ExecutionEngine API and the block/step equivalence property.

The block engine's whole contract is that its architectural state is
byte-identical to the reference step engine: same stops, same
registers, same memory, same faults, same icount — including across
mid-run icount stops, breakpoint plants into decoded code, and
self-modifying stores.  These tests enforce that contract on every
target architecture.
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cc.driver import compile_and_link
from repro.machines import (
    BlockEngine,
    ENGINE_ENV,
    ExitEvent,
    FaultEvent,
    IcountStopEvent,
    Process,
    SIGTRAP,
    StepEngine,
    StopSpec,
    engine_names,
    get_arch,
    make_engine,
)
from repro.machines.cpu import Cpu
from repro.machines.isa import Insn, Label

from ..cc.helpers import ALL_ARCHES
from .helpers import build

# -- the equivalence harness --------------------------------------------------


def _snap(process, event):
    """Everything architecturally observable after one stop."""
    cpu = process.cpu
    return {
        "event": type(event).__name__,
        "signo": getattr(event, "signo", None),
        "code": getattr(event, "code", None),
        "event_pc": getattr(event, "pc", None),
        "status": getattr(event, "status", None),
        "pc": cpu.pc,
        "icount": cpu.icount,
        "regs": list(cpu.regs),
        "fregs": list(cpu.fregs),
        "cc": (cpu.cc_lt, cpu.cc_eq, cpu.cc_ltu),
        "pending_load": cpu._pending_load,
        "mem": bytes(process.mem.bytes),
    }


def _run_trace(exe, engine, splits=(), hook=None):
    """Run to completion under one engine, stopping at each icount in
    ``splits`` and snapshotting; returns the list of snapshots."""
    process = Process(exe, engine=engine)
    event = process.run_until_event()
    assert isinstance(event, FaultEvent) and event.signo == SIGTRAP
    process.cpu.pc = event.pc + exe.arch.noop_advance
    snaps = []
    for at in splits:
        event = process.run_until_event(stop_at_icount=at)
        if hook is not None:
            hook(process, event)
        snaps.append(_snap(process, event))
        if isinstance(event, ExitEvent):
            return snaps
    event = process.run_until_event()
    snaps.append(_snap(process, event))
    return snaps


def assert_equivalent(exe, splits=(), hook=None):
    stepped = _run_trace(exe, "step", splits, hook)
    blocked = _run_trace(exe, "block", splits, hook)
    assert len(stepped) == len(blocked)
    for index, (a, b) in enumerate(zip(stepped, blocked)):
        for key in a:
            assert a[key] == b[key], \
                "stop %d: %s differs between engines" % (index, key)
    return stepped


# -- deterministic equivalence on every ISA ----------------------------------

_WORKLOAD = """
int buf[16];
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) {
    int i, s = 0;
    for (i = 0; i < 40; i++) {
        s += i * 3 - (s >> 2);
        buf[i & 15] = s;
    }
    s += fib(8);
    printf("%d\\n", s);
    return s & 0xff;
}
"""


class TestEquivalenceAllArches:
    @pytest.mark.parametrize("arch", ALL_ARCHES)
    def test_full_run_and_mid_run_stops(self, arch):
        exe = compile_and_link({"t.c": _WORKLOAD}, arch, debug=True)
        # split points land mid-loop and mid-recursion
        assert_equivalent(exe, splits=(50, 137, 800))

    @pytest.mark.parametrize("arch", ALL_ARCHES)
    def test_fault_is_identical(self, arch):
        source = "int main(void) { return *(int *)0xEE0000; }\n"
        exe = compile_and_link({"t.c": source}, arch, debug=True)
        snaps = assert_equivalent(exe)
        assert snaps[-1]["event"] == "FaultEvent"

    @pytest.mark.parametrize("arch", ALL_ARCHES)
    def test_breakpoint_plant_and_unplant_mid_run(self, arch):
        exe = compile_and_link({"t.c": _WORKLOAD}, arch, debug=True)
        target = exe.symbols["_fib"]
        machine = get_arch(arch)

        def make_hook():
            state = {"phase": 0}

            def hook(process, event):
                if state["phase"] == 0:
                    # mid-loop stop: plant a breakpoint on fib — a
                    # write into code the block engine may already
                    # have decoded
                    state["saved"] = bytes(process.mem.read_bytes(
                        target, len(machine.break_bytes)))
                    process.mem.write_bytes(target, machine.break_bytes)
                    state["phase"] = 1
                elif state["phase"] == 1:
                    # the trap fired: unplant and re-run the original
                    # instruction, exactly like the nub's CONT path
                    assert getattr(event, "signo", None) == SIGTRAP
                    process.mem.write_bytes(target, state["saved"])
                    process.cpu.pc = target
                    state["phase"] = 2

            return hook

        splits = (60, 10_000_000)
        stepped = _run_trace(exe, "step", splits, make_hook())
        blocked = _run_trace(exe, "block", splits, make_hook())
        assert len(stepped) == len(blocked)
        assert stepped[1]["signo"] == SIGTRAP  # the plant was actually hit
        for index, (a, b) in enumerate(zip(stepped, blocked)):
            for key in a:
                assert a[key] == b[key], \
                    "stop %d: %s differs between engines" % (index, key)


# -- hypothesis: random programs, random split points ------------------------


def _expr(depth):
    if depth <= 0:
        return st.one_of(st.integers(-50, 50).map(str),
                         st.sampled_from(["i", "s"]))
    smaller = _expr(depth - 1)
    return st.one_of(
        smaller,
        st.tuples(st.sampled_from(["+", "-", "*", "&", "|", "^"]),
                  smaller, smaller).map(
                      lambda t: "(%s %s %s)" % (t[1], t[0], t[2])),
        st.tuples(smaller, st.integers(1, 30)).map(
            lambda t: "(%s / %d)" % t),
        st.tuples(smaller, st.integers(0, 7)).map(
            lambda t: "(%s >> %d)" % t),
    )


def _program(expression, iterations):
    return """
    int buf[8];
    int main(void) {
        int i, s = 7;
        for (i = 0; i < %d; i++) {
            s += %s;
            buf[i & 7] = s;
        }
        printf("%%d\\n", s);
        return s & 0xff;
    }
    """ % (iterations, expression)


class TestEquivalenceProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(arch=st.sampled_from(ALL_ARCHES),
           expression=_expr(2),
           iterations=st.integers(1, 30),
           split=st.integers(1, 2000))
    def test_block_equals_step(self, arch, expression, iterations, split):
        exe = compile_and_link({"t.c": _program(expression, iterations)},
                               arch, debug=True)
        assert_equivalent(exe, splits=(split,))


# -- self-modifying code: a guest store into decoded code --------------------


class TestSelfModifyingCode:
    def _program(self):
        """rmips: a store overwrites an instruction *later in the same
        basic block*, so the block engine has already decoded (and is
        mid-dispatch through) the stale bytes when the store retires."""
        arch = get_arch("rmips")
        replacement = arch.encode(Insn("addi", rd=4, rs=0, imm=99))
        word = int.from_bytes(replacement, arch.byteorder)
        text = [
            Label("__start"),
            Insn("lui", rd=8, imm=0),               # r8 = patchee (pass 2)
            Insn("ori", rd=8, rs=8, imm=0),
            Insn("lui", rd=9, imm=(word >> 16) & 0xFFFF),
            Insn("ori", rd=9, rs=9, imm=word & 0xFFFF),
            Insn("sw", rd=9, rs=8, imm=0),          # patch the code
            Label("patchee"),
            Insn("addi", rd=4, rs=0, imm=1),        # stale: exit(1)
            Insn("syscall", imm=1),
        ]
        exe = build("rmips", text)
        # second pass: now that the layout is known, point r8 at patchee
        patchee = exe.entry + 5 * 4
        text[1] = Insn("lui", rd=8, imm=(patchee >> 16) & 0xFFFF)
        text[2] = Insn("ori", rd=8, rs=8, imm=patchee & 0xFFFF)
        return build("rmips", text)

    def _run(self, engine):
        process = Process(self._program(), engine=engine)
        event = process.run_until_event()
        if isinstance(event, FaultEvent) and event.signo == SIGTRAP:
            process.cpu.pc = event.pc + process.exe.arch.noop_advance
            event = process.run_until_event()
        return process, event

    def test_patched_instruction_takes_effect(self):
        process, event = self._run("block")
        assert isinstance(event, ExitEvent)
        assert event.status == 99  # stale bytes would exit(1)

    def test_matches_step_engine(self):
        _, blocked = self._run("block")
        _, stepped = self._run("step")
        assert isinstance(blocked, ExitEvent) and isinstance(stepped, ExitEvent)
        assert blocked.status == stepped.status == 99

    def test_invalidation_is_counted(self):
        process, _ = self._run("block")
        engine = process.cpu.engine
        assert engine.stats.invalidated >= 1
        assert engine.generation >= 1


class TestHostWriteInvalidation:
    def test_poke_into_code_drops_blocks(self):
        exe = compile_and_link({"t.c": _WORKLOAD}, "rmips", debug=True)
        process = Process(exe, engine="block")
        event = process.run_until_event()
        process.cpu.pc = event.pc + exe.arch.noop_advance
        process.run_until_event(stop_at_icount=process.cpu.icount + 40)
        engine = process.cpu.engine
        assert engine.stats.compiled > 0
        before = engine.generation
        # a debugger POKE into decoded code must drop the cache (the
        # current pc is certainly inside a decoded block) ...
        target = process.cpu.pc
        original = bytes(process.mem.read_bytes(target, 4))
        process.mem.write_bytes(target, original)  # same bytes still count
        assert engine.generation == before + 1
        assert engine.stats.invalidated >= 1
        # ... and a write nowhere near code must not
        after = engine.generation
        process.mem.write_bytes(process.cpu.regs[29] - 64, b"\x00" * 4)
        assert engine.generation == after


# -- the engine-selection API -------------------------------------------------


class TestEngineSelection:
    def _cpu(self, engine=None):
        exe = build("rmips", [Label("__start"), Insn("syscall", imm=1)])
        return Process(exe, engine=engine).cpu

    def test_names(self):
        assert sorted(engine_names()) == ["block", "step"]

    def test_default_is_block(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert self._cpu().engine.name == "block"

    def test_by_name(self):
        assert isinstance(self._cpu("step").engine, StepEngine)
        assert isinstance(self._cpu("block").engine, BlockEngine)

    def test_by_class_and_instance(self):
        assert isinstance(self._cpu(StepEngine).engine, StepEngine)
        assert isinstance(self._cpu(BlockEngine).engine, BlockEngine)
        engine = StepEngine()
        assert self._cpu(engine).engine is engine

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "step")
        assert isinstance(self._cpu().engine, StepEngine)
        monkeypatch.setenv(ENGINE_ENV, "block")
        assert isinstance(self._cpu().engine, BlockEngine)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "step")
        assert isinstance(self._cpu("block").engine, BlockEngine)

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError):
            make_engine("jit", None)
        with pytest.raises(TypeError):
            make_engine(42, None)

    def test_describe_identifies_engine(self):
        cpu = self._cpu("block")
        info = cpu.engine.describe()
        assert "blocks_compiled" in info and "generation" in info
        assert "blocks_cached" not in self._cpu("step").engine.describe()


class TestStopSpec:
    def test_defaults(self):
        spec = StopSpec.coerce(None, None, None)
        assert spec.max_steps > 0 and spec.stop_at_icount is None

    def test_keywords(self):
        spec = StopSpec.coerce(None, 10, 99)
        assert spec.max_steps == 10 and spec.stop_at_icount == 99

    def test_spec_passes_through(self):
        spec = StopSpec(max_steps=5)
        assert StopSpec.coerce(spec, None, None) is spec

    def test_both_forms_is_an_error(self):
        with pytest.raises(ValueError):
            StopSpec.coerce(StopSpec(), 10, None)

    def test_validation(self):
        with pytest.raises(ValueError):
            StopSpec(max_steps=-1)
        with pytest.raises(ValueError):
            StopSpec(stop_at_icount=-1)

    def test_run_is_keyword_only(self):
        exe = build("rmips", [Label("__start"), Insn("syscall", imm=1)])
        cpu = Process(exe).cpu
        with pytest.raises(TypeError):
            cpu.run(100)  # positional max_steps retired with the redesign


class TestStepsAliasRetired:
    def test_steps_warns_and_returns_icount(self):
        exe = build("rmips", [Label("__start"), Insn("syscall", imm=1)])
        cpu = Process(exe).cpu
        Cpu._steps_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert cpu.steps == cpu.icount
            assert cpu.steps == cpu.icount  # second read: no new warning
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "icount" in str(deprecations[0].message)
