"""Process/OS tests: syscalls, printf formatting, runaway protection."""

import pytest

from repro.machines import Process, TargetFault, get_arch
from repro.machines.isa import Insn, Label

from ..cc.helpers import ALL_ARCHES, c_output, run_c


class TestPrintfFormats:
    """The printf syscall must format like C's printf."""

    @pytest.mark.parametrize("fmt,args,expected", [
        ("%d", "-42", "-42"),
        ("%u", "4294967295u", "4294967295"),
        ("%x", "255", "ff"),
        ("%X", "255", "FF"),
        ("%c", "'A'", "A"),
        ("%5d", "42", "   42"),
        ("%-5d|", "42", "42   |"),
        ("%05d", "42", "00042"),
        ("%%", "", "%"),
    ])
    def test_integer_formats(self, fmt, args, expected):
        arglist = ", " + args if args else ""
        src = 'int main(void) { printf("%s"%s); return 0; }' % (fmt, arglist)
        assert c_output(src) == expected

    @pytest.mark.parametrize("fmt,value,expected", [
        ("%f", "1.5", "1.500000"),
        ("%.2f", "3.14159", "3.14"),
        ("%g", "1000000.0", "1e+06"),
        ("%e", "12.5", "1.250000e+01"),
    ])
    def test_float_formats(self, fmt, value, expected):
        src = 'int main(void) { printf("%s", %s); return 0; }' % (fmt, value)
        assert c_output(src) == expected

    def test_string_format(self):
        src = ('char *name = "ldb";\n'
               'int main(void) { printf("[%10s]", name); return 0; }')
        assert c_output(src) == "[       ldb]"

    def test_mixed_arguments(self):
        src = ('int main(void) { printf("%s=%d (%g)", "x", 7, 0.5); '
               "return 0; }")
        assert c_output(src) == "x=7 (0.5)"

    @pytest.mark.parametrize("arch", ALL_ARCHES)
    def test_formats_agree_across_targets(self, arch):
        src = ('int main(void) { printf("%d|%u|%x|%c|%s|%g", -5, 5u, 254, '
               "'z', \"ok\", 2.25); return 0; }")
        assert c_output(src, arch) == "-5|5|fe|z|ok|2.25"


class TestPutcharAndExit:
    @pytest.mark.parametrize("arch", ALL_ARCHES)
    def test_putchar(self, arch):
        src = ("int main(void) { putchar('h'); putchar('i'); "
               "putchar(10); return 0; }")
        assert c_output(src, arch) == "hi\n"

    @pytest.mark.parametrize("arch", ALL_ARCHES)
    def test_exit_mid_program(self, arch):
        src = ('int main(void) { printf("before"); exit(9); '
               'printf("after"); return 0; }')
        status, out = run_c(src, arch)
        assert status == 9
        assert out == "before"


class TestRunawayProtection:
    def test_infinite_loop_bounded(self):
        arch = get_arch("rmips")
        from ..machines.helpers import build
        exe = build("rmips", [
            Label("__start"),
            Label("spin"),
            Insn("j", target="spin"),
        ])
        process = Process(exe)
        event = process.run_until_event(max_steps=10_000)
        # the runaway guard surfaces as a fault, not a hang
        assert event.__class__.__name__ == "FaultEvent"

    def test_bad_syscall_faults(self):
        from ..machines.helpers import build
        exe = build("rmips", [Label("__start"), Insn("syscall", imm=99)])
        process = Process(exe)
        event = process.run_until_event()
        assert event.__class__.__name__ == "FaultEvent"


class TestMemorySizing:
    def test_process_memory_matches_link(self):
        from repro.cc.driver import compile_and_link
        exe = compile_and_link({"t.c": "int main(void){return 0;}"},
                               "rmips", debug=False, memsize=1 << 21)
        process = Process(exe)
        assert process.mem.size >= exe.stack_top
        assert process.cpu.get_reg(exe.arch.sp) == exe.stack_top

    def test_deep_recursion_overflows_gracefully(self):
        src = """
        int burn(int n) {
            int pad[64];
            pad[0] = n;
            return burn(n + 1) + pad[0];
        }
        int main(void) { return burn(0); }
        """
        from repro.cc.driver import compile_and_link
        from repro.machines import FaultEvent, SIGSEGV, SIGTRAP
        exe = compile_and_link({"t.c": src}, "rmips", debug=False)
        process = Process(exe)
        event = process.run_until_event()
        if isinstance(event, FaultEvent) and event.signo == SIGTRAP:
            process.cpu.pc = event.pc + exe.arch.noop_advance
            event = process.run_until_event()
        assert isinstance(event, FaultEvent)
        assert event.signo == SIGSEGV   # stack ran off the bottom
