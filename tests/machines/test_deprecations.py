"""The tree ships warning-clean: nothing in the examples, benchmarks,
or library still uses the deprecated ``Cpu.steps`` alias, and a
representative workload runs without tripping any DeprecationWarning.
"""

import pathlib
import re
import warnings

import pytest

from repro.cc.driver import compile_and_link
from repro.machines import Process

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

SOURCE = """int main(void) {
    int i, total;
    total = 0;
    for (i = 0; i < 50; i++)
        total = total + i;
    return total;
}
"""


def test_no_source_still_uses_the_steps_alias():
    # `cpu.steps` is the deprecated alias (engine blocks have their own,
    # unrelated `steps` attribute, so match the cpu access specifically)
    pattern = re.compile(r"\bcpu\.steps\b", re.IGNORECASE)
    offenders = []
    for tree in ("examples", "benchmarks", "src"):
        for path in (REPO / tree).rglob("*.py"):
            if path.name == "cpu.py":
                continue  # the shim's own definition
            for number, line in enumerate(path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append("%s:%d: %s"
                                     % (path.relative_to(REPO), number,
                                        line.strip()))
    assert offenders == []


def test_workload_runs_without_deprecation_warnings():
    exe = compile_and_link({"clean.c": SOURCE}, "rmips", debug=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        process = Process(exe)
        event = process.run_until_event()
        assert process.cpu.icount > 0
        assert event is not None


def test_the_alias_itself_still_warns_once():
    exe = compile_and_link({"clean.c": SOURCE}, "rmips", debug=True)
    process = Process(exe)
    from repro.machines.cpu import Cpu
    Cpu._steps_warned = False  # the once-latch may already be tripped
    with pytest.warns(DeprecationWarning, match="icount"):
        assert process.cpu.steps == process.cpu.icount
    Cpu._steps_warned = False
