"""The crash-consistent write layer and its fault-injecting disk.

The atomic writer's contract: after :func:`atomic_write_bytes` returns
the destination holds exactly the new payload; after it *fails* — or
the writing process dies mid-write — the destination holds whatever it
held before, never a torn mixture.  :class:`FaultyFS` is how the tests
(and BENCH_durability) reach every failure point deterministically.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.atomicio import (
    FS_FAULT_KINDS,
    FaultyFS,
    FsFaultSchedule,
    PowerCut,
    atomic_write_bytes,
    atomic_write_text,
    cleanup_stale_temps,
    current_fs,
    stale_temps,
    use_fs,
)


class TestAtomicWrite:
    def test_plain_write_lands(self, tmp_path):
        path = str(tmp_path / "out.bin")
        assert atomic_write_bytes(path, b"hello" * 100) == 500
        with open(path, "rb") as handle:
            assert handle.read() == b"hello" * 100

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"A" * 1000)
        atomic_write_bytes(path, b"B" * 10)
        with open(path, "rb") as handle:
            assert handle.read() == b"B" * 10

    def test_empty_payload(self, tmp_path):
        path = str(tmp_path / "empty.bin")
        assert atomic_write_bytes(path, b"") == 0
        assert os.path.getsize(path) == 0

    def test_text_variant(self, tmp_path):
        path = str(tmp_path / "report.json")
        atomic_write_text(path, "{\"ok\": true}\n")
        with open(path) as handle:
            assert handle.read() == "{\"ok\": true}\n"

    def test_no_temp_left_after_success(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"payload")
        assert stale_temps(path) == []
        assert os.listdir(str(tmp_path)) == ["out.bin"]

    def test_large_payload_chunked(self, tmp_path):
        # > one write chunk, so the loop body runs more than once
        path = str(tmp_path / "big.bin")
        payload = bytes(range(256)) * 4096  # 1 MiB
        atomic_write_bytes(path, payload)
        with open(path, "rb") as handle:
            assert handle.read() == payload


class TestFailureAtomicity:
    def _fail_write(self, tmp_path, kind, old=b"OLD CONTENTS"):
        """Inject ``kind`` at the first write; the destination must
        keep ``old`` byte-for-byte."""
        path = str(tmp_path / "artifact.bin")
        atomic_write_bytes(path, old)
        fs = FaultyFS(FsFaultSchedule(seed=7, script=[kind]))
        exc = PowerCut if kind == "powercut" else OSError
        with pytest.raises(exc):
            atomic_write_bytes(path, b"NEW" * 1000, fs=fs)
        with open(path, "rb") as handle:
            assert handle.read() == old
        return path, fs

    @pytest.mark.parametrize("kind", FS_FAULT_KINDS)
    def test_destination_never_torn(self, tmp_path, kind):
        self._fail_write(tmp_path, kind)

    @pytest.mark.parametrize("kind", ("enospc", "torn", "eio"))
    def test_clean_failure_removes_its_temp(self, tmp_path, kind):
        path, _fs = self._fail_write(tmp_path, kind)
        # the process survived the OSError, so it cleaned up after itself
        assert stale_temps(path) == []

    def test_power_cut_leaves_the_temp(self, tmp_path):
        # a dead process runs no cleanup: its temp stays for the sweep
        path, fs = self._fail_write(tmp_path, "powercut")
        fs.revive()
        with use_fs(fs):
            assert len(stale_temps(path)) == 1

    def test_next_writer_sweeps_stale_temps(self, tmp_path):
        path, fs = self._fail_write(tmp_path, "powercut")
        fs.revive()
        atomic_write_bytes(path, b"second try", fs=fs)
        with open(path, "rb") as handle:
            assert handle.read() == b"second try"
        assert stale_temps(path) == []

    def test_cleanup_stale_temps_counts(self, tmp_path):
        path = str(tmp_path / "artifact.bin")
        for pid_tag in ("123", "456"):
            temp = str(tmp_path / (".artifact.bin.ldbtmp.%s" % pid_tag))
            with open(temp, "wb") as handle:
                handle.write(b"dead writer droppings")
        assert cleanup_stale_temps(path) == 2
        assert stale_temps(path) == []

    def test_rename_failure_keeps_old_contents(self, tmp_path):
        path = str(tmp_path / "artifact.bin")
        atomic_write_bytes(path, b"OLD")
        # scheduled ops: the write and fsync land; the rename faults
        fs = FaultyFS(FsFaultSchedule(script=["ok", "ok", "eio"]))
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"NEW", fs=fs)
        with open(path, "rb") as handle:
            assert handle.read() == b"OLD"


class TestUseFs:
    def test_nesting_and_restore(self, tmp_path):
        base = current_fs()
        fs = FaultyFS(FsFaultSchedule())
        with use_fs(fs):
            assert current_fs() is fs
            inner = FaultyFS(FsFaultSchedule())
            with use_fs(inner):
                assert current_fs() is inner
            assert current_fs() is fs
        assert current_fs() is base

    def test_deep_write_sites_see_injected_fs(self, tmp_path):
        path = str(tmp_path / "deep.bin")

        def buried_write():
            atomic_write_bytes(path, b"payload")  # no fs parameter

        fs = FaultyFS(FsFaultSchedule(script=["eio"]))
        with use_fs(fs):
            with pytest.raises(OSError):
                buried_write()
        assert not os.path.exists(path)


class TestSchedule:
    def test_spec_round_trip(self):
        schedule = FsFaultSchedule(seed=9, enospc=0.1, powercut=0.05,
                                   limit=3, after=2)
        rebuilt = FsFaultSchedule.from_spec(schedule.spec())
        assert rebuilt.spec() == schedule.spec()

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fs fault spec"):
            FsFaultSchedule.from_spec({"seed": 1, "tornado": 0.5})

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FsFaultSchedule(enospc=1.5)

    def test_bad_script_action_rejected(self):
        with pytest.raises(ValueError):
            FsFaultSchedule(script=["ok", "explode"])

    def test_script_consumed_then_clean(self):
        schedule = FsFaultSchedule(script=["ok", "eio"])
        assert [schedule.next_action() for _ in range(4)] \
            == ["ok", "eio", "ok", "ok"]
        assert schedule.injected == 1
        assert schedule.counts == {"eio": 1}

    def test_after_spares_early_operations(self):
        schedule = FsFaultSchedule(seed=0, eio=1.0, after=3)
        actions = [schedule.next_action() for _ in range(5)]
        assert actions[:3] == ["ok", "ok", "ok"]
        assert actions[3:] == ["eio", "eio"]

    def test_limit_caps_injections(self):
        schedule = FsFaultSchedule(seed=0, eio=1.0, limit=2)
        actions = [schedule.next_action() for _ in range(10)]
        assert actions.count("eio") == 2

    def test_same_seed_same_sequence(self):
        seq = [FsFaultSchedule(seed=42, enospc=0.2, torn=0.2,
                               powercut=0.2, eio=0.2)
               for _ in range(2)]
        assert ([seq[0].next_action() for _ in range(50)]
                == [seq[1].next_action() for _ in range(50)])


class TestFaultyFS:
    def test_dead_machine_refuses_everything(self, tmp_path):
        path = str(tmp_path / "x.bin")
        fs = FaultyFS(FsFaultSchedule(script=["powercut"]))
        with pytest.raises(PowerCut):
            atomic_write_bytes(path, b"doomed", fs=fs)
        with pytest.raises(PowerCut):
            fs.listdir(str(tmp_path))
        fs.revive()
        assert isinstance(fs.listdir(str(tmp_path)), list)

    def test_power_cut_truncates_unsynced_bytes(self, tmp_path):
        temp_dir = str(tmp_path)
        # cut power at the fsync: some seeded prefix of what was
        # written (nothing was synced yet) survives
        fs = FaultyFS(FsFaultSchedule(seed=3,
                                      script=["ok", "ok", "powercut"]))
        path = str(tmp_path / "y.bin")
        with pytest.raises(PowerCut):
            atomic_write_bytes(path, b"Z" * 4096, fs=fs)
        fs.revive()
        (temp,) = [entry for entry in os.listdir(temp_dir)
                   if ".ldbtmp." in entry]
        survived = os.path.getsize(os.path.join(temp_dir, temp))
        assert 0 <= survived <= 4096

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_deterministic_per_seed(self, seed):
        import shutil
        import tempfile
        outcomes = []
        for _ in range(2):
            workdir = tempfile.mkdtemp(prefix="atomicio-det-")
            try:
                schedule = FsFaultSchedule(seed=seed, enospc=0.15,
                                           torn=0.15, powercut=0.15,
                                           eio=0.15)
                fs = FaultyFS(schedule)
                path = os.path.join(workdir, "d.bin")
                try:
                    atomic_write_bytes(path, b"Q" * 9000, fs=fs)
                    outcome = ("ok", os.path.getsize(path))
                except PowerCut:
                    outcome = ("powercut",)
                except OSError as err:
                    outcome = ("oserror", err.errno)
                outcomes.append((outcome, schedule.injected,
                                 dict(schedule.counts)))
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
        assert outcomes[0] == outcomes[1]
