"""Linker/loader tests: layout, relocation, nm, the runtime proc table."""

import pytest

from repro.machines import (
    LinkError,
    ObjectUnit,
    Process,
    Relocation,
    Symbol,
    get_arch,
    link,
    nm,
    read_runtime_proc_table,
)
from repro.machines.isa import Insn, Label
from repro.machines.loader import FuncInfo, TEXT_BASE

from .helpers import null_startup


def unit_with(arch_name="rmips", name="u.c", text=(), data=b"",
              symbols=(), relocs=(), funcs=()):
    unit = ObjectUnit(name, arch_name)
    unit.text = list(text)
    unit.data = bytearray(data)
    unit.symbols = list(symbols)
    unit.data_relocs = list(relocs)
    unit.funcs = list(funcs)
    return unit


class TestLayout:
    def test_text_starts_at_base(self):
        arch = get_arch("rmips")
        unit = unit_with(text=[Label("__start"), Insn("nop")])
        exe = link(arch, [unit], null_startup)
        assert exe.entry == TEXT_BASE
        assert exe.text == arch.nop_bytes

    def test_labels_get_sequential_addresses(self):
        arch = get_arch("rmips")
        unit = unit_with(text=[
            Label("__start"), Insn("nop"), Label("second"), Insn("nop")])
        unit.symbols = [Symbol("second", "text", "second", "T")]
        exe = link(arch, [unit], null_startup)
        assert exe.symbols["second"] == TEXT_BASE + 4

    def test_variable_length_layout(self):
        """rvax instructions have different sizes; labels must respect
        them."""
        from repro.machines.vax import Operand
        arch = get_arch("rvax")
        unit = unit_with("rvax", text=[
            Label("__start"),
            Insn("nop"),                                        # 1 byte
            Insn("movl", imm=[Operand.imm(5), Operand.reg_(1)]),  # 7 bytes
            Label("after"),
            Insn("nop"),
        ])
        unit.symbols = [Symbol("after", "text", "after", "t")]
        exe = link(arch, [unit], null_startup)
        assert exe.symbols["after"] == TEXT_BASE + 8

    def test_data_follows_text_aligned(self):
        arch = get_arch("rmips")
        unit = unit_with(text=[Label("__start"), Insn("nop")],
                         data=b"\x2a\0\0\0",
                         symbols=[Symbol("_g", "data", 0, "D")])
        exe = link(arch, [unit], null_startup)
        assert exe.data_base % 16 == 0
        assert exe.data_base >= TEXT_BASE + len(exe.text)
        assert exe.symbols["_g"] == exe.data_base

    def test_two_units_data_concatenated(self):
        arch = get_arch("rmips")
        u1 = unit_with(name="a.c", text=[Label("__start"), Insn("nop")],
                       data=b"\x01\0\0\0",
                       symbols=[Symbol("_a", "data", 0, "D")])
        u2 = unit_with(name="b.c", data=b"\x02\0\0\0",
                       symbols=[Symbol("_b", "data", 0, "D")])
        exe = link(arch, [u1, u2], null_startup)
        assert exe.symbols["_b"] == exe.symbols["_a"] + 4


class TestRelocation:
    def test_data_reloc_patched_with_symbol_address(self):
        arch = get_arch("rmips")
        unit = unit_with(
            text=[Label("__start"), Insn("nop")],
            data=b"\0\0\0\0" + b"\x07\0\0\0",
            symbols=[Symbol("_ptr", "data", 0, "D"),
                     Symbol("_val", "data", 4, "D")],
            relocs=[Relocation(0, "_val")])
        exe = link(arch, [unit], null_startup)
        patched = int.from_bytes(exe.data[:4], arch.byteorder)
        assert patched == exe.symbols["_val"]

    def test_reloc_respects_byte_order(self):
        for arch_name in ("rmips", "rvax"):
            arch = get_arch(arch_name)
            unit = unit_with(arch_name,
                             text=[Label("__start"), Insn("nop")]
                             if arch_name == "rmips" else
                             [Label("__start"), Insn("nop")],
                             data=b"\0\0\0\0",
                             symbols=[Symbol("_p", "data", 0, "D")],
                             relocs=[Relocation(0, "_p")])
            exe = link(arch, [unit], null_startup)
            value = int.from_bytes(exe.data[:4], arch.byteorder)
            assert value == exe.symbols["_p"], arch_name

    def test_reloc_to_text_label(self):
        """Anchors reference stopping-point labels (internal symbols)."""
        arch = get_arch("rmips")
        unit = unit_with(
            text=[Label("__start"), Insn("nop"), Label("_f.S3"), Insn("nop")],
            data=b"\0\0\0\0",
            symbols=[Symbol("_anchor", "data", 0, "D")],
            relocs=[Relocation(0, "_f.S3")])
        exe = link(arch, [unit], null_startup)
        assert int.from_bytes(exe.data[:4], "big") == TEXT_BASE + 4

    def test_undefined_symbol_raises(self):
        arch = get_arch("rmips")
        unit = unit_with(text=[Label("__start"),
                               Insn("jal", target="_missing")])
        with pytest.raises(LinkError):
            link(arch, [unit], null_startup)

    def test_duplicate_global_raises(self):
        arch = get_arch("rmips")
        u1 = unit_with(name="a.c", text=[Label("__start"), Insn("nop")],
                       data=b"\0\0\0\0", symbols=[Symbol("_x", "data", 0, "D")])
        u2 = unit_with(name="b.c", data=b"\0\0\0\0",
                       symbols=[Symbol("_x", "data", 0, "D")])
        with pytest.raises(LinkError):
            link(arch, [u1, u2], null_startup)

    def test_branch_displacement_resolution(self):
        arch = get_arch("rmips")
        unit = unit_with(text=[
            Label("__start"),
            Insn("beq", rd=0, rs=0, imm=("br", "target")),
            Insn("nop"),
            Label("target"),
            Insn("nop"),
        ])
        exe = link(arch, [unit], null_startup)
        insn = arch.decode(__import__("repro.machines", fromlist=["TargetMemory"])
                           .TargetMemory(65536, "big"), 0) if False else None
        # decode the branch from the image
        from repro.machines import TargetMemory
        mem = TargetMemory(1 << 20, "big")
        mem.write_bytes(TEXT_BASE, exe.text)
        branch = arch.decode(mem, TEXT_BASE)
        # displacement 1: skips one instruction
        assert branch.imm == 1


class TestNm:
    def test_nm_format(self):
        arch = get_arch("rmips")
        unit = unit_with(
            text=[Label("__start"), Insn("nop"), Label("_f"), Insn("nop")],
            data=b"\0\0\0\0",
            symbols=[Symbol("_f", "text", "_f", "T"),
                     Symbol("_g", "data", 0, "D"),
                     Symbol("_s", "data", 0, "d")])
        exe = link(arch, [unit], null_startup)
        lines = nm(exe).splitlines()
        kinds = {line.split()[2]: line.split()[1] for line in lines}
        assert kinds["_f"] == "T"
        assert kinds["_g"] == "D"
        assert kinds["_s"] == "d"
        # addresses are zero-padded hex, sorted ascending
        addresses = [int(line.split()[0], 16) for line in lines]
        assert addresses == sorted(addresses)

    def test_internal_symbols_hidden_from_nm(self):
        arch = get_arch("rmips")
        unit = unit_with(
            text=[Label("__start"), Insn("nop")],
            symbols=[Symbol("_hidden", "text", "__start", "i")])
        exe = link(arch, [unit], null_startup)
        assert "_hidden" not in nm(exe)
        assert exe.symbols["_hidden"] == TEXT_BASE


class TestRuntimeProcTable:
    def test_rpt_only_on_rmips(self):
        for arch_name, expect in (("rmips", True), ("rsparc", False)):
            arch = get_arch(arch_name)
            unit = unit_with(arch_name,
                             text=[Label("__start"), Insn("nop")],
                             funcs=[FuncInfo("start", "__start", 32, 0x5, -8)])
            exe = link(arch, [unit], null_startup)
            assert (exe.rpt_address != 0) == expect, arch_name

    def test_rpt_contents_from_target_memory(self):
        """The debugger's MIPS linker interface reads the table from the
        target address space (footnote 4)."""
        arch = get_arch("rmips")
        unit = unit_with(
            text=[Label("__start"), Insn("nop"), Label("_f"), Insn("nop")],
            symbols=[Symbol("_f", "text", "_f", "T")],
            funcs=[FuncInfo("f", "_f", 48, (1 << 16) | (1 << 31), -12)])
        exe = link(arch, [unit], null_startup)
        process = Process(exe)
        records = read_runtime_proc_table(process.mem, exe.rpt_address,
                                          arch.byteorder)
        assert len(records) == 1
        address, framesize, regmask, regsave = records[0]
        assert address == exe.symbols["_f"]
        assert framesize == 48
        assert regmask == (1 << 16) | (1 << 31)
        assert regsave == 0xFFFFFFF4  # -12 as an unsigned word

    def test_rpt_listed_by_nm(self):
        arch = get_arch("rmips")
        unit = unit_with(text=[Label("__start"), Insn("nop")],
                         funcs=[FuncInfo("start", "__start", 0)])
        exe = link(arch, [unit], null_startup)
        assert "_procedure_table" in nm(exe)
