"""Execution tests: arithmetic, memory, control flow, faults per target."""

import pytest

from repro.machines import (
    ExitEvent,
    FaultEvent,
    Process,
    SIGFPE,
    SIGSEGV,
    SIGTRAP,
    get_arch,
)
from repro.machines.isa import Insn, Label
from repro.machines.vax import Operand

from .helpers import build, exit_program

ALL_ARCHES = ["rmips", "rmipsel", "rsparc", "rm68k", "rvax"]


class TestExit:
    @pytest.mark.parametrize("arch_name", ALL_ARCHES)
    def test_exit_status(self, arch_name):
        process = Process(exit_program(arch_name, 42))
        event = process.run_until_event()
        assert isinstance(event, ExitEvent) and event.status == 42


class TestRMipsExecution:
    def run_regs(self, text, arch_name="rmips"):
        exe = build(arch_name, [Label("__start")] + text + [
            Insn("syscall", imm=1)])
        process = Process(exe)
        process.run_until_event()
        return process.cpu

    def test_arithmetic_chain(self):
        cpu = self.run_regs([
            Insn("addi", rd=8, rs=0, imm=6),
            Insn("addi", rd=9, rs=0, imm=7),
            Insn("mul", rd=10, rs=8, rt=9),
        ])
        assert cpu.regs[10] == 42

    def test_r0_is_hardwired_zero(self):
        cpu = self.run_regs([Insn("addi", rd=0, rs=0, imm=99)])
        assert cpu.regs[0] == 0

    def test_lui_ori_builds_32bit_constant(self):
        cpu = self.run_regs([
            Insn("lui", rd=8, imm=0x1234),
            Insn("ori", rd=8, rs=8, imm=0x5678),
        ])
        assert cpu.regs[8] == 0x12345678

    def test_store_load_word(self):
        cpu = self.run_regs([
            Insn("lui", rd=9, imm=1),               # address 0x10000
            Insn("addi", rd=8, rs=0, imm=1234),
            Insn("sw", rd=8, rs=9, imm=0),
            Insn("lw", rd=10, rs=9, imm=0),
            Insn("nop"),                            # let the load land
        ])
        assert cpu.regs[10] == 1234

    def test_load_delay_slot_sees_old_value(self):
        """The rmips load delay: the next insn reads the OLD register."""
        cpu = self.run_regs([
            Insn("lui", rd=9, imm=1),
            Insn("addi", rd=8, rs=0, imm=77),
            Insn("sw", rd=8, rs=9, imm=0),
            Insn("addi", rd=10, rs=0, imm=5),       # r10 = 5 (old value src)
            Insn("lw", rd=10, rs=9, imm=0),         # load 77 -> delayed
            Insn("add", rd=11, rs=10, rt=0),        # delay slot: sees 5
            Insn("add", rd=12, rs=10, rt=0),        # after slot: sees 77
        ])
        assert cpu.regs[11] == 5
        assert cpu.regs[12] == 77

    def test_branch_taken_and_fallthrough(self):
        cpu = self.run_regs([
            Insn("addi", rd=8, rs=0, imm=1),
            Insn("beq", rd=8, rs=0, imm=("br", "skip")),   # not taken
            Insn("addi", rd=9, rs=0, imm=10),
            Label("skip"),
            Insn("bne", rd=8, rs=0, imm=("br", "over")),   # taken
            Insn("addi", rd=9, rs=9, imm=100),             # skipped
            Label("over"),
        ])
        assert cpu.regs[9] == 10

    def test_loop_sums(self):
        # sum 1..10 via a bne loop
        cpu = self.run_regs([
            Insn("addi", rd=8, rs=0, imm=0),    # sum
            Insn("addi", rd=9, rs=0, imm=1),    # i
            Insn("addi", rd=10, rs=0, imm=11),  # limit
            Label("loop"),
            Insn("add", rd=8, rs=8, rt=9),
            Insn("addi", rd=9, rs=9, imm=1),
            Insn("bne", rd=9, rs=10, imm=("br", "loop")),
        ])
        assert cpu.regs[8] == 55

    def test_jal_jr_round_trip(self):
        cpu = self.run_regs([
            Insn("jal", target="func"),
            Insn("addi", rd=9, rs=8, imm=1),   # after return: r9 = r8+1
            Insn("syscall", imm=1),
            Label("func"),
            Insn("addi", rd=8, rs=0, imm=41),
            Insn("jr", rs=31),
        ])
        assert cpu.regs[9] == 42

    def test_signed_division(self):
        cpu = self.run_regs([
            Insn("addi", rd=8, rs=0, imm=-7),
            Insn("addi", rd=9, rs=0, imm=2),
            Insn("div", rd=10, rs=8, rt=9),
            Insn("rem", rd=11, rs=8, rt=9),
        ])
        assert cpu.get_reg_signed(10) == -3
        assert cpu.get_reg_signed(11) == -1

    def test_float_ops(self):
        cpu = self.run_regs([
            Insn("addi", rd=8, rs=0, imm=3),
            Insn("cvtdw", rd=1, rs=8),
            Insn("addi", rd=8, rs=0, imm=4),
            Insn("cvtdw", rd=2, rs=8),
            Insn("fmul", rd=3, rs=1, rt=2),
            Insn("cvtwd", rd=10, rs=3),
        ])
        assert cpu.fregs[3] == 12.0
        assert cpu.regs[10] == 12

    def test_little_endian_variant_runs_same_program(self):
        cpu = self.run_regs([
            Insn("addi", rd=8, rs=0, imm=6),
            Insn("addi", rd=9, rs=0, imm=7),
            Insn("mul", rd=10, rs=8, rt=9),
        ], arch_name="rmipsel")
        assert cpu.regs[10] == 42


class TestRSparcExecution:
    def run_regs(self, text):
        exe = build("rsparc", [Label("__start")] + text + [Insn("syscall", imm=1)])
        process = Process(exe)
        process.run_until_event()
        return process.cpu

    def test_arith_imm_and_reg(self):
        cpu = self.run_regs([
            Insn("add", rd=16, rs=0, imm=6),
            Insn("add", rd=17, rs=0, imm=7),
            Insn("smul", rd=18, rs=16, rt=17),
        ])
        assert cpu.regs[18] == 42

    def test_sethi_add_constant(self):
        """32-bit constants: sethi hi19 then add the signed lo13 half."""
        value = 0x12345678
        low = value & 0x1FFF
        if low >= 0x1000:
            low -= 0x2000
        cpu = self.run_regs([
            Insn("sethi", rd=16, imm=((value - low) >> 13) & 0x7FFFF),
            Insn("add", rd=16, rs=16, imm=low),
        ])
        assert cpu.regs[16] == value

    def test_memory_and_branches(self):
        cpu = self.run_regs([
            Insn("sethi", rd=17, imm=8),            # some data address
            Insn("add", rd=16, rs=0, imm=123),
            Insn("st", rd=16, rs=17, imm=4),
            Insn("ld", rd=18, rs=17, imm=4),
            Insn("bne", rd=18, rs=16, imm=("br", "bad")),
            Insn("add", rd=19, rs=0, imm=1),
            Label("bad"),
        ])
        assert cpu.regs[18] == 123
        assert cpu.regs[19] == 1

    def test_call_and_return(self):
        cpu = self.run_regs([
            Insn("call", target="f"),
            Insn("add", rd=17, rs=16, imm=1),
            Insn("syscall", imm=1),
            Label("f"),
            Insn("add", rd=16, rs=0, imm=9),
            Insn("jmpl", rs=15),
        ])
        assert cpu.regs[17] == 10


class TestRM68kExecution:
    def run_regs(self, text):
        exe = build("rm68k", [Label("__start")] + text + [
            Insn("movei", rd=1, imm=0), Insn("push", rs=1), Insn("push", rs=1),
            Insn("syscall", imm=1)])
        process = Process(exe)
        process.run_until_event()
        return process.cpu

    def test_two_address_arith(self):
        cpu = self.run_regs([
            Insn("movei", rd=2, imm=6),
            Insn("movei", rd=3, imm=7),
            Insn("muls", rd=2, rs=3),
        ])
        assert cpu.regs[2] == 42

    def test_condition_codes_and_scc(self):
        cpu = self.run_regs([
            Insn("movei", rd=2, imm=3),
            Insn("movei", rd=3, imm=5),
            Insn("cmp", rd=2, rs=3),    # 3 vs 5
            Insn("slt", rd=4),          # 3 < 5 -> 1
            Insn("sgt", rd=5),          # 3 > 5 -> 0
        ])
        assert cpu.regs[4] == 1 and cpu.regs[5] == 0

    def test_unsigned_compare(self):
        cpu = self.run_regs([
            Insn("movei", rd=2, imm=-1),    # 0xffffffff
            Insn("movei", rd=3, imm=1),
            Insn("cmp", rd=2, rs=3),
            Insn("slt", rd=4),              # signed: -1 < 1
            Insn("sltu", rd=5),             # unsigned: huge > 1
        ])
        assert cpu.regs[4] == 1 and cpu.regs[5] == 0

    def test_link_unlk_frame(self):
        cpu = self.run_regs([
            Insn("movei", rd=14, imm=0),
            Insn("link", imm=16),
            Insn("movei", rd=2, imm=7),
            Insn("store32", rd=14, rs=2, imm=-4),   # a local at fp-4
            Insn("load32", rd=3, rs=14, imm=-4),
            Insn("unlk"),
        ])
        assert cpu.regs[3] == 7

    def test_jsr_rts(self):
        cpu = self.run_regs([
            Insn("jsr", target="f"),
            Insn("movei", rd=3, imm=1),
            Insn("add", rd=3, rs=2),
            Insn("movei", rd=1, imm=0), Insn("push", rs=1), Insn("push", rs=1),
            Insn("syscall", imm=1),
            Label("f"),
            Insn("movei", rd=2, imm=41),
            Insn("rts"),
        ])
        assert cpu.regs[3] == 42

    def test_f80_registers(self):
        cpu = self.run_regs([
            Insn("fmovei", rd=1, imm=2.5),
            Insn("fmovei", rd=2, imm=4.0),
            Insn("fmul", rd=1, rs=2),
        ])
        assert cpu.fregs[1] == 10.0


class TestRVaxExecution:
    def run_regs(self, text):
        exe = build("rvax", [Label("__start")] + text + [
            Insn("pushl", imm=[Operand.imm(0)]),
            Insn("pushl", imm=[Operand.imm(0)]),
            Insn("syscall", imm=1)])
        process = Process(exe)
        process.run_until_event()
        return process.cpu

    def test_three_operand_arith(self):
        cpu = self.run_regs([
            Insn("movl", imm=[Operand.imm(6), Operand.reg_(1)]),
            Insn("movl", imm=[Operand.imm(7), Operand.reg_(2)]),
            Insn("mull3", imm=[Operand.reg_(1), Operand.reg_(2), Operand.reg_(3)]),
        ])
        assert cpu.regs[3] == 42

    def test_subl3_operand_order(self):
        """subl3 sub, min, dst computes min - sub (the VAX order)."""
        cpu = self.run_regs([
            Insn("movl", imm=[Operand.imm(3), Operand.reg_(1)]),
            Insn("movl", imm=[Operand.imm(10), Operand.reg_(2)]),
            Insn("subl3", imm=[Operand.reg_(1), Operand.reg_(2), Operand.reg_(3)]),
        ])
        assert cpu.regs[3] == 7

    def test_memory_displacement(self):
        cpu = self.run_regs([
            Insn("movl", imm=[Operand.imm(0x10000), Operand.reg_(1)]),
            Insn("movl", imm=[Operand.imm(99), Operand.disp(1, 8)]),
            Insn("movl", imm=[Operand.disp(1, 8), Operand.reg_(2)]),
        ])
        assert cpu.regs[2] == 99

    def test_byte_moves_sign_extend_to_registers(self):
        cpu = self.run_regs([
            Insn("movl", imm=[Operand.imm(0x10000), Operand.reg_(1)]),
            Insn("movl", imm=[Operand.imm(0xFF), Operand.reg_(2)]),
            Insn("movb", imm=[Operand.reg_(2), Operand.disp(1, 0)]),
            Insn("movb", imm=[Operand.disp(1, 0), Operand.reg_(3)]),
            Insn("movzbl", imm=[Operand.disp(1, 0), Operand.reg_(4)]),
        ])
        assert cpu.get_reg_signed(3) == -1
        assert cpu.regs[4] == 0xFF

    def test_compare_and_branch(self):
        cpu = self.run_regs([
            Insn("movl", imm=[Operand.imm(5), Operand.reg_(1)]),
            Insn("cmpl", imm=[Operand.reg_(1), Operand.imm(10)]),
            Insn("blss", imm=("br", "less")),
            Insn("movl", imm=[Operand.imm(0), Operand.reg_(2)]),
            Insn("brb", imm=("br", "end")),
            Label("less"),
            Insn("movl", imm=[Operand.imm(1), Operand.reg_(2)]),
            Label("end"),
        ])
        assert cpu.regs[2] == 1

    def test_call_ret_push_pop(self):
        cpu = self.run_regs([
            Insn("call", target="f"),
            Insn("addl3", imm=[Operand.reg_(0), Operand.imm(1), Operand.reg_(2)]),
            Insn("pushl", imm=[Operand.imm(0)]),
            Insn("pushl", imm=[Operand.imm(0)]),
            Insn("syscall", imm=1),
            Label("f"),
            Insn("movl", imm=[Operand.imm(41), Operand.reg_(0)]),
            Insn("ret"),
        ])
        assert cpu.regs[2] == 42

    def test_doubles(self):
        cpu = self.run_regs([
            Insn("movd", imm=[Operand.fimm(2.5), Operand.reg_(1)]),
            Insn("movd", imm=[Operand.fimm(4.0), Operand.reg_(2)]),
            Insn("muld3", imm=[Operand.reg_(1), Operand.reg_(2), Operand.reg_(3)]),
            Insn("cvtdl", imm=[Operand.reg_(3), Operand.reg_(5)]),
        ])
        assert cpu.fregs[3] == 10.0
        assert cpu.regs[5] == 10


class TestFaults:
    @pytest.mark.parametrize("arch_name", ALL_ARCHES)
    def test_break_raises_sigtrap(self, arch_name):
        exe = build(arch_name, [Label("__start"), Insn("break" if arch_name != "rvax" else "bpt")])
        process = Process(exe)
        event = process.run_until_event()
        assert isinstance(event, FaultEvent)
        assert event.signo == SIGTRAP
        assert event.pc == exe.entry

    def test_division_by_zero_sigfpe(self):
        from .helpers import build as b
        exe = b("rmips", [
            Label("__start"),
            Insn("addi", rd=8, rs=0, imm=1),
            Insn("div", rd=9, rs=8, rt=0),
        ])
        event = Process(exe).run_until_event()
        assert isinstance(event, FaultEvent) and event.signo == SIGFPE

    def test_bad_memory_sigsegv(self):
        exe = build("rmips", [
            Label("__start"),
            Insn("lui", rd=8, imm=0xFFFF),
            Insn("lw", rd=9, rs=8, imm=0),
        ])
        event = Process(exe).run_until_event()
        assert isinstance(event, FaultEvent) and event.signo == SIGSEGV


class TestSyscalls:
    def test_putchar_rmips(self):
        exe = build("rmips", [
            Label("__start"),
            Insn("addi", rd=4, rs=0, imm=ord("A")),
            Insn("syscall", imm=2),
            Insn("addi", rd=4, rs=0, imm=0),
            Insn("syscall", imm=1),
        ])
        process = Process(exe)
        process.run_until_event()
        assert process.output() == "A"

    def test_printf_rmips(self):
        """printf via the packed varargs block at [sp]."""
        from repro.machines import Symbol
        exe = build("rmips", [
            Label("__start"),
            # sp -= 16; store format pointer at [sp], 42 at [sp+4]
            Insn("addi", rd=29, rs=29, imm=-16),
            Insn("lui", rd=8, imm=("hi", "_fmt")),
            Insn("ori", rd=8, rs=8, imm=("lo", "_fmt")),
            Insn("sw", rd=8, rs=29, imm=0),
            Insn("addi", rd=8, rs=0, imm=42),
            Insn("sw", rd=8, rs=29, imm=4),
            Insn("syscall", imm=3),
            Insn("addi", rd=4, rs=0, imm=0),
            Insn("syscall", imm=1),
        ], data=b"x=%d!\x00", symbols=[Symbol("_fmt", "data", 0, "d")])
        process = Process(exe)
        process.run_until_event()
        assert process.output() == "x=42!"
