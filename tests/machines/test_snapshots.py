"""Snapshot/restore at the machines layer: CPU register images,
copy-on-write memory pages, whole-process checkpoints, and the
``stop_at_icount`` run bound the RUNTO protocol message rides on."""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.machines import (
    ARCH_NAMES,
    CODE_ICOUNT,
    ExitEvent,
    FaultEvent,
    IcountStopEvent,
    Process,
    SIGTRAP,
)
from repro.machines.memory import PAGE, TargetMemory

COUNT = """int total;
int main(void) {
    int i;
    for (i = 1; i <= 12; i++)
        total = total + i;
    printf("total=%d\\n", total);
    return 3;
}
"""


def _fresh(arch):
    exe = compile_and_link({"count.c": COUNT}, arch, debug=True)
    return Process(exe, stdout=io.StringIO())


def _skip_entry_pause(p):
    """Without a nub attached, hop over the __nub_pause trap."""
    event = p.run_until_event()
    assert isinstance(event, FaultEvent) and event.signo == SIGTRAP
    p.cpu.pc = event.pc + p.arch.noop_advance


def _machine_state(p):
    return (list(p.cpu.regs), list(p.cpu.fregs), p.cpu.pc, p.cpu.icount,
            bytes(p.mem.bytes), p.output())


class TestMemorySnapshots:
    def test_snapshot_copies_nothing_until_written(self):
        mem = TargetMemory(4 * PAGE)
        snap = mem.snapshot()
        assert snap.cost_pages() == 0
        mem.write_u32(0, 0xDEAD)
        assert snap.cost_pages() == 1  # only the touched page

    def test_restore_rewinds_only_captured_pages(self):
        mem = TargetMemory(4 * PAGE)
        mem.write_u32(PAGE, 1)
        snap = mem.snapshot()
        mem.write_u32(PAGE, 2)
        mem.write_u32(3 * PAGE, 7)
        mem.restore(snap)
        assert mem.read_u32(PAGE) == 1
        assert mem.read_u32(3 * PAGE) == 0
        assert snap.cost_pages() == 2

    def test_snapshot_survives_restore(self):
        mem = TargetMemory(2 * PAGE)
        snap = mem.snapshot()
        mem.write_u32(0, 5)
        mem.restore(snap)
        mem.write_u32(0, 9)
        mem.restore(snap)  # restorable again and again
        assert mem.read_u32(0) == 0

    def test_two_snapshots_restore_in_any_order(self):
        mem = TargetMemory(2 * PAGE)
        mem.write_u32(0, 1)
        early = mem.snapshot()
        mem.write_u32(0, 2)
        late = mem.snapshot()
        mem.write_u32(0, 3)
        mem.restore(early)
        assert mem.read_u32(0) == 1
        mem.restore(late)
        assert mem.read_u32(0) == 2
        mem.restore(early)
        assert mem.read_u32(0) == 1

    def test_write_spanning_pages_captures_both(self):
        mem = TargetMemory(4 * PAGE)
        snap = mem.snapshot()
        mem.write_bytes(PAGE - 2, b"\x01\x02\x03\x04")
        assert snap.cost_pages() == 2

    def test_released_snapshot_rejected(self):
        mem = TargetMemory(2 * PAGE)
        snap = mem.snapshot()
        mem.release(snap)
        with pytest.raises(ValueError):
            mem.restore(snap)
        mem.release(snap)  # double release is harmless


class TestStopAtIcount:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_icount_stop_between_instructions(self, arch):
        p = _fresh(arch)
        _skip_entry_pause(p)
        event = p.run_until_event(stop_at_icount=p.cpu.icount + 10)
        assert isinstance(event, IcountStopEvent)
        assert event.signo == SIGTRAP and event.code == CODE_ICOUNT
        assert p.cpu.icount == event.icount

    def test_exit_event_reports_icount(self):
        p = _fresh("rmips")
        _skip_entry_pause(p)
        event = p.run_until_event()
        assert isinstance(event, ExitEvent)
        assert event.status == 3
        assert event.icount == p.cpu.icount
        assert "icount=%d" % event.icount in repr(event)

    def test_fault_event_reports_icount(self):
        p = _fresh("rmips")
        event = p.run_until_event()  # the entry-pause trap
        assert isinstance(event, FaultEvent)
        assert event.icount == p.cpu.icount
        assert "icount=%d" % event.icount in repr(event)


class TestProcessSnapshots:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_snapshot_restore_replays_identically(self, arch):
        p = _fresh(arch)
        _skip_entry_pause(p)
        p.run_until_event(stop_at_icount=p.cpu.icount + 25)
        snap = p.snapshot()
        first = p.run_until_event()
        assert isinstance(first, ExitEvent)
        state_a = _machine_state(p)
        p.restore(snap)
        assert p.cpu.icount == snap.icount
        second = p.run_until_event()
        assert isinstance(second, ExitEvent)
        assert second.status == first.status
        assert _machine_state(p) == state_a

    def test_restore_truncates_output(self):
        p = _fresh("rmips")
        _skip_entry_pause(p)
        snap = p.snapshot()
        p.run_until_event()
        assert "total=78" in p.output()
        p.restore(snap)
        assert p.output() == ""

    def test_restore_rewinds_exit_state(self):
        p = _fresh("rmips")
        _skip_entry_pause(p)
        snap = p.snapshot()
        p.run_until_event()
        assert p.exited == 3
        p.restore(snap)
        assert p.exited is None

    def test_release_snapshot_stops_cow(self):
        p = _fresh("rmips")
        snap = p.snapshot()
        p.release_snapshot(snap)
        _skip_entry_pause(p)
        p.run_until_event(stop_at_icount=p.cpu.icount + 10)
        assert snap.mem.cost_pages() == 0
