"""Target memory tests: typed access, endianness, faults."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import MemoryFault, TargetMemory


class TestIntegers:
    def test_u32_round_trip_little(self):
        mem = TargetMemory(256, "little")
        mem.write_u32(0, 0x12345678)
        assert mem.read_u32(0) == 0x12345678
        assert mem.read_bytes(0, 4) == b"\x78\x56\x34\x12"

    def test_u32_round_trip_big(self):
        mem = TargetMemory(256, "big")
        mem.write_u32(0, 0x12345678)
        assert mem.read_bytes(0, 4) == b"\x12\x34\x56\x78"

    def test_signed_read(self):
        mem = TargetMemory(256, "little")
        mem.write_u32(0, 0xFFFFFFFF)
        assert mem.read_i32(0) == -1
        mem.write_u16(8, 0x8000)
        assert mem.read_i16(8) == -32768
        mem.write_u8(12, 0xFF)
        assert mem.read_i8(12) == -1

    def test_write_negative(self):
        mem = TargetMemory(256, "little")
        mem.write_int(0, 4, -2)
        assert mem.read_u32(0) == 0xFFFFFFFE

    def test_byteorder_visible_at_byte_level(self):
        """The byte-order fact the register memory must hide (Sec. 4.1)."""
        big = TargetMemory(16, "big")
        little = TargetMemory(16, "little")
        big.write_u32(0, 0x41)
        little.write_u32(0, 0x41)
        assert big.read_u8(3) == 0x41 and big.read_u8(0) == 0
        assert little.read_u8(0) == 0x41 and little.read_u8(3) == 0

    @given(st.integers(0, 2**32 - 1),
           st.sampled_from(["big", "little"]))
    def test_u32_round_trip_property(self, value, order):
        mem = TargetMemory(64, order)
        mem.write_u32(4, value)
        assert mem.read_u32(4) == value

    @given(st.integers(-(2**31), 2**31 - 1),
           st.sampled_from(["big", "little"]))
    def test_i32_round_trip_property(self, value, order):
        mem = TargetMemory(64, order)
        mem.write_int(4, 4, value)
        assert mem.read_i32(4) == value


class TestFloats:
    @pytest.mark.parametrize("order", ["big", "little"])
    def test_f32(self, order):
        mem = TargetMemory(64, order)
        mem.write_f32(0, 1.5)
        assert mem.read_f32(0) == 1.5

    @pytest.mark.parametrize("order", ["big", "little"])
    def test_f64(self, order):
        mem = TargetMemory(64, order)
        mem.write_f64(0, -2.25e10)
        assert mem.read_f64(0) == -2.25e10

    @pytest.mark.parametrize("order", ["big", "little"])
    def test_f80(self, order):
        mem = TargetMemory(64, order)
        mem.write_f80(0, 3.25)
        assert mem.read_f80(0) == 3.25

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32),
           st.sampled_from(["big", "little"]))
    def test_f32_round_trip_property(self, value, order):
        mem = TargetMemory(64, order)
        mem.write_f32(0, value)
        assert mem.read_f32(0) == value

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.sampled_from(["big", "little"]))
    def test_f64_round_trip_property(self, value, order):
        mem = TargetMemory(64, order)
        mem.write_f64(0, value)
        assert mem.read_f64(0) == value


class TestKinds:
    @pytest.mark.parametrize("kind,value", [
        ("i8", -5), ("i16", -300), ("i32", -70000),
        ("f32", 0.5), ("f64", 2.5), ("f80", -1.25),
    ])
    def test_kind_round_trip(self, kind, value):
        mem = TargetMemory(64, "big")
        mem.write_kind(0, kind, value)
        assert mem.read_kind(0, kind) == value

    def test_unknown_kind_raises(self):
        mem = TargetMemory(64)
        with pytest.raises(ValueError):
            mem.read_kind(0, "i64")


class TestStrings:
    def test_cstring_round_trip(self):
        mem = TargetMemory(256)
        mem.write_cstring(10, "hello world")
        assert mem.read_cstring(10) == "hello world"

    def test_cstring_empty(self):
        mem = TargetMemory(64)
        mem.write_cstring(0, "")
        assert mem.read_cstring(0) == ""


class TestFaults:
    def test_read_past_end(self):
        mem = TargetMemory(64)
        with pytest.raises(MemoryFault) as info:
            mem.read_u32(62)
        assert info.value.address == 62

    def test_negative_address(self):
        mem = TargetMemory(64)
        with pytest.raises(MemoryFault):
            mem.read_u8(-1)

    def test_write_past_end(self):
        mem = TargetMemory(64)
        with pytest.raises(MemoryFault):
            mem.write_u32(61, 1)

    def test_boundary_access_ok(self):
        mem = TargetMemory(64)
        mem.write_u32(60, 7)
        assert mem.read_u32(60) == 7

    def test_bad_byteorder_rejected(self):
        with pytest.raises(ValueError):
            TargetMemory(64, "middle")
