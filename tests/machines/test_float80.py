"""80-bit extended float codec tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import float80


class TestRoundTrip:
    @pytest.mark.parametrize("value", [
        0.0, 1.0, -1.0, 0.5, -0.5, 2.0, 1e10, -1e-10, 3.141592653589793,
        1.5e308, 5e-324, 2**52 + 1.0, -(2**63) * 1.0,
    ])
    def test_exact_values(self, value):
        assert float80.decode(float80.encode(value)) == value

    def test_negative_zero(self):
        decoded = float80.decode(float80.encode(-0.0))
        assert decoded == 0.0 and math.copysign(1.0, decoded) < 0

    def test_positive_infinity(self):
        assert float80.decode(float80.encode(math.inf)) == math.inf

    def test_negative_infinity(self):
        assert float80.decode(float80.encode(-math.inf)) == -math.inf

    def test_nan(self):
        assert math.isnan(float80.decode(float80.encode(math.nan)))

    def test_size(self):
        assert len(float80.encode(1.5)) == float80.SIZE == 10

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_every_double_round_trips(self, value):
        """Every IEEE double is exactly representable in extended format."""
        assert float80.decode(float80.encode(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_big_endian_round_trip(self, value):
        assert float80.decode_be(float80.encode_be(value)) == value


class TestFormat:
    def test_one_encoding(self):
        """1.0 = sign 0, exponent 16383, mantissa with integer bit only."""
        raw = float80.encode(1.0)
        assert raw[8:] == (16383).to_bytes(2, "little")
        assert int.from_bytes(raw[:8], "little") == 1 << 63

    def test_sign_bit(self):
        raw = float80.encode(-1.0)
        se = int.from_bytes(raw[8:], "little")
        assert se & 0x8000

    def test_decode_rejects_short_input(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            float80.decode(b"\0\0")

    def test_integer_input_coerced(self):
        assert float80.decode(float80.encode(7)) == 7.0

    def test_endianness_reversal(self):
        assert float80.encode_be(2.5) == bytes(reversed(float80.encode(2.5)))
