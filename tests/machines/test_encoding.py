"""Instruction encode/decode round-trip tests for all four targets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import TargetMemory, get_arch
from repro.machines.isa import Insn
from repro.machines.vax import Operand


def round_trip(arch_name, insn):
    arch = get_arch(arch_name)
    mem = TargetMemory(256, byteorder=arch.byteorder)
    raw = arch.encode(insn)
    mem.write_bytes(0, raw)
    decoded = arch.decode(mem, 0)
    assert decoded.size == len(raw) == arch.insn_length(insn)
    return decoded


class TestRMips:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "slt", "fadd"])
    def test_r_type(self, op):
        decoded = round_trip("rmips", Insn(op, rd=3, rs=7, rt=12))
        assert (decoded.op, decoded.rd, decoded.rs, decoded.rt) == (op, 3, 7, 12)

    @pytest.mark.parametrize("imm", [0, 1, -1, 32767, -32768])
    def test_i_type_signed(self, imm):
        decoded = round_trip("rmips", Insn("addi", rd=2, rs=4, imm=imm))
        assert decoded.imm == imm

    def test_ori_unsigned(self):
        decoded = round_trip("rmips", Insn("ori", rd=2, rs=2, imm=0xFFFF))
        assert decoded.imm == 0xFFFF

    def test_j_type(self):
        decoded = round_trip("rmips", Insn("jal", target=0x2270))
        assert decoded.op == "jal" and decoded.target == 0x2270

    def test_imm_out_of_range_rejected(self):
        arch = get_arch("rmips")
        with pytest.raises(ValueError):
            arch.encode(Insn("addi", rd=1, rs=1, imm=1 << 20))

    def test_unresolved_symbol_rejected(self):
        arch = get_arch("rmips")
        with pytest.raises(ValueError):
            arch.encode(Insn("jal", target="_main"))

    @given(st.integers(0, 31), st.integers(0, 31), st.integers(-(1 << 15), (1 << 15) - 1))
    def test_load_round_trip_property(self, rd, rs, imm):
        decoded = round_trip("rmips", Insn("lw", rd=rd, rs=rs, imm=imm))
        assert (decoded.rd, decoded.rs, decoded.imm) == (rd, rs, imm)

    def test_little_endian_variant_same_insn(self):
        big = get_arch("rmips")
        little = get_arch("rmipsel")
        insn = Insn("addi", rd=1, rs=2, imm=5)
        raw_big = big.encode(insn)
        raw_little = little.encode(Insn("addi", rd=1, rs=2, imm=5))
        assert raw_big == bytes(reversed(raw_little))


class TestRSparc:
    def test_reg_form(self):
        decoded = round_trip("rsparc", Insn("add", rd=1, rs=2, rt=3))
        assert (decoded.rd, decoded.rs, decoded.rt) == (1, 2, 3)
        assert decoded.imm is None

    @pytest.mark.parametrize("imm", [0, 5, -1, 4095, -4096])
    def test_imm_form(self, imm):
        decoded = round_trip("rsparc", Insn("add", rd=1, rs=2, imm=imm))
        assert decoded.imm == imm

    def test_sethi(self):
        decoded = round_trip("rsparc", Insn("sethi", rd=3, imm=0x7FFFF))
        assert decoded.imm == 0x7FFFF

    def test_call(self):
        decoded = round_trip("rsparc", Insn("call", target=0x4000))
        assert decoded.target == 0x4000

    def test_simm13_overflow_rejected(self):
        arch = get_arch("rsparc")
        with pytest.raises(ValueError):
            arch.encode(Insn("add", rd=1, rs=1, imm=5000))

    @given(st.integers(0, 31), st.integers(0, 31), st.integers(-4096, 4095))
    def test_ld_round_trip_property(self, rd, rs, imm):
        decoded = round_trip("rsparc", Insn("ld", rd=rd, rs=rs, imm=imm))
        assert (decoded.rd, decoded.rs, decoded.imm) == (rd, rs, imm)


class TestRM68k:
    def test_plain(self):
        decoded = round_trip("rm68k", Insn("add", rd=3, rs=5))
        assert (decoded.op, decoded.rd, decoded.rs) == ("add", 3, 5)
        assert decoded.size == 2

    @pytest.mark.parametrize("disp", [0, 100, -100, 32767, -32768])
    def test_disp16(self, disp):
        decoded = round_trip("rm68k", Insn("load32", rd=1, rs=14, imm=disp))
        assert decoded.imm == disp
        assert decoded.size == 4

    @pytest.mark.parametrize("imm", [0, 1, -1, 2**31 - 1, -(2**31)])
    def test_imm32(self, imm):
        decoded = round_trip("rm68k", Insn("movei", rd=2, imm=imm))
        assert decoded.imm == imm
        assert decoded.size == 6

    def test_jsr(self):
        decoded = round_trip("rm68k", Insn("jsr", target=0x2270))
        assert decoded.target == 0x2270

    def test_float_immediate(self):
        decoded = round_trip("rm68k", Insn("fmovei", rd=1, imm=2.5))
        assert decoded.imm == 2.5
        assert decoded.size == 10

    def test_nop_is_real_68k_encoding(self):
        arch = get_arch("rm68k")
        assert arch.nop_bytes == b"\x4e\x71"
        assert arch.break_bytes == b"\x48\x48"

    def test_variable_lengths(self):
        arch = get_arch("rm68k")
        assert arch.insn_length(Insn("move", rd=0, rs=1)) == 2
        assert arch.insn_length(Insn("load32", rd=0, rs=1, imm=0)) == 4
        assert arch.insn_length(Insn("movei", rd=0, imm=0)) == 6


class TestRVax:
    def test_register_operands(self):
        insn = Insn("movl", imm=[Operand.reg_(1), Operand.reg_(2)])
        decoded = round_trip("rvax", insn)
        assert decoded.imm[0].mode == 0 and decoded.imm[0].reg == 1
        assert decoded.imm[1].reg == 2
        assert decoded.size == 3

    def test_disp8_operand(self):
        insn = Insn("movl", imm=[Operand.disp(13, -8), Operand.reg_(1)])
        decoded = round_trip("rvax", insn)
        assert decoded.imm[0].mode == 2 and decoded.imm[0].ext == -8

    def test_disp32_operand(self):
        insn = Insn("movl", imm=[Operand.disp(13, 100000), Operand.reg_(1)])
        decoded = round_trip("rvax", insn)
        assert decoded.imm[0].mode == 3 and decoded.imm[0].ext == 100000

    def test_immediate_operand(self):
        insn = Insn("pushl", imm=[Operand.imm(0xDEADBEEF)])
        decoded = round_trip("rvax", insn)
        assert decoded.imm[0].ext == 0xDEADBEEF

    def test_absolute_operand(self):
        insn = Insn("movl", imm=[Operand.absolute(0x8000), Operand.reg_(0)])
        decoded = round_trip("rvax", insn)
        assert decoded.imm[0].mode == 5 and decoded.imm[0].ext == 0x8000

    def test_float_immediate_operand(self):
        insn = Insn("movd", imm=[Operand.fimm(1.25), Operand.reg_(0)])
        decoded = round_trip("rvax", insn)
        assert decoded.imm[0].ext == 1.25

    def test_three_operand_add(self):
        insn = Insn("addl3", imm=[Operand.reg_(1), Operand.reg_(2), Operand.reg_(3)])
        decoded = round_trip("rvax", insn)
        assert len(decoded.imm) == 3

    def test_branch(self):
        decoded = round_trip("rvax", Insn("beql", imm=-20))
        assert decoded.imm == -20
        assert decoded.size == 3

    def test_nop_is_one_byte(self):
        """Byte-granular instructions: the breakpoint overwrites 1 byte."""
        arch = get_arch("rvax")
        assert len(arch.nop_bytes) == 1
        assert arch.break_bytes == b"\x03"  # the real VAX BPT opcode

    def test_disp_picks_smallest_encoding(self):
        assert Operand.disp(1, 10).mode == 2
        assert Operand.disp(1, 1000).mode == 3


class TestNoopAdvance:
    """The four machine-dependent breakpoint data items (paper Sec. 3)."""

    @pytest.mark.parametrize("arch_name,advance", [
        ("rmips", 4), ("rsparc", 4), ("rm68k", 2), ("rvax", 1)])
    def test_advance_matches_nop_size(self, arch_name, advance):
        arch = get_arch(arch_name)
        assert arch.noop_advance == advance
        assert len(arch.nop_bytes) == advance

    @pytest.mark.parametrize("arch_name", ["rmips", "rsparc", "rm68k", "rvax"])
    def test_break_and_nop_differ(self, arch_name):
        arch = get_arch(arch_name)
        assert arch.break_bytes != arch.nop_bytes
        assert len(arch.break_bytes) <= len(arch.nop_bytes)
