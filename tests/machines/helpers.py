"""Hand-assembly helpers for machine tests: tiny programs per target."""

from repro.machines import ObjectUnit, Symbol, get_arch, link
from repro.machines.isa import Insn, Label
from repro.machines.vax import Operand


def null_startup(arch, stack_top):
    """No startup code; the Process sets sp and jumps to __start."""
    return [], [], []


def build(arch_name, text, data=b"", symbols=(), relocs=(), funcs=()):
    """Link a hand-written instruction list into an Executable."""
    arch = get_arch(arch_name)
    unit = ObjectUnit("<test>", arch_name)
    unit.text = list(text)
    unit.data = bytearray(data)
    unit.symbols = list(symbols)
    unit.data_relocs = list(relocs)
    unit.funcs = list(funcs)
    return link(arch, [unit], null_startup)


def exit_program(arch_name, status):
    """A program that calls exit(status), per-target conventions."""
    if arch_name in ("rmips", "rmipsel"):
        return build(arch_name, [
            Label("__start"),
            Insn("addi", rd=4, rs=0, imm=status),   # a0 = status
            Insn("syscall", imm=1),
        ])
    if arch_name == "rsparc":
        return build(arch_name, [
            Label("__start"),
            Insn("add", rd=8, rs=0, imm=status),    # o0 = status
            Insn("syscall", imm=1),
        ])
    if arch_name == "rm68k":
        return build(arch_name, [
            Label("__start"),
            Insn("movei", rd=1, imm=status),
            Insn("push", rs=1),                     # the argument
            Insn("movei", rd=1, imm=0),
            Insn("push", rs=1),                     # fake return address
            Insn("syscall", imm=1),
        ])
    if arch_name == "rvax":
        return build(arch_name, [
            Label("__start"),
            Insn("pushl", imm=[Operand.imm(status)]),
            Insn("pushl", imm=[Operand.imm(0)]),    # fake return address
            Insn("syscall", imm=1),
        ])
    raise ValueError(arch_name)
