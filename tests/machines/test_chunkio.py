"""The shared chunked-container codec (repro.machines.chunkio).

The CoreFile container code moved here verbatim; these tests pin the
byte layout (expected bytes are rebuilt with the runtime's zlib, so
they stay valid across zlib versions) and the sparse-segment scan, and
prove CoreFile round-trips are unchanged by the extraction.
"""

import struct
import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines.chunkio import (
    pack_block,
    pack_container,
    sparse_segments,
    unpack_block,
    unpack_container,
)


class CodecError(Exception):
    pass


class TestContainerLayout:
    def test_container_bytes_are_exactly_the_core_layout(self):
        body = b"hello container" * 10
        raw = pack_container(b"LDBC", 3, body)
        packed = zlib.compress(body, 6)
        expected = (b"LDBC" + struct.pack("<HHI", 3, 0, len(packed))
                    + struct.pack("<I", zlib.crc32(packed) & 0xFFFFFFFF)
                    + packed)
        assert raw == expected

    def test_round_trip(self):
        body = bytes(range(256)) * 7
        raw = pack_container(b"XYZW", 1, body)
        assert unpack_container(raw, b"XYZW", 1, CodecError, "thing") == body

    def test_older_version_still_loads(self):
        raw = pack_container(b"XYZW", 1, b"old")
        assert unpack_container(raw, b"XYZW", 5, CodecError, "thing") == b"old"

    def test_bad_magic(self):
        raw = pack_container(b"XYZW", 1, b"data")
        with pytest.raises(CodecError, match="bad magic"):
            unpack_container(b"ABCD" + raw[4:], b"XYZW", 1, CodecError, "t")

    def test_future_version_refused(self):
        raw = pack_container(b"XYZW", 9, b"data")
        with pytest.raises(CodecError, match="newer"):
            unpack_container(raw, b"XYZW", 1, CodecError, "t")

    def test_truncated_body(self):
        raw = pack_container(b"XYZW", 1, b"data" * 100)
        with pytest.raises(CodecError, match="truncated"):
            unpack_container(raw[:-3], b"XYZW", 1, CodecError, "t")

    def test_flipped_bit_fails_crc(self):
        raw = bytearray(pack_container(b"XYZW", 1, b"data" * 100))
        raw[-1] ^= 0x40
        with pytest.raises(CodecError, match="CRC"):
            unpack_container(bytes(raw), b"XYZW", 1, CodecError, "t")

    def test_crc_ok_but_undecompressable(self):
        # valid CRC over a body that is not a zlib stream
        packed = b"this is not zlib"
        raw = (b"XYZW" + struct.pack("<HHI", 1, 0, len(packed))
               + struct.pack("<I", zlib.crc32(packed) & 0xFFFFFFFF) + packed)
        with pytest.raises(CodecError, match="decompress"):
            unpack_container(raw, b"XYZW", 1, CodecError, "t")

    def test_too_short_for_header(self):
        with pytest.raises(CodecError, match="bad magic"):
            unpack_container(b"XY", b"XYZW", 1, CodecError, "t")


class TestBlocks:
    def test_round_trip_and_chaining(self):
        raw = pack_block(1, b"first") + pack_block(2, b"second" * 50)
        kind, body, offset = unpack_block(raw, 0, CodecError, "t")
        assert (kind, body) == (1, b"first")
        kind, body, offset = unpack_block(raw, offset, CodecError, "t")
        assert (kind, body) == (2, b"second" * 50)
        assert offset == len(raw)

    def test_truncated_header(self):
        raw = pack_block(1, b"data")
        with pytest.raises(CodecError, match="truncated"):
            unpack_block(raw[:4], 0, CodecError, "t")

    def test_truncated_block_body(self):
        raw = pack_block(1, b"data" * 100)
        with pytest.raises(CodecError, match="truncated"):
            unpack_block(raw[:-5], 0, CodecError, "t")

    def test_corrupt_block_crc(self):
        raw = bytearray(pack_block(1, b"data" * 100))
        raw[-1] ^= 0x01
        with pytest.raises(CodecError, match="CRC"):
            unpack_block(bytes(raw), 0, CodecError, "t")

    @given(st.integers(0, 255), st.binary(max_size=512))
    def test_any_kind_any_body_round_trips(self, kind, body):
        raw = pack_block(kind, body)
        got_kind, got_body, offset = unpack_block(raw, 0, CodecError, "t")
        assert (got_kind, got_body, offset) == (kind, body, len(raw))


class TestSparseSegments:
    def test_all_zero_image_has_no_segments(self):
        assert sparse_segments(bytes(4096)) == []

    def test_single_byte_lands_in_one_chunk(self):
        image = bytearray(1024)
        image[300] = 7
        segments = sparse_segments(bytes(image))
        assert len(segments) == 1
        base, data = segments[0]
        assert base <= 300 < base + len(data)
        assert data[300 - base] == 7

    def test_adjacent_chunks_coalesce(self):
        image = bytearray(4096)
        image[0:600] = b"\x01" * 600  # spans chunks 0,1,2
        segments = sparse_segments(bytes(image))
        assert len(segments) == 1

    def test_separated_runs_stay_separate(self):
        image = bytearray(8192)
        image[10] = 1
        image[5000] = 2
        segments = sparse_segments(bytes(image))
        assert len(segments) == 2

    @given(st.binary(max_size=2048))
    def test_segments_reconstruct_the_image(self, image):
        rebuilt = bytearray(len(image))
        for base, data in sparse_segments(image):
            rebuilt[base:base + len(data)] = data
        assert bytes(rebuilt) == image


class TestCoreFileUnchanged:
    """The extraction must not have changed CoreFile's wire format."""

    def test_core_round_trip_after_extraction(self):
        from repro.machines.core import MAGIC, CoreFile

        core = CoreFile(
            arch_name="rmips", byteorder="big", memsize=1 << 16,
            context_addr=0x100, icount=1234, signo=11, code=0,
            fault_pc=0x2040,
            segments=[(0x2000, b"\x01\x02\x03"), (0x8000, b"stack")],
            planted=[(0x2010, b"\x0d\x00\x00\x00")],
            loader_ps="/LoaderTable 1 dict def")
        raw = core.to_bytes()
        assert raw[:4] == MAGIC
        back = CoreFile.from_bytes(raw)
        assert back.arch_name == core.arch_name
        assert back.icount == core.icount
        assert back.segments == core.segments
        assert back.planted == core.planted
        assert back.loader_ps == core.loader_ps
        assert back.to_bytes() == raw
