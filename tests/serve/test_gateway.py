"""The JSON-line gateway: envelope discipline, malformed input, and
the no-head-of-line-blocking guarantee across sessions."""

import json
import socket
import threading
import time

import pytest

from repro.serve import RemoteError

from tests.serve.helpers import COUNTER, server, spawn


def raw_lines(srv, payloads, expect, timeout=30.0):
    """Pipeline raw request lines on one socket; collect `expect`
    reply lines in arrival order."""
    sock = socket.create_connection((srv.host, srv.port), timeout=timeout)
    sock.settimeout(timeout)
    f = sock.makefile("rb")
    for payload in payloads:
        sock.sendall(payload if isinstance(payload, bytes)
                     else json.dumps(payload).encode() + b"\n")
    replies = [json.loads(f.readline()) for _ in range(expect)]
    sock.close()
    return replies


def test_malformed_json_is_answered():
    with server() as srv:
        (reply,) = raw_lines(srv, [b"this is not json\n"], 1)
        assert reply["ok"] is False
        assert reply["id"] is None
        assert reply["error"]["code"] == "ERR_BAD_REQUEST"


def test_non_object_request_is_answered():
    with server() as srv:
        (reply,) = raw_lines(srv, [b"[1, 2, 3]\n"], 1)
        assert reply["error"]["code"] == "ERR_BAD_REQUEST"


def test_unknown_op_is_answered():
    with server() as srv:
        (reply,) = raw_lines(srv, [{"id": 9, "op": "launch_missiles"}], 1)
        assert reply["id"] == 9
        assert reply["error"]["code"] == "ERR_BAD_REQUEST"


def test_out_of_order_replies():
    """A fast request pipelined behind a slow one overtakes it — the
    connection never serializes unrelated work."""
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client)
        # no breakpoint: continue runs the whole loop program (slow);
        # sessions (no session work at all) must answer first
        slow = {"id": 1, "op": "command", "session": sid, "token": token,
                "cmd": "continue", "deadline": 30.0}
        fast = {"id": 2, "op": "sessions"}
        replies = raw_lines(srv, [slow, fast], 2, timeout=60.0)
        assert [r["id"] for r in replies] == [2, 1]
        assert replies[1]["result"]["event"] == "exit"


def test_slow_session_never_blocks_another():
    with server() as srv:
        client = srv.client()
        slow_sid, slow_token = spawn(client)
        fast_sid, fast_token = spawn(client)
        done = {}

        def run_slow():
            done["slow"] = client.command(slow_sid, slow_token, "continue",
                                          deadline=30.0)
        thread = threading.Thread(target=run_slow)
        thread.start()
        # while the slow session grinds through its loop, the fast one
        # answers pings promptly on the SAME client connection
        started = time.monotonic()
        assert client.command(fast_sid, fast_token, "ping") == {"pong": True}
        assert time.monotonic() - started < 5.0
        thread.join(60.0)
        assert done["slow"]["event"] == "exit"


def test_client_matches_out_of_order_replies():
    """GatewayClient.request on a shared socket stays id-correct."""
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client)
        results = {}

        def call(name, **kw):
            results[name] = client.command(sid, token, **kw)
        # serialized here (GatewayClient is one-request-at-a-time per
        # caller), but exercises the pending-reply buffer path
        call("a", cmd="ping")
        call("b", cmd="status")
        assert results["a"] == {"pong": True}
        assert results["b"]["target"]["state"] == "stopped"
        client.detach(sid, token)


def test_shutdown_answers_inflight_typed():
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client)
        failure = {}

        def run_slow():
            try:
                failure["result"] = client.command(sid, token, "continue",
                                                   deadline=30.0)
            except (RemoteError, ConnectionError, OSError) as err:
                failure["error"] = err
        thread = threading.Thread(target=run_slow)
        thread.start()
        time.sleep(0.3)
        srv.close()
        thread.join(30.0)
        assert not thread.is_alive()
        # the in-flight command resolved: a result (it finished first),
        # a typed error, or — the floor — an orderly connection close
        assert failure, "in-flight command never resolved"


def test_stats_surface():
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client)
        client.command(sid, token, "ping")
        stats = client.stats()
        assert stats["serve.spawns"] == 1
        assert stats["serve.commands"] >= 1
        assert stats["serve.sessions"] == 1
        assert "serve.cmd_latency_us.count" in stats or any(
            k.startswith("serve.cmd_latency_us") for k in stats)
