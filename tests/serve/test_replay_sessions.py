"""Hosted replay sessions: the `replay` gateway op serves a saved
recording through the same supervised worker/command surface as live
sessions — including the reverse of the usual flow, where a crash
recorded on one machine is debugged on a server that never ran it."""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.serve import RemoteError

from tests.serve.helpers import server

BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""


@pytest.fixture(scope="module")
def recording_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("rec") / "boom.ldbrec")
    exe = compile_and_link({"boom.c": BOOM}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.start_recording(path=path, interval=37)
    ldb.break_at_function("poke")
    assert ldb.run_to_stop() == "stopped"
    assert ldb.run_to_stop() == "stopped" and target.signo == 11
    ldb.record_save()
    return path


def test_replay_session_answers_commands(recording_path):
    with server() as srv:
        client = srv.client()
        info = client.replay(path=recording_path)
        sid, token = info["session"], info["token"]
        out = client.command(sid, token, "status")
        assert out["target"]["replaying"] is True
        assert out["target"]["state"] == "stopped"
        out = client.command(sid, token, "backtrace")
        assert any(frame["proc"] == "main" for frame in out["frames"])
        out = client.command(sid, token, "print", {"expr": "g + 0"})
        assert out["value"] == 15
        client.detach(sid, token)


def test_replay_needs_a_path():
    with server() as srv:
        client = srv.client()
        with pytest.raises(RemoteError) as info:
            client.replay()
        assert info.value.code == "ERR_SPAWN_FAILED"


def test_replay_of_a_missing_file_is_typed():
    with server() as srv:
        client = srv.client()
        with pytest.raises(RemoteError) as info:
            client.replay(path="/nonexistent/nope.ldbrec")
        assert info.value.code == "ERR_SPAWN_FAILED"
