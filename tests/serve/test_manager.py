"""SessionManager policies through the running server: admission,
auth, idle reaping, the watchdog, and shutdown draining."""

import time

import pytest

from repro.serve import RemoteError

from tests.serve.helpers import QUICK, server, spawn


def test_max_sessions_backpressure():
    with server(max_sessions=2) as srv:
        client = srv.client()
        spawn(client)
        spawn(client)
        with pytest.raises(RemoteError) as err:
            spawn(client)
        assert err.value.code == "ERR_BUSY"
        assert err.value.retryable


def test_auth_token_required():
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client)
        with pytest.raises(RemoteError) as err:
            client.command(sid, "wrong-token", "ping")
        assert err.value.code == "ERR_AUTH"
        with pytest.raises(RemoteError) as err:
            client.command(sid, None, "ping")
        assert err.value.code == "ERR_AUTH"
        # tokens are per-session: one session's token opens no other
        sid2, token2 = spawn(client)
        with pytest.raises(RemoteError) as err:
            client.command(sid2, token, "ping")
        assert err.value.code == "ERR_AUTH"
        assert client.command(sid, token, "ping") == {"pong": True}


def test_unknown_session_is_typed():
    with server() as srv:
        client = srv.client()
        with pytest.raises(RemoteError) as err:
            client.command("s9999", "whatever", "ping")
        assert err.value.code == "ERR_NO_SESSION"


def test_deterministic_tokens_with_seed():
    with server(token_seed=42) as a:
        _, token_a = spawn(a.client())
    with server(token_seed=42) as b:
        _, token_b = spawn(b.client())
    assert token_a == token_b  # seeded runs replay exactly


def test_idle_sessions_are_reaped():
    with server(idle_ttl=0.3, reap_interval=0.05) as srv:
        client = srv.client()
        sid, token = spawn(client)
        assert client.sessions()
        deadline = time.monotonic() + 10.0
        while client.sessions() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert client.sessions() == []  # reaped, not leaked
        stats = client.stats()
        assert stats.get("serve.reaps", 0) >= 1
        assert stats.get("serve.sessions", 0) == 0
        # the reaped id answers typed forever after
        with pytest.raises(RemoteError) as err:
            client.command(sid, token, "ping")
        assert err.value.code == "ERR_NO_SESSION"


def test_watchdog_expires_wedged_session():
    with server(hang_grace=0.3, reap_interval=0.05, idle_ttl=60.0) as srv:
        client = srv.client()
        sid, token = spawn(client)
        worker = srv.manager.sessions[sid]
        # wedge the session in a way no deadline plumbing can reach:
        # the command itself ignores its timeout entirely
        worker.api.execute = lambda cmd, args, timeout=None: time.sleep(8.0)
        with pytest.raises(RemoteError) as err:
            client.command(sid, token, "status", deadline=0.3)
        assert err.value.code in ("ERR_DEADLINE", "ERR_SESSION_EXPIRED")
        deadline = time.monotonic() + 5.0
        while worker.state != "expired" and time.monotonic() < deadline:
            time.sleep(0.05)
        assert worker.state == "expired"
        assert client.stats().get("serve.hangs", 0) >= 1


def test_command_on_exited_target_answers_typed():
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client, source=QUICK)
        event = client.command(sid, token, "continue", deadline=10.0)
        assert event == {"event": "exit", "status": 42}
        with pytest.raises(RemoteError) as err:
            client.command(sid, token, "step")
        assert err.value.code == "ERR_TARGET_STATE"
        client.detach(sid, token)


def test_detach_requires_auth_and_removes():
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client)
        with pytest.raises(RemoteError) as err:
            client.detach(sid, "nope")
        assert err.value.code == "ERR_AUTH"
        out = client.detach(sid, token)
        assert out == {"session": sid, "state": "closed"}
        assert client.sessions() == []


def test_spawn_failure_is_typed_and_not_leaked():
    with server() as srv:
        client = srv.client()
        with pytest.raises(RemoteError) as err:
            client.spawn(source="int main(void) { return syntax error }")
        assert err.value.code == "ERR_SPAWN_FAILED"
        assert client.sessions() == []
        with pytest.raises(RemoteError) as err:
            client.spawn()  # no source at all
        assert err.value.code == "ERR_SPAWN_FAILED"


def test_bad_fault_spec_is_typed():
    with server() as srv:
        client = srv.client()
        with pytest.raises(RemoteError) as err:
            client.spawn(source=QUICK, fault={"seed": 1, "dorp": 0.5})
        assert err.value.code == "ERR_SPAWN_FAILED"
        assert "dorp" in str(err.value)
        assert client.sessions() == []
