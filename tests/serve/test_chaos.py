"""The chaos suite: seeded fault schedules against hosted sessions.

The server's whole robustness contract, asserted across >= 20 seeded
schedules (ISSUE acceptance floor):

* every command sent is *answered* — a result or a typed error code,
  never a silent hang, never a raw traceback, never a dropped socket;
* a faulted session never perturbs an unrelated session sharing the
  server (no head-of-line blocking, no cross-session state);
* after detach, nothing leaks: zero sessions in the table, zero
  sessions in the gauges, whatever the schedule did;
* a killed nub leaves the session *inspectable* whenever it could
  write a core (read-only core mode), and cleanly dead otherwise.

Schedules are derived deterministically from the seed, so a failing
seed replays exactly.
"""

import time

import pytest

from repro.serve import DebugServer, RemoteError

from tests.serve.helpers import COUNTER

SEEDS = list(range(24))  # >= 20 seeded schedules

#: errors a chaos run may legitimately answer; anything else is a bug.
#: ERR_EVAL/ERR_BAD_ARGS appear when pre-CRC handshake frames are
#: corrupted: the session survives with garbage state and honestly
#: reports reads it cannot serve — typed, which is the contract
TYPED_CODES = {
    "ERR_TARGET_DIED", "ERR_DEADLINE", "ERR_SESSION_EXPIRED",
    "ERR_POST_MORTEM", "ERR_TARGET_STATE", "ERR_BUSY", "ERR_INTERNAL",
    "ERR_EVAL", "ERR_BAD_ARGS",
}


def schedule_for(seed):
    """A deterministic fault spec per seed: kills, hangs (drop-heavy),
    recoverable noise, and connection cuts, round-robin."""
    kind = seed % 4
    if kind == 0:
        return {"seed": seed, "kill_after": 10 + (seed % 25)}
    if kind == 1:
        return {"seed": seed, "drop": 0.9, "after": 3}
    if kind == 2:
        return {"seed": seed, "corrupt": 0.3, "duplicate": 0.2, "limit": 10}
    return {"seed": seed, "truncate": 0.2, "delay": 0.3,
            "latency": 0.002, "limit": 8, "after": 3}


@pytest.fixture(scope="module")
def srv():
    server = DebugServer(token_seed=7, default_deadline=0.8,
                         hang_grace=0.5, reap_interval=0.1, idle_ttl=60.0)
    yield server
    server.close()


def drive(client, sid, token, commands):
    """Run commands; every one must resolve to a result or a typed
    error.  Returns (results, error_codes)."""
    results, codes = [], []
    for cmd, args, deadline in commands:
        try:
            results.append(client.command(sid, token, cmd, args,
                                          deadline=deadline))
        except RemoteError as err:
            assert err.code in TYPED_CODES, \
                "untyped chaos answer: %s (%s)" % (err.code, err)
            codes.append(err.code)
    return results, codes


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_schedule(srv, seed):
    client = srv.client()
    spec = schedule_for(seed)
    victim = client.spawn(source=COUNTER, fault=spec)
    clean = client.spawn(source=COUNTER)
    vsid, vtok = victim["session"], victim["token"]
    csid, ctok = clean["session"], clean["token"]
    try:
        # the bystander sets up cleanly regardless of the victim
        assert client.command(csid, ctok, "ping") == {"pong": True}
        out = client.command(csid, ctok, "break", {"at": "tick"})
        assert out["addresses"]

        # drive the victim until the schedule bites (or it survives)
        _, codes = drive(client, vsid, vtok,
                         [("break", {"at": "tick"}, 2.0)])
        dead = False
        for _ in range(8):
            results, step_codes = drive(
                client, vsid, vtok, [("continue", None, None)])
            codes += step_codes
            if step_codes or (results and results[0].get("event")
                              in ("died", "disconnect", "exit")):
                dead = bool(step_codes) or results[0].get("event") != "exit"
                break
            # between victim steps, the bystander answers promptly:
            # a wedged or dying session never blocks an unrelated one
            started = time.monotonic()
            assert client.command(csid, ctok, "ping") == {"pong": True}
            assert time.monotonic() - started < 5.0

        # whatever happened, the victim session still *answers*
        status = client.command(vsid, vtok, "status", deadline=2.0)
        assert "target" in status
        rows = {r["session"]: r for r in client.sessions()}
        state = rows[vsid]["state"]
        assert state in ("live", "core", "dead", "expired"), state
        if state == "core":
            # graceful degradation: inspection works on the core...
            frames = client.command(vsid, vtok, "backtrace",
                                    deadline=2.0)["frames"]
            assert frames
            # ...and mutation refuses typed
            with pytest.raises(RemoteError) as err:
                client.command(vsid, vtok, "continue")
            assert err.value.code in ("ERR_POST_MORTEM",
                                      "ERR_SESSION_EXPIRED")
        if dead and spec.get("kill_after") is not None:
            # an injected kill must never leave the session "live"
            assert state in ("core", "dead", "expired"), state

        # the bystander ran the whole time without a single error
        event = client.command(csid, ctok, "continue", deadline=10.0)
        assert event["event"] == "breakpoint"
    finally:
        client.detach(vsid, vtok)
        client.detach(csid, ctok)
        client.close()

    # nothing leaks: the table and the gauges agree on zero
    rest = srv.client()
    try:
        assert rest.sessions() == []
        assert rest.stats().get("serve.sessions", 0) == 0
    finally:
        rest.close()
