"""The structured command layer: every verb answers a JSON-able dict,
every failure a typed ApiError — never a raw traceback."""

import pytest

from repro.ldb import Ldb
from repro.ldb.api import (
    ApiError,
    DebugAPI,
    ERR_BAD_ARGS,
    ERR_BAD_COMMAND,
    ERR_EVAL,
    ERR_NO_TARGET,
    ERR_POST_MORTEM,
    ERR_TARGET_STATE,
)

from tests.ldb.helpers import session


@pytest.fixture
def api():
    ldb, target = session()
    return DebugAPI(ldb)


def test_ping(api):
    assert api.execute("ping") == {"pong": True}


def test_unknown_verb_is_typed(api):
    with pytest.raises(ApiError) as err:
        api.execute("frobnicate")
    assert err.value.code == ERR_BAD_COMMAND
    assert "frobnicate" in str(err.value)


def test_bad_args_are_typed(api):
    with pytest.raises(ApiError) as err:
        api.execute("break", {})  # no "at"
    assert err.value.code == ERR_BAD_ARGS
    with pytest.raises(ApiError) as err:
        api.execute("break", {"at": "fib.c:notaline"})
    assert err.value.code == ERR_BAD_ARGS
    with pytest.raises(ApiError) as err:
        api.execute("print", ["not", "a", "dict"])
    assert err.value.code == ERR_BAD_ARGS


def test_status_describes_target(api):
    out = api.execute("status")
    assert out["target"]["state"] == "stopped"
    assert out["target"]["post_mortem"] is False
    assert out["targets"][0]["name"] == out["target"]["name"]


def test_break_continue_print_roundtrip(api):
    out = api.execute("break", {"at": "fib"})
    assert out["addresses"]
    event = api.execute("continue")
    assert event["event"] == "breakpoint"
    assert event["where"]["proc"] == "fib"
    printed = api.execute("print", {"expr": "n"})
    assert printed["text"] == "10"
    value = api.execute("print", {"expr": "n + 1"})
    assert value["value"] == 11


def test_backtrace_where_registers(api):
    api.execute("break", {"at": "fib"})
    api.execute("continue")
    frames = api.execute("backtrace")["frames"]
    assert frames[0]["proc"] == "fib"
    assert frames[1]["proc"] == "main"
    where = api.execute("where")
    assert where["proc"] == "fib"
    registers = api.execute("registers")["registers"]
    assert registers  # every register named and 32-bit clean
    assert all(0 <= v <= 0xFFFFFFFF for v in registers.values())


def test_set_assigns(api):
    api.execute("break", {"at": "fib"})
    api.execute("continue")
    api.execute("set", {"expr": "n = 3"})
    assert api.execute("print", {"expr": "n"})["text"] == "3"


def test_continue_to_exit(api):
    event = api.execute("continue")
    assert event == {"event": "exit", "status": 0}


def test_eval_error_is_typed(api):
    api.execute("break", {"at": "fib"})
    api.execute("continue")
    with pytest.raises(ApiError) as err:
        api.execute("print", {"expr": "no_such_variable_here"})
    assert err.value.code == ERR_EVAL


def test_no_target_is_typed():
    import io
    api = DebugAPI(Ldb(stdout=io.StringIO()))
    with pytest.raises(ApiError) as err:
        api.execute("backtrace")
    assert err.value.code == ERR_NO_TARGET


def test_state_error_is_typed(api):
    # stepping an exited target is a state error, not a crash
    api.execute("continue")  # runs to exit
    with pytest.raises(ApiError) as err:
        api.execute("step")
    assert err.value.code == ERR_TARGET_STATE


def test_post_mortem_refuses_mutation(tmp_path):
    ldb, target = session()
    api = DebugAPI(ldb)
    api.execute("break", {"at": "fib"})
    api.execute("continue")
    core = str(tmp_path / "t.core")
    out = api.execute("dumpcore", {"path": core})
    assert out["segments"] > 0
    ldb.open_core(core)  # becomes the current target
    for verb in ("continue", "step", "set", "kill"):
        with pytest.raises(ApiError) as err:
            api.execute(verb, {"expr": "n = 1"} if verb == "set" else {})
        assert err.value.code == ERR_POST_MORTEM, verb
    # inspection still works on the core
    assert api.execute("backtrace")["frames"][0]["proc"] == "fib"
    assert api.execute("status")["target"]["post_mortem"] is True


def test_sim_stats_reports_engine_counters(api):
    out = api.execute("sim_stats")
    assert out["engine"] in ("block", "step")
    api.execute("break", {"at": "fib"})
    api.execute("continue")
    out = api.execute("sim_stats")
    if out["engine"] == "block":
        assert out["blocks_compiled"] > 0
        assert "generation" in out and "blocks_cached" in out


def test_sim_stats_typed_errors(tmp_path):
    import io
    # no target at all
    bare = DebugAPI(Ldb(stdout=io.StringIO()))
    with pytest.raises(ApiError) as err:
        bare.execute("sim_stats")
    assert err.value.code == ERR_NO_TARGET
    # a core target has no running simulator
    ldb, target = session()
    api = DebugAPI(ldb)
    api.execute("break", {"at": "fib"})
    api.execute("continue")
    core = str(tmp_path / "t.core")
    api.execute("dumpcore", {"path": core})
    ldb.open_core(core)
    with pytest.raises(ApiError) as err:
        api.execute("sim_stats")
    assert err.value.code == ERR_POST_MORTEM
