"""SessionWorker: the supervised per-session thread, tested without
the gateway — backpressure, deadlines, force-expiry, degradation."""

import io
import time

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.ldb.api import ApiError
from repro.serve import GatewayError, SessionWorker

from tests.serve.helpers import COUNTER


def counter_factory(fault_schedule=None, core_path=None, arch="rmips"):
    exe = compile_and_link({"main.c": COUNTER}, arch, debug=True)

    def factory():
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe, core_path=core_path,
                                  fault_schedule=fault_schedule)
        return ldb, target
    return factory


def worker(factory=None, **kw):
    w = SessionWorker("s0000", factory or counter_factory(), **kw)
    w.start()
    w.started.result(timeout=30.0)
    return w


def test_lifecycle_and_commands():
    w = worker()
    assert w.state == "live"
    assert w.submit("ping").result(5.0) == {"pong": True}
    out = w.submit("break", {"at": "tick"}).result(5.0)
    assert out["addresses"]
    event = w.submit("continue").result(5.0)
    assert event["event"] == "breakpoint"
    w.close("test over")
    assert w.state == "closed"


def test_spawn_failure_is_typed():
    def broken():
        raise RuntimeError("no such program")
    w = SessionWorker("s0000", broken)
    w.start()
    with pytest.raises(GatewayError) as err:
        w.started.result(timeout=10.0)
    assert err.value.code == "ERR_SPAWN_FAILED"
    assert w.state == "dead"
    # commands after a failed spawn answer typed, not hang
    with pytest.raises(GatewayError) as err:
        w.submit("continue")
    assert err.value.code == "ERR_TARGET_DIED"
    w.close()


def test_queue_backpressure_rejects_typed():
    w = worker(queue_limit=2)
    # wedge the worker: a continue against a target with a breakpoint
    # planted runs quickly, so block the thread with queued commands
    # faster than it can serve them by stuffing the queue directly
    futures = [w.submit("ping", deadline=30.0) for _ in range(2)]
    rejected = 0
    for _ in range(20):
        try:
            futures.append(w.submit("ping", deadline=30.0))
        except GatewayError as err:
            assert err.code == "ERR_BUSY"
            assert err.retryable
            rejected += 1
            break
    # either the worker outran us (all served) or the reject was typed
    for future in futures:
        assert future.result(10.0) == {"pong": True}
    w.close()


def test_deadline_on_queued_command():
    w = worker()
    # a command whose deadline has already passed when it is dequeued
    # answers ERR_DEADLINE without executing
    future = w.submit("ping", deadline=0.0)
    with pytest.raises(GatewayError) as err:
        future.result(10.0)
    assert err.value.code == "ERR_DEADLINE"
    assert err.value.retryable
    w.close()


def test_blocking_command_misses_deadline():
    from repro.nub.faults import FaultSchedule
    # the nub spawns clean, then answers nothing (every later send
    # dropped): the command can only time out, and must surface as
    # ERR_DEADLINE, not a raw TimeoutError — even though the drops hit
    # the retryable request path, not just the event wait
    schedule = FaultSchedule(seed=3, drop=1.0, after=2)
    w = worker(counter_factory(fault_schedule=schedule))
    started = time.monotonic()
    future = w.submit("break", {"at": "tick"}, deadline=0.5)
    with pytest.raises(GatewayError) as err:
        future.result(30.0)
    assert err.value.code == "ERR_DEADLINE"
    # the deadline bounded the whole retry budget, not one attempt
    assert time.monotonic() - started < 10.0
    w.close()


def test_force_expire_unwedges_blocked_command():
    from repro.nub.faults import FaultSchedule
    schedule = FaultSchedule(seed=3, drop=1.0, after=2)
    w = worker(counter_factory(fault_schedule=schedule))
    future = w.submit("break", {"at": "tick"}, deadline=30.0)  # blocks
    deadline = time.monotonic() + 5.0
    while w.busy_job is None and time.monotonic() < deadline:
        time.sleep(0.01)
    w.force_expire("watchdog test")
    with pytest.raises(GatewayError) as err:
        future.result(10.0)
    assert err.value.code == "ERR_SESSION_EXPIRED"
    assert w.state == "expired"
    # later commands answer expired immediately...
    with pytest.raises(GatewayError) as err:
        w.submit("continue")
    assert err.value.code == "ERR_SESSION_EXPIRED"
    # ...but ping/status stay answerable on a dying session
    assert w.submit("ping").result(5.0) == {"pong": True}
    w.close()


def test_nub_death_degrades_to_core(tmp_path):
    from repro.nub.faults import FaultSchedule
    core_path = str(tmp_path / "s.core")
    # kill the nub a few dozen frames in: mid-debugging death
    schedule = FaultSchedule(seed=5, kill_after=30)
    w = worker(counter_factory(fault_schedule=schedule,
                               core_path=core_path))
    w.submit("break", {"at": "tick"}).result(10.0)
    saw_death = False
    for _ in range(60):
        try:
            event = w.submit("continue", deadline=5.0).result(10.0)
        except (ApiError, GatewayError) as err:
            assert err.code in ("ERR_TARGET_DIED", "ERR_DEADLINE")
            saw_death = True
            break
        if event.get("event") in ("died", "disconnect"):
            saw_death = True
            break
        if event.get("event") == "exit":
            break
    assert saw_death, "the injected kill never surfaced"
    deadline = time.monotonic() + 5.0
    while w.state not in ("core", "dead") and time.monotonic() < deadline:
        time.sleep(0.01)
    assert w.state == "core", w.state_reason
    # the session now serves its own core, read-only
    frames = w.submit("backtrace").result(10.0)["frames"]
    assert frames
    with pytest.raises(ApiError) as err:
        w.submit("continue").result(10.0)
    assert err.value.code == "ERR_POST_MORTEM"
    w.close()


def test_close_drains_queue_typed():
    w = worker()
    futures = [w.submit("ping", deadline=30.0) for _ in range(4)]
    w.close("shutting down")
    for future in futures:
        try:
            result = future.result(5.0)
            assert result == {"pong": True}
        except GatewayError as err:
            assert err.code == "ERR_SHUTTING_DOWN"
