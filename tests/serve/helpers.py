"""Shared helpers for the session-server tests."""

import contextlib

from repro.serve import DebugServer

#: counts breakpoint hits in a loop — the workhorse target: plant a
#: breakpoint on `tick` and every continue stops exactly once
COUNTER = """int counter;
int tick(int n) { counter = counter + n; return counter; }
int main(void)
{
    int i;
    for (i = 0; i < 100; i++)
        tick(1);
    return counter;
}
"""

#: runs to exit immediately — for exit-event tests
QUICK = """int main(void) { return 42; }
"""


@contextlib.contextmanager
def server(**manager_kw):
    manager_kw.setdefault("token_seed", 1234)
    srv = DebugServer(**manager_kw)
    try:
        yield srv
    finally:
        srv.close()


def spawn(client, source=COUNTER, **extra):
    info = client.spawn(source=source, **extra)
    return info["session"], info["token"]
