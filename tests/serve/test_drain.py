"""Graceful drain: a server shutdown saves live recordings first.

The contract (PROTOCOL App A / the gateway's ``main``): when the
manager closes — operator stop, SIGTERM, or the test harness winding
down — every live session holding an active recording writer gets one
final partial-tolerant ``record_save`` before its transport is
severed.  The accumulated trace survives the restart as a real file;
sessions without a writer cost the drain nothing.
"""

import os

import pytest

from repro.serve import RemoteError
from repro.trace import Recording

from tests.serve.helpers import server, spawn


def _run_to_stops(client, sid, token, stops=3):
    client.command(sid, token, "break", args={"at": "tick"})
    for _ in range(stops):
        event = client.command(sid, token, "continue")
        assert event["event"] == "breakpoint"


def test_shutdown_saves_live_recording(tmp_path):
    path = str(tmp_path / "drained.ldbrec")
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client, record=path)
        _run_to_stops(client, sid, token)
        assert not os.path.exists(path)  # nothing saved yet
        srv.close()  # the graceful path: drain, then sever
    metrics = srv.manager.obs.metrics
    assert metrics.get("serve.drain_saves", 0) == 1
    assert metrics.get("serve.drain_failures", 0) == 0
    recording = Recording.load(path)  # strict parse: not a salvage
    assert recording.spills
    assert recording.meta.arch_name == "rmips"


def test_drained_file_replays_clean(tmp_path):
    path = str(tmp_path / "drained.ldbrec")
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client, record=path)
        _run_to_stops(client, sid, token, stops=2)
        srv.close()
    # the drained artifact hosts a fresh replay session end to end
    with server() as srv:
        client = srv.client()
        info = client.replay(path=path)
        sid, token = info["session"], info["token"]
        out = client.command(sid, token, "backtrace")
        assert any(frame["proc"] == "tick" for frame in out["frames"])


def test_sessions_without_writers_drain_nothing(tmp_path):
    with server() as srv:
        client = srv.client()
        sid, token = spawn(client)  # no record= : no writer
        _run_to_stops(client, sid, token, stops=1)
        srv.close()
    metrics = srv.manager.obs.metrics
    assert metrics.get("serve.drain_saves", 0) == 0
    assert metrics.get("serve.drain_failures", 0) == 0


def test_mixed_fleet_drains_only_the_recorders(tmp_path):
    path = str(tmp_path / "one.ldbrec")
    with server() as srv:
        client = srv.client()
        rec_sid, rec_token = spawn(client, record=path)
        plain_sid, plain_token = spawn(client)
        _run_to_stops(client, rec_sid, rec_token, stops=2)
        _run_to_stops(client, plain_sid, plain_token, stops=1)
        srv.close()
    assert srv.manager.obs.metrics.get("serve.drain_saves", 0) == 1
    assert Recording.load(path).spills


def test_spawn_record_arg_is_validated():
    with server() as srv:
        client = srv.client()
        with pytest.raises(RemoteError) as err:
            spawn(client, record=123)
        assert err.value.code == "ERR_SPAWN_FAILED"
        assert "record" in str(err.value)
