"""IR generation tests: stopping points and operator shapes."""

import pytest

from repro.cc.ctypes_ import TypeSystem
from repro.cc.ir import all_operators
from repro.cc.irgen import IRGen
from repro.cc.parser import parse
from repro.cc.sema import Sema


def lower(source, arch="rmips"):
    types = TypeSystem(arch)
    ast = parse(source, "t.c", types)
    info = Sema(types, "t.c").analyze(ast)
    return IRGen(types, info).generate(ast)


FIB = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
"""


class TestStoppingPoints:
    """Fig. 1's numbering: 14 stopping points for fib, 0 at the opening
    brace and 13 at the closing brace; for-loops number init, cond,
    body, incr in that order."""

    def test_fib_has_fourteen_stops(self):
        unit = lower(FIB)
        assert len(unit.functions[0].stops) == 14

    def test_entry_and_exit_stops(self):
        unit = lower(FIB)
        stops = unit.functions[0].stops
        assert stops[0].index == 0
        assert stops[13].pos.line == 15  # the closing brace

    def test_for_loop_stop_order(self):
        """init=4, cond=5, body=6, incr=7 — matching the paper."""
        unit = lower(FIB)
        stops = unit.functions[0].stops
        assert stops[4].pos.line == 7    # i=2
        assert stops[5].pos.line == 7    # i<n
        assert stops[6].pos.line == 8    # the body statement
        assert stops[7].pos.line == 7    # i++

    def test_stop_chain_visibility(self):
        """From point 9 (j<n), j, a, n are visible via uplinks."""
        unit = lower(FIB)
        stops = unit.functions[0].stops
        chain = stops[9].chain
        names = []
        while chain is not None:
            names.append(chain.name)
            chain = chain.uplink
        assert names == ["j", "a", "n"]

    def test_every_statement_gets_a_stop(self):
        unit = lower("""
        int f(int x) {
            x = x + 1;
            if (x) x = 2;
            while (x > 5) x--;
            return x;
        }
        """)
        # entry, assign, if-cond, then-stmt, while-cond, body-stmt,
        # return, exit
        assert len(unit.functions[0].stops) == 8

    def test_stop_labels_are_unique(self):
        unit = lower(FIB + "\nint main(void) { fib(10); return 0; }")
        labels = [s.label for fn in unit.functions for s in fn.stops]
        assert len(labels) == len(set(labels))

    def test_declarations_get_no_stops(self):
        unit = lower("void f(void) { int a; int b; a = 1; }")
        # entry, the assignment, exit
        assert len(unit.functions[0].stops) == 3


class TestIRShapes:
    def test_operator_vocabulary_size(self):
        """lcc's IR has 112 operators (paper Sec. 5); ours is the same
        order of magnitude."""
        count = len(all_operators())
        assert 100 <= count <= 160

    def test_string_literals_deduplicated(self):
        unit = lower('int main(void) { printf("x"); printf("x"); return 0; }')
        assert len([1 for _label, text in unit.strings if text == "x"]) == 1

    def test_register_hint_survives(self):
        unit = lower("void f(void) { register int i; i = 1; }")
        (func,) = unit.functions
        assert func.locals[0].sclass == "register"

    def test_temps_are_marked(self):
        unit = lower("int f(int a) { return a > 0 && a < 10; }")
        temps = [s for s in unit.functions[0].locals if s.name.startswith(".")]
        assert temps  # the boolean value needs a temporary

    def test_struct_copy_expands_to_word_moves(self):
        unit = lower("""
        struct s { int a; int b; int c; };
        void f(void) { struct s x, y; x = y; }
        """)
        body = unit.functions[0].body
        stores = [n for n in body if n.op == "ASGN" and n.kind == "i4"]
        assert len(stores) >= 3  # three word copies (plus temp setup)
