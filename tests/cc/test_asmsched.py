"""MIPS assembler pass tests: delay-slot filling and padding."""

import pytest

from repro.cc.asmsched import SchedStats, count_insns, reg_defs, reg_uses, schedule
from repro.machines.isa import Insn, Label


def lw(rd, rs, imm=0):
    return Insn("lw", rd=rd, rs=rs, imm=imm)


class TestHazardDetection:
    def test_consumer_right_after_load_pads(self):
        text = [lw(8, 29), Insn("add", rd=9, rs=8, rt=0)]
        out, stats = schedule(text, debug=False)
        assert stats.hazards == 1
        assert out[1].op == "nop"

    def test_independent_next_insn_no_pad(self):
        text = [lw(8, 29), Insn("add", rd=9, rs=10, rt=11)]
        out, stats = schedule(text, debug=False)
        assert stats.hazards == 0
        assert count_insns(out) == 2

    def test_clobber_counts_as_hazard(self):
        """Writing the loaded register in the slot would drop the load."""
        text = [lw(8, 29), Insn("addi", rd=8, rs=0, imm=5)]
        out, stats = schedule(text, debug=False)
        assert stats.hazards == 1

    def test_load_at_end_pads(self):
        out, stats = schedule([lw(8, 29)], debug=False)
        assert out[-1].op == "nop"

    def test_syscall_after_load_is_hazard(self):
        text = [lw(4, 29), Insn("syscall", imm=1)]
        _out, stats = schedule(text, debug=False)
        assert stats.hazards == 1


class TestFilling:
    def make_fillable(self):
        # the addi is independent of the load and can fill its slot
        return [Insn("addi", rd=10, rs=0, imm=5),
                lw(8, 29),
                Insn("add", rd=9, rs=8, rt=0)]

    def test_fills_from_before(self):
        out, stats = schedule(self.make_fillable(), debug=False)
        assert stats.filled == 1 and stats.nops_inserted == 0
        assert [i.op for i in out] == ["lw", "addi", "add"]

    def test_wont_move_dependent_insn(self):
        # addi defines the load's base register: cannot fill
        text = [Insn("addi", rd=29, rs=29, imm=-8),
                lw(8, 29),
                Insn("add", rd=9, rs=8, rt=0)]
        out, stats = schedule(text, debug=False)
        assert stats.filled == 0 and stats.nops_inserted == 1

    def test_wont_move_store_past_load(self):
        text = [Insn("sw", rd=10, rs=29, imm=0),
                lw(8, 29),
                Insn("add", rd=9, rs=8, rt=0)]
        _out, stats = schedule(text, debug=False)
        assert stats.filled == 0

    def test_wont_move_across_block_leader(self):
        text = [Insn("addi", rd=10, rs=0, imm=5),
                Label("L1", is_block_leader=True),
                lw(8, 29),
                Insn("add", rd=9, rs=8, rt=0)]
        _out, stats = schedule(text, debug=False)
        assert stats.filled == 0 and stats.nops_inserted == 1


class TestDebugRestriction:
    """The paper's Sec. 3 effect: stopping points restrict scheduling."""

    def make_with_stop(self):
        return [Insn("addi", rd=10, rs=0, imm=5),
                Label("f.S3", stop_index=3),
                lw(8, 29),
                Insn("add", rd=9, rs=8, rt=0)]

    def test_stop_label_transparent_without_debug(self):
        _out, stats = schedule(self.make_with_stop(), debug=False)
        assert stats.filled == 1 and stats.nops_inserted == 0

    def test_stop_label_opaque_with_debug(self):
        _out, stats = schedule(self.make_with_stop(), debug=True)
        assert stats.filled == 0 and stats.nops_inserted == 1

    def test_debug_never_smaller(self):
        """Debug scheduling can only add instructions."""
        text = self.make_with_stop() * 4
        out_nodebug, _ = schedule(list(text), debug=False)
        out_debug, _ = schedule(list(text), debug=True)
        assert count_insns(out_debug) >= count_insns(out_nodebug)


class TestUsesDefs:
    @pytest.mark.parametrize("insn,uses,defs", [
        (Insn("add", rd=1, rs=2, rt=3), {2, 3}, {1}),
        (Insn("addi", rd=1, rs=2, imm=0), {2}, {1}),
        (Insn("lw", rd=1, rs=2, imm=0), {2}, {1}),
        (Insn("sw", rd=1, rs=2, imm=0), {1, 2}, set()),
        (Insn("beq", rd=1, rs=2, imm=0), {1, 2}, set()),
        (Insn("jal", target=0), set(), {31}),
        (Insn("jr", rs=31), {31}, set()),
        (Insn("lui", rd=5, imm=0), set(), {5}),
        (Insn("nop"), set(), set()),
    ])
    def test_tables(self, insn, uses, defs):
        assert reg_uses(insn) == uses
        assert reg_defs(insn) == defs


class TestSemanticPreservation:
    """Scheduling must never change program behavior."""

    @pytest.mark.parametrize("debug", [False, True])
    def test_scheduled_fib_still_correct(self, debug):
        from .helpers import c_output
        src = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n-1) + fib(n-2);
        }
        int main(void) { printf("%d", fib(12)); return 0; }
        """
        assert c_output(src, "rmips", debug=debug) == "144"
