"""PostScript symbol-table emission tests (paper Sec. 2)."""

import io

import pytest

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.cc.pssym import decl_pattern, ps_string, struct_cdef
from repro.cc.ctypes_ import ArrayType, PointerType, StructType, TypeSystem
from repro.postscript import Location, PSDict, new_interp

FIB = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


_INTERPS = {}


def load_table(source, arch="rmips", defer=True):
    exe = compile_and_link({"fib.c": source}, arch, debug=True)
    interp = new_interp(stdout=io.StringIO())
    interp.run(loader_table_ps(exe))
    table = interp.pop()
    _INTERPS[id(table)] = interp
    return table, exe


def force_loci(table, proc_entry):
    """Force a deferred loci array (what ldb's symtab layer does)."""
    from repro.postscript import PSArray, String, is_executable
    value = proc_entry["loci"]
    if isinstance(value, (PSArray, String)) and is_executable(value):
        interp = _INTERPS[id(table)]
        interp.push_dict(interp.systemdict["ArchDicts"]
                         [table["symtab"]["architecture"].text])
        try:
            interp.call(value)
            value = interp.pop()
        finally:
            interp.pop_dict_stack()
        proc_entry["loci"] = value
    return value


class TestDeclPatterns:
    def test_scalars(self):
        t = TypeSystem()
        assert decl_pattern(t.int) == "int %s"
        assert decl_pattern(t.uchar) == "unsigned char %s"
        assert decl_pattern(t.double) == "double %s"

    def test_array(self):
        t = TypeSystem()
        assert decl_pattern(ArrayType(t.int, 20)) == "int %s[20]"

    def test_pointer(self):
        t = TypeSystem()
        assert decl_pattern(PointerType(t.char)) == "char *%s"

    def test_pointer_to_array_parenthesized(self):
        t = TypeSystem()
        assert decl_pattern(PointerType(ArrayType(t.int, 4))) == "int (*%s)[4]"

    def test_struct(self):
        s = StructType("point")
        t = TypeSystem()
        s.define([("x", t.int), ("y", t.int)])
        assert decl_pattern(s) == "struct point %s"
        assert struct_cdef(s) == "struct point { int x; int y; }"

    def test_ps_string_escapes(self):
        assert ps_string("a(b)c\\") == r"(a\(b\)c\\)"


class TestEntryShape:
    """The entries must look like the paper's S10/S8 examples."""

    def test_entry_fields(self):
        table, _exe = load_table(FIB)
        fib = table["symtab"]["externs"]["fib"]
        for key in ("name", "type", "sourcefile", "sourcey", "sourcex",
                    "kind", "where", "uplink", "formals", "statics", "loci"):
            assert key in fib, key

    def test_variable_where_is_deferred_string(self):
        """The deferral technique: where procedures arrive as strings.

        On rsparc parameters live in the frame, so their where value is
        a deferred Param computation (on rmips `n` gets promoted to a
        register, whose location is computed eagerly at load, like the
        paper's S10)."""
        from repro.postscript import Location, String
        table, _exe = load_table(FIB, arch="rsparc")
        fib = table["symtab"]["externs"]["fib"]
        n_entry = force_loci(table, fib)[0]["syms"]
        assert n_entry["name"].text == "n"
        where = n_entry["where"]
        assert isinstance(where, String) and not where.literal
        assert "Param" in where.text
        # and the rmips register case: evaluated when the table is read
        table2, _exe2 = load_table(FIB, arch="rmips")
        fib2 = table2["symtab"]["externs"]["fib"]
        n2 = force_loci(table2, fib2)[0]["syms"]
        assert isinstance(n2["where"], Location)
        assert n2["where"].space == "r"

    def test_static_uses_lazydata_anchor(self):
        table, _exe = load_table(FIB)
        fib = table["symtab"]["externs"]["fib"]
        a_entry = fib["statics"]["a"]
        assert "LazyData" in a_entry["where"].text
        assert "_stanchor__" in a_entry["where"].text

    def test_type_dictionary_contents(self):
        table, _exe = load_table(FIB)
        fib = table["symtab"]["externs"]["fib"]
        a_type = fib["statics"]["a"]["type"]
        assert a_type["decl"].text == "int %s[20]"
        assert a_type["elemsize"] == 4
        assert a_type["arraysize"] == 80
        assert a_type["elemtype"]["decl"].text == "int %s"

    def test_loci_count_matches_fig1(self):
        table, _exe = load_table(FIB)
        fib = table["symtab"]["externs"]["fib"]
        assert len(force_loci(table, fib)) == 14

    def test_architecture_recorded(self):
        for arch in ("rmips", "rvax"):
            table, _exe = load_table(FIB, arch)
            assert table["symtab"]["architecture"].text == arch

    def test_m68k_register_save_mask(self):
        """The compiler adds register-save masks for the 68020 (Sec. 5)."""
        src = """
        int busy(int n) {
            int a = n, b = n * 2;
            printf("%d", a);
            return a + b;
        }
        int main(void) { return busy(3); }
        """
        table, _exe = load_table(src, "rm68k")
        busy = table["symtab"]["externs"]["busy"]
        assert "savemask" in busy
        assert busy["savemask"] != 0

    def test_sourcemap_lists_procs_per_file(self):
        table, _exe = load_table(FIB)
        entries = table["symtab"]["sourcemap"]["fib.c"]
        names = [e["name"].text for e in entries]
        assert names == ["fib", "main"]

    def test_anchors_listed(self):
        table, _exe = load_table(FIB)
        anchors = table["symtab"]["anchors"]
        assert len(anchors) == 1
        name = anchors[0].text
        assert name.startswith("_stanchor__")
        assert name in table["anchormap"]


class TestDeferModes:
    def test_eager_mode_builds_procedures(self):
        from repro.cc import pssym
        from repro.cc.driver import compile_unit
        from repro.postscript import PSArray

        compiled = compile_unit(FIB, "fib.c", "rmips", debug=True)
        from repro.cc.gen import get_backend
        # re-emit eagerly
        backend = get_backend("rmips")
        backend.compile_unit(compiled.unit_ir, debug=True)
        eager = pssym.emit_unit(backend.unit, compiled.unit_ir,
                                compiled.unit_info, backend,
                                None, defer=False)
        deferred = compiled.unit.pssym
        assert "{ " in eager
        assert ") cvx" in deferred
        assert len(eager) >= len(deferred) * 0.5  # same order of size

    def test_both_modes_interpret_equally(self):
        import io as _io
        from repro.cc import pssym
        from repro.cc.driver import compile_unit
        from repro.postscript import new_interp as mk

        compiled = compile_unit(FIB, "fib.c", "rmips", debug=True)
        from repro.cc.gen import get_backend
        backend = get_backend("rmips")
        backend.compile_unit(compiled.unit_ir, debug=True)
        for defer in (True, False):
            text = pssym.emit_unit(backend.unit, compiled.unit_ir,
                                   compiled.unit_info, backend, None,
                                   defer=defer)
            interp = mk(stdout=_io.StringIO())
            interp.run("BeginLoaderTable (rmips) UseArchitecture")
            interp.run(text)
            interp.run("(rmips) << >> [ ] << >> EndLoaderTable EndArchitecture")
            table = interp.pop()
            assert len(table["symtab"]["procs"]) == 2
