"""Stabs emission tests: the machine-dependent baseline format."""

import struct

import pytest

from repro.cc.ctypes_ import TypeSystem
from repro.cc.driver import compile_unit
from repro.cc import stabs


def emit(source, arch="rmips"):
    compiled = compile_unit(source, "t.c", arch, debug=True)
    return compiled.unit.stabs


def parse(blob):
    count, str_size = struct.unpack("<II", blob[:8])
    records = []
    offset = 8
    strtab = blob[8 + 12 * count :]
    for _ in range(count):
        strx, ntype, _other, desc, value = struct.unpack(
            "<IBBhI", blob[offset : offset + 12])
        offset += 12
        end = strtab.index(b"\0", strx)
        records.append((strtab[strx:end].decode(), ntype, desc, value))
    return records


FIB = """void fib(int n)
{
    static int a[20];
    {   int i;
        for (i=2; i<n; i++) a[i] = 1;
    }
}
int main(void) { fib(10); return 0; }
"""


class TestFormat:
    def test_binary_layout_round_trips(self):
        records = parse(emit(FIB))
        assert records  # parses cleanly end to end

    def test_source_file_stab(self):
        records = parse(emit(FIB))
        assert records[0] == ("t.c", stabs.N_SO, 0, 0)

    def test_function_stabs(self):
        records = parse(emit(FIB))
        funs = [r for r in records if r[1] == stabs.N_FUN]
        names = [r[0].split(":")[0] for r in funs]
        assert names == ["fib", "main"]
        assert all(":F" in r[0] for r in funs)

    def test_parameter_and_local_stabs(self):
        records = parse(emit(FIB))
        params = [r for r in records if r[1] == stabs.N_PSYM]
        assert any(r[0].startswith("n:p") for r in params)
        locals_ = [r for r in records
                   if r[1] in (stabs.N_LSYM, stabs.N_RSYM)
                   and r[0].startswith("i:")]
        assert locals_

    def test_register_variable_stab(self):
        """Register variables get N_RSYM with the register number."""
        records = parse(emit(FIB, "rmips"))
        rsyms = [r for r in records if r[1] == stabs.N_RSYM]
        assert rsyms
        assert all(":r" in r[0] for r in rsyms)

    def test_static_stab(self):
        records = parse(emit(FIB))
        lcsyms = [r for r in records if r[1] == stabs.N_LCSYM]
        assert any(r[0].startswith("a:") for r in lcsyms)

    def test_line_number_stabs(self):
        """One N_SLINE per stopping point."""
        records = parse(emit(FIB))
        slines = [r for r in records if r[1] == stabs.N_SLINE]
        assert len(slines) >= 8
        assert all(r[2] > 0 for r in slines)  # desc = line number

    def test_type_definitions_shared(self):
        """`int` gets one type stab, referenced by number thereafter."""
        records = parse(emit(FIB))
        int_defs = [r for r in records if r[0].startswith("int:t")]
        assert len(int_defs) == 1

    def test_stabs_much_smaller_than_postscript(self):
        compiled = compile_unit(FIB, "t.c", "rmips", debug=True)
        assert len(compiled.unit.stabs) * 3 < len(compiled.unit.pssym)


class TestTypeGrammar:
    def test_int_range(self):
        records = parse(emit("int g; int main(void){return 0;}"))
        int_def = next(r[0] for r in records if r[0].startswith("int:t"))
        assert "-2147483648;2147483647;" in int_def

    def test_pointer_and_array(self):
        src = "int a[4]; int *p; int main(void){return 0;}"
        records = parse(emit(src))
        texts = [r[0] for r in records]
        assert any("=ar1;0;3;" in t for t in texts)  # the array type
        assert any("=*" in t for t in texts)          # the pointer type

    def test_struct_fields_with_bit_offsets(self):
        src = ("struct p { int x; int y; };\nstruct p g;\n"
               "int main(void){return 0;}")
        records = parse(emit(src))
        struct_def = next(t for t, *_ in records if "=s8" in t)
        assert "x:" in struct_def and ",0,32;" in struct_def
        assert "y:" in struct_def and ",32,32;" in struct_def

    def test_enum_tags(self):
        src = ("enum c { RED, BLUE = 9 };\nenum c g;\n"
               "int main(void){return 0;}")
        records = parse(emit(src))
        enum_def = next(t for t, *_ in records if "=e" in t)
        assert "RED:0," in enum_def and "BLUE:9," in enum_def
