"""Parser tests: declarations, declarators, statements, expressions."""

import pytest

from repro.cc import tree
from repro.cc.ctypes_ import (
    ArrayType,
    EnumType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    UnionType,
)
from repro.cc.lexer import CError
from repro.cc.parser import Parser, parse


def first_decl(source):
    unit = parse(source)
    return unit.decls[0]


def parse_expr(source):
    parser = Parser(source)
    return parser.expression()


class TestDeclarations:
    def test_simple_int(self):
        decl = first_decl("int x;")
        assert decl.name == "x" and isinstance(decl.ctype, IntType)

    def test_qualified_types(self):
        assert str(first_decl("unsigned short s;").ctype) == "unsigned short"
        assert str(first_decl("long double d;").ctype) == "long double"
        assert str(first_decl("signed char c;").ctype) == "char"

    def test_pointer(self):
        decl = first_decl("char *p;")
        assert isinstance(decl.ctype, PointerType)
        assert decl.ctype.ref.size == 1

    def test_pointer_to_pointer(self):
        decl = first_decl("int **pp;")
        assert isinstance(decl.ctype.ref, PointerType)

    def test_array(self):
        decl = first_decl("int a[20];")
        assert isinstance(decl.ctype, ArrayType)
        assert decl.ctype.count == 20 and decl.ctype.size == 80

    def test_array_of_arrays(self):
        decl = first_decl("int m[2][3];")
        assert decl.ctype.count == 2
        assert decl.ctype.elem.count == 3
        assert decl.ctype.size == 24

    def test_array_size_constant_expr(self):
        decl = first_decl("int a[4*5];")
        assert decl.ctype.count == 20

    def test_function_pointer(self):
        decl = first_decl("int (*f)(int);")
        assert isinstance(decl.ctype, PointerType)
        assert isinstance(decl.ctype.ref, FunctionType)

    def test_multiple_declarators(self):
        unit = parse("int a, *b, c[3];")
        assert isinstance(unit.decls[0].ctype, IntType)
        assert isinstance(unit.decls[1].ctype, PointerType)
        assert isinstance(unit.decls[2].ctype, ArrayType)

    def test_storage_classes(self):
        assert first_decl("static int x;").storage == "static"
        assert first_decl("extern int y;").storage == "extern"
        assert first_decl("register int z;").storage == "register"

    def test_initializers(self):
        decl = first_decl("int a[3] = {1, 2, 3};")
        assert isinstance(decl.init, list) and len(decl.init) == 3

    def test_conflicting_storage_rejected(self):
        with pytest.raises(CError):
            parse("static extern int x;")


class TestStructsUnionsEnums:
    def test_struct_definition(self):
        decl = first_decl("struct point { int x; int y; } p;")
        stype = decl.ctype
        assert isinstance(stype, StructType)
        assert stype.size == 8
        assert stype.field("y").offset == 4

    def test_struct_alignment(self):
        decl = first_decl("struct s { char c; int i; } v;")
        assert decl.ctype.field("i").offset == 4
        assert decl.ctype.size == 8

    def test_struct_tag_reference(self):
        unit = parse("struct point { int x; int y; }; struct point p;")
        assert unit.decls[0].ctype.tag == "point"

    def test_self_referential_struct(self):
        decl = first_decl("struct node { int v; struct node *next; } n;")
        next_type = decl.ctype.field("next").ctype
        assert next_type.ref is decl.ctype

    def test_union(self):
        decl = first_decl("union u { int i; double d; } v;")
        assert isinstance(decl.ctype, UnionType)
        assert decl.ctype.size == 8
        assert decl.ctype.field("d").offset == 0

    def test_enum(self):
        unit = parse("enum color { RED, GREEN = 5, BLUE } c;")
        consts = [d for d in unit.decls if d.storage == "enumconst"]
        assert [(d.name, d.init.value) for d in consts] == [
            ("RED", 0), ("GREEN", 5), ("BLUE", 6)]

    def test_enum_constant_in_array_size(self):
        decl = parse("enum { N = 7 }; int a[N];").decls[-1]
        assert decl.ctype.count == 7

    def test_typedef(self):
        unit = parse("typedef unsigned long word; word w;")
        assert unit.decls[-1].ctype.size == 4
        assert not unit.decls[-1].ctype.signed

    def test_typedef_of_struct(self):
        unit = parse("typedef struct point { int x; int y; } Point; Point p;")
        assert isinstance(unit.decls[-1].ctype, StructType)

    def test_typedef_shadowed_by_variable(self):
        # after `int word;` in an inner scope, word is not a type there
        source = "typedef int word; int f(void) { int word; word = 1; return word; }"
        unit = parse(source)  # must not raise
        assert isinstance(unit.decls[-1], tree.FuncDef)


class TestFunctions:
    def test_definition(self):
        fn = first_decl("int add(int a, int b) { return a + b; }")
        assert isinstance(fn, tree.FuncDef)
        assert [p for p, _ in fn.ftype.params] == ["a", "b"]

    def test_void_params(self):
        fn = first_decl("int f(void) { return 0; }")
        assert fn.ftype.params == []

    def test_varargs_prototype(self):
        decl = first_decl("int printf(char *fmt, ...);")
        assert decl.ctype.varargs

    def test_array_param_decays(self):
        fn = first_decl("int f(int a[10]) { return a[0]; }")
        assert isinstance(fn.ftype.params[0][1], PointerType)

    def test_end_pos_is_closing_brace(self):
        fn = first_decl("int f(void)\n{\n  return 0;\n}")
        assert fn.end_pos.line == 4


class TestStatements:
    def wrap(self, body):
        fn = first_decl("void f(void) { %s }" % body)
        return fn.body.items

    def test_if_else(self):
        (stmt,) = self.wrap("if (1) ; else ;")
        assert isinstance(stmt, tree.If) and stmt.els is not None

    def test_dangling_else(self):
        (stmt,) = self.wrap("if (1) if (2) ; else ;")
        assert stmt.els is None
        assert stmt.then.els is not None

    def test_loops(self):
        items = self.wrap("while (1) ; do ; while (0); for (;;) break;")
        assert isinstance(items[0], tree.While)
        assert isinstance(items[1], tree.DoWhile)
        assert isinstance(items[2], tree.For)
        assert items[2].cond is None

    def test_switch(self):
        (stmt,) = self.wrap("switch (1) { case 1: break; default: break; }")
        assert isinstance(stmt, tree.Switch)

    def test_return_value(self):
        fn = first_decl("int f(void) { return 42; }")
        assert isinstance(fn.body.items[0].value, tree.IntLit)

    def test_local_declarations_in_nested_blocks(self):
        fn = first_decl("void f(void) { int i; { int j; } }")
        assert isinstance(fn.body.items[0], tree.VarDecl)
        inner = fn.body.items[1]
        assert isinstance(inner.items[0], tree.VarDecl)


class TestExpressions:
    def test_precedence(self):
        e = parse_expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.left.op == "-"

    def test_assignment_right_assoc(self):
        e = parse_expr("a = b = c")
        assert isinstance(e.value, tree.Assign)

    def test_conditional(self):
        e = parse_expr("a ? b : c ? d : e")
        assert isinstance(e.els, tree.Cond)

    def test_unary_chain(self):
        e = parse_expr("!*p")
        assert e.op == "!" and e.operand.op == "*"

    def test_postfix_chain(self):
        e = parse_expr("a.b[2]->c")
        assert isinstance(e, tree.Member) and e.arrow

    def test_call_args(self):
        e = parse_expr("f(1, 2, 3)")
        assert isinstance(e, tree.Call) and len(e.args) == 3

    def test_cast_vs_parens(self):
        parser = Parser("(int)x + (y)")
        e = parser.expression()
        assert isinstance(e.left, tree.Cast)
        assert isinstance(e.right, tree.Ident)

    def test_sizeof_type_and_expr(self):
        assert isinstance(parse_expr("sizeof(int)"), tree.SizeofType)
        e = parse_expr("sizeof x")
        assert isinstance(e, tree.Unary) and e.op == "sizeof"

    def test_string_concatenation(self):
        e = parse_expr('"ab" "cd"')
        assert e.value == "abcd"

    def test_comma(self):
        e = parse_expr("a, b")
        assert isinstance(e, tree.Comma)

    def test_error_position(self):
        with pytest.raises(CError) as info:
            parse("int f(void) {\n  return $;\n}")
        assert info.value.line == 2
