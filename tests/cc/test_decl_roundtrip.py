"""Declaration round-trips: the expression server's foundation.

The server reconstructs compiler types from the C-token declarations
ldb sends (paper Sec. 3).  That only works if
``parse(decl_pattern(T) % name)`` rebuilds a type equal to ``T`` — a
property we fuzz over randomly generated types.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.ctypes_ import (
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    TypeSystem,
    _same,
)
from repro.cc.lexer import tokenize
from repro.cc.parser import Parser
from repro.cc.pssym import decl_pattern, struct_cdef

TYPES = TypeSystem("rmips")

_SCALARS = [TYPES.char, TYPES.uchar, TYPES.short, TYPES.ushort,
            TYPES.int, TYPES.uint, TYPES.float, TYPES.double]


def random_type(draw, depth):
    base = draw(st.sampled_from(_SCALARS))
    t = base
    for _ in range(draw(st.integers(0, depth))):
        choice = draw(st.sampled_from(["ptr", "array", "ptr", "array"]))
        if choice == "ptr":
            t = PointerType(t)
        else:
            t = ArrayType(t, draw(st.integers(1, 40)))
    return t


@st.composite
def ctype(draw):
    return random_type(draw, 3)


def reparse(decl_text):
    """Parse `decl_text` as one declaration; return the built type."""
    parser = Parser(decl_text + ";", "<rt>", TYPES)
    base, _storage, _out = parser.declaration_specifiers()
    _name, built, _token = parser.declarator(base)
    return built


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(ctype())
    def test_random_types_round_trip(self, t):
        decl = decl_pattern(t).replace("%s", "v")
        rebuilt = reparse(decl)
        assert _same(rebuilt, t), (decl, t, rebuilt)

    @pytest.mark.parametrize("pattern", [
        "int %s", "char *%s", "unsigned short %s[3]",
        "double (*%s)[4]", "int **%s", "int (*%s)(int, char *)",
        "float %s[2][3]",
    ])
    def test_known_shapes(self, pattern):
        rebuilt = reparse(pattern.replace("%s", "v"))
        again = decl_pattern(rebuilt)
        assert again == pattern

    def test_struct_via_cdef(self):
        """Struct types need their definition shipped first (the cdefs
        the lookup reply carries)."""
        s = StructType("pair")
        s.define([("first", TYPES.int), ("second", PointerType(TYPES.char))])
        cdef = struct_cdef(s)
        parser = Parser(cdef + "; struct pair v;", "<rt>", TYPES)
        unit = parser.parse_translation_unit()
        rebuilt = unit.decls[-1].ctype
        assert rebuilt.size == s.size
        assert [f.name for f in rebuilt.fields] == ["first", "second"]
        assert [f.offset for f in rebuilt.fields] == [0, 4]

    def test_nested_struct_cdefs_compose(self):
        inner = StructType("inner")
        inner.define([("a", TYPES.int)])
        outer = StructType("outer")
        outer.define([("in_", inner), ("b", TYPES.double)])
        source = "%s; %s; struct outer v;" % (struct_cdef(inner),
                                              struct_cdef(outer))
        parser = Parser(source, "<rt>", TYPES)
        unit = parser.parse_translation_unit()
        rebuilt = unit.decls[-1].ctype
        assert rebuilt.size == outer.size
        assert rebuilt.field("b").offset == outer.field("b").offset
