"""Compile-and-run tests: compiled programs must behave like C.

These cover the code generators end-to-end (parser -> sema -> IR ->
backend -> linker -> simulator) on every target.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .helpers import ALL_ARCHES, c_output, run_c, run_main_expr


@pytest.fixture(params=ALL_ARCHES)
def arch(request):
    return request.param


class TestArithmetic:
    def test_integer_ops(self, arch):
        src = r"""
        int main(void) {
            int a = 17, b = 5;
            printf("%d %d %d %d %d\n", a + b, a - b, a * b, a / b, a %% b);
            printf("%d %d %d\n", -a, a << 2, a >> 1);
            printf("%d %d %d\n", a & b, a | b, a ^ b);
            return 0;
        }
        """.replace("%%", "%")
        assert c_output(src, arch) == "22 12 85 3 2\n-17 68 8\n1 21 20\n"

    def test_negative_division_truncates(self, arch):
        assert run_main_expr("(-7 / 2 == -3) + 2*(-7 % 2 == -1)", arch) == 3

    def test_unsigned_arithmetic(self, arch):
        src = r"""
        int main(void) {
            unsigned a = 0x80000000u;
            unsigned b = 3;
            printf("%u %u %u\n", a / b, a %% b, a >> 4);
            printf("%d\n", a > 1000u);
            return 0;
        }
        """.replace("%%", "%")
        assert c_output(src, arch) == "715827882 2 134217728\n1\n"

    def test_signed_shift_right(self, arch):
        assert run_main_expr("((-16) >> 2) == -4", arch) == 1

    def test_overflow_wraps(self, arch):
        assert run_main_expr("(2147483647 + 1 < 0)", arch) == 1

    def test_char_arithmetic(self, arch):
        src = r"""
        int main(void) {
            char c = 'z';
            signed char s = -1;
            unsigned char u = 255;
            printf("%d %d %d\n", c - 'a', s, u);
            return 0;
        }
        """
        assert c_output(src, arch) == "25 -1 255\n"

    def test_short_truncation(self, arch):
        src = r"""
        int main(void) {
            short s = 70000;         /* wraps to 70000 - 65536 */
            unsigned short u = 70000;
            printf("%d %d\n", s, u);
            return 0;
        }
        """
        assert c_output(src, arch) == "4464 4464\n"


class TestFloats:
    def test_double_ops(self, arch):
        src = r"""
        int main(void) {
            double a = 7.5, b = 2.0;
            printf("%g %g %g %g\n", a + b, a - b, a * b, a / b);
            printf("%d %d\n", a > b, (int) a);
            return 0;
        }
        """
        assert c_output(src, arch) == "9.5 5.5 15 3.75\n1 7\n"

    def test_float_vs_double(self, arch):
        src = r"""
        float half(float x) { return x / 2.0; }
        int main(void) {
            float f = 3.0;
            double d = half(f);
            printf("%g\n", d);
            return 0;
        }
        """
        assert c_output(src, arch) == "1.5\n"

    def test_int_float_conversion(self, arch):
        src = r"""
        int main(void) {
            int i = 7;
            double d = i / 2;      /* integer division, then convert */
            double e = i / 2.0;    /* float division */
            printf("%g %g %d\n", d, e, (int) e);
            return 0;
        }
        """
        assert c_output(src, arch) == "3 3.5 3\n"

    def test_long_double(self, arch):
        src = r"""
        int main(void) {
            long double x = 1.25;
            x = x * 4.0;
            printf("%g\n", (double) x);
            return 0;
        }
        """
        assert c_output(src, arch) == "5\n"


class TestControlFlow:
    def test_nested_loops(self, arch):
        src = r"""
        int main(void) {
            int total = 0, i, j;
            for (i = 0; i < 5; i++)
                for (j = 0; j <= i; j++)
                    total += j;
            printf("%d\n", total);
            return 0;
        }
        """
        assert c_output(src, arch) == "20\n"

    def test_break_continue(self, arch):
        src = r"""
        int main(void) {
            int s = 0, i;
            for (i = 0; i < 100; i++) {
                if (i == 7) break;
                if (i % 2) continue;
                s += i;
            }
            printf("%d\n", s);
            return 0;
        }
        """
        assert c_output(src, arch) == "12\n"

    def test_do_while(self, arch):
        src = r"""
        int main(void) {
            int n = 0;
            do { n++; } while (n < 5);
            printf("%d\n", n);
            return 0;
        }
        """
        assert c_output(src, arch) == "5\n"

    def test_switch_fallthrough(self, arch):
        src = r"""
        int pick(int c) {
            int r = 0;
            switch (c) {
            case 1: r += 1;
            case 2: r += 2; break;
            case 3: r += 4; break;
            default: r = 99;
            }
            return r;
        }
        int main(void) {
            printf("%d %d %d %d\n", pick(1), pick(2), pick(3), pick(7));
            return 0;
        }
        """
        assert c_output(src, arch) == "3 2 4 99\n"

    def test_short_circuit(self, arch):
        src = r"""
        int calls = 0;
        int bump(void) { calls++; return 1; }
        int main(void) {
            int r1 = 0 && bump();
            int r2 = 1 || bump();
            int r3 = 1 && bump();
            printf("%d %d %d %d\n", r1, r2, r3, calls);
            return 0;
        }
        """
        assert c_output(src, arch) == "0 1 1 1\n"

    def test_ternary(self, arch):
        assert run_main_expr("(5 > 3 ? 10 : 20) + (1 > 2 ? 100 : 1)", arch) == 11


class TestFunctions:
    def test_recursion(self, arch):
        src = r"""
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main(void) { printf("%d\n", ack(2, 3)); return 0; }
        """
        assert c_output(src, arch) == "9\n"

    def test_mutual_recursion(self, arch):
        src = r"""
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main(void) { printf("%d %d\n", is_even(10), is_odd(10)); return 0; }
        """
        assert c_output(src, arch) == "1 0\n"

    def test_many_arguments(self, arch):
        src = r"""
        int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b + c + d + e + f + g + h;
        }
        int main(void) { printf("%d\n", sum8(1,2,3,4,5,6,7,8)); return 0; }
        """
        assert c_output(src, arch) == "36\n"

    def test_function_pointer(self, arch):
        src = r"""
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int main(void) {
            int (*f)(int);
            f = twice;
            printf("%d ", f(10));
            f = thrice;
            printf("%d\n", f(10));
            return 0;
        }
        """
        assert c_output(src, arch) == "20 30\n"

    def test_double_args_mixed(self, arch):
        src = r"""
        double mix(int a, double b, int c, double d) {
            return a + b * c - d;
        }
        int main(void) { printf("%g\n", mix(1, 2.5, 4, 0.5)); return 0; }
        """
        assert c_output(src, arch) == "10.5\n"

    def test_value_preserved_across_call(self, arch):
        """Register variables must survive calls (callee-saved)."""
        src = r"""
        int noisy(void) { return 7; }
        int main(void) {
            int keep = 123;
            int x = noisy();
            printf("%d %d\n", keep, x);
            return 0;
        }
        """
        assert c_output(src, arch) == "123 7\n"


class TestPointersAndArrays:
    def test_pointer_walk(self, arch):
        src = r"""
        int main(void) {
            int a[5];
            int *p, s = 0;
            int i;
            for (i = 0; i < 5; i++) a[i] = i * i;
            for (p = a; p < a + 5; p++) s += *p;
            printf("%d\n", s);
            return 0;
        }
        """
        assert c_output(src, arch) == "30\n"

    def test_pointer_difference(self, arch):
        src = r"""
        int main(void) {
            int a[10];
            int *p = &a[7];
            int *q = &a[2];
            printf("%d\n", (int)(p - q));
            return 0;
        }
        """
        assert c_output(src, arch) == "5\n"

    def test_string_walk(self, arch):
        src = r"""
        int main(void) {
            char *s = "hello";
            int n = 0;
            while (s[n]) n++;
            printf("%d %c\n", n, s[1]);
            return 0;
        }
        """
        assert c_output(src, arch) == "5 e\n"

    def test_two_dimensional_array(self, arch):
        src = r"""
        int main(void) {
            int m[3][4];
            int i, j, s = 0;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            for (i = 0; i < 3; i++) s += m[i][i];
            printf("%d %d\n", s, m[2][3]);
            return 0;
        }
        """
        assert c_output(src, arch) == "33 23\n"

    def test_out_param(self, arch):
        src = r"""
        void divmod(int a, int b, int *q, int *r) { *q = a / b; *r = a % b; }
        int main(void) {
            int q, r;
            divmod(17, 5, &q, &r);
            printf("%d %d\n", q, r);
            return 0;
        }
        """
        assert c_output(src, arch) == "3 2\n"

    def test_global_array_initializer(self, arch):
        src = r"""
        int primes[5] = {2, 3, 5, 7, 11};
        char msg[] = "ok";
        int main(void) {
            printf("%d %s\n", primes[3], msg);
            return 0;
        }
        """
        assert c_output(src, arch) == "7 ok\n"


class TestStructs:
    def test_member_access_and_copy(self, arch):
        src = r"""
        struct point { int x; int y; };
        int main(void) {
            struct point a, b;
            a.x = 3; a.y = 4;
            b = a;
            b.y = 40;
            printf("%d %d %d %d\n", a.x, a.y, b.x, b.y);
            return 0;
        }
        """
        assert c_output(src, arch) == "3 4 3 40\n"

    def test_struct_pointers(self, arch):
        src = r"""
        struct node { int value; struct node *next; };
        int main(void) {
            struct node a, b, c;
            struct node *p;
            int s = 0;
            a.value = 1; a.next = &b;
            b.value = 2; b.next = &c;
            c.value = 3; c.next = 0;
            for (p = &a; p; p = p->next) s += p->value;
            printf("%d\n", s);
            return 0;
        }
        """
        assert c_output(src, arch) == "6\n"

    def test_nested_struct(self, arch):
        src = r"""
        struct inner { int a; int b; };
        struct outer { struct inner in; int c; };
        int main(void) {
            struct outer o;
            o.in.a = 1; o.in.b = 2; o.c = 3;
            printf("%d\n", o.in.a + o.in.b + o.c);
            return 0;
        }
        """
        assert c_output(src, arch) == "6\n"

    def test_array_of_structs(self, arch):
        src = r"""
        struct pair { int k; int v; };
        int main(void) {
            struct pair table[3];
            int i, s = 0;
            for (i = 0; i < 3; i++) { table[i].k = i; table[i].v = i * i; }
            for (i = 0; i < 3; i++) s += table[i].v;
            printf("%d\n", s);
            return 0;
        }
        """
        assert c_output(src, arch) == "5\n"

    def test_union_overlays(self, arch):
        src = r"""
        union both { int i; unsigned char bytes[4]; };
        int main(void) {
            union both u;
            u.i = 0x01020304;
            printf("%d\n", u.bytes[0] + u.bytes[3]);
            return 0;
        }
        """
        # 0x01 + 0x04 on either byte order
        assert c_output(src, arch) == "5\n"


class TestStorage:
    def test_static_locals_persist(self, arch):
        src = r"""
        int counter(void) { static int n; n++; return n; }
        int main(void) {
            counter(); counter();
            printf("%d\n", counter());
            return 0;
        }
        """
        assert c_output(src, arch) == "3\n"

    def test_globals_and_statics(self, arch):
        src = r"""
        int shared = 10;
        static int private_ = 20;
        void bump(void) { shared++; private_ += 2; }
        int main(void) {
            bump(); bump();
            printf("%d %d\n", shared, private_);
            return 0;
        }
        """
        assert c_output(src, arch) == "12 24\n"

    def test_scoped_shadowing(self, arch):
        src = r"""
        int main(void) {
            int x = 1;
            { int x = 2; printf("%d ", x); }
            printf("%d\n", x);
            return 0;
        }
        """
        assert c_output(src, arch) == "2 1\n"


class TestIncDec:
    def test_pre_post(self, arch):
        src = r"""
        int main(void) {
            int i = 5;
            printf("%d ", i++);
            printf("%d ", i);
            printf("%d ", ++i);
            printf("%d ", i--);
            printf("%d\n", --i);
            return 0;
        }
        """
        assert c_output(src, arch) == "5 6 7 7 5\n"

    def test_pointer_incdec(self, arch):
        src = r"""
        int main(void) {
            int a[3];
            int *p = a;
            a[0] = 10; a[1] = 20; a[2] = 30;
            printf("%d %d\n", *p++, *p);
            return 0;
        }
        """
        assert c_output(src, arch) == "10 20\n"

    def test_compound_assignment(self, arch):
        src = r"""
        int main(void) {
            int x = 100;
            x += 5; x -= 2; x *= 2; x /= 3; x %= 50; x <<= 1; x >>= 2;
            x |= 0x10; x &= 0x1F; x ^= 3;
            printf("%d\n", x);
            return 0;
        }
        """
        # 100+5=105, -2=103, *2=206, /3=68, %50=18, <<1=36, >>2=9,
        # |0x10=25, &0x1F=25, ^3=26
        assert c_output(src, arch) == "26\n"


class TestExitStatus:
    def test_main_return_value(self, arch):
        run_c("int main(void) { return 42; }", arch, expect_status=42)

    def test_exit_call(self, arch):
        run_c("int main(void) { exit(7); return 0; }", arch, expect_status=7)


class TestPropertyArithmetic:
    """Compiled C arithmetic must match the C abstract machine."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.sampled_from(["+", "-", "*", "|", "&", "^"]))
    def test_binary_ops_match(self, a, b, op):
        expected = eval("(%d) %s (%d)" % (a, op, b)) & 0xFF
        assert run_main_expr("(%d) %s (%d)" % (a, op, b)) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(-10000, 10000), st.integers(1, 100))
    def test_division_matches(self, a, b):
        import math
        quotient = int(math.trunc(a / b))
        remainder = a - quotient * b
        expected = ((quotient & 0xFF) + (remainder & 0xFF)) & 0xFF
        got = run_main_expr("((%d) / (%d) & 0xff) + ((%d) %% (%d) & 0xff)"
                            % (a, b, a, b))
        assert got == expected & 0xFF or got == (expected & 0x1FF) & 0xFF

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(0, 20))
    def test_shifts_match(self, a, s):
        expected = ((a << s) & 0xFFFFFFFF) >> 24 & 0xFF
        got = run_main_expr("((unsigned)%d << %d) >> 24" % (a, s))
        assert got == expected
