"""Scheduler correctness fuzz: delay slots must be invisible.

The rmips simulator enforces load-delay semantics, so the scheduler's
job is to make programs behave as if loads completed immediately.  We
generate random instruction sequences, compute the intended result on
an idealized machine (loads commit at once), schedule the sequence, run
it on the real delay-slot machine, and require identical final state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.asmsched import schedule
from repro.machines import Cpu, TargetMemory, get_arch
from repro.machines.isa import Insn, Label

ARCH = get_arch("rmips")

# registers the generator uses (r8-r15: the compiler's temporaries)
REGS = list(range(8, 16))
BASE = 0x1000  # a scratch data region


@st.composite
def instruction(draw):
    kind = draw(st.sampled_from(["alu", "alu", "alu", "load", "store",
                                 "imm"]))
    rd = draw(st.sampled_from(REGS))
    rs = draw(st.sampled_from(REGS))
    rt = draw(st.sampled_from(REGS))
    slot = draw(st.integers(0, 7)) * 4
    if kind == "alu":
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor"]))
        return Insn(op, rd=rd, rs=rs, rt=rt)
    if kind == "imm":
        return Insn("addi", rd=rd, rs=rs, imm=draw(st.integers(-50, 50)))
    if kind == "load":
        return Insn("lw", rd=rd, rs=0, imm=BASE + slot)
    return Insn("sw", rd=rd, rs=0, imm=BASE + slot)


@st.composite
def sequence(draw):
    insns = draw(st.lists(instruction(), min_size=2, max_size=20))
    # sprinkle stopping-point labels between instructions
    out = []
    for index, insn in enumerate(insns):
        if draw(st.booleans()):
            out.append(Label("f.S%d" % index, stop_index=index))
        out.append(insn)
    return out


def run_ideal(text):
    """Execute with loads committing immediately (the intended meaning)."""
    regs = {r: (r * 1234567) & 0xFFFFFFFF for r in REGS}
    regs[0] = 0
    memory = {BASE + 4 * i: (i * 271828) & 0xFFFFFFFF for i in range(8)}
    for item in text:
        if isinstance(item, Label):
            continue
        op = item.op
        if op == "nop":
            continue
        if op == "lw":
            regs[item.rd] = memory[item.imm]
        elif op == "sw":
            memory[item.imm] = regs[item.rd]
        elif op == "addi":
            regs[item.rd] = (regs[item.rs] + item.imm) & 0xFFFFFFFF
        else:
            a, b = regs[item.rs], regs[item.rt]
            value = {"add": a + b, "sub": a - b, "and": a & b,
                     "or": a | b, "xor": a ^ b}[op]
            regs[item.rd] = value & 0xFFFFFFFF
    return {r: regs[r] for r in REGS}, memory


def run_real(text):
    """Execute on the real CPU with delay-slot enforcement."""
    mem = TargetMemory(1 << 16, "big")
    cpu = Cpu(ARCH, mem)
    for r in REGS:
        cpu.regs[r] = (r * 1234567) & 0xFFFFFFFF
    for i in range(8):
        mem.write_u32(BASE + 4 * i, (i * 271828) & 0xFFFFFFFF)
    address = 0x4000
    for item in text:
        if isinstance(item, Label):
            continue
        mem.write_bytes(address, ARCH.encode(item))
        address += 4
    end = address
    cpu.pc = 0x4000
    while cpu.pc < end:
        cpu.step()
    # execute one trailing nop so a load in the final slot commits
    mem.write_bytes(end, ARCH.nop_bytes)
    cpu.step()
    regs = {r: cpu.regs[r] for r in REGS}
    memory = {BASE + 4 * i: mem.read_u32(BASE + 4 * i) for i in range(8)}
    return regs, memory


class TestSchedulerEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(sequence(), st.booleans())
    def test_scheduled_code_matches_ideal_semantics(self, text, debug):
        expected_regs, expected_mem = run_ideal(text)
        scheduled, _stats = schedule(list(text), debug=debug)
        got_regs, got_mem = run_real(scheduled)
        assert got_regs == expected_regs
        assert got_mem == expected_mem

    @settings(max_examples=60, deadline=None)
    @given(sequence())
    def test_restricted_never_reorders_across_stops(self, text):
        """With -g, no instruction may cross a stopping-point label."""
        scheduled, _stats = schedule(list(text), debug=True)

        def regions(items):
            out = [[]]
            for item in items:
                if isinstance(item, Label) and item.stop_index is not None:
                    out.append([])
                elif isinstance(item, Insn) and item.op != "nop":
                    out[-1].append(item)
            return out

        before = regions(text)
        after = regions(scheduled)
        assert len(before) == len(after)
        for original, rescheduled in zip(before, after):
            assert sorted(id(i) for i in original) == \
                sorted(id(i) for i in rescheduled)
