"""C lexer tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cc.lexer import CError, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_identifiers_and_keywords(self):
        assert kinds("int foo") == [("keyword", "int"), ("id", "foo")]

    def test_underscore_identifier(self):
        assert kinds("_x_1")[0] == ("id", "_x_1")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_positions(self):
        tokens = tokenize("a\n  b", "f.c")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)
        assert tokens[0].filename == "f.c"


class TestNumbers:
    @pytest.mark.parametrize("src,value", [
        ("42", 42), ("0", 0), ("0x1f", 31), ("0X1F", 31),
        ("010", 8), ("123u", 123), ("123L", 123), ("0xFFul", 255),
    ])
    def test_integers(self, src, value):
        assert kinds(src) == [("int", value)]

    @pytest.mark.parametrize("src,value", [
        ("1.5", 1.5), ("0.25", 0.25), (".5", 0.5), ("1e3", 1000.0),
        ("1.5e-2", 0.015), ("2.5f", 2.5),
    ])
    def test_floats(self, src, value):
        assert kinds(src) == [("float", value)]

    def test_int_then_dot_member(self):
        """3 . x must not parse as a float."""
        assert [k for k, _ in kinds("a.x")] == ["id", "punct", "id"]


class TestCharsAndStrings:
    @pytest.mark.parametrize("src,value", [
        ("'a'", ord("a")), ("'\\n'", 10), ("'\\0'", 0), ("'\\x41'", 65),
        ("'\\101'", 65), ("'\\''", 39),
    ])
    def test_char_constants(self, src, value):
        assert kinds(src) == [("int", value)]

    def test_string(self):
        assert kinds('"hi there"') == [("string", "hi there")]

    def test_string_escapes(self):
        assert kinds(r'"a\tb\n"') == [("string", "a\tb\n")]

    def test_unterminated_string(self):
        with pytest.raises(CError):
            tokenize('"oops')

    def test_unterminated_char(self):
        with pytest.raises(CError):
            tokenize("'a")


class TestPunctuation:
    def test_three_char(self):
        assert kinds("<<= >>= ...") == [("punct", "<<="), ("punct", ">>="),
                                        ("punct", "...")]

    def test_two_char(self):
        text = "<< >> <= >= == != && || ++ -- -> += -="
        assert all(k == "punct" for k, _ in kinds(text))

    def test_maximal_munch(self):
        assert [v for _, v in kinds("a+++b")] == ["a", "++", "+", "b"]

    def test_stray_character(self):
        with pytest.raises(CError):
            tokenize("a $ b")


class TestComments:
    def test_block_comment(self):
        assert kinds("a /* junk */ b") == [("id", "a"), ("id", "b")]

    def test_block_comment_multiline_tracks_lines(self):
        tokens = tokenize("/* a\nb */ x")
        assert tokens[0].line == 2

    def test_line_comment(self):
        assert kinds("a // junk\nb") == [("id", "a"), ("id", "b")]

    def test_unterminated_comment(self):
        with pytest.raises(CError):
            tokenize("/* oops")


class TestProperties:
    @given(st.integers(0, 2**31 - 1))
    def test_decimal_round_trip(self, n):
        assert kinds(str(n)) == [("int", n)]

    @given(st.text(alphabet="abcdefgh_", min_size=1, max_size=20))
    def test_identifier_round_trip(self, name):
        tokens = kinds(name)
        assert len(tokens) == 1 and tokens[0][1] == name
