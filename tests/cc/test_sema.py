"""Semantic analysis tests: typing, scope chains, error reporting."""

import pytest

from repro.cc.ctypes_ import PointerType, TypeSystem
from repro.cc.lexer import CError
from repro.cc.parser import parse
from repro.cc.sema import Sema


def analyze(source, arch="rmips"):
    types = TypeSystem(arch)
    ast = parse(source, "t.c", types)
    return Sema(types, "t.c").analyze(ast)


class TestScopeChains:
    """The uplink tree of paper Fig. 2."""

    FIB = """
    void fib(int n)
    {
        static int a[20];
        if (n > 20) n = 20;
        a[0] = a[1] = 1;
        { int i;
          for (i=2; i<n; i++) a[i] = a[i-1] + a[i-2];
        }
        { int j;
          for (j=0; j<n; j++) printf("%d ", a[j]);
        }
        printf("\\n");
    }
    """

    def test_uplinks_form_a_tree(self):
        info = analyze(self.FIB).functions[0]
        syms = {s.name: s for s in info.params + info.locals + info.statics}
        assert syms["i"].uplink is syms["a"]
        assert syms["j"].uplink is syms["a"]   # sibling blocks share uplink
        assert syms["a"].uplink is syms["n"]
        assert syms["n"].uplink is None

    def test_param_chain(self):
        info = analyze("int f(int a, int b, int c) { return a; }").functions[0]
        chain = info.param_chain
        assert chain.name == "c"
        assert chain.uplink.name == "b"
        assert chain.uplink.uplink.name == "a"

    def test_statics_recorded(self):
        info = analyze(self.FIB).functions[0]
        assert [s.name for s in info.statics] == ["a"]
        assert info.statics[0].label.startswith("_a_")

    def test_shadowing_gets_two_symbols(self):
        info = analyze("void f(void) { int x; { int x; x = 1; } x = 2; }").functions[0]
        assert len([s for s in info.locals if s.name == "x"]) == 2


class TestTyping:
    def test_usual_arithmetic_conversions(self):
        types = TypeSystem()
        assert types.usual_arith(types.char, types.short) is types.int
        assert types.usual_arith(types.int, types.uint) is types.uint
        assert types.usual_arith(types.int, types.double) is types.double
        assert types.usual_arith(types.float, types.float) is types.float

    def test_long_double_size_depends_on_target(self):
        assert TypeSystem("rm68k").ldouble.size == 10
        assert TypeSystem("rmips").ldouble.size == 8

    def test_implicit_function_declaration(self):
        info = analyze("int main(void) { return mystery(1); }")
        # C89: calling an unknown function implicitly declares int f()
        assert info.functions[0].symbol.name == "main"

    def test_builtin_printf_varargs(self):
        analyze('int main(void) { printf("%d %s", 1, "x"); return 0; }')


class TestErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("int main(void) { return x; }", "undeclared"),
        ("int main(void) { 1 = 2; return 0; }", "non-lvalue"),
        ("int main(void) { int a[3]; a = 0; return 0; }", "array"),
        ("void f(void) { return 1; }", "void"),
        ("int f(void) { return; }", "without a value"),
        ("int main(void) { int x; return *x; }", "dereference"),
        ("struct s { int a; }; int main(void) { struct s v; return v.b; }",
         "no member"),
        ("int main(void) { void *p; return *p; }", "void"),
        ("int f(int a) { return a(); }", "non-function"),
        ("int main(void) { double d; return d % 2; }", "integer"),
    ])
    def test_rejected(self, source, fragment):
        with pytest.raises(CError) as info:
            analyze(source)
        assert fragment in str(info.value)

    def test_wrong_argument_count(self):
        with pytest.raises(CError):
            analyze("int f(int a) { return a; } int main(void) { return f(1, 2); }")

    def test_break_outside_loop_rejected_in_irgen(self):
        from repro.cc.irgen import IRGen
        types = TypeSystem()
        ast = parse("int main(void) { break; return 0; }", "t.c", types)
        info = Sema(types, "t.c").analyze(ast)
        with pytest.raises(CError):
            IRGen(types, info).generate(ast)


class TestChainAt:
    def test_statement_chains_recorded(self):
        source = """
        void f(int n) {
            int a;
            a = 1;
            { int b;
              b = 2;
            }
            a = 3;
        }
        """
        info = analyze(source).functions[0]
        # every recorded chain must be a declared symbol or None
        names = {s.name for s in info.params + info.locals}
        for chain in info.chain_at.values():
            if chain is not None:
                assert chain.name in names
        recorded = [c.name if c else None for c in info.chain_at.values()]
        assert "a" in recorded   # the statement after `int a`
        assert "b" in recorded   # inside the block
