"""Preprocessor tests: macros, includes, conditionals — and the
paper's Sec. 2 point that one source line can hold many stopping points."""

import pytest

from repro.cc.cpp import Preprocessor, preprocess
from repro.cc.lexer import CError

from .helpers import c_output


class TestObjectMacros:
    def test_simple_substitution(self):
        assert preprocess("#define N 10\nint a[N];\n") == "\nint a[10];\n"

    def test_line_numbers_preserved(self):
        out = preprocess("#define A 1\n#define B 2\nA + B\n")
        assert out.splitlines()[2] == "1 + 2"

    def test_macro_in_macro(self):
        src = "#define A 1\n#define B (A + A)\nB\n"
        assert preprocess(src).splitlines()[2] == "(1 + 1)"

    def test_self_reference_does_not_loop(self):
        src = "#define X X+1\nX\n"
        assert preprocess(src).splitlines()[1] == "X+1"

    def test_strings_untouched(self):
        src = '#define N 10\nchar *s = "N of N";\n'
        assert '"N of N"' in preprocess(src)

    def test_comments_untouched(self):
        src = "#define N 10\nint x; /* N */ // N\n"
        out = preprocess(src)
        assert "/* N */ // N" in out

    def test_word_boundaries(self):
        src = "#define N 10\nint NN = N;\n"
        assert preprocess(src).splitlines()[1] == "int NN = 10;"

    def test_undef(self):
        src = "#define N 10\n#undef N\nN\n"
        assert preprocess(src).splitlines()[2] == "N"

    def test_predefines(self):
        out = preprocess("SIZE\n", defines={"SIZE": "64"})
        assert out.splitlines()[0] == "64"


class TestFunctionMacros:
    def test_basic_call(self):
        src = "#define SQ(x) ((x) * (x))\nSQ(4)\n"
        assert preprocess(src).splitlines()[1] == "((4) * (4))"

    def test_two_parameters(self):
        src = "#define MAX(a, b) ((a) > (b) ? (a) : (b))\nMAX(x, y+1)\n"
        assert preprocess(src).splitlines()[1] == \
            "((x) > (y+1) ? (x) : (y+1))"

    def test_nested_parentheses_in_args(self):
        src = "#define ID(v) v\nID(f(1, 2))\n"
        assert preprocess(src).splitlines()[1] == "f(1, 2)"

    def test_name_without_call_left_alone(self):
        src = "#define F(x) x\nint F;\n"
        # no parenthesis: not an invocation
        assert preprocess(src).splitlines()[1] == "int F;"

    def test_wrong_arity_raises(self):
        with pytest.raises(CError):
            preprocess("#define TWO(a, b) a b\nTWO(1)\n")


class TestConditionals:
    def test_ifdef_taken(self):
        src = "#define YES 1\n#ifdef YES\nkept\n#else\ndropped\n#endif\n"
        lines = preprocess(src).splitlines()
        assert "kept" in lines
        assert "dropped" not in lines

    def test_ifndef(self):
        src = "#ifndef NO\nkept\n#endif\n"
        assert "kept" in preprocess(src)

    def test_nested_conditionals(self):
        src = ("#define A 1\n#ifdef A\n#ifdef B\ninner\n#else\nmiddle\n"
               "#endif\n#endif\n")
        lines = preprocess(src).splitlines()
        assert "middle" in lines and "inner" not in lines

    def test_inactive_region_skips_directives(self):
        src = "#ifdef NO\n#define X 1\n#endif\nX\n"
        assert preprocess(src).splitlines()[3] == "X"

    def test_unterminated_raises(self):
        with pytest.raises(CError):
            preprocess("#ifdef A\n")

    def test_stray_endif_raises(self):
        with pytest.raises(CError):
            preprocess("#endif\n")


class TestIncludes:
    def test_in_memory_include(self):
        files = {"defs.h": "#define ANSWER 42\nint helper(int);\n"}
        src = '#include "defs.h"\nint a = ANSWER;\n'
        out = preprocess(src, files=files)
        assert "int helper(int);" in out
        assert "int a = 42;" in out

    def test_missing_include_raises(self):
        with pytest.raises(CError):
            preprocess('#include "nope.h"\n')

    def test_include_macros_persist(self):
        files = {"n.h": "#define N 7\n"}
        out = preprocess('#include "n.h"\nint a[N];\n', files=files)
        assert "int a[7];" in out


class TestEndToEnd:
    def test_compiled_program_with_macros(self):
        src = r"""
#define LIMIT 5
#define SQ(x) ((x) * (x))
int main(void) {
    int i, total = 0;
    for (i = 0; i < LIMIT; i++)
        total += SQ(i);
    printf("%d\n", total);
    return 0;
}
"""
        assert c_output(src) == "30\n"

    def test_macro_gives_multiple_stops_on_one_line(self):
        """The paper, Sec. 2: because of the C preprocessor, a single
        source location may correspond to more than one stopping point."""
        import io

        from repro.cc.driver import compile_and_link
        from repro.ldb import Ldb

        src = r"""
#define BUMP total = total + 1; count = count + 1
int total = 0;
int count = 0;
int main(void) {
    BUMP;             /* line 6: two statements, two stopping points */
    return total + count;
}
"""
        exe = compile_and_link({"m.c": src}, "rmips", debug=True)
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe)
        hits = target.symtab.stops_for_line("m.c", 6)
        assert len(hits) == 2
        # break_at_line plants at both; both hit
        ldb.break_at_line("m.c", 6)
        ldb.run_to_stop()
        assert ldb.evaluate("total") == 0   # before the first statement
        ldb.run_to_stop()
        assert ldb.evaluate("total") == 1   # between the two
        target.kill()
