"""Compile-and-run helpers shared by compiler tests."""

from repro.cc.driver import compile_and_link
from repro.machines import FaultEvent, Process, SIGTRAP

ALL_ARCHES = ("rmips", "rmipsel", "rsparc", "rm68k", "rvax")


def run_c(source, arch="rmips", debug=False, expect_status=None):
    """Compile, link, run; returns (exit status, stdout text)."""
    exe = compile_and_link({"test.c": source}, arch, debug=debug)
    process = Process(exe)
    event = process.run_until_event()
    if isinstance(event, FaultEvent) and event.signo == SIGTRAP:
        # skip the nub's startup pause (nobody is debugging)
        process.cpu.pc = event.pc + exe.arch.noop_advance
        event = process.run_until_event()
    status = getattr(event, "status", None)
    if status is None:
        raise AssertionError("target faulted: %r" % (event,))
    if expect_status is not None:
        assert status == expect_status, \
            "exit %r, expected %r (output %r)" % (status, expect_status,
                                                  process.output())
    return status, process.output()


def run_main_expr(expression, arch="rmips", prologue=""):
    """Run `int main(void){ return (expression) & 0xff; }`."""
    source = "%s\nint main(void) { return (%s) & 0xff; }\n" % (prologue, expression)
    status, _ = run_c(source, arch)
    return status


def c_output(source, arch="rmips", debug=False):
    return run_c(source, arch, debug)[1]
