"""Floating-point debugging across targets (paper Sec. 7).

"Floating point complicates cross-debugging" — the paper singles out
differing precision and float state.  These tests pin the behaviors our
substitution preserves: f32/f64 values print and evaluate identically
on every byte order, and the 68020 analog's 80-bit extended values
survive the full nub/context/DAG round trip.
"""

import io

import pytest

from ..ldb.helpers import session

FLOATS = """
double gd = 2.5;
float gf = 0.25;
double halve(double x) {
    double h = x / 2.0;
    return h;                  /* line 6 */
}
int main(void) {
    double r = halve(gd) + gf;
    printf("%g\\n", r);
    return 0;
}
"""

ALL_ARCHES = ["rmips", "rmipsel", "rsparc", "rm68k", "rvax"]


@pytest.fixture(params=ALL_ARCHES)
def arch(request):
    return request.param


class TestFloatValues:
    def test_print_globals(self, arch):
        ldb, target = session(FLOATS, arch, filename="f.c")
        ldb.break_at_line("f.c", 6)
        ldb.run_to_stop()
        assert ldb.print_variable("gd").strip() == "2.5"
        assert ldb.print_variable("gf").strip() == "0.25"

    def test_local_double_in_frame(self, arch):
        ldb, target = session(FLOATS, arch, filename="f.c")
        ldb.break_at_line("f.c", 6)
        ldb.run_to_stop()
        assert ldb.evaluate("h") == 1.25
        assert ldb.evaluate("x") == 2.5

    def test_double_expressions(self, arch):
        ldb, target = session(FLOATS, arch, filename="f.c")
        ldb.break_at_line("f.c", 6)
        ldb.run_to_stop()
        assert ldb.evaluate("h * 4.0 + gd") == 7.5
        assert ldb.evaluate("gd > 2.0") == 1

    def test_assign_double(self, arch):
        ldb, target = session(FLOATS, arch, filename="f.c")
        ldb.break_at_line("f.c", 6)
        ldb.run_to_stop()
        ldb.evaluate("h = 100.5")
        assert ldb.evaluate("h") == 100.5
        target.breakpoints.remove_all()
        while ldb.run_to_stop() == "stopped":
            pass
        # the changed local flowed back into the computation
        assert target.process.output() == "100.75\n"


class TestLongDouble:
    def test_f80_on_m68k_through_debugger(self):
        """The 80-bit case needs its own nub code (Sec. 4.3)."""
        source = """
        long double acc = 1.25;
        int main(void) {
            acc = acc * 3.0;
            return (int) acc;       /* line 5 */
        }
        """
        ldb, target = session(source, "rm68k", filename="ld.c")
        ldb.break_at_line("ld.c", 5)
        ldb.run_to_stop()
        assert ldb.print_variable("acc").strip() == "3.75"
        assert ldb.evaluate("acc") == 3.75

    def test_f80_size_in_symbol_table(self):
        source = "long double g = 1.0;\nint main(void) { return 0; }"
        for arch, size in (("rm68k", 10), ("rmips", 8)):
            ldb, target = session(source, arch, filename="ld.c")
            entry = target.symtab.extern_entry("g")
            assert entry["type"]["size"] == size, arch
            target.kill()


class TestFloatRegistersInContext:
    def test_f_space_reads_through_dag(self, arch):
        """Float registers are saved in the context and alias through
        the f space (the Fig. 4 f-register path)."""
        from repro.postscript import Location
        ldb, target = session(FLOATS, arch, filename="f.c")
        ldb.break_at_line("f.c", 6)
        ldb.run_to_stop()
        frame = target.top_frame()
        value = frame.memory.fetch(Location.absolute("f", 0), "f64")
        assert isinstance(value, float)

    def test_mips_be_freg_quirk_roundtrip(self):
        """Footnote 3 end to end: a double written to a big-endian rmips
        f-register reads back correctly through the nub's swap code."""
        from repro.postscript import Location
        ldb, target = session(FLOATS, "rmips", filename="f.c")
        ldb.break_at_line("f.c", 6)
        ldb.run_to_stop()
        frame = target.top_frame()
        # f15 is never touched by generated code, so the value survives
        loc = Location.absolute("f", 15)
        frame.memory.store(loc, "f64", 6.125)
        assert frame.memory.fetch(loc, "f64") == 6.125
        # and the nub's restore path carries it into the live register
        target.breakpoints.remove_all()
        while ldb.run_to_stop() == "stopped":
            pass
        assert target.process.cpu.fregs[15] == 6.125
