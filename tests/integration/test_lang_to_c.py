"""A second language on top of the C compiler (paper Sec. 7.1).

"The first compiler can emit PostScript code that manipulates the
symbols emitted by the C compiler, producing one set of symbols that
combines the results of two compilations."
"""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

C_SOURCE = """int calc_price = 250;
int calc_total;
int main(void) {
    calc_total = calc_price * 5;
    return 0;                        /* line 5 */
}
"""

OVERLAY = """
/MONEY {
  pop fetch32
  /&cents exch def
  ($) Put &cents 100 idiv Put (.) Put
  /&frac &cents 100 mod def
  &frac 10 lt { (0) Put } if
  &frac Put
} def
/MoneyType << /decl (money %s) /printer { MONEY } /size 4 >> def
CalcTable /symtab get /externs get /calc_price get /&centry exch def
/price <<
  /name (price) /kind (variable) /type MoneyType
  /sourcefile (program.calc) /sourcey 1 /sourcex 1
  /where &centry /where get
  /uplink null
>> def
CalcTable /symtab get /externs get /price price put
CalcTable /symtab get /externs get /calc_total get /&tentry exch def
/total <<
  /name (total) /kind (variable) /type MoneyType
  /sourcefile (program.calc) /sourcey 4 /sourcex 1
  /where &tentry /where get
  /uplink null
>> def
CalcTable /symtab get /externs get /total total put
"""


@pytest.fixture
def overlaid_session():
    exe = compile_and_link({"calc.c": C_SOURCE}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.interp.define("CalcTable", target.table)
    ldb.interp.run(OVERLAY)
    ldb.break_at_line("calc.c", 5)
    ldb.run_to_stop()
    return ldb, target


class TestCombinedSymbols:
    def test_source_language_names_resolve(self, overlaid_session):
        ldb, target = overlaid_session
        assert target.symtab.extern_entry("price") is not None
        assert target.symtab.extern_entry("total") is not None
        # the C-level names still work too: one combined set of symbols
        assert target.symtab.extern_entry("calc_price") is not None

    def test_money_printing(self, overlaid_session):
        ldb, target = overlaid_session
        assert ldb.print_variable("price").strip() == "$2.50"
        assert ldb.print_variable("total").strip() == "$12.50"

    def test_same_storage_two_views(self, overlaid_session):
        """The CALC symbol and the C symbol share one location."""
        ldb, target = overlaid_session
        assert ldb.evaluate("calc_price") == 250
        assert ldb.print_variable("price").strip() == "$2.50"
        # writing through the C view changes the CALC view
        ldb.evaluate("calc_price = 999")
        assert ldb.print_variable("price").strip() == "$9.99"

    def test_cents_pad_to_two_digits(self, overlaid_session):
        ldb, target = overlaid_session
        ldb.evaluate("calc_price = 105")
        assert ldb.print_variable("price").strip() == "$1.05"
