"""The paper's extensibility claims: new capabilities without touching ldb.

Sec. 7.1: "ldb's capabilities can be extended by changing only the
PostScript symbol tables; ldb itself need not change" — richer
languages, and recovering values optimized away ("if an optimizer
performs strength reduction and replaces the use of i in a[i] with an
induction variable p, the compiler can emit PostScript that recovers i
from p").

Sec. 7: "ldb's PostScript symbol tables can be manipulated by PostScript
programs" — they generated Modula-3 declarations from a symbol table;
we generate C declarations.
"""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.postscript import Location, PSDict

from ..ldb.helpers import FIB, session


class TestCustomPrinters:
    """A 'richer language' whose values print in its own notation, done
    purely by editing the type dictionary in the symbol table."""

    def test_new_printer_procedure_without_ldb_changes(self):
        source = """
        int flags = 0x2a;
        int main(void) { return flags; }
        """
        ldb, target = session(source, filename="flags.c")
        ldb.break_at_line("flags.c", 3)
        ldb.run_to_stop()

        # pretend another compiler emitted this entry: a bitset type
        # whose printer renders set-notation, not an integer
        ldb.interp.run("""
          /BITSET {
            pop fetch32
            /&v exch def
            ({) Put
            /&first true def
            0 1 31 {
              /&bit exch def
              &v 1 &bit bitshift and 0 ne {
                &first { /&first false def } { (,) Put } ifelse
                &bit Put
              } if
            } for
            (}) Put
          } def
        """)
        entry = target.top_frame().resolve("flags")
        entry["type"]["printer"] = ldb.interp.lookup("BITSET")
        text = ldb.print_variable("flags").strip()
        assert text == "{1,3,5}"   # 0x2a = bits 1, 3, 5

    def test_tagged_value_printer(self):
        """A discriminated-union printer (the Modula-3/C++ direction)."""
        source = """
        struct variant { int tag; int payload; };
        struct variant v;
        int main(void) {
            v.tag = 1;
            v.payload = 65;
            return v.tag;   /* line 7 */
        }
        """
        ldb, target = session(source, filename="v.c")
        ldb.break_at_line("v.c", 7)
        ldb.run_to_stop()
        ldb.interp.run("""
          /VARIANT {
            /&type exch def
            /&loc exch def
            /&machine exch def
            /&tag &machine &loc fetch32 def
            &tag 0 eq {
              (Int ) Put &machine &loc 4 Shifted fetch32 Put
            } {
              (Char ') Put
              &machine &loc 4 Shifted fetch32 chr Put
              (') Put
            } ifelse
          } def
        """)
        entry = target.top_frame().resolve("v")
        entry["type"]["printer"] = ldb.interp.lookup("VARIANT")
        assert ldb.print_variable("v").strip() == "Char 'A'"


class TestOptimizedCodeRecovery:
    """Strength reduction: recover i from the induction pointer p."""

    def test_where_procedure_computes_derived_value(self):
        # the "optimizer" kept p = &a[i]; i itself has no home, but
        # i == (p - a) / sizeof(int), and the compiler can say so in
        # PostScript
        source = """
        int a[10];
        int *p;
        int consume(int x) { return x; }
        int main(void) {
            for (p = a; p < a + 10; p++)
                consume(*p);           /* line 7 */
            return 0;
        }
        """
        ldb, target = session(source, filename="opt.c")
        ldb.break_at_line("opt.c", 7)
        for _ in range(4):            # run a few iterations in
            ldb.run_to_stop()
        frame = target.top_frame()

        # what the optimizing compiler would have emitted for i:
        # fetch p, subtract a's address, divide by the element size,
        # and present the result as an immediate location
        p_entry = frame.resolve("p")
        a_entry = frame.resolve("a")
        p_loc = target.location_of(p_entry, frame)
        a_loc = target.location_of(a_entry, frame)
        recover_i = ("%d (d) Absolute ExprMemHack exch fetch32 "
                     "%d sub 4 idiv Immediate"
                     % (p_loc.offset, a_loc.offset))
        hack = PSDict()
        hack["ExprMemHack"] = frame.memory
        ldb.interp.push_dict(hack)
        try:
            ldb.interp.run(recover_i)
            i_location = ldb.interp.pop()
        finally:
            ldb.interp.pop_dict_stack()
        assert isinstance(i_location, Location)
        recovered_i = frame.memory.fetch(i_location, "i32")
        assert recovered_i == 3       # the 4th iteration


class TestSymtabAsData:
    """PostScript programs can process the symbol tables (Sec. 7)."""

    def test_generate_c_declarations_from_symtab(self):
        ldb, target = session()
        out = io.StringIO()
        old = ldb.interp.stdout
        ldb.interp.stdout = out
        try:
            # a PostScript program over the top-level dictionary: emit a
            # C extern declaration for every procedure
            ldb.interp.push(target.symtab.toplevel)
            ldb.interp.run("""
              /externs get
              {
                exch pop            % drop the key, keep the entry
                dup /kind get (procedure) eq {
                  dup /name get /&name exch def
                  /type get /decl get /&decl exch def
                  (extern ) Put
                  &decl (%s) search {
                    % stack: post match pre
                    /&pre exch def pop /&post exch def
                    &pre Put &name Put &post Put
                  } {
                    Put ( ) Put &name Put
                  } ifelse
                  (;) Put Newline
                } { pop } ifelse
              } forall
            """)
        finally:
            ldb.interp.stdout = old
        text = out.getvalue()
        assert "extern" in text
        assert "fib" in text and "main" in text

    def test_walk_symtab_counting_entries(self):
        """A simpler manipulation: count symbols per kind in PostScript."""
        ldb, target = session()
        ldb.interp.push(target.symtab.toplevel)
        ldb.interp.run("""
          /procs get
          0 exch { pop 1 add } forall
        """)
        assert ldb.interp.pop() == 2   # fib and main
