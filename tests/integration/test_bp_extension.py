"""The Sec. 7.1 breakpoint protocol extension, end to end.

The paper: "We can solve this problem by enriching the protocol with a
special store operation used only for planting breakpoints and by
making the nub capable of reporting to a new debugger the instructions
overwritten by such stores, in case the connection to the original
debugger is lost" — and: ldb "should continue to function correctly
when [extensions] are not available."
"""

import io

import pytest

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.machines import Process
from repro.nub import Listener, Nub, NubRunner

from ..ldb.helpers import FIB


def start_listening_nub(breakpoint_extension=True, arch="rmips"):
    exe = compile_and_link({"fib.c": FIB}, arch, debug=True)
    table_ps = loader_table_ps(exe)
    listener = Listener()
    process = Process(exe)
    nub = Nub(process, listener=listener, accept_timeout=15.0,
              breakpoint_extension=breakpoint_extension)
    runner = NubRunner(nub).start()
    nub.debug_process = process
    return exe, table_ps, listener, nub, runner


class TestExtension:
    def test_probe_detects_support(self):
        exe, table_ps, listener, nub, runner = start_listening_nub()
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.attach("127.0.0.1", listener.port, table_ps)
        assert target.breakpoints.extension_available()
        target.kill()
        runner.join()
        listener.close()

    def test_probe_detects_minimal_nub(self):
        exe, table_ps, listener, nub, runner = start_listening_nub(
            breakpoint_extension=False)
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.attach("127.0.0.1", listener.port, table_ps)
        assert not target.breakpoints.extension_available()
        # the debugger still functions: plain-store breakpoints work
        ldb.break_at_stop("fib", 9)
        ldb.run_to_stop()
        assert ldb.evaluate("a[4]") == 5
        target.kill()
        runner.join()
        listener.close()

    def test_nub_records_planted_instructions(self):
        exe, table_ps, listener, nub, runner = start_listening_nub()
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.attach("127.0.0.1", listener.port, table_ps)
        address = ldb.break_at_stop("fib", 6)
        assert address in nub.planted
        target.breakpoints.remove(address)
        assert address not in nub.planted
        target.kill()
        runner.join()
        listener.close()

    def test_new_debugger_recovers_breakpoints_after_crash(self):
        """The full Sec. 7.1 scenario, now working end to end."""
        exe, table_ps, listener, nub, runner = start_listening_nub()
        first = Ldb(stdout=io.StringIO())
        t1 = first.attach("127.0.0.1", listener.port, table_ps)
        planted = first.break_at_stop("fib", 9, target=t1)
        t1.channel.sock.close()      # the first debugger crashes

        second = Ldb(stdout=io.StringIO())
        t2 = second.attach("127.0.0.1", listener.port, table_ps)
        # the probe reports the crashed debugger's breakpoint
        assert t2.breakpoints.extension_available()
        adopted = t2.breakpoints.at(planted)
        assert adopted is not None and adopted.note == "adopted"
        # the new debugger handles the hit and can REMOVE it cleanly
        second.run_to_stop(target=t2)
        assert second.evaluate("a[4]", target=t2, frame=t2.top_frame()) == 5
        t2.breakpoints.remove_all()
        for _ in range(50):
            if second.run_to_stop(target=t2) != "stopped":
                break
        assert t2.state == "exited"
        assert nub.debug_process.output() == "1 1 2 3 5 8 13 21 34 55 \n"
        runner.join()
        listener.close()

    def test_extension_survives_byte_orders(self):
        """Planting through the extension respects target byte order."""
        for arch in ("rmips", "rmipsel", "rvax"):
            exe, table_ps, listener, nub, runner = start_listening_nub(arch=arch)
            ldb = Ldb(stdout=io.StringIO())
            target = ldb.attach("127.0.0.1", listener.port, table_ps)
            address = ldb.break_at_stop("fib", 6)
            # the planted trap reads back as the target's break pattern
            assert target.breakpoints.fetch_insn(address) == \
                target.breakpoints.break_pattern
            target.breakpoints.remove(address)
            assert target.breakpoints.fetch_insn(address) == \
                target.breakpoints.nop_pattern
            target.kill()
            runner.join()
            listener.close()
