"""Full debug-session integration tests across the whole stack."""

import io

import pytest

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb

from ..ldb.helpers import FIB, run_to_exit, session

ALL_ARCHES = ["rmips", "rmipsel", "rsparc", "rm68k", "rvax"]


@pytest.fixture(params=ALL_ARCHES)
def arch(request):
    return request.param


class TestFullSession:
    """The paper's user workflow: breakpoints, inspection, assignment,
    resumption — identical code on all five targets."""

    def test_complete_workflow(self, arch):
        ldb, target = session(arch=arch)
        ldb.break_at_stop("fib", 9)
        ldb.run_to_stop()
        # print i (wait: j loop) and the array through the DAG
        assert ldb.evaluate("j") == 0
        assert ldb.print_variable("a").startswith("{1, 1, 2, 3, 5")
        assert ldb.evaluate("n") == 10
        # backtrace
        names = [f.proc_name() for f in target.frames()]
        assert names == ["fib", "main"]
        # assignment changes behavior: shorten the print loop
        ldb.evaluate("n = 4")
        target.breakpoints.remove_all()
        assert run_to_exit(ldb, target) == "exited"
        assert target.process.output() == "1 1 2 3 \n"

    def test_two_line_program(self, arch):
        """The one-line hello world of the paper's timing table."""
        source = 'int main(void) { printf("hello, world\\n"); return 0; }'
        ldb, target = session(source, arch, filename="hello.c")
        assert run_to_exit(ldb, target) == "exited"
        assert target.process.output() == "hello, world\n"

    def test_fault_reported_with_position(self, arch):
        source = """
        int crash(int d) { return 10 / d; }
        int main(void) { return crash(0); }
        """
        ldb, target = session(source, arch, filename="crash.c")
        state = ldb.run_to_stop()
        assert state == "stopped"
        from repro.machines import SIGFPE
        assert target.signo == SIGFPE
        frame = target.top_frame()
        assert frame.proc_name() == "crash"
        # the caller is visible in the backtrace even after a fault
        assert [f.proc_name() for f in target.frames()] == ["crash", "main"]


class TestCrossArchitecture:
    """Sec. 1: cross-architecture debugging is identical to
    single-architecture debugging, and ldb can change architectures
    dynamically."""

    def test_two_targets_different_architectures(self):
        out = io.StringIO()
        ldb = Ldb(stdout=out)
        exe_big = compile_and_link({"fib.c": FIB}, "rmips", debug=True)
        exe_cisc = compile_and_link({"fib.c": FIB}, "rvax", debug=True)
        t_big = ldb.load_program(exe_big)
        t_cisc = ldb.load_program(exe_cisc)
        assert t_big.arch_name == "rmips"
        assert t_cisc.arch_name == "rvax"
        # drive both with the same client code
        for target in (t_big, t_cisc):
            ldb.switch_target(target.name)
            ldb.break_at_stop("fib", 9, target=target)
            ldb.run_to_stop(target=target)
            assert ldb.evaluate("a[4]", target=target,
                                frame=target.top_frame()) == 5
            assert ldb.print_variable("n", target=target).strip() == "10"

    def test_same_debugger_both_byte_orders(self):
        """The register memory makes byte order irrelevant (Sec. 4.1)."""
        out = io.StringIO()
        ldb = Ldb(stdout=out)
        values = {}
        for arch in ("rmips", "rmipsel"):
            exe = compile_and_link({"fib.c": FIB}, arch, debug=True)
            target = ldb.load_program(exe)
            ldb.break_at_stop("fib", 7, target=target)
            ldb.run_to_stop(target=target)
            values[arch] = (
                ldb.evaluate("i", target=target, frame=target.top_frame()),
                ldb.print_variable("a", target=target))
        assert values["rmips"] == values["rmipsel"]

    def test_interleaved_multi_target_session(self):
        """Multiple targets at once: no target state in globals (Sec. 7)."""
        out = io.StringIO()
        ldb = Ldb(stdout=out)
        targets = []
        for arch in ("rsparc", "rm68k"):
            exe = compile_and_link({"fib.c": FIB}, arch, debug=True)
            targets.append(ldb.load_program(exe))
        # advance them alternately to different stopping points
        ldb.break_at_stop("fib", 6, target=targets[0])
        ldb.break_at_stop("fib", 9, target=targets[1])
        ldb.run_to_stop(target=targets[0])
        ldb.run_to_stop(target=targets[1])
        assert ldb.evaluate("i", target=targets[0],
                            frame=targets[0].top_frame()) == 2
        assert ldb.evaluate("j", target=targets[1],
                            frame=targets[1].top_frame()) == 0
        # both continue to completion independently
        for target in targets:
            target.breakpoints.remove_all()
            assert run_to_exit(ldb, target) == "exited"
            assert target.process.output() == "1 1 2 3 5 8 13 21 34 55 \n"


class TestNetworkDebugging:
    """Sec. 4.2: debugging over the network, and surviving crashes."""

    def test_attach_over_tcp(self):
        from repro.machines import Process
        from repro.nub import Listener, Nub, NubRunner

        exe = compile_and_link({"fib.c": FIB}, "rmips", debug=True)
        table_ps = loader_table_ps(exe)
        listener = Listener()
        process = Process(exe)
        nub = Nub(process, listener=listener, accept_timeout=15.0)
        runner = NubRunner(nub).start()

        ldb = Ldb(stdout=io.StringIO())
        target = ldb.attach("127.0.0.1", listener.port, table_ps)
        assert target.state == "stopped"
        ldb.break_at_stop("fib", 9)
        ldb.run_to_stop()
        assert ldb.evaluate("a[5]") == 8
        target.breakpoints.remove_all()
        for _ in range(50):
            if ldb.run_to_stop() != "stopped":
                break
        assert target.state == "exited"
        runner.join()
        listener.close()

    def test_new_debugger_adopts_target_after_crash(self):
        """A second ldb instance picks up where a crashed one left off."""
        from repro.machines import Process
        from repro.nub import Listener, Nub, NubRunner

        exe = compile_and_link({"fib.c": FIB}, "rmips", debug=True)
        table_ps = loader_table_ps(exe)
        listener = Listener()
        process = Process(exe)
        nub = Nub(process, listener=listener, accept_timeout=15.0)
        runner = NubRunner(nub).start()

        first = Ldb(stdout=io.StringIO())
        t1 = first.attach("127.0.0.1", listener.port, table_ps)
        first.break_at_stop("fib", 9, target=t1)
        # the first debugger "crashes": its socket just dies
        t1.channel.sock.close()

        second = Ldb(stdout=io.StringIO())
        t2 = second.attach("127.0.0.1", listener.port, table_ps)
        assert t2.state == "stopped"
        second.run_to_stop(target=t2)          # proceeds to the breakpoint
        assert second.evaluate("a[4]", target=t2,
                               frame=t2.top_frame()) == 5
        # The new debugger does not know the crashed one's breakpoints —
        # the limitation the paper itself records (Sec. 7.1).  It can
        # still recover by hand: it knows the trap and no-op patterns,
        # so it restores the no-op and resumes.
        trap_pc = t2.stop_pc()
        assert t2.breakpoints.at(trap_pc) is None      # unknown to t2
        t2.breakpoints.store_insn(trap_pc, t2.breakpoints.nop_pattern)
        for _ in range(50):
            if second.run_to_stop(target=t2) != "stopped":
                break
        assert t2.state == "exited"
        runner.join()
        listener.close()

    def test_detach_then_reattach(self):
        from repro.machines import Process
        from repro.nub import Listener, Nub, NubRunner

        exe = compile_and_link({"fib.c": FIB}, "rsparc", debug=True)
        table_ps = loader_table_ps(exe)
        listener = Listener()
        process = Process(exe)
        nub = Nub(process, listener=listener, accept_timeout=15.0)
        runner = NubRunner(nub).start()

        ldb = Ldb(stdout=io.StringIO())
        t1 = ldb.attach("127.0.0.1", listener.port, table_ps)
        t1.detach()
        assert t1.state == "disconnected"
        t2 = ldb.attach("127.0.0.1", listener.port, table_ps)
        assert t2.state == "stopped"
        for _ in range(50):
            if ldb.run_to_stop(target=t2) != "stopped":
                break
        assert t2.state == "exited"
        runner.join()
        listener.close()


class TestMultiUnit:
    def test_two_compilation_units(self, arch):
        main_src = """
        extern int helper(int x);
        int main(void) {
            printf("%d\\n", helper(5));
            return 0;
        }
        """
        helper_src = """
        int table[4] = {10, 20, 30, 40};
        int helper(int x) {
            return table[x & 3] + x;    /* line 3 */
        }
        """
        exe = compile_and_link({"main.c": main_src, "helper.c": helper_src},
                               arch, debug=True)
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe)
        ldb.break_at_line("helper.c", 3)
        ldb.run_to_stop()
        assert ldb.evaluate("x") == 5
        assert ldb.evaluate("table[1]") == 20
        assert [f.proc_name() for f in target.frames()] == ["helper", "main"]
        target.breakpoints.remove_all()
        assert run_to_exit(ldb, target) == "exited"
        assert target.process.output() == "25\n"
