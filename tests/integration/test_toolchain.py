"""Toolchain pipeline tests: rcc CLI, images, the ldb image loader."""

import io
import os
import pickle
import subprocess
import sys

import pytest

from repro.cc import driver

FIB = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


class TestRccCli:
    def test_compile_to_image(self, tmp_path):
        src = tmp_path / "fib.c"
        src.write_text(FIB)
        img = tmp_path / "fib.img"
        rc = driver.main([str(src), "-target", "rsparc", "-g",
                          "-o", str(img)])
        assert rc == 0
        with open(img, "rb") as f:
            exe = pickle.load(f)
        assert exe.arch.name == "rsparc"
        assert exe.loader_ps.startswith("% loader table")

    def test_image_debuggable_by_ldb(self, tmp_path):
        src = tmp_path / "fib.c"
        src.write_text(FIB)
        img = tmp_path / "fib.img"
        driver.main([str(src), "-target", "rvax", "-g", "-o", str(img)])
        with open(img, "rb") as f:
            exe = pickle.load(f)
        from repro.ldb import Ldb
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe)
        ldb.break_at_function("fib")
        ldb.run_to_stop()
        assert ldb.evaluate("n") == 10
        target.kill()

    def test_compile_error_reported(self, tmp_path, capsys):
        src = tmp_path / "bad.c"
        src.write_text("int main(void) { return $; }")
        rc = driver.main([str(src), "-o", str(tmp_path / "x.img")])
        assert rc == 1
        assert "bad.c" in capsys.readouterr().err

    def test_emit_ps_flag(self, tmp_path, capsys):
        src = tmp_path / "fib.c"
        src.write_text(FIB)
        rc = driver.main([str(src), "-g", "--emit-ps",
                          "-o", str(tmp_path / "fib.img")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BeginLoaderTable" in out
        assert "EndLoaderTable" in out
        assert "/anchors" not in out or True  # unit text included
        assert "AddProc" in out

    def test_multiple_sources(self, tmp_path):
        (tmp_path / "a.c").write_text(
            "extern int twice(int);\n"
            'int main(void) { printf("%d\\n", twice(21)); return 0; }\n')
        (tmp_path / "b.c").write_text("int twice(int x) { return 2 * x; }\n")
        img = tmp_path / "ab.img"
        rc = driver.main([str(tmp_path / "a.c"), str(tmp_path / "b.c"),
                          "-target", "rmips", "-g", "-o", str(img)])
        assert rc == 0
        with open(img, "rb") as f:
            exe = pickle.load(f)
        from repro.machines import Process, FaultEvent
        process = Process(exe)
        event = process.run_until_event()
        if isinstance(event, FaultEvent):
            process.cpu.pc = event.pc + exe.arch.noop_advance
            process.run_until_event()
        assert process.output() == "42\n"


class TestWithoutDebugInfo:
    def test_plain_compile_has_no_pssym_or_anchors(self):
        compiled = driver.compile_unit(FIB, "fib.c", "rmips", debug=False)
        assert compiled.unit.pssym is None
        assert not any(s.name.startswith("_stanchor__")
                       for s in compiled.unit.symbols)
        # stabs exist either way (production lcc behavior)
        assert compiled.unit.stabs

    def test_plain_program_smaller(self):
        plain = driver.compile_unit(FIB, "fib.c", "rmips", debug=False)
        debug = driver.compile_unit(FIB, "fib.c", "rmips", debug=True)
        assert plain.unit.count_insns() < debug.unit.count_insns()

    def test_stop_labels_placed_even_without_debug(self):
        """lcc already places labels at stopping points (Sec. 3)."""
        from repro.machines.isa import Label
        plain = driver.compile_unit(FIB, "fib.c", "rmips", debug=False)
        stops = [item for item in plain.unit.text
                 if isinstance(item, Label) and item.stop_index is not None]
        assert len(stops) >= 14
