"""Block transfers end to end: byte identity, fallback, error parity.

The block-transfer extension's contract is that it is *invisible*: a
caching, batching debugger must produce byte-identical results to the
per-word baseline on every architecture, fall back transparently
against a legacy nub, and surface nub errors identically on every
Transport implementation.
"""

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.ldb.target import Target
from repro.machines import Process
from repro.nub import ChannelTransport, Nub, NubRunner, pair
from repro.nub.session import NubSession, RetryPolicy
from repro.postscript import Location, PSError

from ..ldb.helpers import FIB

ALL_ARCHES = ("rmips", "rmipsel", "rsparc", "rm68k", "rvax")
EXPRESSIONS = ("j", "n", "a[0]", "a[9]", "a[0]+a[9]")

_EXES = {}


def exe_for(arch):
    if arch not in _EXES:
        _EXES[arch] = compile_and_link({"fib.c": FIB}, arch, debug=True)
    return _EXES[arch]


def stopped_target(arch, cache=True, block_nub=True, stop=9):
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe_for(arch), cache=cache,
                              block_nub=block_nub)
    ldb.break_at_stop("fib", stop)
    ldb.run_to_stop()
    return ldb, target


def conversation(ldb, target):
    """The full inspection conversation, as comparable strings."""
    out = [ldb.backtrace_text()]
    frame = target.top_frame()
    for expression in EXPRESSIONS:
        out.append(repr(ldb.evaluate(expression, frame=frame)))
    out.append(ldb.print_variable("a", frame=frame))
    out.append(ldb.registers_text())
    return out


def outcome(action):
    """(tag, value) for an action that may raise a PSError — lets two
    targets be compared on errors as well as values."""
    try:
        return ("ok", action())
    except PSError as err:
        return ("err", err.errname)


class TestWorkloadIdentity:
    @pytest.mark.parametrize("arch", ALL_ARCHES)
    def test_cached_run_is_byte_identical(self, arch):
        ldb_c, cached = stopped_target(arch, cache=True)
        ldb_u, uncached = stopped_target(arch, cache=False)
        try:
            assert conversation(ldb_c, cached) == conversation(ldb_u, uncached)
            assert cached.stats.round_trips() < uncached.stats.round_trips()
        finally:
            cached.kill()
            uncached.kill()

    @pytest.mark.parametrize("arch", ("rmips", "rvax"))
    def test_legacy_nub_run_is_byte_identical(self, arch):
        """block_nub=False: the whole workflow against a nub without the
        extension — negotiation refuses blocks, per-word fallback."""
        ldb_l, legacy = stopped_target(arch, cache=True, block_nub=False)
        ldb_u, uncached = stopped_target(arch, cache=False)
        try:
            assert legacy.session.block_active is False
            assert conversation(ldb_l, legacy) == conversation(ldb_u, uncached)
            # at most one probe: the first block request is in flight
            # while the handshake settles, then the cache disables itself
            assert legacy.stats.of("wire", "blockfetch") <= 1
            assert (legacy.stats.round_trips()
                    <= uncached.stats.round_trips() + 2)
        finally:
            legacy.kill()
            uncached.kill()

    def test_modern_session_negotiates_blocks(self):
        ldb, target = stopped_target("rsparc")
        try:
            assert target.session.block_active is True
            assert target.stats.of("wire", "blockfetch") > 0
        finally:
            target.kill()


# one stopped cached/uncached pair per architecture, filled lazily and
# shared by the property tests below (the nub threads are daemons)
_PAIRS = {}


def pair_for(arch):
    if arch not in _PAIRS:
        _PAIRS[arch] = (stopped_target(arch, cache=True),
                        stopped_target(arch, cache=False))
    return _PAIRS[arch]


class TestByteIdentityProperty:
    """Hypothesis: any fetch answered by the cache equals the per-word
    answer, on every architecture and both byte orders."""

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(arch=st.sampled_from(ALL_ARCHES),
           offset=st.integers(0, 500),
           kind=st.sampled_from(["i8", "i16", "i32", "f32", "f64"]))
    def test_context_memory_identical(self, arch, offset, kind):
        """Raw data-space fetches across the saved context — the region
        with byte-order quirks (rmips saved floats, footnote 3)."""
        (_lc, cached), (_lu, uncached) = pair_for(arch)
        assert cached.context_addr == uncached.context_addr
        location = Location.absolute("d", cached.context_addr + offset)
        assert (outcome(lambda: cached.wire.fetch(location, kind))
                == outcome(lambda: uncached.wire.fetch(location, kind)))

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(arch=st.sampled_from(ALL_ARCHES),
           reg=st.integers(0, 31),
           kind=st.sampled_from(["i8", "i16", "i32"]))
    def test_subword_register_access_identical(self, arch, reg, kind):
        """Sub-word register fetches route through RegisterMemory and
        the alias table into the cached wire; value or error, the
        outcome must match the uncached DAG."""
        (_lc, cached), (_lu, uncached) = pair_for(arch)
        location = Location.absolute("r", reg)
        assert (outcome(lambda: cached.top_frame().memory.fetch(location, kind))
                == outcome(lambda: uncached.top_frame().memory.fetch(location, kind)))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(arch=st.sampled_from(("rmips", "rm68k")),
           offset=st.integers(0, 120),
           kind=st.sampled_from(["i8", "i16", "i32"]))
    def test_store_then_fetch_identical(self, arch, offset, kind):
        """Write-through stores leave both targets agreeing afterwards
        (the cache invalidates the stored span)."""
        (_lc, cached), (_lu, uncached) = pair_for(arch)
        base = cached.context_addr + 4  # clear of the saved pc
        location = Location.absolute("d", base + offset)
        old = outcome(lambda: uncached.wire.fetch(location, kind))
        if old[0] != "ok":
            return
        value = 1 if kind == "i8" else 0x1234
        try:
            cached.wire.store(location, kind, value)
            uncached.wire.store(location, kind, value)
            assert (outcome(lambda: cached.wire.fetch(location, kind))
                    == outcome(lambda: uncached.wire.fetch(location, kind)))
        finally:
            cached.wire.store(location, kind, old[1])
            uncached.wire.store(location, kind, old[1])


class TestCacheInvalidation:
    def test_cache_invalidated_across_continue(self):
        """Stale blocks must never survive a resume: the cached value
        of i advances in lockstep with the uncached target."""
        ldb_c, cached = stopped_target("rmips", stop=7)
        ldb_u, uncached = stopped_target("rmips", cache=False, stop=7)
        try:
            seen = []
            for _ in range(3):
                vc = ldb_c.evaluate("i", frame=cached.top_frame())
                vu = ldb_u.evaluate("i", frame=uncached.top_frame())
                assert vc == vu
                seen.append(vc)
                ldb_c.run_to_stop()
                ldb_u.run_to_stop()
            assert seen == sorted(set(seen))   # strictly advancing
        finally:
            cached.kill()
            uncached.kill()

    def test_store_visible_through_cache_immediately(self):
        ldb, target = stopped_target("rsparc", stop=9)
        try:
            frame = target.top_frame()
            ldb.evaluate("a[3]", frame=frame)          # warm the block
            entry = frame.resolve("a")
            base = target.location_of(entry, frame)
            spot = Location.absolute(base.space, base.offset + 12)
            target.wire.store(spot, "i32", 777)
            assert ldb.evaluate("a[3]", frame=frame) == 777
        finally:
            target.kill()


class TestTransportErrorParity:
    """Satellite: nub errors surface identically in session mode and
    bare-channel mode — same PSError name, same debuggability."""

    def channel_target(self, arch="rsparc"):
        exe = exe_for(arch)
        debugger_end, nub_end = pair()
        process = Process(exe)
        NubRunner(Nub(process, channel=nub_end)).start()
        ldb = Ldb(stdout=io.StringIO())
        table = ldb.read_loader_table(loader_table_ps(exe))
        target = Target(ldb.interp, None, table,
                        transport=ChannelTransport(debugger_end))
        ldb.targets[target.name] = target
        ldb.current = target
        target.wait_for_stop()
        return ldb, target

    def test_bad_address_same_error_both_modes(self):
        _ls, session_target = stopped_target("rsparc")
        _lc, channel_target = self.channel_target()
        bad = Location.absolute("d", 0x0FFFFFF0)
        try:
            results = [outcome(lambda t=t: t.wiremem.fetch(bad, "i32"))
                       for t in (session_target, channel_target)]
            assert results[0] == results[1] == ("err", "invalidaccess")
        finally:
            session_target.kill()
            channel_target.kill()

    def test_bad_space_same_error_both_modes(self):
        _ls, session_target = stopped_target("rsparc")
        _lc, channel_target = self.channel_target()
        bad = Location.absolute("q", 0)
        try:
            results = [outcome(lambda t=t: t.wiremem.fetch(bad, "i32"))
                       for t in (session_target, channel_target)]
            assert results[0] == results[1] == ("err", "invalidaccess")
        finally:
            session_target.kill()
            channel_target.kill()

    def test_dead_transport_is_ioerror_both_modes(self):
        from repro.ldb.memories import WireMemory

        # a bare channel whose peer is gone
        dead_end, peer = pair()
        peer.close()
        dead_end.close()
        channel_wire = WireMemory(ChannelTransport(dead_end,
                                                   reply_timeout=0.2))
        # a session with no reconnect path and a tiny retry budget
        gone, other = pair()
        other.close()
        gone.close()
        session = NubSession(channel=gone,
                             policy=RetryPolicy(max_attempts=2,
                                                base_delay=0.001),
                             reply_timeout=0.2)
        session_wire = WireMemory(session)
        spot = Location.absolute("d", 0)
        for wire in (channel_wire, session_wire):
            assert outcome(lambda: wire.fetch(spot, "i32")) \
                == ("err", "ioerror")

    def test_channel_transport_probes_then_uses_blocks(self):
        """No negotiation on a bare channel: block_active stays None,
        the first block message settles it."""
        ldb, target = self.channel_target()
        try:
            assert target.transport.block_active is None
            ldb.break_at_stop("fib", 9)
            ldb.run_to_stop()
            assert ldb.evaluate("a[4]") == 5
            assert target.stats.of("wire", "blockfetch") > 0
        finally:
            target.kill()
