"""Scale tests: the 13,000-line program of the paper's timing table."""

import io
import sys

import pytest

sys.path.insert(0, ".")  # the benchmarks package supplies the generator
from benchmarks.workloads import count_lines, large_program

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.machines import FaultEvent, Process


@pytest.fixture(scope="module")
def big_source():
    source = large_program(functions=550)
    assert count_lines(source) > 10_000  # genuinely lcc-scale
    return source


class TestLccScale:
    def test_compiles_and_runs(self, big_source):
        exe = compile_and_link({"big.c": big_source}, "rmips", debug=True)
        process = Process(exe, memsize=1 << 21)
        event = process.run_until_event(max_steps=200_000_000)
        if isinstance(event, FaultEvent):
            process.cpu.pc = event.pc + exe.arch.noop_advance
            event = process.run_until_event(max_steps=200_000_000)
        assert getattr(event, "status", None) == 0
        assert process.output().strip().lstrip("-").isdigit()

    def test_debuggable_at_scale(self, big_source):
        exe = compile_and_link({"big.c": big_source}, "rmips", debug=True,
                               memsize=1 << 21)
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe)
        # symbol tables for 550 functions interpreted successfully
        assert len(target.symtab.procs()) == 551  # 550 + main
        ldb.break_at_function("work005")   # main calls the first 40
        ldb.run_to_stop()
        assert target.top_frame().proc_name() == "work005"
        assert isinstance(ldb.evaluate("a * 1000 + b"), int)
        names = [f.proc_name() for f in target.frames(limit=64)]
        assert names[-1] == "main"
        target.kill()

    def test_large_program_agrees_on_all_targets(self):
        source = large_program(functions=60, seed=11)
        outputs = set()
        for arch in ("rmips", "rmipsel", "rsparc", "rm68k", "rvax"):
            exe = compile_and_link({"b.c": source}, arch, debug=False)
            process = Process(exe)
            event = process.run_until_event(max_steps=100_000_000)
            if isinstance(event, FaultEvent):
                process.cpu.pc = event.pc + exe.arch.noop_advance
                event = process.run_until_event(max_steps=100_000_000)
            assert getattr(event, "status", None) == 0, (arch, event)
            outputs.add(process.output())
        assert len(outputs) == 1

    def test_symbol_table_scales_linearly(self):
        small = compile_and_link({"s.c": large_program(40)}, "rmips",
                                 debug=True)
        large = compile_and_link({"l.c": large_program(160)}, "rmips",
                                 debug=True)
        small_ps = len(small.compiled_units[0].unit.pssym)
        large_ps = len(large.compiled_units[0].unit.pssym)
        ratio = large_ps / small_ps
        assert 3.0 < ratio < 5.5   # ~4x functions -> ~4x table
