"""Command-line UI tests: scripted sessions through the Cli class."""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb.cli import Cli

from ..ldb.helpers import FIB


def run_session(commands, source=FIB, arch="rmips", filename="fib.c"):
    exe = compile_and_link({filename: source}, arch, debug=True)
    stdin = io.StringIO("\n".join(commands) + "\nquit\n")
    out = io.StringIO()
    cli = Cli(stdin=stdin, stdout=out)
    cli.start_program(exe)
    cli.repl()
    return out.getvalue()


class TestCommands:
    def test_break_and_continue(self):
        text = run_session(["break fib", "continue"])
        assert "breakpoint at 0x" in text
        assert "stopped in fib () at fib.c:" in text

    def test_print_variable_and_expression(self):
        text = run_session(["break fib", "continue", "print n",
                            "print n * 3 + 1"])
        assert "10" in text
        assert "31" in text

    def test_print_array_via_printer(self):
        text = run_session(["break fib.c:11", "continue", "print a"])
        assert "{1, 1, 2, 3, 5" in text

    def test_set_changes_behavior(self):
        text = run_session(["break fib", "continue", "set n = 3",
                            "continue"])
        assert "1 1 2 \n" in text

    def test_backtrace(self):
        text = run_session(["break fib", "continue", "bt"])
        assert "#0  fib () at fib.c:" in text
        assert "#1  main () at fib.c:" in text

    def test_registers(self):
        text = run_session(["break fib", "continue", "regs"])
        assert "sp   0x" in text
        assert "ra   0x" in text

    def test_step_command(self):
        text = run_session(["break fib", "continue", "step", "step"])
        assert text.count("fib () at fib.c:") >= 3

    def test_next_command(self):
        text = run_session(["break fib.c:11", "continue", "next"])
        assert "fib () at fib.c:" in text

    def test_condition_command(self):
        text = run_session(["condition fib.c:8 i == 4", "continue",
                            "print i"])
        assert "stopped in fib ()" in text
        assert "(ldb) 4" in text

    def test_info_breaks(self):
        text = run_session(["break fib", "break main", "info breaks"])
        assert text.count("0x") >= 2

    def test_run_to_exit_shows_output(self):
        text = run_session(["continue"])
        assert "program exited with status 0" in text
        assert "1 1 2 3 5 8 13 21 34 55" in text

    def test_unknown_command_suggests(self):
        text = run_session(["bogus"])
        assert "unknown command" in text

    def test_error_reported_not_fatal(self):
        text = run_session(["break nonesuch", "print n + ", "continue"])
        assert "ldb:" in text
        assert "program exited" in text

    def test_targets_listing(self):
        text = run_session(["targets"])
        assert "* t0 (rmips) stopped" in text

    def test_where(self):
        text = run_session(["break fib", "continue", "where"])
        assert "fib () at fib.c:" in text
