"""Cross-architecture equivalence: one C program, five identical runs.

The deepest property behind the paper: the same compiled semantics on
every target, so the same debugger behaviors hold everywhere.  These
hypothesis tests generate random expression trees, compile them for
every architecture, and require bit-identical program output.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from ..cc.helpers import ALL_ARCHES, run_c

# -- random C expression generator -------------------------------------------


def int_expr(depth):
    if depth <= 0:
        return st.one_of(
            st.integers(-100, 100).map(str),
            st.sampled_from(["x", "y", "z"]),
        )
    smaller = int_expr(depth - 1)
    return st.one_of(
        smaller,
        st.tuples(st.sampled_from(["+", "-", "*", "&", "|", "^"]),
                  smaller, smaller).map(lambda t: "(%s %s %s)" % (t[1], t[0], t[2])),
        st.tuples(st.sampled_from(["<<", ">>"]), smaller,
                  st.integers(0, 8)).map(
                      lambda t: "(%s %s %d)" % (t[1], t[0], t[2])),
        st.tuples(st.sampled_from(["<", ">", "<=", ">=", "==", "!="]),
                  smaller, smaller).map(
                      lambda t: "(%s %s %s)" % (t[1], t[0], t[2])),
        st.tuples(smaller, smaller, smaller).map(
            lambda t: "(%s ? %s : %s)" % t),
        st.tuples(smaller, st.integers(1, 50)).map(
            lambda t: "(%s / %d)" % t),
        st.tuples(smaller, st.integers(1, 50)).map(
            lambda t: "(%s %% %d)" % t),
    )


def program_for(expression):
    return """
    int x = 11, y = -7, z = 3;
    int main(void) {
        printf("%%d\\n", %s);
        return 0;
    }
    """ % expression


class TestExpressionEquivalence:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(int_expr(3))
    def test_same_output_everywhere(self, expression):
        source = program_for(expression)
        reference = None
        for arch in ("rmips", "rvax"):   # one RISC-BE, one CISC-LE
            status, output = run_c(source, arch)
            if reference is None:
                reference = output
            assert output == reference, (arch, expression)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(int_expr(2))
    def test_all_five_targets_agree(self, expression):
        source = program_for(expression)
        outputs = {arch: run_c(source, arch)[1] for arch in ALL_ARCHES}
        assert len(set(outputs.values())) == 1, (expression, outputs)


class TestProgramEquivalence:
    """Whole programs with control flow must agree across targets."""

    PROGRAMS = [
        # collatz steps
        """
        int main(void) {
            int n = 27, steps = 0;
            while (n != 1) {
                if (n % 2) n = 3 * n + 1; else n = n / 2;
                steps++;
            }
            printf("%d\\n", steps);
            return 0;
        }
        """,
        # string reversal in place
        """
        char buf[16] = "retargetable";
        int main(void) {
            int i = 0, j;
            char t;
            while (buf[i]) i++;
            for (j = 0; j < i / 2; j++) {
                t = buf[j]; buf[j] = buf[i-1-j]; buf[i-1-j] = t;
            }
            printf("%s\\n", buf);
            return 0;
        }
        """,
        # struct sorting (bubble)
        """
        struct kv { int k; int v; };
        struct kv t[5];
        int main(void) {
            int i, j;
            struct kv tmp;
            for (i = 0; i < 5; i++) { t[i].k = (7 * i + 3) % 5; t[i].v = i; }
            for (i = 0; i < 5; i++)
                for (j = 0; j + 1 < 5 - i; j++)
                    if (t[j].k > t[j+1].k) {
                        tmp = t[j]; t[j] = t[j+1]; t[j+1] = tmp;
                    }
            for (i = 0; i < 5; i++) printf("%d:%d ", t[i].k, t[i].v);
            printf("\\n");
            return 0;
        }
        """,
        # floating point accumulation
        """
        int main(void) {
            double total = 0.0;
            float small = 0.5;
            int i;
            for (i = 1; i <= 10; i++) total += 1.0 / i;
            printf("%.6f %g\\n", total, small * 8.0);
            return 0;
        }
        """,
        # unsigned wraparound and shifts
        """
        int main(void) {
            unsigned h = 2166136261u;
            char *s = "ldb";
            while (*s) { h ^= *s++; h *= 16777619u; }
            printf("%u %u\\n", h, h >> 16);
            return 0;
        }
        """,
    ]

    @pytest.mark.parametrize("index", range(len(PROGRAMS)))
    def test_program_agrees_on_all_targets(self, index):
        source = self.PROGRAMS[index]
        outputs = {}
        for arch in ALL_ARCHES:
            for debug in (False, True):
                _status, out = run_c(source, arch, debug=debug)
                outputs[(arch, debug)] = out
        assert len(set(outputs.values())) == 1, outputs
