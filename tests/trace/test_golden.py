"""The committed golden recording keeps reopening.

A recording written by one tree must stay readable by every later one
until the format version is deliberately bumped.  The golden file is
regenerated only by tools/make_golden_recording.py; this test never
compares bytes (zlib output is not stable across versions) — it loads
the file and debugs it.
"""

import io
import pathlib

from repro.ldb import Ldb
from repro.machines import SIGSEGV
from repro.trace import Recording

GOLDEN = (pathlib.Path(__file__).resolve().parent.parent / "data"
          / "golden_boom_rmips.ldbrec")


def test_golden_recording_loads():
    recording = Recording.load(str(GOLDEN))
    assert recording.meta.arch_name == "rmips"
    assert recording.meta.loader_ps  # self-contained: embedded symtab
    assert len(recording.spills) >= 2
    assert recording.final_icount > recording.meta.base_icount


def test_golden_recording_replays_to_the_fault():
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.open_recording(str(GOLDEN))
    assert target.replaying
    assert target.signo == SIGSEGV
    # the recorded past is walkable: back to the breakpoint hit...
    hit = ldb.reverse_continue()
    assert target.at_breakpoint()
    assert ldb.evaluate("g") == 15
    proc, _file, _line = ldb.where_am_i()
    assert proc == "poke"
    # ...and forward again across the digest-checked stops
    assert ldb.run_to_stop() == "stopped"
    assert target.signo == SIGSEGV
    assert target.current_icount() > hit.icount
    snap = ldb.obs.metrics.snapshot()
    assert snap.get("trace.replay.checks", 0) > 0
    assert snap.get("trace.replay.divergences", 0) == 0
