"""Acceptance tests for persistent recordings: record a live session,
save it, reopen with no nub behind it, and get byte-identical answers —
plus divergence detection when the file and the re-execution disagree.

The driver program is the time-travel suite's: a breakpoint hit in
``poke`` followed by a SIGSEGV, so the reopened timeline has a
well-defined interesting past."""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.ldb.api import ApiError, DebugAPI, ERR_DIVERGED
from repro.ldb.target import TargetError
from repro.machines import ARCH_NAMES, SIGSEGV, SIGTRAP
from repro.trace import DivergenceError, Recording, TraceError

BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""

_EXES = {}


def boom_exe(arch):
    if arch not in _EXES:
        _EXES[arch] = compile_and_link({"boom.c": BOOM}, arch, debug=True)
    return _EXES[arch]


def record_crash(arch, path, interval=37):
    """Record the full run (breakpoint hit, then the fault), save it."""
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(boom_exe(arch))
    ldb.start_recording(path=path, interval=interval)
    ldb.break_at_function("poke")
    assert ldb.run_to_stop() == "stopped" and target.at_breakpoint()
    hit_icount = target.current_icount()
    assert ldb.run_to_stop() == "stopped" and target.signo == SIGSEGV
    ldb.record_save()
    return ldb, target, hit_icount


class TestLiveVsReplayFidelity:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_reopened_answers_match_live_on_every_isa(self, arch, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        live, live_t, hit_icount = record_crash(arch, path)
        live_fault_bt = live.backtrace_text()
        live_fault_regs = live.registers_text()
        live_fault_icount = live_t.current_icount()

        ldb = Ldb(stdout=io.StringIO())
        t = ldb.open_recording(path)
        assert t.replaying and t.state == "stopped"
        assert t.signo == SIGSEGV
        assert t.current_icount() == live_fault_icount
        # the recorded fault: identical backtrace, registers, memory
        assert ldb.backtrace_text() == live_fault_bt
        assert ldb.registers_text() == live_fault_regs
        assert (t.wiremem.fetch_block("d", 0x2000, 64)
                == live_t.wiremem.fetch_block("d", 0x2000, 64))

        # travel back to the breakpoint hit: identical world there too
        hit = ldb.reverse_continue()
        assert hit.icount == hit_icount
        assert t.at_breakpoint()
        assert t.signo == SIGTRAP
        assert ldb.evaluate("g") == 15  # 0+1+..+5
        # the live session can travel to the same position: worlds match
        live.goto_icount(hit_icount)
        assert ldb.backtrace_text() == live.backtrace_text()
        assert ldb.registers_text() == live.registers_text()

    @pytest.mark.parametrize("arch", ["rmips", "rvax"])
    def test_forward_replay_reaches_the_same_fault(self, arch, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        live, live_t, _hit = record_crash(arch, path)
        live_bt = live.backtrace_text()
        fault_icount = live_t.current_icount()

        ldb = Ldb(stdout=io.StringIO())
        t = ldb.open_recording(path)
        ldb.reverse_continue()
        # re-execute forward across the recorded stops (digest-checked)
        assert ldb.run_to_stop() == "stopped"
        assert t.signo == SIGSEGV
        assert t.current_icount() == fault_icount
        assert ldb.backtrace_text() == live_bt
        snap = ldb.obs.metrics.snapshot()
        assert snap.get("trace.replay.checks", 0) > 0
        assert snap.get("trace.replay.divergences", 0) == 0

    def test_goto_and_reverse_step_work_from_spills(self, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        _live, _t, hit_icount = record_crash("rmips", path)
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.open_recording(path)
        base = t.recording.meta.base_icount
        assert ldb.goto_icount(hit_icount) == "stopped"
        assert t.current_icount() == hit_icount
        rs = ldb.reverse_step()
        assert base <= rs.icount < hit_icount
        proc, _file, _line = ldb.where_am_i()
        assert proc in ("main", "poke")

    def test_breakpoints_plant_on_a_replay_target(self, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        _live, _t, hit_icount = record_crash("rmips", path)
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.open_recording(path)
        ldb.goto_icount(t.recording.meta.base_icount)
        ldb.break_at_line("boom.c", 5)  # the loop body
        assert ldb.run_to_stop() == "stopped"
        assert t.at_breakpoint()
        assert t.current_icount() < hit_icount


class TestInputsAndWriter:
    def test_injected_set_is_replayed_at_its_position(self, tmp_path):
        path = str(tmp_path / "set.ldbrec")
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.load_program(boom_exe("rmips"))
        ldb.start_recording(path=path, interval=37)
        ldb.break_at_function("poke")
        ldb.run_to_stop()
        ldb.assign("g = 99")  # an injected write the replay must redo
        assert ldb.run_to_stop() == "stopped" and t.signo == SIGSEGV
        assert ldb.evaluate("g") == 99
        recording = ldb.record_save()
        assert len(recording.inputs) >= 1

        ldb2 = Ldb(stdout=io.StringIO())
        t2 = ldb2.open_recording(path)
        assert ldb2.evaluate("g") == 99  # at the fault spill
        hit = ldb2.reverse_continue()
        # at the breakpoint: the pre-input arrival state (set not yet
        # applied — it happened on departure from this position)
        assert ldb2.evaluate("g") == 15
        # forward again: the input replays, the fault world matches
        assert ldb2.run_to_stop() == "stopped"
        assert t2.signo == SIGSEGV
        assert ldb2.evaluate("g") == 99
        assert ldb2.obs.metrics.snapshot().get("trace.replay.inputs", 0) >= 1

    def test_record_save_without_recording_is_typed(self):
        ldb = Ldb(stdout=io.StringIO())
        ldb.load_program(boom_exe("rmips"))
        with pytest.raises(TargetError, match="no recording"):
            ldb.record_save()

    def test_save_without_a_path_is_typed(self):
        ldb = Ldb(stdout=io.StringIO())
        ldb.load_program(boom_exe("rmips"))
        ldb.start_recording()  # no path
        with pytest.raises(TargetError, match="no save path"):
            ldb.record_save()

    def test_recording_survives_time_travel_mid_session(self, tmp_path):
        # record, travel back, resume forward (drops the stale future),
        # then save: the file must reopen and still reach the fault
        path = str(tmp_path / "tt.ldbrec")
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.load_program(boom_exe("rmips"))
        ldb.start_recording(path=path, interval=37)
        ldb.break_at_function("poke")
        ldb.run_to_stop()
        ldb.run_to_stop()
        ldb.reverse_continue()
        assert ldb.run_to_stop() == "stopped" and t.signo == SIGSEGV
        ldb.record_save()
        ldb2 = Ldb(stdout=io.StringIO())
        t2 = ldb2.open_recording(path)
        assert t2.signo == SIGSEGV
        ldb2.reverse_continue()
        assert ldb2.run_to_stop() == "stopped" and t2.signo == SIGSEGV


class TestDivergenceDetection:
    def tampered(self, path, tmp_path):
        rec = Recording.load(path)
        rec.stops[-1].digest ^= 0xDEADBEEF  # the fault stop's digest
        out = str(tmp_path / "tampered.ldbrec")
        rec.dump(out)
        return out, rec.stops[-1].icount

    def test_tampered_event_log_raises_with_first_bad_icount(self, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        record_crash("rmips", path)
        tampered, bad_icount = self.tampered(path, tmp_path)
        ldb = Ldb(stdout=io.StringIO())
        ldb.open_recording(tampered)
        with pytest.raises(DivergenceError) as info:
            ldb.reverse_continue()  # replays across the tampered stop
            ldb.run_to_stop()
        assert info.value.icount == bad_icount
        assert info.value.expected != info.value.actual
        assert ("icount %d" % bad_icount) in str(info.value)

    def test_divergence_maps_to_the_typed_api_error(self, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        record_crash("rmips", path)
        tampered, bad_icount = self.tampered(path, tmp_path)
        ldb = Ldb(stdout=io.StringIO())
        api = DebugAPI(ldb)
        api.execute("replay_open", {"path": tampered})
        # rewind to the base spill (restored directly, no re-execution),
        # then continue: the replay crosses the tampered stop position
        ldb.goto_icount(ldb.current.recording.meta.base_icount)
        with pytest.raises(ApiError) as info:
            for _ in range(8):  # recorded breakpoints stop us on the way
                api.execute("continue")
        assert info.value.code == ERR_DIVERGED

    def test_session_stays_debuggable_after_divergence(self, tmp_path):
        # the error is loud, but it must not wedge the session: the
        # replay parks on the divergent state as a stop, so inspection
        # and resumption keep answering (no phantom "running" state)
        path = str(tmp_path / "boom.ldbrec")
        record_crash("rmips", path)
        tampered, bad_icount = self.tampered(path, tmp_path)
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.open_recording(tampered)
        with pytest.raises(DivergenceError):
            ldb.reverse_continue()
            ldb.run_to_stop()
        assert t.state == "stopped"
        assert t.current_icount() == bad_icount
        assert ldb.evaluate("g") == 15  # the divergent world is readable
        assert "main" in ldb.backtrace_text()
        # and resumable: past the divergent mark into the re-executed
        # fault (no marks left ahead, so no further checks fire)
        assert ldb.run_to_stop() == "stopped"
        assert t.signo == SIGSEGV

    def test_checks_can_be_disabled(self, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        record_crash("rmips", path)
        tampered, _bad = self.tampered(path, tmp_path)
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.open_recording(tampered, check_divergence=False)
        ldb.reverse_continue()
        assert ldb.run_to_stop() == "stopped"  # no verification, no raise
        assert t.signo == SIGSEGV


class TestRecordingAsTarget:
    def test_corrupt_file_is_a_typed_target_error(self, tmp_path):
        path = str(tmp_path / "junk.ldbrec")
        with open(path, "wb") as f:
            f.write(b"not a recording at all")
        ldb = Ldb(stdout=io.StringIO())
        with pytest.raises(TargetError, match="cannot open recording"):
            ldb.open_recording(path)

    def test_describe_and_status_reflect_replay(self, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        live, _t, _hit = record_crash("rmips", path)
        desc = live.current.describe()
        assert desc["recording_path"] == path
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.open_recording(path)
        desc = t.describe()
        assert desc["replaying"] is True
        assert desc["state"] == "stopped"

    def test_replay_target_can_dump_a_core(self, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        record_crash("rmips", path)
        ldb = Ldb(stdout=io.StringIO())
        ldb.open_recording(path)
        core_path = str(tmp_path / "replayed.core")
        core = ldb.current.dump_core(core_path)
        assert core.signo == SIGSEGV
        ldb2 = Ldb(stdout=io.StringIO())
        t2 = ldb2.open_core(core_path)
        assert t2.signo == SIGSEGV

    def test_api_record_save_and_replay_open(self, tmp_path):
        path = str(tmp_path / "api.ldbrec")
        ldb = Ldb(stdout=io.StringIO())
        t = ldb.load_program(boom_exe("rmips"))
        ldb.start_recording(path=path, interval=37)
        ldb.break_at_function("poke")
        ldb.run_to_stop()
        api = DebugAPI(ldb)
        out = api.execute("record_save")
        assert out["path"] == path and out["spills"] >= 1
        out = api.execute("replay_open", {"path": path})
        assert out["target"]["replaying"] is True
        assert out["final_icount"] == t.current_icount()
