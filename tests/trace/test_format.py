"""The on-disk recording format: round-trips and the corruption matrix.

Every way a file can be damaged — bad magic, future version, cut-short
block, flipped bit, undecompressable body, missing END, trailing
garbage, malformed record bodies — must raise :class:`TraceError` with
a reason, never a struct error or a silent wrong answer.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.chunkio import pack_block
from repro.machines.machstate import MachineState
from repro.trace.format import (
    BLOCK_END,
    BLOCK_LOG,
    BLOCK_META,
    BLOCK_SPILL,
    OP_BLOCKSTORE,
    OP_STORE,
    SPILL_AUTO,
    SPILL_STOP,
    InputRecord,
    Recording,
    SpillRecord,
    StopRecord,
    TRACE_MAGIC,
    TRACE_VERSION,
    TraceError,
    TraceMeta,
)


def tiny_state(icount=40, pc=0x2000):
    return MachineState(
        arch_name="rmips", byteorder="big", memsize=1 << 16,
        regs=[0] * 32, fregs=[0.0] * 32, pc=pc, cc_lt=False, cc_eq=False,
        cc_ltu=False, icount=icount, pending_load=None, wrote_reg=None,
        segments=[(0x2000, b"\x01\x02\x03\x04")],
        planted=[(0x2004, b"\x0d\x00\x00\x00")], out_text="hi\n")


def tiny_recording(inputs=(), loader_ps="/T 1 dict def"):
    meta = TraceMeta(arch_name="rmips", byteorder="big", memsize=1 << 16,
                     context_addr=0x100, interval=37, base_icount=3,
                     loader_ps=loader_ps)
    spills = [
        SpillRecord(1, 3, 0x2000, 5, 0, SPILL_STOP, tiny_state(icount=3)),
        SpillRecord(2, 40, 0x2010, 5, 3, SPILL_AUTO, tiny_state(icount=40)),
    ]
    stops = [StopRecord(3, 0x2000, 5, 0, 0xAABBCCDD),
             StopRecord(40, 0x2010, 5, 3, 0x11223344)]
    return Recording(meta, spills, stops, list(inputs))


class TestRoundTrip:
    def test_full_round_trip(self):
        inputs = [InputRecord(3, OP_STORE, "d", 0x8000, b"\x2a\x00\x00\x00"),
                  InputRecord(40, OP_BLOCKSTORE, "d", 0x9000, b"blob")]
        rec = tiny_recording(inputs=inputs)
        back = Recording.from_bytes(rec.to_bytes())
        assert back.meta.arch_name == "rmips"
        assert back.meta.byteorder == "big"
        assert back.meta.interval == 37
        assert back.meta.base_icount == 3
        assert back.meta.loader_ps == "/T 1 dict def"
        assert [s.icount for s in back.spills] == [3, 40]
        assert [s.cid for s in back.spills] == [1, 2]
        assert back.spills[0].state.segments == [(0x2000, b"\x01\x02\x03\x04")]
        assert back.spills[0].state.planted == [(0x2004, b"\x0d\x00\x00\x00")]
        assert [(s.icount, s.digest) for s in back.stops] == \
            [(3, 0xAABBCCDD), (40, 0x11223344)]
        assert [(i.position, i.op, i.address, i.data) for i in back.inputs] \
            == [(3, OP_STORE, 0x8000, b"\x2a\x00\x00\x00"),
                (40, OP_BLOCKSTORE, 0x9000, b"blob")]
        assert back.final_icount == 40
        assert back.stop_at(40).digest == 0x11223344
        assert back.stop_at(99) is None

    def test_no_loader_table_round_trips_as_none(self):
        rec = tiny_recording(loader_ps=None)
        assert Recording.from_bytes(rec.to_bytes()).meta.loader_ps is None

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "t.ldbrec")
        tiny_recording().dump(path)
        assert Recording.load(path).final_icount == 40

    def test_missing_file_is_a_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            Recording.load(str(tmp_path / "nope.ldbrec"))


class TestCorruptionMatrix:
    def raw(self, **kw):
        return tiny_recording(**kw).to_bytes()

    def test_bad_magic(self):
        raw = self.raw()
        with pytest.raises(TraceError, match="bad magic"):
            Recording.from_bytes(b"NOPE" + raw[4:])

    def test_too_short_for_header(self):
        # right magic, cut mid-header: a torn *trace* file, not an
        # alien one — the message says "truncated", so triage rows
        # classify it as corrupt-recording rather than not-an-artifact
        with pytest.raises(TraceError, match="truncated"):
            Recording.from_bytes(TRACE_MAGIC + b"\x00")

    def test_future_version_refused(self):
        raw = bytearray(self.raw())
        struct.pack_into("<H", raw, 4, TRACE_VERSION + 1)
        with pytest.raises(TraceError, match="newer"):
            Recording.from_bytes(bytes(raw))

    def test_truncated_no_end_block(self):
        raw = self.raw()
        end = pack_block(BLOCK_END, b"")
        with pytest.raises(TraceError, match="no END"):
            Recording.from_bytes(raw[:-len(end)])

    def test_truncated_mid_block(self):
        raw = self.raw()
        with pytest.raises(TraceError, match="truncated"):
            Recording.from_bytes(raw[:len(raw) // 2])

    def test_flipped_bit_fails_block_crc(self):
        raw = bytearray(self.raw())
        raw[30] ^= 0x10  # inside the META block body
        with pytest.raises(TraceError, match="CRC"):
            Recording.from_bytes(bytes(raw))

    def test_trailing_garbage_after_end(self):
        with pytest.raises(TraceError, match="trailing"):
            Recording.from_bytes(self.raw() + b"junk")

    def test_unknown_block_kind(self):
        head = TRACE_MAGIC + struct.pack("<HH", TRACE_VERSION, 0)
        raw = (head + pack_block(99, b"?")
               + pack_block(BLOCK_END, b""))
        with pytest.raises(TraceError, match="unknown block kind"):
            Recording.from_bytes(raw)

    def test_duplicate_meta(self):
        meta = tiny_recording().meta.to_body()
        head = TRACE_MAGIC + struct.pack("<HH", TRACE_VERSION, 0)
        raw = (head + pack_block(BLOCK_META, meta)
               + pack_block(BLOCK_META, meta) + pack_block(BLOCK_END, b""))
        with pytest.raises(TraceError, match="duplicate META"):
            Recording.from_bytes(raw)

    def test_missing_meta(self):
        head = TRACE_MAGIC + struct.pack("<HH", TRACE_VERSION, 0)
        spill = tiny_recording().spills[0].to_body()
        raw = (head + pack_block(BLOCK_SPILL, spill)
               + pack_block(BLOCK_END, b""))
        with pytest.raises(TraceError, match="no META"):
            Recording.from_bytes(raw)

    def test_no_spills(self):
        head = TRACE_MAGIC + struct.pack("<HH", TRACE_VERSION, 0)
        meta = tiny_recording().meta.to_body()
        raw = (head + pack_block(BLOCK_META, meta)
               + pack_block(BLOCK_END, b""))
        with pytest.raises(TraceError, match="no checkpoint spills"):
            Recording.from_bytes(raw)

    def test_malformed_spill_body(self):
        head = TRACE_MAGIC + struct.pack("<HH", TRACE_VERSION, 0)
        meta = tiny_recording().meta.to_body()
        raw = (head + pack_block(BLOCK_META, meta)
               + pack_block(BLOCK_SPILL, b"\x01\x02\x03")
               + pack_block(BLOCK_END, b""))
        with pytest.raises(TraceError):
            Recording.from_bytes(raw)

    def test_malformed_log_body(self):
        rec = tiny_recording()
        head = TRACE_MAGIC + struct.pack("<HH", TRACE_VERSION, 0)
        raw = (head + pack_block(BLOCK_META, rec.meta.to_body())
               + pack_block(BLOCK_SPILL, rec.spills[0].to_body())
               + pack_block(BLOCK_LOG, struct.pack("<I", 5))  # claims 5 stops
               + pack_block(BLOCK_END, b""))
        with pytest.raises(TraceError):
            Recording.from_bytes(raw)

    def test_truncated_spill_state(self):
        rec = tiny_recording()
        body = rec.spills[0].to_body()
        head = TRACE_MAGIC + struct.pack("<HH", TRACE_VERSION, 0)
        raw = (head + pack_block(BLOCK_META, rec.meta.to_body())
               + pack_block(BLOCK_SPILL, body[:-4])
               + pack_block(BLOCK_END, b""))
        with pytest.raises(TraceError, match="truncated SPILL"):
            Recording.from_bytes(raw)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 2**40), st.sampled_from([OP_STORE,
                                                          OP_BLOCKSTORE]),
                  st.integers(0, 2**32 - 1), st.binary(min_size=1,
                                                       max_size=32)),
        max_size=8))
    def test_input_log_round_trips(self, entries):
        inputs = [InputRecord(pos, op, "d", addr, data)
                  for pos, op, addr, data in entries]
        rec = tiny_recording(inputs=inputs)
        back = Recording.from_bytes(rec.to_bytes())
        want = sorted(entries, key=lambda e: e[0])
        got = [(i.position, i.op, i.address, i.data) for i in back.inputs]
        assert got == want

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_any_slice_raises_trace_error_never_struct_error(self, data):
        raw = tiny_recording().to_bytes()
        cut = data.draw(st.integers(0, len(raw) - 1))
        try:
            Recording.from_bytes(raw[:cut])
        except TraceError:
            pass  # typed: that's the contract

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_any_single_byte_flip_is_detected_or_equivalent(self, data):
        raw = bytearray(tiny_recording().to_bytes())
        index = data.draw(st.integers(0, len(raw) - 1))
        bit = data.draw(st.integers(0, 7))
        raw[index] ^= 1 << bit
        try:
            back = Recording.from_bytes(bytes(raw))
        except TraceError:
            return  # detected: good
        # a flip in a compressed stream that still inflates to the
        # same bytes is impossible; one the CRC catches is TraceError;
        # the only survivable flips are in the 2 header flag bytes or
        # a version *decrease* — all preserve the decoded content
        reference = Recording.from_bytes(tiny_recording().to_bytes())
        assert back.final_icount == reference.final_icount
        assert [s.icount for s in back.spills] == \
            [s.icount for s in reference.spills]
