"""Durable artifacts: the power-cut property, salvage-on-open, partial
saves, recording-across-reconnect, and ``record stop``.

The central property: for *every* byte-length prefix of a valid
artifact (a power cut can stop a pre-atomic writer at any byte), the
open path answers one of exactly three ways — a clean open, a salvaged
read-only open wearing a :class:`SalvagedArtifact` warning, or a typed
load error.  Never a struct error, never a silent wrong answer.
"""

import io
import warnings as warnings_mod

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.ldb.api import ApiError, DebugAPI, ERR_TARGET_STATE
from repro.ldb.cli import Cli
from repro.ldb.target import TargetError
from repro.machines import SIGSEGV
from repro.machines.atomicio import (FaultyFS, FsFaultSchedule, PowerCut,
                                     SalvagedArtifact, use_fs)
from repro.machines.core import CoreError, CoreFile
from repro.trace import Recording, TraceError

from .test_format import tiny_recording


def tiny_core(loader_ps="/T 1 dict def"):
    return CoreFile(
        arch_name="rmips", byteorder="big", memsize=1 << 16,
        context_addr=0x100, icount=7, signo=11, code=3, fault_pc=0x2000,
        segments=[(0x2000, b"\x01\x02\x03\x04" * 16),
                  (0x8000, b"\xAA" * 64)],
        planted=[(0x2004, b"\x0d\x00\x00\x00")],
        loader_ps=loader_ps)


def open_prefix(raw, opener, error):
    """Open ``raw`` with salvage on; classify the outcome."""
    with warnings_mod.catch_warnings(record=True) as caught:
        warnings_mod.simplefilter("always", SalvagedArtifact)
        try:
            artifact = opener(raw, salvage=True)
        except error:
            return "error", None
    salvage_warned = any(issubclass(entry.category, SalvagedArtifact)
                         for entry in caught)
    assert salvage_warned == artifact.salvaged, \
        "salvage must warn exactly when it happened"
    return ("salvage" if artifact.salvaged else "open"), artifact


class TestPowerCutProperty:
    """Every truncation point of both artifact kinds is typed."""

    def test_every_recording_prefix_is_typed(self):
        raw = tiny_recording().to_bytes()
        outcomes = {"open": 0, "salvage": 0, "error": 0}
        for cut in range(len(raw) + 1):
            kind, rec = open_prefix(raw[:cut], Recording.from_bytes,
                                    TraceError)
            outcomes[kind] += 1
            if kind != "error":
                # whatever opened serves a coherent timeline
                assert rec.spills and rec.final_icount >= rec.spills[0].icount
                assert all(s.icount <= rec.final_icount for s in rec.stops)
        assert outcomes["open"] == 1  # only the full file opens clean
        assert outcomes["salvage"] > 0 and outcomes["error"] > 0

    def test_every_core_prefix_is_typed(self):
        raw = tiny_core().to_bytes()
        outcomes = {"open": 0, "salvage": 0, "error": 0}
        for cut in range(len(raw) + 1):
            kind, core = open_prefix(raw[:cut], CoreFile.from_bytes,
                                     CoreError)
            outcomes[kind] += 1
            if kind != "error":
                # the fault record survived, and memory reconstructs
                assert core.signo == 11 and core.fault_pc == 0x2000
                core.memory()
        assert outcomes["open"] == 1
        assert outcomes["salvage"] > 0 and outcomes["error"] > 0

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(0, 2000), flip=st.integers(0, 2000),
           bit=st.integers(0, 7), kind=st.sampled_from(["rec", "core"]))
    def test_truncate_then_flip_is_typed(self, cut, flip, bit, kind):
        # damage beyond clean truncation: rot a byte of the prefix too
        if kind == "rec":
            raw, opener, error = (tiny_recording().to_bytes(),
                                  Recording.from_bytes, TraceError)
        else:
            raw, opener, error = (tiny_core().to_bytes(),
                                  CoreFile.from_bytes, CoreError)
        damaged = bytearray(raw[:min(cut, len(raw))])
        if damaged and flip < len(damaged):
            damaged[flip] ^= 1 << bit
        outcome, _ = open_prefix(bytes(damaged), opener, error)
        assert outcome in ("open", "salvage", "error")

    def test_strict_mode_still_refuses_all_damage(self):
        raw = tiny_recording().to_bytes()
        with pytest.raises(TraceError):
            Recording.from_bytes(raw[: len(raw) - 5])
        raw = tiny_core().to_bytes()
        with pytest.raises(CoreError):
            CoreFile.from_bytes(raw[: len(raw) - 5])

    def test_salvage_clamps_stops_and_inputs_to_horizon(self):
        from repro.trace.format import InputRecord, OP_STORE
        rec = tiny_recording(inputs=[
            InputRecord(3, OP_STORE, "d", 0x2000, b"\x2a\0\0\0"),
            InputRecord(40, OP_STORE, "d", 0x2004, b"\x2b\0\0\0")])
        raw = rec.to_bytes()
        # cut inside the second SPILL block: only the icount-3 spill
        # survives, so the icount-40 stop and input must go with it
        for cut in range(len(raw)):
            outcome, salvaged = open_prefix(raw[:cut],
                                            Recording.from_bytes,
                                            TraceError)
            if outcome == "salvage" and len(salvaged.spills) == 1:
                assert salvaged.final_icount == 3
                assert all(s.icount <= 3 for s in salvaged.stops)
                assert all(i.position <= 3 for i in salvaged.inputs)
                break
        else:
            pytest.fail("no single-spill salvage point found")


BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""


@pytest.fixture(scope="module")
def boom_exe():
    return compile_and_link({"boom.c": BOOM}, "rmips", debug=True)


def record_boom(boom_exe, path):
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(boom_exe)
    ldb.start_recording(path=path, interval=37)
    ldb.break_at_function("poke")
    assert ldb.run_to_stop() == "stopped" and target.at_breakpoint()
    assert ldb.run_to_stop() == "stopped" and target.signo == SIGSEGV
    ldb.record_save()
    return ldb, target


class TestSalvagedOpenThroughLdb:
    def test_truncated_recording_replays_to_horizon(self, boom_exe,
                                                    tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        record_boom(boom_exe, path)
        raw = open(path, "rb").read()
        cut = str(tmp_path / "cut.ldbrec")
        with open(cut, "wb") as handle:
            handle.write(raw[: len(raw) * 2 // 3])

        ldb = Ldb(stdout=io.StringIO())
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always", SalvagedArtifact)
            target = ldb.open_recording(cut)
        assert any(issubclass(entry.category, SalvagedArtifact)
                   for entry in caught)
        rec = target.recording
        assert rec.salvaged and rec.spills
        # the surviving spills seed the ring: time travel works on the
        # salvaged horizon, and replay verifies what the log still has
        assert target.state == "stopped"
        assert target.current_icount() == rec.final_icount
        ldb.backtrace_text()
        if len(rec.spills) > 1:
            ldb.goto_icount(rec.spills[0].icount)
            assert target.current_icount() == rec.spills[0].icount

    def test_truncated_core_opens_salvaged(self, boom_exe, tmp_path):
        live = Ldb(stdout=io.StringIO())
        target = live.load_program(boom_exe)
        assert live.run_to_stop() == "stopped" and target.signo == SIGSEGV
        path = str(tmp_path / "boom.core")
        target.dump_core(path)
        raw = open(path, "rb").read()
        cut = str(tmp_path / "cut.core")
        with open(cut, "wb") as handle:
            handle.write(raw[: len(raw) - len(raw) // 4])

        # the symbol table is the last thing in a core body, so this
        # cut lost it: the salvaged open needs table_ps passed — the
        # same rule as a core dumped without an embedded table
        table_ps = CoreFile.load(path).loader_ps
        ldb = Ldb(stdout=io.StringIO())
        with warnings_mod.catch_warnings():
            # the salvage still warns before the table check refuses
            warnings_mod.simplefilter("ignore", SalvagedArtifact)
            with pytest.raises(TargetError, match="embeds no symbol table"):
                ldb.open_core(cut)
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always", SalvagedArtifact)
            post = ldb.open_core(cut, table_ps=table_ps)
        assert any(issubclass(entry.category, SalvagedArtifact)
                   for entry in caught)
        assert post.core.salvaged
        assert post.signo == SIGSEGV
        ldb.backtrace_text()

    def test_cli_surfaces_salvage_warning(self, boom_exe, tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        record_boom(boom_exe, path)
        raw = open(path, "rb").read()
        cut = str(tmp_path / "cut.ldbrec")
        with open(cut, "wb") as handle:
            handle.write(raw[: len(raw) * 2 // 3])
        out = io.StringIO()
        cli = Cli(stdout=out)
        cli.command("replay %s" % cut)
        assert "warning: recording salvaged" in out.getvalue()


class TestPartialSave:
    def test_dead_nub_degrades_to_partial(self, boom_exe, tmp_path):
        from tests.nub.test_faults import _attach, _listening_nub
        path = str(tmp_path / "partial.ldbrec")
        nub, runner, listener = _listening_nub(boom_exe)
        try:
            ldb, target = _attach(boom_exe, listener)
            ldb.start_recording(path=path, interval=37)
            ldb.break_at_function("poke")
            assert ldb.run_to_stop() == "stopped"
            first = ldb.record_save()  # materializes everything so far
            assert not first.partial
            # accumulate fresh *pending* spills, then lose the nub for
            # good: connection severed and nothing listening anymore
            assert ldb.run_to_stop() == "stopped"
            listener.close()
            target.channel.sock.close()
            with pytest.raises(TargetError):
                ldb.record_save(path)  # strict save refuses
            partial = ldb.record_save(path, allow_partial=True)
            assert partial.partial
            assert len(partial.spills) >= len(first.spills)
        finally:
            runner.join()
            listener.close()
        # the partial file is a valid recording — no salvage needed
        replay = Ldb(stdout=io.StringIO())
        reopened = replay.open_recording(path)
        assert reopened.recording.partial is False  # flag is not persisted
        assert reopened.state == "stopped"
        replay.backtrace_text()

    def test_api_record_save_partial_flag(self, boom_exe, tmp_path):
        path = str(tmp_path / "api.ldbrec")
        ldb, _target = record_boom(boom_exe, path)
        api = DebugAPI(ldb)
        out = api.execute("record_save", {"path": path, "partial": True})
        assert out["partial"] is False  # healthy target: a full save
        with pytest.raises(ApiError):
            api.execute("record_save", {"partial": "yes"})


class TestSaveUnderFaultyDisk:
    def test_powercut_mid_save_keeps_previous_recording(self, boom_exe,
                                                        tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        ldb, target = record_boom(boom_exe, path)
        before = open(path, "rb").read()
        fs = FaultyFS(FsFaultSchedule(seed=5, script=["powercut"]))
        with use_fs(fs):
            with pytest.raises(PowerCut):
                ldb.record_save(path)
        # the artifact is exactly the previous save — never torn
        assert open(path, "rb").read() == before
        Recording.load(path)  # strict open succeeds
        # the machine reboots; the retried save sweeps the dead
        # writer's temp and lands cleanly
        fs.revive()
        with use_fs(fs):
            ldb.record_save(path)
        Recording.load(path)

    def test_enospc_mid_save_is_typed_and_keeps_previous(self, boom_exe,
                                                         tmp_path):
        path = str(tmp_path / "boom.ldbrec")
        ldb, _target = record_boom(boom_exe, path)
        before = open(path, "rb").read()
        fs = FaultyFS(FsFaultSchedule(seed=2, script=["enospc"]))
        with use_fs(fs):
            with pytest.raises(TargetError, match="disk full"):
                ldb.record_save(path)
        assert open(path, "rb").read() == before


class TestRecordStop:
    def test_debugger_verb(self, boom_exe, tmp_path):
        path = str(tmp_path / "x.ldbrec")
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(boom_exe)
        ldb.start_recording(path=path, interval=37)
        ldb.break_at_function("poke")
        assert ldb.run_to_stop() == "stopped"
        spills, _inputs = ldb.record_stop()
        assert spills > 0
        assert target.trace_writer is None
        assert target.replay is not None  # time travel survives
        assert target.replay.writer is None
        # stopping twice is a typed error
        with pytest.raises(TargetError, match="no recording"):
            ldb.record_stop()
        # and the tap really is gone: further stops record nothing
        assert ldb.run_to_stop() == "stopped"

    def test_api_verb(self, boom_exe, tmp_path):
        ldb = Ldb(stdout=io.StringIO())
        ldb.load_program(boom_exe)
        api = DebugAPI(ldb)
        with pytest.raises(ApiError) as info:
            api.execute("record_stop")
        assert info.value.code == ERR_TARGET_STATE
        ldb.start_recording(path=str(tmp_path / "y.ldbrec"))
        out = api.execute("record_stop")
        assert out["stopped"] is True
        assert out["discarded_spills"] >= 1

    def test_cli_verb(self, boom_exe, tmp_path):
        out = io.StringIO()
        cli = Cli(stdout=out)
        cli.start_program(boom_exe)
        cli.command("record --save %s" % (tmp_path / "z.ldbrec"))
        cli.command("record stop")
        assert "recording stopped without saving" in out.getvalue()
        assert cli.ldb.current.trace_writer is None


class TestRecordingAcrossReconnect:
    def test_recording_survives_reconnect_and_replays(self, boom_exe,
                                                      tmp_path):
        from tests.nub.test_faults import _attach, _listening_nub
        path = str(tmp_path / "stitched.ldbrec")
        nub, runner, listener = _listening_nub(boom_exe)
        try:
            ldb, target = _attach(boom_exe, listener)
            ldb.start_recording(path=path, interval=37)
            ldb.break_at_function("poke")
            assert ldb.run_to_stop() == "stopped"
            writer = target.trace_writer
            inputs_before = len(writer.inputs)
            # the connection dies mid-session; the nub preserves the
            # target and the recording rides across the reconnect
            target.channel.sock.close()
            target.reconnect()
            assert target.state == "stopped"
            assert target.trace_writer is writer
            assert writer.stitches == 1
            # the resync's breakpoint replants are recovery mechanics:
            # the input log must not have grown
            assert len(writer.inputs) == inputs_before
            assert ldb.run_to_stop() == "stopped"
            assert target.signo == SIGSEGV
            rec = ldb.record_save()
            assert len(rec.spills) >= 2
        finally:
            runner.join()
            listener.close()
        # the stitched file replays clean: divergence checking on, the
        # recorded digests verify across the reconnect boundary
        replay = Ldb(stdout=io.StringIO())
        reopened = replay.open_recording(path, check_divergence=True)
        assert reopened.signo == SIGSEGV
        replay.backtrace_text()
        metric = target.obs.metrics.snapshot().get(
            "trace.reconnect_stitches")
        assert metric == 1
