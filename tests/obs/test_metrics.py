"""The metrics registry: instruments, snapshot/diff, thread safety."""

import threading

import pytest

from repro.obs import Metrics


class TestInstruments:
    def test_counter_counts(self):
        m = Metrics()
        m.inc("a.b")
        m.inc("a.b", 4)
        assert m.get("a.b") == 5

    def test_counter_rejects_decrease(self):
        m = Metrics()
        with pytest.raises(ValueError):
            m.inc("a", -1)

    def test_gauge_holds_latest(self):
        m = Metrics()
        m.set_gauge("ring", 3)
        m.set_gauge("ring", 7)
        assert m.get("ring") == 7

    def test_histogram_summary(self):
        m = Metrics()
        for value in (5, 1, 9):
            m.observe("lat", value)
        h = m.histogram("lat")
        assert (h.count, h.total, h.min, h.max) == (3, 15, 1, 9)
        assert h.mean() == 5.0

    def test_absent_name_reads_zero(self):
        assert Metrics().get("never") == 0

    def test_kind_mismatch_is_an_error(self):
        m = Metrics()
        m.inc("x")
        with pytest.raises(TypeError):
            m.set_gauge("x", 1)


class TestReading:
    def test_total_sums_a_prefix_family(self):
        m = Metrics()
        m.inc("wire.fetch", 3)
        m.inc("wire.blockfetch", 2)
        m.inc("cache.hit", 10)
        assert m.total("wire.") == 5

    def test_total_ignores_gauges(self):
        m = Metrics()
        m.inc("wire.fetch")
        m.set_gauge("wire.depth", 99)
        assert m.total("wire.") == 1

    def test_snapshot_flattens_histograms(self):
        m = Metrics()
        m.inc("n", 2)
        m.observe("lat", 4)
        m.observe("lat", 6)
        snap = m.snapshot()
        assert snap == {"n": 2, "lat.count": 2, "lat.sum": 10,
                        "lat.min": 4, "lat.max": 6}

    def test_diff_reports_only_changes(self):
        m = Metrics()
        m.inc("a")
        m.inc("b")
        before = m.snapshot()
        m.inc("b", 2)
        m.inc("c")
        assert m.diff(before) == {"b": 2, "c": 1}

    def test_concurrent_increments_are_not_lost(self):
        m = Metrics()

        def spin():
            for _ in range(1000):
                m.inc("hits")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.get("hits") == 4000
