"""The tracing-neutrality property: instrumentation never changes
behaviour.  The same debug session run with the tracer on and off must
produce identical stop events, memory bytes, and instruction counts —
on every ISA.  (Recording never sends a wire message or touches the
target; this test is the enforcement.)"""

import io

from hypothesis import given, settings, strategies as st

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

from ..ldb.helpers import FIB

ARCHS = ("rmips", "rmipsel", "rsparc", "rm68k", "rvax")

_EXES = {}


def _exe(arch):
    if arch not in _EXES:
        _EXES[arch] = compile_and_link({"fib.c": FIB}, arch, debug=True)
    return _EXES[arch]


def observe_session(arch, trace, hits, cache):
    """One scripted session; returns everything behaviour-visible:
    stop identities, icounts, fetched memory bytes, program output."""
    ldb = Ldb(stdout=io.StringIO())
    if trace:
        ldb.obs.tracer.enable()
    target = ldb.load_program(_exe(arch), cache=cache)
    seen = []
    ldb.break_at_stop("fib", 9)
    for _ in range(hits):
        state = ldb.run_to_stop()
        if state != "stopped":
            seen.append(("state", state))
            break
        seen.append(("stop", target.signo, target.sigcode,
                     target.stop_pc(), target.current_icount()))
        seen.append(("j", ldb.evaluate("j")))
        seen.append(("a4", ldb.evaluate("a[4]")))
        # raw memory words of the static array
        entry = target.top_frame().resolve("a")
        loc = target.location_of(entry, target.top_frame())
        seen.append(("mem", tuple(
            target.wire.fetch_absolute(loc.shifted(4 * i), "i32")
            for i in range(10))))
    try:
        target.kill()
    except Exception:
        pass
    return seen


@settings(max_examples=10, deadline=None)
@given(arch=st.sampled_from(ARCHS), hits=st.integers(1, 3),
       cache=st.booleans())
def test_tracing_is_behaviour_neutral(arch, hits, cache):
    traced = observe_session(arch, trace=True, hits=hits, cache=cache)
    plain = observe_session(arch, trace=False, hits=hits, cache=cache)
    assert traced == plain


def test_every_isa_neutral_smoke():
    """Deterministic one-pass coverage of all five ISAs (the hypothesis
    sampler may not visit each one in a quick run)."""
    for arch in ARCHS:
        assert (observe_session(arch, trace=True, hits=2, cache=True)
                == observe_session(arch, trace=False, hits=2, cache=True))
