"""The protocol trace recorder: decoded frames, graceful bad payloads."""

from repro.nub import protocol
from repro.obs import describe, feature_names, frame_size


class TestDescribe:
    def test_fetch(self):
        d = describe(protocol.fetch("d", 0x1040, 4))
        assert d == {"op": "FETCH", "space": "d", "addr": "0x1040", "size": 4}

    def test_store_renders_value_hex(self):
        d = describe(protocol.store("d", 8, b"\x2a\x00\x00\x00"))
        assert (d["op"], d["size"], d["bytes"]) == ("STORE", 4, "2a000000")

    def test_blockfetch(self):
        d = describe(protocol.blockfetch("c", 0x100, 64))
        assert d == {"op": "BLOCKFETCH", "space": "c", "addr": "0x100",
                     "len": 64}

    def test_long_payload_hex_is_capped(self):
        d = describe(protocol.data(bytes(range(200)) + bytes(56)))
        assert d["len"] == 256
        assert d["bytes"].endswith("...(256 bytes)")

    def test_hello_renders_feature_names(self):
        d = describe(protocol.hello())
        assert d["version"] == protocol.PROTOCOL_VERSION
        assert d["features"] == "CRC+SEQ+ACK+BLOCK+TIMETRAVEL"

    def test_signal_and_exited(self):
        assert describe(protocol.signal(5, 0, 0xFF00)) == {
            "op": "SIGNAL", "signo": 5, "code": 0, "context": "0xff00"}
        assert describe(protocol.exited(2)) == {"op": "EXITED", "status": 2}

    def test_error_is_symbolic(self):
        d = describe(protocol.error(protocol.ERR_BAD_ADDRESS))
        assert d["error"] == "ERR_BAD_ADDRESS"

    def test_ckpt_reply_and_icount_sentinel(self):
        assert describe(protocol.ckpt(3, 900))["ckpt"] == 3
        assert describe(protocol.ckpt(protocol.NO_CKPT, 900))["ckpt"] is None

    def test_breaklist(self):
        msg = protocol.breaklist([(0x40, b"\x00\x00\x00\x00"),
                                  (0x80, b"\x01\x02\x03\x04")])
        d = describe(msg)
        assert d["count"] == 2
        assert d["breaks"] == ["0x40", "0x80"]

    def test_sequence_id_appears_when_meaningful(self):
        msg = protocol.ok()
        msg.seq = 17
        assert describe(msg)["wire_seq"] == 17
        msg.seq = protocol.NO_SEQ
        assert "wire_seq" not in describe(msg)

    def test_bad_payload_degrades_to_hex(self):
        bad = protocol.Message(protocol.MSG_FETCH, b"\x01\x02")
        d = describe(bad)
        assert d["op"] == "FETCH"
        assert "bad" in d and d["payload"] == "0102"

    def test_unknown_opcode(self):
        d = describe(protocol.Message(99, b"\xff"))
        assert d["op"] == "UNKNOWN(99)" and d["payload"] == "ff"

    def test_every_opcode_describes_without_raising(self):
        for name, value in vars(protocol).items():
            if name.startswith("MSG_"):
                d = describe(protocol.Message(value, b""))
                assert "op" in d


class TestHelpers:
    def test_feature_names_empty(self):
        assert feature_names(0) == "none"

    def test_frame_size_matches_encode(self):
        msg = protocol.fetch("d", 0, 4)
        for crc in (False, True):
            for seq in (False, True):
                msg.seq = 1 if seq else None
                assert (frame_size(msg, crc=crc, seq_mode=seq)
                        == len(protocol.encode(msg, crc=crc, seq_mode=seq)))
