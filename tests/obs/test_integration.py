"""Observability end to end: the instrumented stack, the CLI verbs,
and the deterministic-transcript acceptance criterion — a scripted
session (break, backtrace, reverse-continue) dumps identical, decoded
JSONL on every run."""

import io
import json

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.ldb.cli import Cli

from ..ldb.helpers import FIB


@pytest.fixture(scope="module")
def fib_exe():
    return compile_and_link({"fib.c": FIB}, "rmips", debug=True)


def scripted_session(exe):
    """break -> continue -> backtrace -> continue -> reverse-continue,
    traced from the start; returns (ldb, deterministic JSONL dump)."""
    ldb = Ldb(stdout=io.StringIO())
    ldb.obs.tracer.enable()
    target = ldb.load_program(exe)
    ldb.enable_time_travel(interval=500)
    ldb.break_at_stop("fib", 9)  # in the print loop: hit per iteration
    ldb.run_to_stop()
    ldb.backtrace_text()
    ldb.run_to_stop()
    ldb.reverse_continue()  # back onto the previous iteration's hit
    dump = ldb.obs.tracer.dump()
    target.kill()
    return ldb, dump


class TestScriptedTranscript:
    def test_dump_is_deterministic_across_runs(self, fib_exe):
        _, first = scripted_session(fib_exe)
        _, second = scripted_session(fib_exe)
        assert first == second

    def test_dump_is_decoded_jsonl(self, fib_exe):
        _, dump = scripted_session(fib_exe)
        records = [json.loads(line) for line in dump.splitlines()]
        assert records
        # frames are decoded (opcode names + fields), not raw hex blobs
        sends = [r for r in records if r["name"] == "wire.send"]
        assert ({"BLOCKFETCH", "CHECKPOINT", "RESTORE"}
                <= {r["op"] for r in sends})
        assert all("addr" in r for r in sends if r["op"] == "BLOCKFETCH")
        # the replay search appears as nested spans with noted results
        scans = [r for r in records
                 if r["name"] == "replay.scan" and r["ev"] == "end"]
        assert scans and all("hits" in r for r in scans)
        # no wall-clock fields survive in the deterministic dump
        assert all("t_us" not in r and "dur_us" not in r for r in records)
        # the restore leaves its warning-level mark
        assert any(r["name"] == "target.restore"
                   and r["level"] == "warning" for r in records
                   if r.get("ev") == "event")

    def test_registry_covers_every_family(self, fib_exe):
        ldb, _ = scripted_session(fib_exe)
        snap = ldb.obs.metrics.snapshot()
        for family in ("wire.", "cache.", "session.", "target.", "replay."):
            assert any(name.startswith(family) for name in snap), family
        # the DAG mirror and the local MemoryStats agree on round-trips
        target = ldb.targets["t0"]
        assert ldb.obs.metrics.total("wire.") == target.stats.round_trips()


class TestCliVerbs:
    def _cli(self, exe):
        out = io.StringIO()
        cli = Cli(stdin=io.StringIO(), stdout=out)
        cli.start_program(exe)
        return cli, out

    def _said(self, out, before):
        out.seek(before)
        return out.read()

    def test_stats_prints_registry(self, fib_exe):
        cli, out = self._cli(fib_exe)
        cli.command("break fib")
        cli.command("continue")
        before = out.tell()
        cli.command("stats")
        text = self._said(out, before)
        assert "session.requests" in text
        assert "wire." in text

    def test_sim_prints_engine_counters(self, fib_exe):
        cli, out = self._cli(fib_exe)
        cli.command("break fib")
        cli.command("continue")
        before = out.tell()
        cli.command("sim")
        text = self._said(out, before)
        assert "engine " in text
        if "engine block" in text:
            assert "blocks_compiled" in text and "generation" in text

    def test_trace_on_dump_off(self, fib_exe, tmp_path):
        cli, out = self._cli(fib_exe)
        cli.command("trace on")
        cli.command("break fib")
        cli.command("continue")
        path = tmp_path / "session.jsonl"
        cli.command("trace dump %s" % path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert any(r.get("op") == "BLOCKFETCH" for r in records)
        before = out.tell()
        cli.command("trace off")
        assert "tracing off" in self._said(out, before)

    def test_trace_dump_to_terminal_and_clear(self, fib_exe):
        cli, out = self._cli(fib_exe)
        cli.command("trace on")
        cli.command("break fib")
        before = out.tell()
        cli.command("trace dump")
        assert '"op": "' in self._said(out, before)
        cli.command("trace clear")
        before = out.tell()
        cli.command("trace dump")
        assert self._said(out, before) == ""

    def test_trace_usage_message(self, fib_exe):
        cli, out = self._cli(fib_exe)
        before = out.tell()
        cli.command("trace bogus")
        assert "trace: on | off | dump" in self._said(out, before)
