"""The tracer: spans, events, levels, the ring, deterministic dumps."""

import io
import json
import threading

from repro.obs import NONDETERMINISTIC_FIELDS, Tracer


class TestEvents:
    def test_disabled_tracer_records_nothing_info(self):
        t = Tracer()
        t.event("wire.send", op="FETCH")
        assert t.records() == []

    def test_warnings_record_even_while_disabled(self):
        t = Tracer()
        t.warn("target.reconnect", attempt=1)
        (record,) = t.records()
        assert record["level"] == "warning"
        assert record["attempt"] == 1

    def test_enabled_tracer_records_fields(self):
        t = Tracer()
        t.enable()
        t.event("target.stop", signo=5, code=0)
        (record,) = t.records()
        assert record["name"] == "target.stop"
        assert (record["signo"], record["code"]) == (5, 0)

    def test_find_filters_by_name_and_level(self):
        t = Tracer()
        t.enable()
        t.event("a")
        t.warn("a")
        t.event("b")
        assert len(t.find("a")) == 2
        assert len(t.find("a", level="warning")) == 1

    def test_ring_is_bounded(self):
        t = Tracer(capacity=8)
        t.enable()
        for i in range(20):
            t.event("tick", i=i)
        records = t.records()
        assert len(records) == 8
        assert records[0]["i"] == 12  # the oldest 12 fell off


class TestSpans:
    def test_span_emits_begin_and_end(self):
        t = Tracer()
        t.enable()
        with t.span("replay.scan", window_start=0) as span:
            span.note(hits=3)
        begin, end = t.records()
        assert (begin["ev"], begin["name"]) == ("begin", "replay.scan")
        assert end["ev"] == "end" and end["hits"] == 3
        assert "dur_us" in end

    def test_nesting_depth(self):
        t = Tracer()
        t.enable()
        with t.span("outer"):
            with t.span("inner"):
                t.event("leaf")
        by_name = {r["name"]: r for r in t.records() if r["ev"] != "end"}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["leaf"]["depth"] == 2

    def test_span_records_error_flag(self):
        t = Tracer()
        t.enable()
        try:
            with t.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        end = [r for r in t.records() if r["ev"] == "end"][0]
        assert end["error"] is True

    def test_disabled_span_is_free_and_silent(self):
        t = Tracer()
        with t.span("never", x=1) as span:
            span.note(y=2)
        assert t.records() == []

    def test_depths_do_not_interleave_across_threads(self):
        t = Tracer()
        t.enable()

        def worker():
            with t.span("w"):
                t.event("w.leaf")

        thread = threading.Thread(target=worker)
        with t.span("main"):
            thread.start()
            thread.join()
        leaf = t.find("w.leaf")[0]
        # the worker's stack starts empty: its span is depth 0, the
        # event under it depth 1 — main's open span is invisible to it
        assert leaf["depth"] == 1


class TestDump:
    def test_dump_is_jsonl_and_deterministic(self):
        t = Tracer()
        t.enable()
        t.event("a", x=1)
        with t.span("s"):
            pass
        lines = t.dump().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            for field in NONDETERMINISTIC_FIELDS:
                assert field not in record

    def test_dump_keeps_timings_on_request(self):
        t = Tracer()
        t.enable()
        t.event("a")
        record = json.loads(t.dump(deterministic=False))
        assert "t_us" in record

    def test_dump_writes_to_file(self):
        t = Tracer()
        t.enable()
        t.event("a")
        sink = io.StringIO()
        text = t.dump(file=sink)
        assert sink.getvalue() == text

    def test_identical_sessions_dump_identically(self):
        def run():
            t = Tracer()
            t.enable()
            t.event("wire.send", op="FETCH", addr="0x40")
            with t.span("replay.scan", window_start=0) as span:
                span.note(hits=1)
            return t.dump()

        assert run() == run()

    def test_clear_resets_ring_and_seq(self):
        t = Tracer()
        t.enable()
        t.event("a")
        t.clear()
        t.event("b")
        (record,) = t.records()
        assert record["seq"] == 1

    def test_dead_sink_never_breaks_recording(self):
        class Dead:
            def write(self, _):
                raise OSError("gone")

        t = Tracer()
        t.enable(sink=Dead())
        t.event("a")  # must not raise
        t.event("b")
        assert t.sink is None
        assert len(t.records()) == 2
