"""Metrics and Tracer under real concurrency: OS threads and asyncio
tasks hammering the same registry must lose nothing and tear nothing.

The server leans on this: every session worker thread and the asyncio
manager loop write into one shared Observability, and the fleet bench
reads percentiles out of it while commands are still in flight.
"""

import asyncio
import threading

from repro.obs import Observability
from repro.obs.metrics import Metrics

THREADS = 8
PER_THREAD = 2000


def test_concurrent_counters_lose_nothing():
    metrics = Metrics()
    barrier = threading.Barrier(THREADS)

    def hammer(k):
        barrier.wait()
        for i in range(PER_THREAD):
            metrics.inc("shared")
            metrics.inc("per.%d" % k)
            metrics.inc("weighted", 3)
    threads = [threading.Thread(target=hammer, args=(k,))
               for k in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = metrics.snapshot()
    assert snap["shared"] == THREADS * PER_THREAD
    assert snap["weighted"] == 3 * THREADS * PER_THREAD
    for k in range(THREADS):
        assert snap["per.%d" % k] == PER_THREAD
    assert metrics.total("per.") == THREADS * PER_THREAD


def test_concurrent_histograms_are_consistent():
    metrics = Metrics()
    barrier = threading.Barrier(THREADS)

    def hammer(k):
        barrier.wait()
        for i in range(PER_THREAD):
            metrics.observe("latency", (k * PER_THREAD + i) % 1000)
    threads = [threading.Thread(target=hammer, args=(k,))
               for k in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = metrics.snapshot()
    assert snap["latency.count"] == THREADS * PER_THREAD
    assert snap["latency.min"] == 0
    assert snap["latency.max"] == 999
    # every observed value was in [0, 1000): so is every percentile
    for q in (0.0, 0.5, 0.99, 1.0):
        assert 0 <= metrics.percentile("latency", q) <= 999


def test_snapshot_diff_mid_flight_never_goes_backward():
    metrics = Metrics()
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            metrics.inc("busy")
            metrics.observe("h", 1)
    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        last = metrics.snapshot()
        for _ in range(200):
            now = metrics.snapshot()
            # counters are monotone even while written concurrently
            assert now.get("busy", 0) >= last.get("busy", 0)
            assert now.get("h.count", 0) >= last.get("h.count", 0)
            delta = metrics.diff(last)
            assert delta.get("busy", 0) >= 0
            last = now
    finally:
        stop.set()
        for t in threads:
            t.join()


def test_threads_and_asyncio_tasks_share_one_registry():
    obs = Observability()
    metrics = obs.metrics
    N_TASKS, N_EACH = 16, 500

    def thread_work():
        for _ in range(PER_THREAD):
            metrics.inc("mixed")
            obs.tracer.event("thread.tick")
    threads = [threading.Thread(target=thread_work)
               for _ in range(THREADS)]
    for t in threads:
        t.start()

    async def task_work():
        for _ in range(N_EACH):
            metrics.inc("mixed")
            metrics.observe("task.latency", 7)
            await asyncio.sleep(0)

    async def main():
        await asyncio.gather(*(task_work() for _ in range(N_TASKS)))
    asyncio.run(main())
    for t in threads:
        t.join()
    snap = metrics.snapshot()
    assert snap["mixed"] == THREADS * PER_THREAD + N_TASKS * N_EACH
    assert snap["task.latency.count"] == N_TASKS * N_EACH


def test_tracer_concurrent_events_all_recorded():
    obs = Observability()
    tracer = obs.tracer
    tracer.enable()  # point events are dropped while tracing is off
    barrier = threading.Barrier(THREADS)

    def hammer(k):
        barrier.wait()
        for i in range(200):
            tracer.event("tick", worker=k, i=i)
    threads = [threading.Thread(target=hammer, args=(k,))
               for k in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = [r for r in tracer.records() if r.get("name") == "tick"]
    assert len(records) == THREADS * 200
    # no torn records: every one carries both fields
    assert all("worker" in r and "i" in r for r in records)
