"""Nub behavior tests: context save, fetch/store service, reconnection."""

import struct
import threading
import time

import pytest

from repro.cc.driver import compile_and_link
from repro.machines import Process, SIGFPE, SIGTRAP, get_arch
from repro.nub import Nub, NubRunner, pair, protocol
from repro.nub.channel import Listener, connect
from repro.nub.nub import MipsNubMD, NubMD, SparcNubMD, nub_md_for

SRC = r"""
int counter = 7;
double dbl = 2.5;
int main(void) {
    int x = 5;
    x = x / (counter - 7);   /* SIGFPE once counter is 7 */
    return x;
}
"""

SAFE = "int tag = 99;\nint main(void) { return 3; }\n"


def skip_pause(chan, ctx=Nub.CONTEXT_ADDR, advance=4):
    """What the debugger does to resume past a trap: bump the saved pc."""
    chan.send(protocol.fetch("d", ctx, 4))
    pc = int.from_bytes(chan.recv(10.0).payload, "little")
    chan.send(protocol.store("d", ctx, (pc + advance).to_bytes(4, "little")))
    chan.recv(10.0)
    chan.send(protocol.cont())


def start_nub(src, arch="rmips", stop_at_entry=True, **kw):
    exe = compile_and_link({"t.c": src}, arch, debug=True)
    debugger_end, nub_end = pair()
    process = Process(exe)
    nub = Nub(process, channel=nub_end, stop_at_entry=stop_at_entry, **kw)
    runner = NubRunner(nub).start()
    return exe, process, nub, runner, debugger_end


class TestStartupPause:
    def test_stops_before_main_when_debugged(self):
        exe, process, nub, runner, chan = start_nub(SAFE)
        msg = chan.recv(10.0)
        signo, code, ctx = protocol.parse_signal(msg)
        assert signo == SIGTRAP
        assert ctx == Nub.CONTEXT_ADDR
        # the saved pc is the nub pause
        pc = process.mem.read_u32(ctx)
        assert pc == exe.symbols["__nub_pause"]
        chan.send(protocol.kill())
        runner.join()

    def test_runs_through_when_not_debugged(self):
        exe = compile_and_link({"t.c": SAFE}, "rmips", debug=True)
        process = Process(exe)
        nub = Nub(process)  # no channel, no listener
        status = nub.run()
        assert status == 3


class TestFetchStore:
    def setup_stopped(self, src=SAFE, arch="rmips"):
        exe, process, nub, runner, chan = start_nub(src, arch)
        chan.recv(10.0)  # the startup pause
        return exe, process, nub, runner, chan

    def teardown_channel(self, chan, runner):
        chan.send(protocol.kill())
        runner.join()

    def test_fetch_data_value_little_endian(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        address = exe.symbols["_tag"]
        chan.send(protocol.fetch("d", address, 4))
        reply = chan.recv(10.0)
        assert reply.mtype == protocol.MSG_DATA
        # the nub replies little-endian whatever the target order
        assert int.from_bytes(reply.payload, "little") == 99
        self.teardown_channel(chan, runner)

    def test_fetch_same_value_on_both_byte_orders(self):
        for arch in ("rmips", "rmipsel"):
            exe, process, nub, runner, chan = self.setup_stopped(arch=arch)
            address = exe.symbols["_tag"]
            chan.send(protocol.fetch("d", address, 4))
            reply = chan.recv(10.0)
            assert int.from_bytes(reply.payload, "little") == 99, arch
            self.teardown_channel(chan, runner)

    def test_store_then_fetch(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        address = exe.symbols["_tag"]
        chan.send(protocol.store("d", address, (123).to_bytes(4, "little")))
        assert chan.recv(10.0).mtype == protocol.MSG_OK
        chan.send(protocol.fetch("d", address, 4))
        assert int.from_bytes(chan.recv(10.0).payload, "little") == 123
        self.teardown_channel(chan, runner)

    def test_register_space_rejected(self):
        """The nub answers only for code and data spaces (Sec. 4.1)."""
        exe, process, nub, runner, chan = self.setup_stopped()
        chan.send(protocol.fetch("r", 0, 4))
        reply = chan.recv(10.0)
        assert reply.mtype == protocol.MSG_ERROR
        assert protocol.parse_error(reply) == protocol.ERR_BAD_SPACE
        self.teardown_channel(chan, runner)

    def test_bad_address_errors(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        chan.send(protocol.fetch("d", 0xFFFFFFF0, 4))
        assert chan.recv(10.0).mtype == protocol.MSG_ERROR
        self.teardown_channel(chan, runner)

    def test_continue_to_exit(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        skip_pause(chan)
        msg = chan.recv(10.0)
        assert msg.mtype == protocol.MSG_EXITED
        assert protocol.parse_exited(msg) == 3
        runner.join()


class TestBlockService:
    """The block-transfer extension on the nub side."""

    def setup_stopped(self, src=SAFE, arch="rmips", **kw):
        exe, process, nub, runner, chan = start_nub(src, arch, **kw)
        chan.recv(10.0)  # the startup pause
        return exe, process, nub, runner, chan

    def teardown_channel(self, chan, runner):
        chan.send(protocol.kill())
        runner.join()

    def test_blockfetch_returns_raw_memory_image(self):
        """BLOCKFETCH replies with the memory image in address order —
        on a big-endian target that is NOT the little-endian value
        stream FETCH would produce."""
        exe, process, nub, runner, chan = self.setup_stopped()  # rmips: BE
        address = exe.symbols["_tag"]
        chan.send(protocol.blockfetch("d", address, 8))
        reply = chan.recv(10.0)
        assert reply.mtype == protocol.MSG_DATA
        assert reply.payload == process.mem.read_bytes(address, 8)
        # big-endian image: 99 lands in the high-order byte position
        assert reply.payload[:4] == (99).to_bytes(4, "big")
        self.teardown_channel(chan, runner)

    def test_blockfetch_matches_fetch_after_interpretation(self):
        """One block, per-word interpreted, equals per-word FETCHes —
        the identity the caching memory depends on."""
        for arch in ("rmips", "rmipsel"):
            exe, process, nub, runner, chan = self.setup_stopped(arch=arch)
            address = exe.symbols["_tag"]
            chan.send(protocol.blockfetch("d", address, 4))
            image = chan.recv(10.0).payload
            chan.send(protocol.fetch("d", address, 4))
            value_le = chan.recv(10.0).payload
            order = "big" if arch == "rmips" else "little"
            assert int.from_bytes(image, order) == \
                int.from_bytes(value_le, "little") == 99, arch
            self.teardown_channel(chan, runner)

    def test_blockfetch_readable_prefix_at_memory_end(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        edge = process.mem.size - 10
        chan.send(protocol.blockfetch("d", edge, 64))
        reply = chan.recv(10.0)
        assert reply.mtype == protocol.MSG_DATA
        assert reply.payload == process.mem.read_bytes(edge, 10)
        self.teardown_channel(chan, runner)

    def test_blockfetch_unmapped_start_errors(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        chan.send(protocol.blockfetch("d", process.mem.size, 16))
        reply = chan.recv(10.0)
        assert reply.mtype == protocol.MSG_ERROR
        assert protocol.parse_error(reply) == protocol.ERR_BAD_ADDRESS
        self.teardown_channel(chan, runner)

    def test_blockfetch_bad_space_errors(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        chan.send(protocol.blockfetch("r", 0, 16))
        reply = chan.recv(10.0)
        assert protocol.parse_error(reply) == protocol.ERR_BAD_SPACE
        self.teardown_channel(chan, runner)

    def test_blockstore_writes_verbatim(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        address = exe.symbols["_tag"]
        image = b"\x00\x00\x00\x7b"       # 123 big-endian: raw image
        chan.send(protocol.blockstore("d", address, image))
        assert chan.recv(10.0).mtype == protocol.MSG_OK
        assert process.mem.read_bytes(address, 4) == image
        # and FETCH now reinterprets it: little-endian value 123
        chan.send(protocol.fetch("d", address, 4))
        assert int.from_bytes(chan.recv(10.0).payload, "little") == 123
        self.teardown_channel(chan, runner)

    def test_legacy_nub_refuses_block_messages(self):
        exe, process, nub, runner, chan = self.setup_stopped(
            block_extension=False)
        chan.send(protocol.blockfetch("d", 0x100, 16))
        assert protocol.parse_error(chan.recv(10.0)) == \
            protocol.ERR_UNSUPPORTED
        chan.send(protocol.blockstore("d", 0x100, b"\x00" * 4))
        assert protocol.parse_error(chan.recv(10.0)) == \
            protocol.ERR_UNSUPPORTED
        self.teardown_channel(chan, runner)

    def test_legacy_nub_masks_feature_block_in_hello(self):
        exe, process, nub, runner, chan = self.setup_stopped(
            block_extension=False)
        chan.send(protocol.hello(features=protocol.ALL_FEATURES))
        _version, accepted = protocol.parse_hello(chan.recv(10.0))
        assert not accepted & protocol.FEATURE_BLOCK
        chan.crc = bool(accepted & protocol.FEATURE_CRC)
        chan.seq_mode = bool(accepted & protocol.FEATURE_SEQ)
        self.teardown_channel(chan, runner)

    def test_modern_nub_accepts_feature_block(self):
        exe, process, nub, runner, chan = self.setup_stopped()
        chan.send(protocol.hello(features=protocol.ALL_FEATURES))
        _version, accepted = protocol.parse_hello(chan.recv(10.0))
        assert accepted & protocol.FEATURE_BLOCK
        chan.crc = bool(accepted & protocol.FEATURE_CRC)
        chan.seq_mode = bool(accepted & protocol.FEATURE_SEQ)
        self.teardown_channel(chan, runner)


class TestSignals:
    def test_sigfpe_reported(self):
        exe, process, nub, runner, chan = start_nub(SRC)
        chan.recv(10.0)             # startup pause
        skip_pause(chan)
        msg = chan.recv(10.0)       # the division fault
        signo, code, ctx = protocol.parse_signal(msg)
        assert signo == SIGFPE
        chan.send(protocol.kill())
        runner.join()

    def test_context_holds_registers(self):
        exe, process, nub, runner, chan = start_nub(SRC)
        chan.recv(10.0)
        ctx = Nub.CONTEXT_ADDR
        # sp was saved in the context: slot for r29 on rmips
        chan.send(protocol.fetch("d", ctx + 4 + 4 * 29, 4))
        sp = int.from_bytes(chan.recv(10.0).payload, "little")
        assert sp == exe.stack_top
        chan.send(protocol.kill())
        runner.join()

    def test_modified_context_restored_on_continue(self):
        """Stores into the context must become register values — the
        debugger changes registers this way (Sec. 4.1)."""
        src = "int main(void) { return 3; }"
        exe, process, nub, runner, chan = start_nub(src)
        chan.recv(10.0)
        # overwrite the return-value register cell mid-run? easier:
        # advance the pc over the pause manually via the context
        ctx = Nub.CONTEXT_ADDR
        chan.send(protocol.fetch("d", ctx, 4))
        pc = int.from_bytes(chan.recv(10.0).payload, "little")
        arch = get_arch("rmips")
        chan.send(protocol.store("d", ctx, (pc + arch.noop_advance)
                                 .to_bytes(4, "little")))
        chan.recv(10.0)
        chan.send(protocol.cont())
        msg = chan.recv(10.0)
        assert protocol.parse_exited(msg) == 3
        runner.join()


class TestReconnection:
    def test_detach_preserves_state_and_reconnects(self):
        exe = compile_and_link({"t.c": SAFE}, "rmips", debug=True)
        listener = Listener()
        process = Process(exe)
        nub = Nub(process, listener=listener, stop_at_entry=True,
                  accept_timeout=10.0)
        runner = NubRunner(nub).start()
        first = connect("127.0.0.1", listener.port)
        msg = first.recv(10.0)
        assert msg.mtype == protocol.MSG_SIGNAL
        first.send(protocol.detach())
        # a "new debugger instance" picks the target up again
        second = connect("127.0.0.1", listener.port)
        msg2 = second.recv(10.0)
        assert protocol.parse_signal(msg2) == protocol.parse_signal(msg)
        skip_pause(second)
        assert second.recv(10.0).mtype == protocol.MSG_EXITED
        runner.join()
        listener.close()

    def test_survives_debugger_crash(self):
        """A dropped connection must not lose the target (Sec. 4.2)."""
        exe = compile_and_link({"t.c": SAFE}, "rmips", debug=True)
        listener = Listener()
        process = Process(exe)
        nub = Nub(process, listener=listener, accept_timeout=10.0)
        runner = NubRunner(nub).start()
        crashing = connect("127.0.0.1", listener.port)
        crashing.recv(10.0)
        crashing.sock.close()   # the debugger "crashes"
        recovered = connect("127.0.0.1", listener.port)
        msg = recovered.recv(10.0)
        assert msg.mtype == protocol.MSG_SIGNAL
        skip_pause(recovered)
        assert recovered.recv(10.0).mtype == protocol.MSG_EXITED
        runner.join()
        listener.close()


class TestNubMD:
    """The machine-dependent nub pieces (paper Sec. 4.3)."""

    def test_md_selection(self):
        assert isinstance(nub_md_for(get_arch("rmips")), MipsNubMD)
        assert isinstance(nub_md_for(get_arch("rsparc")), SparcNubMD)
        assert type(nub_md_for(get_arch("rmipsel"))) is NubMD

    def test_mips_be_freg_word_swap(self):
        """Footnote 3: the kernel saves doubles LSW-first on big-endian
        MIPS; the nub's fix restores wire values."""
        from repro.machines import TargetMemory
        arch = get_arch("rmips")
        md = nub_md_for(arch)
        mem = TargetMemory(4096, "big")
        md.save_freg(mem, 0, 1.5, 8)
        raw = mem.read_bytes(0, 8)
        straight = struct.unpack(">d", raw)[0]
        assert straight != 1.5          # stored swapped: the quirk
        assert md.restore_freg(mem, 0, 8) == 1.5
        # the wire fix: raw bytes -> little-endian -> word swap
        raw_le = raw[::-1]
        fixed = md.fix_fetched(4 + 4 * 32, raw_le, 0)  # inside freg area
        assert struct.unpack("<d", fixed)[0] == 1.5

    def test_m68k_saves_f80(self):
        from repro.machines import TargetMemory
        arch = get_arch("rm68k")
        md = nub_md_for(arch)
        mem = TargetMemory(4096, "big")
        md.save_freg(mem, 0, 3.25, 10)
        assert mem.read_f80(0) == 3.25
        assert md.restore_freg(mem, 0, 10) == 3.25

    @pytest.mark.parametrize("arch_name", ["rmips", "rsparc", "rm68k", "rvax"])
    def test_context_round_trip(self, arch_name):
        from repro.machines import Cpu, TargetMemory
        arch = get_arch(arch_name)
        md = nub_md_for(arch)
        mem = TargetMemory(8192, arch.byteorder)
        cpu = Cpu(arch, mem)
        for i in range(arch.nregs):
            if not (i == 0 and arch.zero_reg):
                cpu.regs[i] = (i * 0x01010101) & 0xFFFFFFFF
        for i in range(arch.nfregs):
            cpu.fregs[i] = float(i) + 0.5
        cpu.cc_lt, cpu.cc_eq = True, False
        md.save_context(cpu, mem, 0x100, 0xBEEF)
        fresh = Cpu(arch, mem)
        pc = md.restore_context(fresh, mem, 0x100)
        assert pc == 0xBEEF
        assert fresh.regs == cpu.regs
        assert fresh.fregs == cpu.fregs
        assert fresh.cc_lt and not fresh.cc_eq
