"""Fault-tolerance tests: injected channel faults, session retries,
debugger crash-reconnect, and serve-loop fuzzing.

The fault matrix drives the paper's user workflow (breakpoints,
inspection, assignment, resumption) through a channel that drops,
corrupts, truncates, duplicates or delays frames on a deterministic
seeded schedule — every operation must still succeed, absorbed by the
session's retry/backoff and reconnect machinery.
"""

import io
import random
import socket

import pytest

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.machines import Process
from repro.nub import (
    Channel,
    ChannelClosed,
    FaultInjectingChannel,
    FaultSchedule,
    Listener,
    Nub,
    NubRunner,
    RetryPolicy,
    connect,
    pair,
    protocol,
)
from repro.nub.faults import FAULT_KINDS

from ..ldb.helpers import FIB, run_to_exit


@pytest.fixture(scope="module")
def fib_exe():
    return compile_and_link({"fib.c": FIB}, "rmips", debug=True)


def _listening_nub(exe):
    listener = Listener()
    nub = Nub(Process(exe), listener=listener, accept_timeout=30.0)
    runner = NubRunner(nub).start()
    return nub, runner, listener


def _attach(exe, listener, schedule=None):
    """An Ldb attached through an (optionally fault-injecting) connector,
    with a fast retry policy so tests converge quickly."""
    table_ps = loader_table_ps(exe)
    port = listener.port

    def connector():
        channel = connect("127.0.0.1", port)
        if schedule is not None:
            return FaultInjectingChannel(channel, schedule)
        return channel

    ldb = Ldb(stdout=io.StringIO())
    target = ldb.adopt_channel(connector(), table_ps, connector=connector)
    target.session.reply_timeout = 0.5
    target.session.policy = RetryPolicy(max_attempts=10, base_delay=0.01,
                                        max_delay=0.05, seed=1)
    return ldb, target


class TestFaultSchedule:
    def test_same_seed_same_actions(self):
        a = FaultSchedule(seed=7, drop=0.3, corrupt=0.3)
        b = FaultSchedule(seed=7, drop=0.3, corrupt=0.3)
        assert [a.next_action() for _ in range(50)] \
            == [b.next_action() for _ in range(50)]

    def test_limit_caps_injected_faults(self):
        schedule = FaultSchedule(seed=1, drop=1.0, limit=3)
        actions = [schedule.next_action() for _ in range(10)]
        assert actions.count("drop") == 3
        assert actions[3:] == ["ok"] * 7

    def test_script_mode(self):
        schedule = FaultSchedule(script=["ok", "drop", "corrupt"])
        assert [schedule.next_action() for _ in range(5)] \
            == ["ok", "drop", "corrupt", "ok", "ok"]

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(drop=1.5)


class TestInjection:
    def test_drop_discards_frame(self):
        a, b = pair()
        faulty = FaultInjectingChannel(a, FaultSchedule(script=["drop"]))
        faulty.send(protocol.ok())
        with pytest.raises(TimeoutError):
            b.recv(0.05)
        a.close(), b.close()

    def test_corrupt_detected_by_crc(self):
        a, b = pair()
        a.crc = b.crc = True
        faulty = FaultInjectingChannel(a, FaultSchedule(script=["corrupt"]))
        faulty.send(protocol.fetch("d", 0x100, 4))
        with pytest.raises(protocol.CrcError):
            b.recv(0.5)
        a.close(), b.close()

    def test_duplicate_sends_twice(self):
        a, b = pair()
        faulty = FaultInjectingChannel(a, FaultSchedule(script=["duplicate"]))
        faulty.send(protocol.ok())
        assert b.recv(0.5).mtype == protocol.MSG_OK
        assert b.recv(0.5).mtype == protocol.MSG_OK
        a.close(), b.close()

    def test_truncate_kills_the_connection(self):
        a, b = pair()
        faulty = FaultInjectingChannel(a, FaultSchedule(script=["truncate"]))
        faulty.send(protocol.fetch("d", 0, 4))
        with pytest.raises(ChannelClosed):
            b.recv(0.5)
        b.close()


class TestChannelHardening:
    def test_recv_restores_socket_timeout(self):
        a, b = pair()
        with pytest.raises(TimeoutError):
            b.recv(0.05)
        assert b.sock.gettimeout() is None
        a.close(), b.close()

    def test_hostile_length_drops_connection(self):
        a, b = pair()
        a.sock.sendall(b"\x12" + (protocol.MAX_PAYLOAD + 1).to_bytes(4, "little"))
        with pytest.raises(protocol.FrameError):
            b.recv(0.5)
        # the connection was dropped, not left mis-framed
        with pytest.raises(ChannelClosed):
            b.recv(0.5)
        a.close()

    def test_accept_timeout_is_TimeoutError(self):
        listener = Listener()
        with pytest.raises(TimeoutError):
            listener.accept(0.05)
        listener.close()

    def test_drain_discards_stale_input(self):
        a, b = pair()
        a.send(protocol.ok())
        a.send(protocol.cont())
        import time
        time.sleep(0.05)
        assert b.drain() > 0
        with pytest.raises(TimeoutError):
            b.recv(0.05)
        a.close(), b.close()


class TestFaultMatrix:
    """The full workflow — plant, continue, fetch, store, backtrace,
    exit — under every fault kind."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_workflow_survives(self, fib_exe, kind):
        schedule = FaultSchedule(seed=11 + FAULT_KINDS.index(kind),
                                 limit=12, **{kind: 0.2})
        nub, runner, listener = _listening_nub(fib_exe)
        try:
            ldb, target = _attach(fib_exe, listener, schedule)
            assert target.state == "stopped"
            ldb.break_at_stop("fib", 9)                    # PLANT
            assert ldb.run_to_stop() == "stopped"          # CONTINUE
            assert ldb.evaluate("a[4]") == 5               # FETCH
            ldb.evaluate("n = 6")                          # STORE
            assert "fib" in ldb.backtrace_text()
            target.breakpoints.remove_all()                # UNPLANT
            assert run_to_exit(ldb, target) == "exited"
        finally:
            runner.join()
            listener.close()

    def test_mixed_fault_soup(self, fib_exe):
        """All fault kinds at once; the session's counters prove faults
        actually fired."""
        schedule = FaultSchedule(seed=3, drop=0.08, corrupt=0.08,
                                 duplicate=0.08, delay=0.08, truncate=0.04,
                                 limit=10)
        nub, runner, listener = _listening_nub(fib_exe)
        try:
            ldb, target = _attach(fib_exe, listener, schedule)
            ldb.break_at_stop("fib", 9)
            assert ldb.run_to_stop() == "stopped"
            assert ldb.evaluate("a[4]") == 5
            target.breakpoints.remove_all()
            assert run_to_exit(ldb, target) == "exited"
            assert schedule.injected > 0
        finally:
            runner.join()
            listener.close()


class TestCrashReconnect:
    """Paper Sec. 7.1: the nub preserves the target across a debugger
    crash; the same Target re-attaches and resynchronizes."""

    def test_reconnect_recovers_breakpoints(self, fib_exe):
        nub, runner, listener = _listening_nub(fib_exe)
        try:
            ldb, target = _attach(fib_exe, listener)
            a9 = ldb.break_at_stop("fib", 9)
            a6 = ldb.break_at_stop("fib", 6)
            planted = set(target.breakpoints.planted)
            assert planted == {a9, a6}
            # the debugger "crashes": its socket dies and its in-memory
            # breakpoint table is lost
            target.channel.sock.close()
            target.breakpoints.planted.clear()
            target.reconnect()
            assert target.state == "stopped"
            assert target.session.reconnects >= 1
            # the silent resync leaves exactly one warning-level trace
            # event, even with tracing off (warnings always record)
            warnings = target.obs.tracer.find("target.reconnect",
                                              level="warning")
            assert len(warnings) == 1
            assert warnings[0]["breakpoints"] == len(planted)
            # the BREAKS replay recovered the exact planted set
            assert set(target.breakpoints.planted) == planted
            assert all(bp.note == "adopted"
                       for bp in target.breakpoints.planted.values())
            # and the session is fully usable: run to a breakpoint
            assert ldb.run_to_stop() == "stopped"
            assert target.stop_pc() in planted
            assert ldb.evaluate("n") == 10
            target.breakpoints.remove_all()
            assert run_to_exit(ldb, target) == "exited"
        finally:
            runner.join()
            listener.close()

    def test_wait_for_stop_reports_reconnecting(self, fib_exe):
        nub, runner, listener = _listening_nub(fib_exe)
        try:
            ldb, target = _attach(fib_exe, listener)
            target.channel.sock.close()
            assert target.wait_for_stop(timeout=0.5) == "reconnecting"
            target.reconnect()
            assert target.state == "stopped"
            assert run_to_exit(ldb, target) == "exited"
        finally:
            runner.join()
            listener.close()

    def test_requests_reconnect_transparently(self, fib_exe):
        """A dead socket under a fetch is absorbed: the session
        reconnects mid-request and the fetch succeeds."""
        nub, runner, listener = _listening_nub(fib_exe)
        try:
            ldb, target = _attach(fib_exe, listener)
            ldb.break_at_stop("fib", 9)
            assert ldb.run_to_stop() == "stopped"
            target.channel.sock.close()
            assert ldb.evaluate("a[4]") == 5        # survives the cut
            assert target.session.reconnects >= 1
            # one resync, one warning mark — not silent, not noisy
            assert len(target.obs.tracer.find("target.reconnect",
                                              level="warning")) == 1
            target.breakpoints.remove_all()
            assert run_to_exit(ldb, target) == "exited"
        finally:
            runner.join()
            listener.close()

    def test_reconnect_without_connector_fails_cleanly(self, fib_exe):
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(fib_exe)
        from repro.ldb.target import TargetError
        with pytest.raises(TargetError):
            target.reconnect()
        target.kill()


class TestServeLoopFuzz:
    """Hostile bytes at the nub: no wire input may crash the serve loop
    (no bare struct.error), and the target survives for the next
    debugger."""

    GARBAGE_TYPES = [0, protocol.MSG_FETCH, protocol.MSG_STORE,
                     protocol.MSG_PLANT, protocol.MSG_UNPLANT,
                     protocol.MSG_BREAKS, protocol.MSG_HELLO,
                     protocol.MSG_DATA, protocol.MSG_ERROR, 99, 200]

    def _fuzz_connection(self, port, seed):
        rng = random.Random(seed)
        sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        sock.settimeout(0.2)
        try:
            for _ in range(rng.randrange(4, 12)):
                if rng.random() < 0.4:
                    # printable junk: type bytes are never controls and
                    # length fields blow past MAX_PAYLOAD -> FrameError
                    junk = bytes(rng.randrange(0x20, 0x7F)
                                 for _ in range(rng.randrange(6, 40)))
                    payload = junk
                else:
                    # a well-framed message with a random type and a
                    # random (usually invalid) payload
                    mtype = rng.choice(self.GARBAGE_TYPES)
                    body = bytes(rng.randrange(256)
                                 for _ in range(rng.randrange(0, 16)))
                    payload = (bytes([mtype])
                               + len(body).to_bytes(4, "little") + body)
                try:
                    sock.sendall(payload)
                except OSError:
                    return  # the nub dropped an unframeable stream: fine
                try:
                    while sock.recv(4096):
                        pass
                except socket.timeout:
                    pass
                except OSError:
                    return
        finally:
            sock.close()

    def test_garbage_never_kills_the_nub(self, fib_exe):
        nub, runner, listener = _listening_nub(fib_exe)
        try:
            for seed in range(6):
                self._fuzz_connection(listener.port, seed)
                assert runner.error is None, runner.error
            # after all that abuse a clean debugger still gets service
            channel = connect("127.0.0.1", listener.port)
            msg = channel.recv(5.0)
            assert msg.mtype == protocol.MSG_SIGNAL
            _signo, _code, ctx = protocol.parse_signal(msg)
            channel.send(protocol.fetch("d", ctx, 4))
            assert channel.recv(5.0).mtype == protocol.MSG_DATA
            channel.send(protocol.kill())
            channel.close()
            runner.join()
            assert runner.error is None, runner.error
        finally:
            listener.close()
