"""Wire-protocol tests: framing, round-trips, validation.

The paper validated its protocol with a model checker [13]; we settle
for exhaustive round-trip property tests.
"""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nub import protocol as p


class TestFraming:
    def test_encode_decode_round_trip(self):
        msg = p.fetch("d", 0x1234, 4)
        decoded, rest = p.decode(p.encode(msg))
        assert decoded == msg and rest == b""

    def test_partial_frame_returns_none(self):
        data = p.encode(p.fetch("d", 0, 4))
        decoded, rest = p.decode(data[:3])
        assert decoded is None and rest == data[:3]

    def test_two_frames_in_buffer(self):
        data = p.encode(p.ok()) + p.encode(p.cont())
        first, rest = p.decode(data)
        second, rest = p.decode(rest)
        assert first.mtype == p.MSG_OK
        assert second.mtype == p.MSG_CONTINUE
        assert rest == b""

    def test_little_endian_length(self):
        """The protocol is little-endian regardless of host order."""
        msg = p.data(b"\x01\x02\x03")
        raw = p.encode(msg)
        assert raw[1:5] == (3).to_bytes(4, "little")


class TestMessages:
    def test_fetch_fields(self):
        space, address, size = p.parse_fetch(p.fetch("c", 0xDEAD, 8))
        assert (space, address, size) == ("c", 0xDEAD, 8)

    def test_store_fields(self):
        space, address, data = p.parse_store(p.store("d", 64, b"\x2a\0\0\0"))
        assert (space, address, data) == ("d", 64, b"\x2a\0\0\0")

    def test_signal_fields(self):
        assert p.parse_signal(p.signal(5, 0, 0x100)) == (5, 0, 0x100)

    def test_exited_negative_status(self):
        assert p.parse_exited(p.exited(-1)) == -1

    def test_error_code(self):
        assert p.parse_error(p.error(p.ERR_BAD_SPACE)) == p.ERR_BAD_SPACE

    def test_bad_fetch_size_rejected(self):
        with pytest.raises(p.ProtocolError):
            p.fetch("d", 0, 3)

    def test_bad_store_size_rejected(self):
        with pytest.raises(p.ProtocolError):
            p.store("d", 0, b"\x00" * 7)

    def test_value_sizes_are_the_abstract_memory_sizes(self):
        """Three integer sizes and three float sizes (Sec. 4.1) — 4 and
        8 bytes shared between the families."""
        assert p.VALUE_SIZES == (1, 2, 4, 8, 10)

    def test_core_protocol_has_no_breakpoint_or_step_messages(self):
        """The key simplification (Sec. 6): the core protocol does not
        mention breakpoints or single-stepping.  PLANT/UNPLANT/BREAKS
        are the paper's own Sec. 7.1 *extension*, optional by design —
        a nub may reject them and the debugger falls back to stores."""
        core = {p.MSG_FETCH, p.MSG_STORE, p.MSG_CONTINUE, p.MSG_DETACH,
                p.MSG_KILL, p.MSG_SIGNAL, p.MSG_EXITED, p.MSG_DATA,
                p.MSG_OK, p.MSG_ERROR}
        extension = {p.MSG_PLANT, p.MSG_UNPLANT, p.MSG_BREAKS,
                     p.MSG_BREAKLIST}
        assert not core & extension
        assert not any("STEP" in n for n in dir(p) if n.startswith("MSG_"))


class TestBlockMessages:
    """The block-transfer extension: raw memory spans in one message."""

    def test_blockfetch_fields(self):
        space, address, length = p.parse_blockfetch(
            p.blockfetch("d", 0x1000, 64))
        assert (space, address, length) == ("d", 0x1000, 64)

    def test_blockstore_fields(self):
        image = bytes(range(16))
        space, address, data = p.parse_blockstore(
            p.blockstore("c", 0x2000, image))
        assert (space, address, data) == ("c", 0x2000, image)

    def test_block_messages_are_extension_types(self):
        core = {p.MSG_FETCH, p.MSG_STORE, p.MSG_CONTINUE, p.MSG_DETACH,
                p.MSG_KILL, p.MSG_SIGNAL, p.MSG_EXITED, p.MSG_DATA,
                p.MSG_OK, p.MSG_ERROR}
        assert not core & {p.MSG_BLOCKFETCH, p.MSG_BLOCKSTORE}
        assert p.FEATURE_BLOCK & p.ALL_FEATURES

    @pytest.mark.parametrize("length", [0, -1, p.MAX_BLOCK + 1])
    def test_bad_blockfetch_length_rejected(self, length):
        with pytest.raises(p.ProtocolError):
            p.blockfetch("d", 0, length)

    @pytest.mark.parametrize("size", [0, p.MAX_BLOCK + 1])
    def test_bad_blockstore_size_rejected(self, size):
        with pytest.raises(p.ProtocolError):
            p.blockstore("d", 0, b"\x00" * size)

    def test_oversized_blockfetch_request_rejected_by_parser(self):
        raw = p.Message(p.MSG_BLOCKFETCH,
                        struct.pack("<BII", ord("d"), 0, p.MAX_BLOCK + 1))
        with pytest.raises(p.ProtocolError):
            p.parse_blockfetch(raw)

    @given(st.sampled_from("cd"), st.integers(0, 2**32 - 1),
           st.integers(1, p.MAX_BLOCK))
    def test_blockfetch_round_trip(self, space, address, length):
        msg, rest = p.decode(p.encode(p.blockfetch(space, address, length)))
        assert rest == b""
        assert p.parse_blockfetch(msg) == (space, address, length)

    @given(st.sampled_from("cd"), st.integers(0, 2**32 - 1),
           st.binary(min_size=1, max_size=40))
    def test_blockstore_round_trip(self, space, address, data):
        msg, rest = p.decode(p.encode(p.blockstore(space, address, data)))
        assert p.parse_blockstore(msg) == (space, address, data)

    def test_blockstore_carries_raw_memory_order(self):
        """The payload is the memory image verbatim — no per-value
        byte-order normalization happens on block messages."""
        image = b"\xde\xad\xbe\xef"
        msg = p.blockstore("d", 0x40, image)
        assert msg.payload[5:] == image


class TestHardening:
    """Satellite of the fault-tolerance work: wire input can never
    surface a raw struct.error, hostile lengths are capped, and the
    negotiated framing extras (CRC trailer, sequence ids) round-trip."""

    # (parser, a valid message to truncate, payload prefix lengths that
    # happen to parse as a shorter valid message — the ambiguity the CRC
    # trailer exists to catch)
    CASES = [
        (p.parse_fetch, p.fetch("d", 0x1000, 4), ()),
        (p.parse_store, p.store("d", 0x1000, b"\x2a\0\0\0"), (6, 7)),
        (p.parse_signal, p.signal(5, 0, 0x100), ()),
        (p.parse_exited, p.exited(0), ()),
        (p.parse_error, p.error(p.ERR_BAD_SPACE), ()),
        (p.parse_hello, p.hello(), ()),
        (p.parse_plant, p.plant(0x2000, b"\0\0\0\x0c"), (5, 6)),
        (p.parse_unplant, p.unplant(0x2000), ()),
        (p.parse_breaklist, p.breaklist([(0x2000, b"\0\0\0\x08")]), (0,)),
        (p.parse_blockfetch, p.blockfetch("d", 0x1000, 64), ()),
        (p.parse_blockstore, p.blockstore("d", 0x1000, b"\x2a\0\0\0"),
         (6, 7, 8)),
    ]

    @pytest.mark.parametrize("parser,msg,ambiguous", CASES,
                             ids=[c[0].__name__ for c in CASES])
    def test_truncated_payload_raises_protocol_error(self, parser, msg,
                                                     ambiguous):
        for cut in range(len(msg.payload)):
            if cut in ambiguous:
                parser(p.Message(msg.mtype, msg.payload[:cut]))
                continue
            with pytest.raises(p.ProtocolError):
                parser(p.Message(msg.mtype, msg.payload[:cut]))

    @pytest.mark.parametrize("parser,msg,_ambiguous", CASES,
                             ids=[c[0].__name__ for c in CASES])
    @given(junk=st.binary(max_size=24))
    def test_random_payload_never_struct_error(self, parser, msg, _ambiguous,
                                               junk):
        try:
            parser(p.Message(msg.mtype, junk))
        except p.ProtocolError:
            pass  # the only exception wire input may raise

    def test_breaklist_truncated_entry(self):
        raw = p.breaklist([(0x2000, b"\0\0\0\x08")]).payload
        with pytest.raises(p.ProtocolError):
            p.parse_breaklist(p.Message(p.MSG_BREAKLIST, raw[:-1]))

    def test_oversized_length_is_frame_error(self):
        hostile = b"\x12" + (p.MAX_PAYLOAD + 1).to_bytes(4, "little")
        with pytest.raises(p.FrameError):
            p.decode(hostile)

    def test_crc_round_trip(self):
        msg = p.fetch("d", 0x1234, 4)
        decoded, rest = p.decode(p.encode(msg, crc=True), crc=True)
        assert decoded == msg and rest == b""

    def test_crc_mismatch_consumes_the_frame(self):
        first = bytearray(p.encode(p.data(b"\x01\x02"), crc=True))
        second = p.encode(p.ok(), crc=True)
        first[6] ^= 0x40  # flip a payload bit
        try:
            p.decode(bytes(first) + second, crc=True)
        except p.CrcError as err:
            assert err.rest == second  # the stream is still framed
        else:
            pytest.fail("corrupt frame passed its CRC")

    def test_seq_header_round_trip(self):
        msg = p.fetch("d", 0x10, 4)
        msg.seq = 77
        decoded, rest = p.decode(p.encode(msg, seq_mode=True), seq_mode=True)
        assert decoded == msg and decoded.seq == 77 and rest == b""

    def test_events_carry_no_seq(self):
        raw = p.encode(p.signal(5, 0, 0x100), seq_mode=True)
        decoded, _ = p.decode(raw, seq_mode=True)
        assert decoded.seq == p.NO_SEQ

    def test_hello_round_trip(self):
        msg = p.hello(p.PROTOCOL_VERSION, p.FEATURE_CRC | p.FEATURE_ACK)
        assert p.parse_hello(msg) == (p.PROTOCOL_VERSION,
                                      p.FEATURE_CRC | p.FEATURE_ACK)


class TestProperties:
    @given(st.sampled_from("cd"), st.integers(0, 2**32 - 1),
           st.sampled_from(p.VALUE_SIZES))
    def test_fetch_round_trip(self, space, address, size):
        msg, rest = p.decode(p.encode(p.fetch(space, address, size)))
        assert rest == b""
        assert p.parse_fetch(msg) == (space, address, size)

    @given(st.sampled_from("cd"), st.integers(0, 2**32 - 1),
           st.binary(min_size=1, max_size=10).filter(
               lambda b: len(b) in p.VALUE_SIZES))
    def test_store_round_trip(self, space, address, data):
        msg, rest = p.decode(p.encode(p.store(space, address, data)))
        assert p.parse_store(msg) == (space, address, data)

    @given(st.integers(1, 31), st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1))
    def test_signal_round_trip(self, signo, code, ctx):
        msg, _rest = p.decode(p.encode(p.signal(signo, code, ctx)))
        assert p.parse_signal(msg) == (signo, code, ctx)

    @given(st.binary(max_size=64))
    def test_concatenated_stream_reassembles(self, junk_payload):
        msgs = [p.ok(), p.data(junk_payload), p.cont()]
        stream = b"".join(p.encode(m) for m in msgs)
        out = []
        while stream:
            msg, stream = p.decode(stream)
            assert msg is not None
            out.append(msg)
        assert out == msgs

    @given(st.binary(max_size=48), st.booleans(), st.booleans(),
           st.data())
    def test_split_stream_reassembles_in_every_mode(self, payload, crc,
                                                    seq_mode, data):
        """Frames survive arbitrary segmentation under all framing modes
        — the property Channel.recv depends on."""
        msgs = [p.data(payload), p.ok()]
        if seq_mode:
            msgs[0].seq = 5
            msgs[1].seq = 6
        stream = b"".join(p.encode(m, crc=crc, seq_mode=seq_mode)
                          for m in msgs)
        cut = data.draw(st.integers(0, len(stream)))
        buffer, out = b"", []
        for chunk in (stream[:cut], stream[cut:]):
            buffer += chunk
            while True:
                msg, buffer = p.decode(buffer, crc=crc, seq_mode=seq_mode)
                if msg is None:
                    break
                out.append(msg)
        assert buffer == b"" and out == msgs

    @given(st.binary(max_size=20))
    def test_truncated_frame_never_decodes(self, payload):
        raw = p.encode(p.data(payload))
        for cut in range(len(raw)):
            msg, rest = p.decode(raw[:cut])
            assert msg is None and rest == raw[:cut]
