"""Full-jitter retry backoff, the bounded connect() dial, and the
fault-spec round-trip — the reproducibility half of the robustness
story: every retry sleep and every injected fault replays from a seed.
"""

import re
import socket
import time

import pytest

from repro.nub.channel import connect
from repro.nub.faults import FaultSchedule
from repro.nub.session import RetryPolicy


# -- RetryPolicy: capped exponential with full jitter ----------------------

def test_jitter_is_seeded_and_reproducible():
    a = RetryPolicy(seed=42)
    b = RetryPolicy(seed=42)
    assert [a.delay(n) for n in range(8)] == [b.delay(n) for n in range(8)]
    c = RetryPolicy(seed=43)
    assert [a.delay(n) for n in range(8)] != [c.delay(n) for n in range(8)]


def test_jitter_stays_inside_the_cap():
    policy = RetryPolicy(max_attempts=10, base_delay=0.02, max_delay=0.5,
                         multiplier=2.0, jitter=1.0, seed=7)
    for attempt in range(64):
        cap = min(0.5, 0.02 * 2.0 ** attempt)
        for _ in range(50):
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= cap


def test_jitter_spreads_the_window():
    # full jitter exists to de-synchronize a fleet: across many draws
    # the delays must cover the window, not cluster at the cap
    policy = RetryPolicy(base_delay=0.5, max_delay=0.5, jitter=1.0, seed=3)
    draws = [policy.delay(0) for _ in range(200)]
    assert min(draws) < 0.1
    assert max(draws) > 0.4


def test_zero_jitter_is_pure_exponential():
    policy = RetryPolicy(base_delay=0.02, max_delay=10.0, multiplier=2.0,
                         jitter=0.0, seed=1)
    assert policy.delay(0) == pytest.approx(0.02)
    assert policy.delay(1) == pytest.approx(0.04)
    assert policy.delay(4) == pytest.approx(0.32)


def test_partial_jitter_keeps_a_floor():
    # jitter=0.5: uniform over [cap/2, cap]
    policy = RetryPolicy(base_delay=0.4, max_delay=0.4, jitter=0.5, seed=9)
    draws = [policy.delay(0) for _ in range(100)]
    assert all(0.2 <= d <= 0.4 for d in draws)


def test_jitter_bounds_are_validated():
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)


# -- connect(): bounded dial with one consistent failure shape -------------

def _dead_port():
    """A port with no listener behind it."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def test_connect_retries_then_fails_with_one_message_shape():
    started = time.monotonic()
    with pytest.raises(TimeoutError) as err:
        connect("127.0.0.1", _dead_port(), timeout=0.5, attempts=3,
                base_delay=0.02)
    elapsed = time.monotonic() - started
    assert elapsed < 5.0  # bounded by the overall budget, not per-dial
    assert re.match(
        r"no connection to 127\.0\.0\.1:\d+ within [\d.]+ seconds "
        r"\(3 attempts\): .+", str(err.value))


def test_connect_timeout_budget_is_overall():
    # even with absurd attempt counts the single budget bounds the dial
    started = time.monotonic()
    with pytest.raises(TimeoutError):
        connect("127.0.0.1", _dead_port(), timeout=0.3, attempts=50,
                base_delay=0.05)
    assert time.monotonic() - started < 3.0


def test_connect_succeeds_on_a_live_listener():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    try:
        channel = connect("127.0.0.1", port, timeout=5.0)
        assert channel.sock is not None
        channel.close()
    finally:
        listener.close()


# -- FaultSchedule: spec round-trip -----------------------------------------

def test_fault_spec_round_trips():
    for spec in (
        {"seed": 3, "drop": 0.25, "limit": 5},
        {"seed": 9, "kill_after": 12},
        {"seed": 1, "corrupt": 0.5, "duplicate": 0.25, "latency": 0.002},
        {"seed": 0, "script": ["ok", "drop", "ok", "kill"]},
        {"seed": 4, "drop": 1.0, "after": 3},
    ):
        assert FaultSchedule.from_spec(spec).spec() == spec


def test_fault_spec_rejects_unknown_keys():
    with pytest.raises(ValueError) as err:
        FaultSchedule.from_spec({"seed": 1, "dorp": 0.5})
    assert "dorp" in str(err.value)


def test_fault_after_spares_early_frames():
    schedule = FaultSchedule(seed=1, drop=1.0, after=4)
    actions = [schedule.next_action() for _ in range(8)]
    assert actions[:4] == ["ok"] * 4
    assert actions[4:] == ["drop"] * 4


def test_same_seed_same_fault_sequence():
    a = FaultSchedule(seed=11, drop=0.3, corrupt=0.3, duplicate=0.2)
    b = FaultSchedule(seed=11, drop=0.3, corrupt=0.3, duplicate=0.2)
    assert ([a.next_action() for _ in range(64)]
            == [b.next_action() for _ in range(64)])
