"""The time-travel protocol extension (FEATURE_TIMETRAVEL): message
constructors and parsers, the nub-side CHECKPOINT/RESTORE/DROPCKPT/
ICOUNT/RUNTO handlers, feature negotiation, and the legacy fallback."""

import pytest

from repro.cc.driver import compile_and_link
from repro.machines import CODE_ICOUNT, Process, SIGTRAP
from repro.nub import Nub, NubRunner, pair, protocol
from repro.nub.protocol import ProtocolError

SAFE = "int tag = 99;\nint main(void) { return 3; }\n"


def start_nub(src=SAFE, arch="rmips", **kw):
    exe = compile_and_link({"t.c": src}, arch, debug=True)
    debugger_end, nub_end = pair()
    process = Process(exe)
    nub = Nub(process, channel=nub_end, stop_at_entry=True, **kw)
    runner = NubRunner(nub).start()
    return exe, process, nub, runner, debugger_end


def transact(chan, msg):
    chan.send(msg)
    return chan.recv(10.0)


def resume_past_pause(chan, ctx=Nub.CONTEXT_ADDR, advance=4):
    """Bump the saved pc over the trap no-op (what a debugger's resume
    does) without sending the resume itself."""
    chan.send(protocol.fetch("d", ctx, 4))
    pc = int.from_bytes(chan.recv(10.0).payload, "little")
    chan.send(protocol.store("d", ctx, (pc + advance).to_bytes(4, "little")))
    chan.recv(10.0)


class TestMessages:
    def test_checkpoint_is_bare(self):
        msg = protocol.checkpoint()
        assert msg.mtype == protocol.MSG_CHECKPOINT
        assert msg.payload == b""

    def test_restore_roundtrip(self):
        assert protocol.parse_restore(protocol.restore(7)) == 7

    def test_drop_checkpoint_roundtrip(self):
        msg = protocol.drop_checkpoint(9)
        assert msg.mtype == protocol.MSG_DROPCKPT
        assert protocol.parse_drop_checkpoint(msg) == 9

    def test_icount_is_bare(self):
        assert protocol.icount().payload == b""

    def test_runto_roundtrip_is_64_bit(self):
        big = 1 << 40  # icounts outgrow 32 bits on long runs
        assert protocol.parse_runto(protocol.runto(big)) == big

    def test_runto_rejects_negative(self):
        with pytest.raises(ProtocolError):
            protocol.runto(-1)

    def test_ckpt_roundtrip(self):
        msg = protocol.ckpt(3, 1 << 40)
        assert protocol.parse_ckpt(msg) == (3, 1 << 40)

    def test_ckpt_carries_no_ckpt_sentinel(self):
        cid, icount = protocol.parse_ckpt(protocol.ckpt(protocol.NO_CKPT, 5))
        assert cid == protocol.NO_CKPT
        assert icount == 5

    def test_runto_survives_wire_framing(self):
        data = protocol.encode(protocol.runto(123456789))
        msg, rest = protocol.decode(data)
        assert rest == b""
        assert protocol.parse_runto(msg) == 123456789

    def test_messages_have_names(self):
        for mtype in (protocol.MSG_CHECKPOINT, protocol.MSG_RESTORE,
                      protocol.MSG_DROPCKPT, protocol.MSG_ICOUNT,
                      protocol.MSG_RUNTO, protocol.MSG_CKPT):
            assert mtype in protocol._NAMES


class TestNegotiation:
    def test_hello_accepts_timetravel(self):
        exe, process, nub, runner, chan = start_nub()
        chan.recv(10.0)  # the entry pause
        reply = transact(chan, protocol.hello(
            features=protocol.FEATURE_TIMETRAVEL))
        _version, accepted = protocol.parse_hello(reply)
        assert accepted & protocol.FEATURE_TIMETRAVEL
        chan.send(protocol.kill())
        runner.join()

    def test_legacy_nub_masks_the_feature(self):
        exe, process, nub, runner, chan = start_nub(timetravel_extension=False)
        chan.recv(10.0)
        reply = transact(chan, protocol.hello(
            features=protocol.FEATURE_TIMETRAVEL))
        _version, accepted = protocol.parse_hello(reply)
        assert not accepted & protocol.FEATURE_TIMETRAVEL
        chan.send(protocol.kill())
        runner.join()


class TestNubHandlers:
    def test_checkpoint_restore_rewinds_the_target(self):
        exe, process, nub, runner, chan = start_nub()
        chan.recv(10.0)  # the entry pause
        tag = exe.symbols["_tag"]

        # where are we?
        cid, ic0 = protocol.parse_ckpt(transact(chan, protocol.icount()))
        assert cid == protocol.NO_CKPT

        reply = transact(chan, protocol.checkpoint())
        assert reply.mtype == protocol.MSG_CKPT
        cid, at = protocol.parse_ckpt(reply)
        assert at == ic0

        # scribble on the target, then rewind
        transact(chan, protocol.store("d", tag, (5).to_bytes(4, "little")))
        data = transact(chan, protocol.fetch("d", tag, 4))
        assert int.from_bytes(data.payload, "little") == 5

        reply = transact(chan, protocol.restore(cid))
        rid, ric = protocol.parse_ckpt(reply)
        assert (rid, ric) == (cid, ic0)
        data = transact(chan, protocol.fetch("d", tag, 4))
        assert int.from_bytes(data.payload, "little") == 99

        chan.send(protocol.kill())
        runner.join()

    def test_restore_unknown_id_is_an_error(self):
        exe, process, nub, runner, chan = start_nub()
        chan.recv(10.0)
        reply = transact(chan, protocol.restore(42))
        assert reply.mtype == protocol.MSG_ERROR
        assert protocol.parse_error(reply) == protocol.ERR_BAD_CHECKPOINT
        chan.send(protocol.kill())
        runner.join()

    def test_drop_is_idempotent_but_restore_after_drop_fails(self):
        exe, process, nub, runner, chan = start_nub()
        chan.recv(10.0)
        cid, _ = protocol.parse_ckpt(transact(chan, protocol.checkpoint()))
        assert transact(chan, protocol.drop_checkpoint(cid)).mtype == \
            protocol.MSG_OK
        assert transact(chan, protocol.drop_checkpoint(cid)).mtype == \
            protocol.MSG_OK  # dropping twice is not an error
        reply = transact(chan, protocol.restore(cid))
        assert protocol.parse_error(reply) == protocol.ERR_BAD_CHECKPOINT
        chan.send(protocol.kill())
        runner.join()

    def test_runto_stops_with_the_icount_code(self):
        exe, process, nub, runner, chan = start_nub()
        chan.recv(10.0)  # the entry pause
        _, ic0 = protocol.parse_ckpt(transact(chan, protocol.icount()))
        resume_past_pause(chan)
        chan.send(protocol.runto(ic0 + 10))
        msg = chan.recv(10.0)
        signo, code, _ctx = protocol.parse_signal(msg)
        assert signo == SIGTRAP
        assert code == CODE_ICOUNT
        _, ic1 = protocol.parse_ckpt(transact(chan, protocol.icount()))
        assert ic1 == ic0 + 10
        chan.send(protocol.kill())
        runner.join()

    def test_retried_checkpoint_reuses_the_snapshot(self):
        # a CHECKPOINT whose reply was lost gets retried with the same
        # sequence id; the nub must answer again, not mint a new image
        exe, process, nub, runner, chan = start_nub()
        chan.recv(10.0)
        reply = transact(chan, protocol.hello(
            features=protocol.FEATURE_SEQ | protocol.FEATURE_TIMETRAVEL))
        _, accepted = protocol.parse_hello(reply)
        assert accepted & protocol.FEATURE_SEQ
        chan.seq_mode = True

        first = protocol.checkpoint()
        first.seq = 7
        cid_a, _ = protocol.parse_ckpt(transact(chan, first))
        retry = protocol.checkpoint()
        retry.seq = 7
        cid_b, _ = protocol.parse_ckpt(transact(chan, retry))
        assert cid_b == cid_a
        assert len(nub.checkpoints) == 1

        fresh = protocol.checkpoint()
        fresh.seq = 8
        cid_c, _ = protocol.parse_ckpt(transact(chan, fresh))
        assert cid_c != cid_a
        assert len(nub.checkpoints) == 2

        kill = protocol.kill()
        kill.seq = 9
        chan.send(kill)
        runner.join()


class TestLegacyNub:
    def test_every_time_travel_message_is_unsupported(self):
        exe, process, nub, runner, chan = start_nub(timetravel_extension=False)
        chan.recv(10.0)
        for msg in (protocol.checkpoint(), protocol.restore(1),
                    protocol.drop_checkpoint(1), protocol.icount(),
                    protocol.runto(100)):
            reply = transact(chan, msg)
            assert reply.mtype == protocol.MSG_ERROR
            assert protocol.parse_error(reply) == protocol.ERR_UNSUPPORTED
        chan.send(protocol.kill())
        runner.join()

    def test_forward_debugging_still_works(self):
        exe, process, nub, runner, chan = start_nub(timetravel_extension=False)
        chan.recv(10.0)
        tag = exe.symbols["_tag"]
        data = transact(chan, protocol.fetch("d", tag, 4))
        assert int.from_bytes(data.payload, "little") == 99
        resume_past_pause(chan)
        chan.send(protocol.cont())
        msg = chan.recv(10.0)
        assert msg.mtype == protocol.MSG_EXITED
        assert protocol.parse_exited(msg) == 3
        runner.join()
