"""Tests for the shared PostScript prelude: the printer procedures.

Each printer procedure takes (memory, location, typedict) and prints a
value — the protocol from paper Sec. 2.
"""

import pytest

from .fakes import FakeMemory, loc


def int_type(ps):
    return "<< /decl (int %s) /printer {INT} >>"


class TestScalarPrinters:
    def test_int(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, -5))
        out = ps.run("M 0 (d) Absolute << /printer {INT} >> print Newline")
        assert out == "-5\n"

    def test_uint_wraps_negative(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, -1))
        out = ps.run("M 0 (d) Absolute << /printer {UINT} >> print Newline")
        assert out == "4294967295\n"

    def test_short(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, -7))
        out = ps.run("M 0 (d) Absolute << /printer {SHORT} >> print Newline")
        assert out == "-7\n"

    def test_char_printable(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, ord("A")))
        out = ps.run("M 0 (d) Absolute << /printer {CHAR} >> print Newline")
        assert out == "'A'\n"

    def test_char_unprintable_prints_code(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, 7))
        out = ps.run("M 0 (d) Absolute << /printer {CHAR} >> print Newline")
        assert out == "7\n"

    def test_double(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, 3.25))
        out = ps.run("M 0 (d) Absolute << /printer {DOUBLE} >> print Newline")
        assert out == "3.25\n"

    def test_ptr_hex(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, 0x23D8))
        out = ps.run("M 0 (d) Absolute << /printer {PTR} >> print Newline")
        assert out == "0x23d8\n"

    def test_ptr_with_procname(self, ps):
        """With a loader table available the host installs ProcName and
        function pointers print by name (paper Sec. 7)."""
        from repro.postscript import String

        def proc_name(interp):
            addr = interp.pop_int()
            interp.push(String("fib") if addr == 0x2270 else None)

        ps.interp.defop("ProcName", proc_name)
        ps.interp.define("M", FakeMemory().put("d", 0, 0x2270))
        out = ps.run("M 0 (d) Absolute << /printer {PTR} >> print Newline")
        assert out == "fib\n"


class TestArrayPrinter:
    def make_array_type(self, ps, elemsize=4, arraysize=20):
        ps.interp.run("""
          /ElemType << /decl (int %%s) /printer {INT} >> def
          /ArrType <<
            /decl (int %%s[%d])
            /printer {ARRAY}
            /elemsize %d
            /arraysize %d
            /elemtype ElemType
          >> def
        """ % (arraysize // elemsize, elemsize, arraysize))

    def test_small_array(self, ps):
        mem = FakeMemory()
        for i, v in enumerate([1, 1, 2, 3, 5]):
            mem.put("d", 100 + 4 * i, v)
        ps.interp.define("M", mem)
        self.make_array_type(ps, elemsize=4, arraysize=20)
        out = ps.run("M 100 (d) Absolute ArrType print Newline")
        assert out == "{1, 1, 2, 3, 5}\n"

    def test_array_ellipsis_past_limit(self, ps):
        """More elements than ArrayLimit print an ellipsis (paper Sec. 2)."""
        mem = FakeMemory()
        for i in range(16):
            mem.put("d", 4 * i, i)
        ps.interp.define("M", mem)
        self.make_array_type(ps, elemsize=4, arraysize=64)
        out = ps.run("M 0 (d) Absolute ArrType print Newline")
        assert "..." in out
        assert "15" not in out

    def test_array_respects_custom_limit(self, ps):
        mem = FakeMemory()
        for i in range(8):
            mem.put("d", 4 * i, i)
        ps.interp.define("M", mem)
        self.make_array_type(ps, elemsize=4, arraysize=32)
        ps.interp.run("/ArrayLimit 3 def")
        out = ps.run("M 0 (d) Absolute ArrType print Newline")
        assert out == "{0, 1, 2, ...}\n"

    def test_long_array_line_breaks(self, ps):
        """A potential line break precedes each element after the first."""
        ps.interp.pretty.width = 24
        mem = FakeMemory()
        for i in range(10):
            mem.put("d", 4 * i, 1000000 + i)
        ps.interp.define("M", mem)
        self.make_array_type(ps, elemsize=4, arraysize=40)
        out = ps.run("M 0 (d) Absolute ArrType print Newline")
        body_lines = out.rstrip("\n").split("\n")
        assert len(body_lines) > 1

    def test_array_of_shorts_uses_elemsize(self, ps):
        mem = FakeMemory()
        for i, v in enumerate([10, 20, 30]):
            mem.put("d", 2 * i, v)
        ps.interp.define("M", mem)
        ps.interp.run("""
          /ArrType << /printer {ARRAY} /elemsize 2 /arraysize 6
                      /elemtype << /printer {SHORT} >> >> def
        """)
        out = ps.run("M 0 (d) Absolute ArrType print Newline")
        assert out == "{10, 20, 30}\n"


class TestStructPrinter:
    def test_struct_fields(self, ps):
        mem = FakeMemory().put("d", 0, 3).put("d", 4, 4)
        ps.interp.define("M", mem)
        ps.interp.run("""
          /IntT << /printer {INT} >> def
          /PointT <<
            /printer {STRUCT}
            /fields [
              << /name (x) /offset 0 /ftype IntT >>
              << /name (y) /offset 4 /ftype IntT >>
            ]
          >> def
        """)
        out = ps.run("M 0 (d) Absolute PointT print Newline")
        assert out == "{x = 3, y = 4}\n"

    def test_nested_struct(self, ps):
        mem = FakeMemory().put("d", 0, 1).put("d", 4, 2).put("d", 8, 3)
        ps.interp.define("M", mem)
        ps.interp.run("""
          /IntT << /printer {INT} >> def
          /InnerT << /printer {STRUCT}
            /fields [ << /name (a) /offset 0 /ftype IntT >>
                      << /name (b) /offset 4 /ftype IntT >> ] >> def
          /OuterT << /printer {STRUCT}
            /fields [ << /name (in) /offset 0 /ftype InnerT >>
                      << /name (c) /offset 8 /ftype IntT >> ] >> def
        """)
        out = ps.run("M 0 (d) Absolute OuterT print Newline")
        assert out == "{in = {a = 1, b = 2}, c = 3}\n"

    def test_struct_at_shifted_base(self, ps):
        mem = FakeMemory().put("d", 100, 9).put("d", 104, 8)
        ps.interp.define("M", mem)
        ps.interp.run("""
          /T << /printer {STRUCT}
            /fields [ << /name (p) /offset 0 /ftype << /printer {INT} >> >>
                      << /name (q) /offset 4 /ftype << /printer {INT} >> >> ] >> def
        """)
        out = ps.run("M 100 (d) Absolute T print Newline")
        assert out == "{p = 9, q = 8}\n"


class TestEnumAndStringPrinters:
    def test_enum_named_value(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, 1))
        ps.interp.run("/ColorT << /printer {ENUM} "
                      "/enumtags << 0 (RED) 1 (GREEN) 2 (BLUE) >> >> def")
        out = ps.run("M 0 (d) Absolute ColorT print Newline")
        assert out == "GREEN\n"

    def test_enum_unnamed_value_prints_number(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, 42))
        ps.interp.run("/ColorT << /printer {ENUM} /enumtags << 0 (RED) >> >> def")
        out = ps.run("M 0 (d) Absolute ColorT print Newline")
        assert out == "42\n"

    def test_cstring_follows_pointer(self, ps):
        mem = FakeMemory().put("d", 0, 500).put_cstring("d", 500, "hi there")
        ps.interp.define("M", mem)
        out = ps.run("M 0 (d) Absolute << /printer {CSTRING} >> print Newline")
        assert out == '"hi there"\n'

    def test_cstring_null_pointer(self, ps):
        ps.interp.define("M", FakeMemory().put("d", 0, 0))
        out = ps.run("M 0 (d) Absolute << /printer {CSTRING} >> print Newline")
        assert out == "NULL\n"


class TestArchDicts:
    @pytest.mark.parametrize("arch", ["rmips", "rsparc", "rm68k", "rvax"])
    def test_arch_dict_defines_md_names(self, ps, arch):
        from repro.postscript import load_arch_dict
        d = load_arch_dict(ps.interp, arch)
        for name in ("Regset0", "Regset1", "Local", "RegNames", "PC"):
            assert name in d, "%s missing from %s" % (name, arch)

    def test_arch_dicts_not_left_on_stack(self, ps):
        from repro.postscript import load_arch_dict
        depth = len(ps.interp.dstack)
        load_arch_dict(ps.interp, "rmips")
        assert len(ps.interp.dstack) == depth

    def test_arch_switch_rebinds(self, ps):
        """Pushing a different arch dict rebinds Regset names (Sec. 5)."""
        from repro.postscript import load_arch_dict
        mips = load_arch_dict(ps.interp, "rmips")
        m68k = load_arch_dict(ps.interp, "rm68k")
        ps.interp.push_dict(mips)
        assert ps.eval("RegNames 29 get").text == "sp"
        ps.interp.pop_dict_stack()
        ps.interp.push_dict(m68k)
        assert ps.eval("RegNames 15 get").text == "sp"
        assert ps.eval("RegNames 0 get").text == "d0"

    def test_local_addressing(self, ps):
        """`off Local` computes a data-space location off FrameBase."""
        from repro.postscript import load_arch_dict
        from repro.postscript.memops import Location
        mips = load_arch_dict(ps.interp, "rmips")
        ps.interp.push_dict(mips)
        ps.interp.define("FrameBase", 0x1000)
        assert ps.eval("-8 Local") == Location.absolute("d", 0xFF8)

    def test_unknown_arch_raises(self, ps):
        from repro.postscript import PSError, load_arch_dict
        with pytest.raises(PSError):
            load_arch_dict(ps.interp, "pdp11")
