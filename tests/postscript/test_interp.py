"""Interpreter execution tests: stacks, dictionaries, control, stopped."""

import io

import pytest

from repro.postscript import Interp, Name, PSArray, PSDict, PSError, Reader, String, new_interp
from repro.postscript.objects import PSStop


class TestStacks:
    def test_literal_pushes(self, bare_ps):
        assert bare_ps.eval("42") == 42

    def test_dup_pop_exch(self, bare_ps):
        bare_ps.interp.run("1 2 exch")
        assert bare_ps.interp.pop_n(2) == [2, 1]

    def test_copy(self, bare_ps):
        bare_ps.interp.run("1 2 3 2 copy")
        assert bare_ps.interp.pop_n(5) == [1, 2, 3, 2, 3]

    def test_index(self, bare_ps):
        assert bare_ps.eval("10 20 30 2 index") == 10

    def test_roll_positive(self, bare_ps):
        bare_ps.interp.run("1 2 3 3 1 roll")
        assert bare_ps.interp.pop_n(3) == [3, 1, 2]

    def test_roll_negative(self, bare_ps):
        """The 3 -1 roll idiom from the paper's ARRAY procedure."""
        bare_ps.interp.run("1 2 3 3 -1 roll")
        assert bare_ps.interp.pop_n(3) == [2, 3, 1]

    def test_stackunderflow(self, bare_ps):
        with pytest.raises(PSError) as info:
            bare_ps.interp.run("pop")
        assert info.value.errname == "stackunderflow"

    def test_counttomark(self, bare_ps):
        assert bare_ps.eval("mark 1 2 3 counttomark") == 3

    def test_cleartomark(self, bare_ps):
        bare_ps.interp.run("7 mark 1 2 cleartomark")
        assert bare_ps.interp.pop() == 7
        assert bare_ps.interp.ostack == []


class TestDictionaries:
    def test_def_and_lookup(self, bare_ps):
        assert bare_ps.eval("/x 5 def x") == 5

    def test_dict_literal(self, bare_ps):
        d = bare_ps.eval("<< /name (i) /sourcey 6 >>")
        assert isinstance(d, PSDict)
        assert d["name"].text == "i"
        assert d["sourcey"] == 6

    def test_nested_dict_literal(self, bare_ps):
        """Symbol-table entries nest type dictionaries (paper Sec. 2)."""
        d = bare_ps.eval("<< /type << /decl (int %s) /printer {INT} >> >>")
        inner = d["type"]
        assert inner["decl"].text == "int %s"
        assert isinstance(inner["printer"], PSArray)

    def test_begin_end_scoping(self, bare_ps):
        bare_ps.interp.run("/x 1 def 5 dict begin /x 2 def x end x")
        assert bare_ps.interp.pop_n(2) == [2, 1]

    def test_name_resolution_top_down(self, bare_ps):
        """Pushing a dict rebinds names — ldb's arch-switching mechanism."""
        bare_ps.interp.run("/width 32 def")
        arch = PSDict()
        arch["width"] = 64
        bare_ps.interp.push_dict(arch)
        assert bare_ps.eval("width") == 64
        bare_ps.interp.pop_dict_stack()
        assert bare_ps.eval("width") == 32

    def test_store_updates_defining_dict(self, bare_ps):
        bare_ps.interp.run("/x 1 def 5 dict begin /x 2 store end x")
        assert bare_ps.interp.pop() == 2

    def test_known(self, bare_ps):
        assert bare_ps.eval("<< /a 1 >> /a known") is True
        assert bare_ps.eval("<< /a 1 >> /b known") is False

    def test_where_found(self, bare_ps):
        bare_ps.interp.run("/y 9 def /y where")
        assert bare_ps.interp.pop() is True
        assert isinstance(bare_ps.interp.pop(), PSDict)

    def test_where_not_found(self, bare_ps):
        assert bare_ps.eval("/nonesuch where") is False

    def test_undefined_name_raises(self, bare_ps):
        with pytest.raises(PSError) as info:
            bare_ps.interp.run("nonesuch")
        assert info.value.errname == "undefined"

    def test_string_and_name_keys_equal(self, bare_ps):
        assert bare_ps.eval("<< (k) 1 >> /k get") == 1

    def test_undef(self, bare_ps):
        assert bare_ps.eval("<< /a 1 >> dup /a undef /a known") is False


class TestControl:
    def test_if_true(self, bare_ps):
        assert bare_ps.eval("true { 1 } if") == 1

    def test_if_false_skips(self, bare_ps):
        bare_ps.interp.run("false { 1 } if")
        assert bare_ps.interp.ostack == []

    def test_ifelse(self, bare_ps):
        assert bare_ps.eval("1 2 lt { (yes) } { (no) } ifelse").text == "yes"

    def test_for_accumulates(self, bare_ps):
        assert bare_ps.eval("0 1 1 4 { add } for") == 10

    def test_for_with_step(self, bare_ps):
        """The ARRAY loop steps by element size (paper Sec. 2)."""
        bare_ps.interp.run("0 4 12 { } for")
        assert bare_ps.interp.pop_n(4) == [0, 4, 8, 12]

    def test_for_downward(self, bare_ps):
        bare_ps.interp.run("3 -1 1 { } for")
        assert bare_ps.interp.pop_n(3) == [3, 2, 1]

    def test_exit_from_for(self, bare_ps):
        assert bare_ps.eval("0 1 1 100 { dup 5 ge { pop exit } if add } for") == 10

    def test_repeat(self, bare_ps):
        assert bare_ps.eval("0 5 { 1 add } repeat") == 5

    def test_loop_with_exit(self, bare_ps):
        assert bare_ps.eval("0 { 1 add dup 7 ge { exit } if } loop") == 7

    def test_forall_array(self, bare_ps):
        assert bare_ps.eval("0 [1 2 3 4] { add } forall") == 10

    def test_forall_string(self, bare_ps):
        assert bare_ps.eval("0 (AB) { add } forall") == ord("A") + ord("B")

    def test_forall_dict(self, bare_ps):
        assert bare_ps.eval("0 << /a 1 /b 2 >> { exch pop add } forall") == 3

    def test_forall_exit(self, bare_ps):
        assert bare_ps.eval("[1 2 3] { dup 2 eq { exit } if pop } forall") == 2

    def test_exec_procedure(self, bare_ps):
        assert bare_ps.eval("{ 2 3 mul } exec") == 6

    def test_nested_proc_deferred(self, bare_ps):
        """Inside a body, inner procedures are pushed, not run."""
        inner = bare_ps.eval("{ { 99 } } exec")
        assert isinstance(inner, PSArray) and not inner.literal

    def test_stop_and_stopped(self, bare_ps):
        assert bare_ps.eval("{ 1 stop 2 } stopped") is True
        assert bare_ps.interp.pop() == 1

    def test_stopped_false_on_success(self, bare_ps):
        assert bare_ps.eval("{ 1 } stopped") is False

    def test_stopped_catches_errors(self, bare_ps):
        assert bare_ps.eval("{ nonesuch } stopped") is True

    def test_uncaught_stop_raises(self, bare_ps):
        with pytest.raises(PSStop):
            bare_ps.interp.run("stop")

    def test_bind_replaces_operators(self, bare_ps):
        proc = bare_ps.eval("{ 1 2 add } bind")
        from repro.postscript.objects import Operator
        assert isinstance(proc.items[2], Operator)

    def test_bind_leaves_unknown_names(self, bare_ps):
        proc = bare_ps.eval("{ futuredef } bind")
        assert isinstance(proc.items[0], Name)


class TestExecutableStringsAndReaders:
    def test_cvx_string_executes(self, bare_ps):
        """Deferred lexical analysis: quoted code runs via cvx (Sec. 5)."""
        assert bare_ps.eval("(3 4 mul) cvx exec") == 12

    def test_cvx_stopped_on_reader(self, bare_ps):
        """The expression-server drive loop: cvx stopped on a pipe."""
        pipe = io.StringIO("1 2 add\nstop\nnever run\n")
        bare_ps.interp.push(Reader(pipe, "pipe"))
        assert bare_ps.eval("cvx stopped") is True
        assert bare_ps.interp.pop() == 3

    def test_reader_stops_midstream(self, bare_ps):
        """After stop, the rest of the stream is unread."""
        pipe = io.StringIO("10 stop\n20\n")
        bare_ps.interp.push(Reader(pipe, "pipe"))
        bare_ps.interp.run("cvx stopped pop")
        assert bare_ps.interp.pop() == 10
        assert "20" in pipe.read()

    def test_literal_reader_pushes(self, bare_ps):
        reader = Reader(io.StringIO("1"))
        bare_ps.interp.push(reader)
        bare_ps.interp.run("dup")
        assert bare_ps.interp.pop() is reader


class TestDefinedProcedures:
    def test_procedure_runs_when_name_executed(self, bare_ps):
        assert bare_ps.eval("/double { 2 mul } def 21 double") == 42

    def test_recursive_procedure(self, bare_ps):
        bare_ps.interp.run(
            "/fact { dup 1 le { pop 1 } { dup 1 sub fact mul } ifelse } def")
        assert bare_ps.eval("6 fact") == 720

    def test_load_pushes_without_running(self, bare_ps):
        proc = bare_ps.eval("/p { 1 } def /p load")
        assert isinstance(proc, PSArray) and not proc.literal

    def test_name_bound_to_constant(self, bare_ps):
        assert bare_ps.eval("/k 13 def k") == 13

    def test_literal_name_executed_pushes_itself(self, bare_ps):
        obj = bare_ps.eval("/lit")
        assert isinstance(obj, Name) and obj.literal


class TestPaperExamples:
    def test_symbol_table_entry_shape(self, bare_ps):
        """The S10 entry for `i` from paper Sec. 2 parses and builds."""
        bare_ps.interp.run("""
          /Regset0 (r) def
          /S10 <<
            /name (i)
            /type << /decl (int %s) /printer {INT} >>
            /sourcefile (fib.c) /sourcey 6 /sourcex 8
            /kind (variable)
            /where 30 Regset0 Absolute
            /uplink null
          >> def
        """)
        entry = bare_ps.eval("S10")
        assert entry["name"].text == "i"
        assert entry["kind"].text == "variable"
        where = entry["where"]
        assert where.space == "r" and where.offset == 30

    def test_loader_table_shape(self, bare_ps):
        """The loader table for fib from paper Sec. 3."""
        table = bare_ps.eval("""
          <<
            /anchormap << /_stanchor__V2935334b_e288a 16#000023d8 >>
            /proctable [ 16#00002270 (_fib) 16#00002374 (_main) ]
          >>
        """)
        assert table["anchormap"]["_stanchor__V2935334b_e288a"] == 0x23D8
        assert table["proctable"][0] == 0x2270
        assert table["proctable"][1].text == "_fib"
