"""Interpreter error-path tests: every error becomes a host exception
(paper Sec. 5: "interpreter errors raise Modula-3 exceptions")."""

import pytest

from repro.postscript import PSError
from repro.postscript.objects import PSStop


def expect_error(interp, source, errname):
    with pytest.raises(PSError) as info:
        interp.run(source)
    assert info.value.errname == errname, info.value


class TestTypeErrors:
    @pytest.mark.parametrize("source", [
        "(a) 1 add",
        "true 1 add",
        "1 { } add",
        "1 2 begin",
        "5 load",
        "1 true and",
        "(a) not",
        "1 forall",
        "(abc) (x) put",
        "1 2 get",
    ])
    def test_typecheck_like_errors(self, bare_ps, source):
        with pytest.raises(PSError):
            bare_ps.interp.run(source)

    def test_invalidaccess_on_string_put(self, bare_ps):
        expect_error(bare_ps.interp, "(abc) 0 65 put", "invalidaccess")


class TestStackErrors:
    @pytest.mark.parametrize("source", [
        "pop", "exch", "add", "1 add", "def", "/x def", "dup",
    ])
    def test_stackunderflow(self, bare_ps, source):
        expect_error(bare_ps.interp, source, "stackunderflow")

    def test_counttomark_without_mark(self, bare_ps):
        expect_error(bare_ps.interp, "1 2 counttomark", "unmatchedmark")

    def test_dictstackunderflow(self, bare_ps):
        expect_error(bare_ps.interp, "end", "dictstackunderflow")

    def test_copy_negative(self, bare_ps):
        expect_error(bare_ps.interp, "1 -1 copy", "rangecheck")

    def test_index_past_bottom(self, bare_ps):
        expect_error(bare_ps.interp, "1 5 index", "stackunderflow")


class TestRangeErrors:
    @pytest.mark.parametrize("source,errname", [
        ("1 0 idiv", "undefinedresult"),
        ("1 0 mod", "undefinedresult"),
        ("1.0 0.0 div", "undefinedresult"),
        ("-2 array", "rangecheck"),
        ("[1 2] 5 get", "rangecheck"),
        ("[1 2] -1 0 put", "rangecheck"),
        ("1 0 5 { } for", "rangecheck"),
        ("-3 { } repeat", "rangecheck"),
        ("(xy) 7 get", "rangecheck"),
    ])
    def test_range(self, bare_ps, source, errname):
        expect_error(bare_ps.interp, source, errname)


class TestNameErrors:
    def test_undefined_name(self, bare_ps):
        expect_error(bare_ps.interp, "florble", "undefined")

    def test_undefined_dict_key(self, bare_ps):
        expect_error(bare_ps.interp, "<< /a 1 >> /b get", "undefined")

    def test_load_of_undefined(self, bare_ps):
        expect_error(bare_ps.interp, "/florble load", "undefined")

    def test_error_detail_names_the_symbol(self, bare_ps):
        with pytest.raises(PSError) as info:
            bare_ps.interp.run("nonesuch_name")
        assert "nonesuch_name" in str(info.value)


class TestConversionErrors:
    @pytest.mark.parametrize("source", [
        "(not a number) cvi",
        "(nope) cvr",
        "true cvi",
        "[1] cvr",
    ])
    def test_bad_conversions(self, bare_ps, source):
        with pytest.raises(PSError):
            bare_ps.interp.run(source)

    def test_chr_out_of_range(self, bare_ps):
        expect_error(bare_ps.interp, "-1 chr", "rangecheck")


class TestErrorRecovery:
    def test_stopped_isolates_errors(self, bare_ps):
        """After a caught error the interpreter keeps working."""
        bare_ps.interp.run("{ 1 0 idiv } stopped")
        assert bare_ps.interp.pop() is True
        assert bare_ps.eval("2 3 add") == 5

    def test_dict_stack_survives_error_in_stopped(self, bare_ps):
        bare_ps.interp.run("/x 1 def { 5 dict begin nonesuch } stopped pop")
        # the failed begin leaked one dict; the dialect leaves recovery
        # to the host, which can pop it explicitly
        while len(bare_ps.interp.dstack) > 2:
            bare_ps.interp.pop_dict_stack()
        assert bare_ps.eval("x") == 1

    def test_nested_stopped(self, bare_ps):
        bare_ps.interp.run("{ { stop } stopped } stopped")
        assert bare_ps.interp.pop() is False   # outer saw no error
        assert bare_ps.interp.pop() is True    # inner caught the stop

    def test_exit_not_caught_by_stopped(self, bare_ps):
        """exit unwinds to the enclosing loop, not to stopped."""
        assert bare_ps.eval("0 { { exit 99 } loop 7 } stopped") is False
        assert bare_ps.interp.pop() == 7
