"""Prettyprinter tests: groups, breaks, indentation."""

import io

from repro.postscript.printer import PrettyPrinter


def render(width, actions):
    out = io.StringIO()
    pp = PrettyPrinter(out, width=width)
    for action in actions:
        kind = action[0]
        if kind == "put":
            pp.put(action[1])
        elif kind == "brk":
            pp.brk(action[1])
        elif kind == "begin":
            pp.begin(action[1])
        elif kind == "end":
            pp.end()
        elif kind == "newline":
            pp.newline()
    return out.getvalue()


class TestFlat:
    def test_plain_text(self):
        assert render(80, [("put", "hello")]) == "hello"

    def test_break_outside_group_is_invisible(self):
        assert render(80, [("put", "a"), ("brk", 0), ("put", "b")]) == "ab"

    def test_small_group_stays_flat(self):
        text = render(80, [
            ("put", "{"), ("begin", 2),
            ("put", "1"), ("put", ", "), ("brk", 0), ("put", "2"),
            ("put", "}"), ("end",),
        ])
        assert text == "{1, 2}"


class TestBreaking:
    def test_wide_group_breaks(self):
        actions = [("put", "{"), ("begin", 2)]
        for i in range(6):
            if i:
                actions += [("put", ", "), ("brk", 0)]
            actions.append(("put", "elem%d" % i))
        actions += [("put", "}"), ("end",)]
        text = render(20, actions)
        lines = text.split("\n")
        assert len(lines) > 1
        assert all(len(line) <= 20 for line in lines)
        # continuation lines are indented by the group indent
        assert lines[1].startswith("  ")

    def test_nested_group_can_stay_flat(self):
        """An inner group that fits renders flat inside a broken outer."""
        actions = [("begin", 0)]
        actions += [("put", "x" * 15), ("brk", 0)]
        actions += [("begin", 0), ("put", "a"), ("brk", 0), ("put", "b"), ("end",)]
        actions += [("brk", 0), ("put", "y" * 15), ("end",)]
        text = render(18, actions)
        assert "ab" in text  # inner group rendered flat, break invisible

    def test_break_indent_adds_to_group_indent(self):
        actions = [("begin", 2), ("put", "x" * 10), ("brk", 3), ("put", "tail"), ("end",)]
        text = render(8, actions)
        assert "\n     tail" in text  # 2 + 3 spaces


class TestColumnTracking:
    def test_newline_resets_column(self):
        out = io.StringIO()
        pp = PrettyPrinter(out, width=10)
        pp.put("12345")
        pp.newline()
        assert pp.column == 0

    def test_column_advances(self):
        out = io.StringIO()
        pp = PrettyPrinter(out, width=80)
        pp.put("abc")
        assert pp.column == 3


class TestPostScriptInterface:
    def test_put_break_begin_end_ops(self, bare_ps):
        text = bare_ps.run("({) Put 1 Begin (a) Put (, ) Put 0 Break (b) Put (}) Put End Newline")
        assert text == "{a, b}\n"

    def test_put_converts_numbers(self, bare_ps):
        assert bare_ps.run("42 Put Newline") == "42\n"

    def test_long_group_breaks_via_ops(self, bare_ps):
        bare_ps.interp.pretty.width = 16
        text = bare_ps.run(
            "({) Put 1 Begin 1 1 8 { dup 1 ne { (, ) Put 0 Break } if "
            "(element) Put pop } for (}) Put End Newline")
        assert "\n" in text.rstrip("\n")
