"""Operator tests: arithmetic, comparison, arrays, strings, conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.postscript import Name, PSArray, PSError, String, new_interp


def _fresh_interp():
    import io
    return new_interp(stdout=io.StringIO(), prelude=False)


class TestArithmetic:
    @pytest.mark.parametrize("src,expected", [
        ("1 2 add", 3),
        ("5 3 sub", 2),
        ("4 6 mul", 24),
        ("7 2 idiv", 3),
        ("-7 2 idiv", -3),
        ("7 -2 idiv", -3),
        ("7 3 mod", 1),
        ("-7 3 mod", -1),
        ("5 neg", -5),
        ("-5 abs", 5),
        ("2 10 exp", 1024.0),
        ("3.7 floor", 3.0),
        ("3.2 ceiling", 4.0),
        ("3.5 round", 4.0),
        ("-3.7 truncate", -3.0),
        ("1 4 bitshift", 16),
        ("16 -4 bitshift", 1),
        ("3 5 min", 3),
        ("3 5 max", 5),
    ])
    def test_result(self, bare_ps, src, expected):
        assert bare_ps.eval(src) == expected

    def test_div_is_real(self, bare_ps):
        result = bare_ps.eval("1 2 div")
        assert result == 0.5 and isinstance(result, float)

    def test_div_by_zero(self, bare_ps):
        with pytest.raises(PSError) as info:
            bare_ps.interp.run("1 0 div")
        assert info.value.errname == "undefinedresult"

    def test_sqrt_negative(self, bare_ps):
        with pytest.raises(PSError):
            bare_ps.interp.run("-1 sqrt")

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_add_matches_python(self, a, b):
        interp = _fresh_interp()
        interp.run("%d %d add" % (a, b))
        assert interp.pop() == a + b

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
    def test_idiv_mod_identity(self, a, b):
        """PostScript truncating division: (a idiv b)*b + (a mod b) == a."""
        interp = _fresh_interp()
        interp.run("%d %d idiv %d %d mod" % (a, b, a, b))
        r = interp.pop()
        q = interp.pop()
        assert q * b + r == a


class TestComparison:
    @pytest.mark.parametrize("src,expected", [
        ("1 2 lt", True),
        ("2 2 le", True),
        ("3 2 gt", True),
        ("2 3 ge", False),
        ("2 2.0 eq", True),
        ("1 2 ne", True),
        ("(abc) (abc) eq", True),
        ("(abc) (abd) eq", False),
        ("(abc) /abc eq", True),
        ("(a) (b) lt", True),
        ("true false or", True),
        ("true false and", False),
        ("true true xor", False),
        ("true not", False),
        ("12 10 and", 8),
        ("12 10 or", 14),
        ("12 10 xor", 6),
        ("0 not", -1),
        ("null null eq", True),
    ])
    def test_result(self, bare_ps, src, expected):
        assert bare_ps.eval(src) == expected

    def test_arrays_compare_by_identity(self, bare_ps):
        assert bare_ps.eval("[1] [1] eq") is False
        assert bare_ps.eval("[1] dup eq") is True

    def test_ordering_strings_and_numbers_raises(self, bare_ps):
        with pytest.raises(PSError):
            bare_ps.interp.run("(a) 1 lt")


class TestArrays:
    def test_literal_array(self, bare_ps):
        arr = bare_ps.eval("[1 (two) /three]")
        assert len(arr) == 3
        assert arr[1].text == "two"

    def test_array_of_n(self, bare_ps):
        arr = bare_ps.eval("3 array")
        assert len(arr) == 3 and arr[0] is None

    def test_get_put(self, bare_ps):
        assert bare_ps.eval("[10 20 30] dup 1 99 put 1 get") == 99

    def test_get_out_of_range(self, bare_ps):
        with pytest.raises(PSError) as info:
            bare_ps.interp.run("[1] 5 get")
        assert info.value.errname == "rangecheck"

    def test_aload(self, bare_ps):
        bare_ps.interp.run("[1 2 3] aload pop")
        assert bare_ps.interp.pop_n(3) == [1, 2, 3]

    def test_astore(self, bare_ps):
        arr = bare_ps.eval("7 8 9 3 array astore")
        assert arr.items == [7, 8, 9]

    def test_array_evaluated_inside(self, bare_ps):
        """[ ... ] contents are executed: names resolve."""
        arr = bare_ps.eval("/S1 1 def /S6 6 def [ S1 S6 ]")
        assert arr.items == [1, 6]


class TestStrings:
    def test_length(self, bare_ps):
        assert bare_ps.eval("(hello) length") == 5

    def test_get_char_code(self, bare_ps):
        assert bare_ps.eval("(A) 0 get") == 65

    def test_put_raises_immutable(self, bare_ps):
        """Strings are immutable in the dialect (paper Sec. 5)."""
        with pytest.raises(PSError) as info:
            bare_ps.interp.run("(abc) 0 65 put")
        assert info.value.errname == "invalidaccess"

    def test_cat(self, bare_ps):
        assert bare_ps.eval("(foo) (bar) cat").text == "foobar"

    def test_search_found(self, bare_ps):
        bare_ps.interp.run("(abcdef) (cd) search")
        assert bare_ps.interp.pop() is True
        assert bare_ps.interp.pop().text == "ab"
        assert bare_ps.interp.pop().text == "cd"
        assert bare_ps.interp.pop().text == "ef"

    def test_search_not_found(self, bare_ps):
        bare_ps.interp.run("(abc) (zz) search")
        assert bare_ps.interp.pop() is False
        assert bare_ps.interp.pop().text == "abc"

    def test_anchorsearch(self, bare_ps):
        bare_ps.interp.run("(_fib) (_) anchorsearch")
        assert bare_ps.interp.pop() is True

    def test_chr(self, bare_ps):
        assert bare_ps.eval("65 chr").text == "A"

    def test_hexstring(self, bare_ps):
        assert bare_ps.eval("16#23d8 hexstring").text == "23d8"

    def test_hexstring_negative_is_unsigned32(self, bare_ps):
        assert bare_ps.eval("-1 hexstring").text == "ffffffff"


class TestConversions:
    def test_cvi_from_string(self, bare_ps):
        assert bare_ps.eval("(42) cvi") == 42

    def test_cvi_from_real(self, bare_ps):
        assert bare_ps.eval("3.9 cvi") == 3

    def test_cvr(self, bare_ps):
        assert bare_ps.eval("(2.5) cvr") == 2.5

    def test_cvn(self, bare_ps):
        name = bare_ps.eval("(foo) cvn")
        assert isinstance(name, Name) and name.text == "foo"

    def test_cvs(self, bare_ps):
        assert bare_ps.eval("42 cvs").text == "42"

    def test_cvs_boolean(self, bare_ps):
        assert bare_ps.eval("true cvs").text == "true"

    def test_cvx_cvlit_xcheck(self, bare_ps):
        assert bare_ps.eval("/a cvx xcheck") is True
        assert bare_ps.eval("{1} cvlit xcheck") is False

    def test_type_names(self, bare_ps):
        assert bare_ps.eval("1 type").text == "integertype"
        assert bare_ps.eval("1.0 type").text == "realtype"
        assert bare_ps.eval("(s) type").text == "stringtype"
        assert bare_ps.eval("/n type").text == "nametype"
        assert bare_ps.eval("[] type").text == "arraytype"
        assert bare_ps.eval("<< >> type").text == "dicttype"
        assert bare_ps.eval("true type").text == "booleantype"
        assert bare_ps.eval("null type").text == "nulltype"


class TestOutput:
    def test_print_writes_string(self, bare_ps):
        assert bare_ps.run("(hello) print") == "hello"

    def test_equals_adds_newline(self, bare_ps):
        assert bare_ps.run("42 =") == "42\n"

    def test_pstack_preserves_stack(self, bare_ps):
        bare_ps.interp.run("1 2")
        bare_ps.run("pstack")
        assert bare_ps.interp.pop_n(2) == [1, 2]
