"""Test doubles for abstract memories."""

from repro.postscript import AbstractMemory, Location


class FakeMemory(AbstractMemory):
    """A memory storing one value per (space, offset) slot.

    This double checks the *plumbing* of printer procedures and memory
    operators; byte-accurate semantics are covered by the target-memory
    tests in tests/machines.
    """

    def __init__(self):
        self.slots = {}
        self.fetch_log = []

    def put(self, space, offset, value):
        self.slots[(space, offset)] = value
        return self

    def put_cstring(self, space, offset, text):
        for i, ch in enumerate(text):
            self.slots[(space, offset + i)] = ord(ch)
        self.slots[(space, offset + len(text))] = 0
        return self

    def fetch_absolute(self, loc, kind):
        self.fetch_log.append((loc.space, loc.offset, kind))
        return self.slots[(loc.space, loc.offset)]

    def store_absolute(self, loc, kind, value):
        self.slots[(loc.space, loc.offset)] = value


def loc(space, offset):
    return Location.absolute(space, offset)
