"""Scanner unit tests: tokens, strings, procedures, radix numbers."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.postscript.objects import Name, PSArray, PSError, String
from repro.postscript.scanner import EOF, Scanner


def scan_all(text):
    return list(Scanner(text))


class TestNumbers:
    def test_integer(self):
        assert scan_all("42") == [42]

    def test_negative_integer(self):
        assert scan_all("-17") == [-17]

    def test_real(self):
        (obj,) = scan_all("3.5")
        assert obj == 3.5 and isinstance(obj, float)

    def test_real_exponent(self):
        assert scan_all("1.5e3") == [1500.0]

    def test_leading_dot_real(self):
        assert scan_all(".5") == [0.5]

    def test_radix_16(self):
        assert scan_all("16#000023d8") == [0x23D8]

    def test_radix_2(self):
        assert scan_all("2#1010") == [10]

    def test_radix_8(self):
        assert scan_all("8#777") == [0o777]

    def test_bad_radix_digits_raises(self):
        with pytest.raises(PSError):
            scan_all("16#zz")

    def test_number_like_name_is_name(self):
        (obj,) = scan_all("1abc#")
        assert isinstance(obj, Name)


class TestNames:
    def test_executable_name(self):
        (obj,) = scan_all("add")
        assert isinstance(obj, Name) and obj.text == "add" and not obj.literal

    def test_literal_name(self):
        (obj,) = scan_all("/foo")
        assert isinstance(obj, Name) and obj.text == "foo" and obj.literal

    def test_ampersand_name(self):
        """Names like &elemsize from the paper's ARRAY code are ordinary."""
        (obj,) = scan_all("&elemsize")
        assert isinstance(obj, Name) and obj.text == "&elemsize"

    def test_name_with_underscore_and_dot(self):
        (obj,) = scan_all("ExpressionServer.lookup")
        assert obj.text == "ExpressionServer.lookup"

    def test_anchor_symbol_name(self):
        (obj,) = scan_all("/_stanchor__V2935334b_e288a")
        assert obj.text == "_stanchor__V2935334b_e288a" and obj.literal

    def test_names_split_at_delimiters(self):
        objs = scan_all("a/b")
        assert [o.text for o in objs] == ["a", "b"]
        assert not objs[0].literal and objs[1].literal


class TestStrings:
    def test_simple(self):
        (obj,) = scan_all("(hello)")
        assert isinstance(obj, String) and obj.text == "hello"

    def test_nested_parens(self):
        (obj,) = scan_all("(a (b) c)")
        assert obj.text == "a (b) c"

    def test_escapes(self):
        (obj,) = scan_all(r"(a\nb\tc\\d\(e\))")
        assert obj.text == "a\nb\tc\\d(e)"

    def test_octal_escape(self):
        (obj,) = scan_all(r"(\101\102)")
        assert obj.text == "AB"

    def test_line_continuation(self):
        (obj,) = scan_all("(a\\\nb)")
        assert obj.text == "ab"

    def test_multiline_string(self):
        (obj,) = scan_all("(line one\nline two)")
        assert obj.text == "line one\nline two"

    def test_unterminated_raises(self):
        with pytest.raises(PSError):
            scan_all("(oops")

    def test_string_containing_postscript(self):
        """The deferral technique quotes code as a string (Sec. 5)."""
        (obj,) = scan_all("({INT} 30 Regset0 Absolute)")
        assert obj.text == "{INT} 30 Regset0 Absolute"


class TestProcedures:
    def test_flat_procedure(self):
        (obj,) = scan_all("{1 2 add}")
        assert isinstance(obj, PSArray) and not obj.literal
        assert obj.items[0] == 1 and obj.items[1] == 2
        assert obj.items[2].text == "add"

    def test_nested_procedure(self):
        (obj,) = scan_all("{ { 1 } { 2 } ifelse }")
        assert isinstance(obj.items[0], PSArray)
        assert isinstance(obj.items[1], PSArray)

    def test_unmatched_close_raises(self):
        with pytest.raises(PSError):
            scan_all("}")

    def test_unterminated_raises(self):
        with pytest.raises(PSError):
            scan_all("{1 2")


class TestStructure:
    def test_brackets_are_names(self):
        objs = scan_all("[1 2]")
        assert objs[0].text == "[" and objs[-1].text == "]"

    def test_dict_brackets_are_names(self):
        objs = scan_all("<< /a 1 >>")
        assert objs[0].text == "<<" and objs[-1].text == ">>"

    def test_hex_string_rejected(self):
        with pytest.raises(PSError):
            scan_all("<41>")

    def test_comment_skipped(self):
        assert scan_all("1 % comment\n2") == [1, 2]

    def test_comment_at_eof(self):
        assert scan_all("1 % trailing") == [1]

    def test_empty_input(self):
        assert scan_all("") == []

    def test_whitespace_only(self):
        assert scan_all(" \t\n\r ") == []


class TestStreamInput:
    def test_scan_from_stream(self):
        stream = io.StringIO("1 2 add\n(more)\n")
        objs = list(Scanner(stream))
        assert objs[0] == 1 and objs[1] == 2
        assert objs[3].text == "more"

    def test_scan_from_bytes_stream(self):
        stream = io.BytesIO(b"/x 10 def\n")
        objs = list(Scanner(stream))
        assert objs[0].text == "x" and objs[1] == 10

    def test_incremental_objects(self):
        scanner = Scanner(io.StringIO("1 2"))
        assert scanner.next_object() == 1
        assert scanner.next_object() == 2
        assert scanner.next_object() is EOF


class TestRoundTrip:
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_integers_round_trip(self, n):
        assert scan_all(str(n)) == [n]

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_radix_16_round_trip(self, n):
        assert scan_all("16#%08x" % n) == [n]

    @given(st.text(alphabet=st.characters(blacklist_characters="()\\"),
                   max_size=100))
    def test_plain_strings_round_trip(self, text):
        (obj,) = scan_all("(%s)" % text)
        assert obj.text == text

    @given(st.text(alphabet="abcdefgXYZ&_.0", min_size=1, max_size=30))
    def test_names_round_trip(self, text):
        if text[0].isdigit():
            text = "x" + text
        (obj,) = scan_all("/" + text)
        assert obj.text == text
