"""Abstract-memory and location operator tests."""

import pytest

from repro.postscript import IMMEDIATE, Location, PSError

from .fakes import FakeMemory, loc


class TestLocation:
    def test_absolute(self):
        l = Location.absolute("d", 100)
        assert l.space == "d" and l.offset == 100 and l.mode == "absolute"

    def test_immediate_holds_value(self):
        l = Location.immediate(0x2270)
        assert l.mode == IMMEDIATE and l.value == 0x2270

    def test_shifted(self):
        assert loc("d", 8).shifted(4) == loc("d", 12)

    def test_shifted_immediate_raises(self):
        with pytest.raises(PSError):
            Location.immediate(1).shifted(4)

    def test_equality(self):
        assert loc("d", 4) == loc("d", 4)
        assert loc("d", 4) != loc("r", 4)
        assert loc("d", 4) != loc("d", 8)


class TestMemoryDispatch:
    def test_fetch_absolute_goes_to_memory(self):
        mem = FakeMemory().put("d", 16, 77)
        assert mem.fetch(loc("d", 16), "i32") == 77

    def test_fetch_immediate_returns_value(self):
        """Immediate-mode fetches never reach the target (paper Sec. 4.1)."""
        mem = FakeMemory()
        assert mem.fetch(Location.immediate(123), "i32") == 123
        assert mem.fetch_log == []

    def test_store_immediate_updates_cell(self):
        """Stores to immediate locations update the cell — ldb sets the pc
        this way before writing it back on continue."""
        cell = Location.immediate(0x100)
        FakeMemory().store(cell, "i32", 0x104)
        assert cell.value == 0x104

    def test_store_absolute_goes_to_memory(self):
        mem = FakeMemory()
        mem.store(loc("d", 4), "i16", 9)
        assert mem.slots[("d", 4)] == 9


class TestOperators:
    def setup_memory(self, bare_ps):
        mem = FakeMemory().put("d", 8, 42).put("r", 30, 7)
        bare_ps.interp.define("M", mem)
        return mem

    def test_absolute_operator(self, bare_ps):
        l = bare_ps.eval("30 (r) Absolute")
        assert l == loc("r", 30)

    def test_absolute_with_name_space(self, bare_ps):
        assert bare_ps.eval("4 /d Absolute") == loc("d", 4)

    def test_regset_idiom(self, bare_ps):
        """`30 Regset0 Absolute` — the where-value idiom from Sec. 2."""
        bare_ps.interp.run("/Regset0 (r) def")
        assert bare_ps.eval("30 Regset0 Absolute") == loc("r", 30)

    def test_immediate_operator(self, bare_ps):
        l = bare_ps.eval("99 Immediate")
        assert l.mode == IMMEDIATE and l.value == 99

    def test_shifted_operator(self, bare_ps):
        assert bare_ps.eval("0 (d) Absolute 12 Shifted") == loc("d", 12)

    def test_fetch32(self, bare_ps):
        self.setup_memory(bare_ps)
        assert bare_ps.eval("M 8 (d) Absolute fetch32") == 42

    def test_fetch_from_register_space(self, bare_ps):
        self.setup_memory(bare_ps)
        assert bare_ps.eval("M 30 (r) Absolute fetch32") == 7

    def test_store32(self, bare_ps):
        mem = self.setup_memory(bare_ps)
        bare_ps.interp.run("M 8 (d) Absolute 55 store32")
        assert mem.slots[("d", 8)] == 55

    def test_fetchf64(self, bare_ps):
        mem = FakeMemory().put("d", 0, 2.5)
        bare_ps.interp.define("M", mem)
        assert bare_ps.eval("M 0 (d) Absolute fetchf64") == 2.5

    def test_storef32_coerces_to_float(self, bare_ps):
        mem = FakeMemory()
        bare_ps.interp.define("M", mem)
        bare_ps.interp.run("M 0 (d) Absolute 3 storef32")
        assert mem.slots[("d", 0)] == 3.0

    def test_locspace_locoffset(self, bare_ps):
        assert bare_ps.eval("5 (d) Absolute locspace").text == "d"
        assert bare_ps.eval("5 (d) Absolute locoffset") == 5

    def test_fetch_typechecks(self, bare_ps):
        with pytest.raises(PSError) as info:
            bare_ps.interp.run("1 2 fetch32")
        assert info.value.errname == "typecheck"

    def test_memory_type_name(self, bare_ps):
        bare_ps.interp.define("M", FakeMemory())
        assert bare_ps.eval("M type").text == "memorytype"
        assert bare_ps.eval("0 (d) Absolute type").text == "locationtype"


class TestBaseMemoryErrors:
    def test_base_fetch_is_invalidaccess(self):
        from repro.postscript import AbstractMemory
        with pytest.raises(PSError):
            AbstractMemory().fetch(loc("d", 0), "i32")


class TestMaskToKind:
    @pytest.mark.parametrize("value,kind,expected", [
        (0xFF, "i8", -1),
        (0x7F, "i8", 127),
        (0x80, "i8", -128),
        (0xFFFF, "i16", -1),
        (0x8000, "i16", -32768),
        (0xFFFFFFFF, "i32", -1),
        (0x7FFFFFFF, "i32", 2**31 - 1),
        (2**32 + 5, "i32", 5),
        (-1, "i8", -1),
    ])
    def test_masking(self, value, kind, expected):
        from repro.postscript import mask_to_kind
        assert mask_to_kind(value, kind) == expected
