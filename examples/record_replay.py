#!/usr/bin/env python
"""Persistent recordings: record a crash, reopen it anywhere, rewind.

A core is a photograph of the moment of death; a recording is the whole
film.  This example walks the full loop:

  1. a live session records itself (``record --save``): every
     time-travel checkpoint is registered for the file, every stop gets
     a divergence digest, and debugger-injected writes (``set``) are
     logged as inputs;
  2. the target dies of SIGSEGV and the session saves the recording —
     checkpoint states are pulled from the nub only now, so recording
     itself cost no more than plain time travel;
  3. a completely fresh debugger — no nub, no process, no executable —
     reopens the file with ``open_recording`` and gets the *same*
     backtrace and values, byte for byte;
  4. unlike a core, the reopened timeline *moves*: reverse-continue
     lands on the recorded breakpoint hit, and running forward again
     re-executes the program while verifying every recorded digest —
     a tampered file would raise DivergenceError instead of lying.

Run:  python examples/record_replay.py
"""

import io
import os
import tempfile

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.machines import SIGSEGV, SIGTRAP

BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""


def main():
    path = os.path.join(tempfile.mkdtemp(), "boom.ldbrec")
    exe = compile_and_link({"boom.c": BOOM}, "rmips", debug=True)

    print("=== record a live session up to (and into) the crash ===")
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.start_recording(path=path, interval=37)
    ldb.break_at_function("poke")
    assert ldb.run_to_stop() == "stopped" and target.signo == SIGTRAP
    hit_icount = target.current_icount()
    print("breakpoint in poke at icount %d, g = %s"
          % (hit_icount, ldb.evaluate("g")))
    assert ldb.run_to_stop() == "stopped" and target.signo == SIGSEGV
    live_bt = ldb.backtrace_text()
    recording = ldb.record_save()
    print("SIGSEGV at icount %d" % target.current_icount())
    print("saved %s: %d spills, %d stops, %d inputs (%d bytes)"
          % (path, len(recording.spills), len(recording.stops),
             len(recording.inputs), os.path.getsize(path)))

    print("\n=== a fresh debugger reopens the file: no nub at all ===")
    post = Ldb(stdout=io.StringIO())
    replayed = post.open_recording(path)
    print("replay target %s (%s): signal %d, icount %d"
          % (replayed.name, replayed.arch_name, replayed.signo,
             replayed.current_icount()))
    post_bt = post.backtrace_text()
    assert post_bt == live_bt, "replay and live backtraces differ"
    print("backtrace matches the live session, byte for byte:\n%s"
          % post_bt)

    print("=== unlike a core, the timeline moves: rewind to the hit ===")
    hit = post.reverse_continue()
    assert hit.icount == hit_icount and replayed.at_breakpoint()
    proc, source, line = post.where_am_i()
    print("reverse-continue landed at icount %d: %s (%s:%d), g = %s"
          % (hit.icount, proc, source, line, post.evaluate("g")))

    print("\n=== forward again: re-executed, digest-checked ===")
    assert post.run_to_stop() == "stopped" and replayed.signo == SIGSEGV
    snap = post.obs.metrics.snapshot()
    print("back at the fault (icount %d): %d digest checks, "
          "%d divergences"
          % (replayed.current_icount(),
             snap.get("trace.replay.checks", 0),
             snap.get("trace.replay.divergences", 0)))
    assert snap.get("trace.replay.divergences", 0) == 0


if __name__ == "__main__":
    main()
