#!/usr/bin/env python
"""Block transfers and the Transport API.

The paper's Sec. 4.1 memory DAG turns every sub-word access into a nub
round-trip; Hanson's follow-up (MSR-TR-99-4) makes the nub fast with a
compact block-oriented protocol.  This example shows the reproduction's
version of that story:

  1. every target talks to its nub through an explicit Transport — a
     NubSession (retries, reconnect, HELLO negotiation) or a
     ChannelTransport (one lockstep exchange over a bare channel);
  2. the session negotiates FEATURE_BLOCK; a stack walk then pulls the
     saved context with one BLOCKFETCH instead of dozens of FETCHes;
  3. against a legacy nub built without the extension the same debugger
     silently falls back to per-word traffic.

Run:  python examples/block_transfers.py
"""

import io

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.ldb.target import Target
from repro.machines import Process
from repro.nub import ChannelTransport, Nub, NubRunner, pair

FIB_C = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


def workload(ldb, target):
    """Breakpoint -> backtrace -> print: the hot inspection path."""
    ldb.break_at_stop("fib", 9)
    ldb.run_to_stop()
    ldb.backtrace_text()
    ldb.print_variable("a")
    ldb.registers_text()
    return target.stats.round_trips()


def run(label, cache, block_nub):
    exe = compile_and_link({"fib.c": FIB_C}, "rsparc", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe, cache=cache, block_nub=block_nub)
    trips = workload(ldb, target)
    session = target.session
    print("%-28s round-trips: %4d   (FEATURE_BLOCK %s)"
          % (label, trips,
             "negotiated" if session.block_active else "refused"))
    target.kill()


def bare_channel_target():
    """The ChannelTransport path: no session, still the same API."""
    exe = compile_and_link({"fib.c": FIB_C}, "rsparc", debug=True)
    debugger_end, nub_end = pair()
    process = Process(exe)
    NubRunner(Nub(process, channel=nub_end)).start()
    ldb = Ldb(stdout=io.StringIO())
    table = ldb.read_loader_table(loader_table_ps(exe))
    # a Target over an explicit bare-channel transport: one lockstep
    # exchange per request, no retries — and the identical Transport
    # interface, so the whole debugger works unchanged on top of it
    transport = ChannelTransport(debugger_end)
    target = Target(ldb.interp, None, table, transport=transport)
    ldb.targets[target.name] = target
    ldb.current = target
    target.wait_for_stop()
    trips = workload(ldb, target)
    print("%-28s round-trips: %4d   (no negotiation: probe, then blocks)"
          % ("bare ChannelTransport", trips))
    target.kill()


def main():
    print("=== the same workload, three transports ===")
    run("uncached per-word FETCH", cache=False, block_nub=True)
    run("cached BLOCKFETCH", cache=True, block_nub=True)
    run("legacy nub (fallback)", cache=True, block_nub=False)
    bare_channel_target()


if __name__ == "__main__":
    main()
