#!/usr/bin/env python
"""The expression server conversation (paper Sec. 3, Fig. 3).

Shows the machinery behind `print`: the expression travels to a compiler
front end behind a byte stream; unknown identifiers come back as
``/name ExpressionServer.lookup`` callbacks; the server reconstructs
symbol and type data from C tokens; and the final answer arrives as a
*PostScript procedure* that ldb's embedded interpreter evaluates against
the frame's abstract memory.

Run:  python examples/expression_server.py
"""

from repro.cc.driver import compile_and_link
from repro.cc.lexer import tokenize
from repro.cc.parser import Parser
from repro.cc.sema import Sema
from repro.cc.ctypes_ import TypeSystem
from repro.ldb import Ldb
from repro.ldb.exprserver import PureLowering, rewrite_to_ps

PROGRAM = """
struct account { int balance; int overdraft; };

struct account acct;
int rate = 7;

int main(void) {
    acct.balance = 1000;
    acct.overdraft = -50;
    return acct.balance / rate;   /* line 10 */
}
"""


def show_rewriter(expression):
    """Compile an expression stand-alone and show the generated PS."""
    types = TypeSystem("rmips")
    parser = Parser(expression, "<demo>", types)
    ast = parser.expression()
    sema = Sema(types, "<demo>")
    typed = sema.expr(ast)
    ir_tree = PureLowering().lower(typed)
    ps = rewrite_to_ps(ir_tree)
    print("  C expression : %s" % expression)
    print("  IR tree      : %r" % ir_tree)
    print("  PostScript   : %s" % ps)
    print()


def main():
    print("=== the IR-to-PostScript rewriter (constants only) ===\n")
    for expr in ("2 + 3 * 4", "(10 > 3) && (2 < 1)", "1.5 * 4.0",
                 "-7 / 2", "(char) 300"):
        show_rewriter(expr)

    print("=== a live conversation against a stopped target ===\n")
    exe = compile_and_link({"acct.c": PROGRAM}, "rmips", debug=True)
    ldb = Ldb()
    target = ldb.load_program(exe)
    ldb.break_at_line("acct.c", 10)
    ldb.run_to_stop()

    for expression in (
        "acct.balance",
        "acct.balance + acct.overdraft",
        "acct.balance / rate",
        "acct.balance > 500 ? 1 : 0",
        "acct.overdraft = -100",
        "acct.overdraft",
    ):
        value = ldb.evaluate(expression)
        print("(ldb) print %-32s => %s" % (expression, value))

    print("\nNote: the server reconstructed `struct account` from C tokens")
    print("sent over the pipe; the type persists between expressions.")
    print("Procedure calls into the target are not yet supported, exactly")
    print("as the paper reports (Sec. 7.1):")
    try:
        ldb.evaluate("main()")
    except Exception as err:
        print("(ldb) print main()  => error: %s" % err)


if __name__ == "__main__":
    main()
