#!/usr/bin/env python
"""Remote debugging and crash recovery (paper Sec. 4.2).

The nub is loaded with every program, so a process that faults can wait
for a debugger to connect over the network — "the target program need
not be a child of the debugger."  And because the nub preserves target
state when a connection breaks, a *new* debugger instance can adopt a
target after the first debugger crashes.

This example:
  1. starts a program that divides by zero, with its nub listening on a
     TCP port and nobody attached;
  2. attaches an ldb over the network after the fault, inspects the
     crashed frame, and walks its stack;
  3. kills that debugger abruptly (simulating a debugger crash);
  4. attaches a *second* ldb instance, which finds the target exactly
     where it was, fixes the bad divisor, and resumes it to a clean exit.

Run:  python examples/remote_debug.py
"""

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.machines import Process, SIGFPE
from repro.nub import Listener, Nub, NubRunner

FAULTY = """
int divisor = 0;
int samples[5] = {10, 20, 30, 40, 50};

int average(int *data, int n) {
    int i, total = 0;
    for (i = 0; i < n; i++) total += data[i];
    return total / divisor;                    /* boom */
}

int main(void) {
    printf("average = %d\\n", average(samples, 5));
    return 0;
}
"""


def main():
    print("=== a faulty process starts, nub listening, nobody attached ===")
    exe = compile_and_link({"faulty.c": FAULTY}, "rmips", debug=True)
    table_ps = loader_table_ps(exe)
    listener = Listener()
    process = Process(exe)
    # stop_at_entry=False: the program runs freely until it faults
    nub = Nub(process, listener=listener, stop_at_entry=False,
              accept_timeout=30.0)
    runner = NubRunner(nub).start()
    print("nub listening on 127.0.0.1:%d; the program is about to fault..."
          % listener.port)

    print("\n=== first debugger attaches over TCP ===")
    first = Ldb()
    target = first.attach("127.0.0.1", listener.port, table_ps)
    print("signal %d (%s) — context saved by the nub at 0x%x"
          % (target.signo,
             "SIGFPE" if target.signo == SIGFPE else "?",
             target.context_addr))
    proc, filename, line = first.where_am_i()
    print("faulted in %s () at %s:%d" % (proc, filename, line))
    print(first.backtrace_text().rstrip())
    print("total =", first.evaluate("total"))
    print("divisor =", first.evaluate("divisor"))

    print("\n=== the first debugger crashes (socket dies) ===")
    target.channel.sock.close()

    print("=== a second debugger adopts the preserved target ===")
    second = Ldb()
    adopted = second.attach("127.0.0.1", listener.port, table_ps)
    print("state: %s, same signal: %d" % (adopted.state, adopted.signo))
    print("total is still", second.evaluate("total"))

    print("\n=== fix the divisor and re-run the division ===")
    second.evaluate("divisor = 5")
    # back the pc up to the return statement's stopping point and resume
    frame = adopted.top_frame()
    entry = frame.proc_entry()
    hit = adopted.symtab.stop_for_pc(entry, adopted.stop_pc())
    stop_addr = adopted.symtab.stop_address(hit[1])
    adopted.cont(at_pc=stop_addr)
    while second.run_to_stop(target=adopted) == "stopped":
        pass
    print("exit status:", adopted.exit_status)
    print("program output:", process.output().strip())
    runner.join()
    listener.close()


if __name__ == "__main__":
    main()
