#!/usr/bin/env python
"""Cross-architecture debugging: one ldb, four targets at once.

The paper's headline property (Sec. 1): "cross-architecture debugging
with ldb is identical to single-architecture debugging, and ldb can
change architectures dynamically."  This example compiles the same
program for all four target families — including both MIPS byte orders —
loads them all into one debugger instance, and drives every one with the
*same* client code.  The per-architecture PostScript dictionary rebinds
the machine-dependent names each time the debugger switches targets.

Run:  python examples/cross_debug.py
"""

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

PROGRAM = """
struct sample { int id; double reading; };

struct sample history[4];
int count = 0;

void record(int id, double reading) {
    history[count].id = id;
    history[count].reading = reading;
    count++;                                 /* line 10 */
}

int main(void) {
    record(1, 36.5);
    record(2, 37.1);
    record(3, 36.8);
    printf("%d samples\\n", count);
    return 0;
}
"""

ARCHES = ["rmips", "rmipsel", "rsparc", "rm68k", "rvax"]


def main():
    ldb = Ldb()
    targets = []

    print("=== loading the same program on five architectures ===")
    for arch in ARCHES:
        exe = compile_and_link({"sensor.c": PROGRAM}, arch, debug=True)
        target = ldb.load_program(exe)
        order = "big" if arch in ("rmips", "rsparc", "rm68k") else "little"
        print("  %s: %-8s %s-endian, %d-byte instructions"
              % (target.name, arch, order, target.machdep.insn_fetch_size))
        targets.append(target)

    print("\n=== identical client code drives every target ===")
    for target in targets:
        ldb.switch_target(target.name)   # rebinds the MD PostScript names
        ldb.break_at_line("sensor.c", 10)
        # run to the third record() call on every target
        for _ in range(3):
            ldb.run_to_stop()
        frame = target.top_frame()
        sample_id = ldb.evaluate("id", frame=frame)
        reading = ldb.evaluate("reading", frame=frame)
        older = ldb.print_variable("history").strip()
        stack = " <- ".join(f.proc_name() for f in target.frames())
        print("  %s (%s): id=%d reading=%.1f stack: %s"
              % (target.name, target.arch_name, sample_id, reading, stack))
        print("      history = %s" % older)

    print("\n=== every target runs to completion with the same output ===")
    for target in targets:
        target.breakpoints.remove_all()
        while ldb.run_to_stop(target=target) == "stopped":
            pass
        print("  %s (%s): exit %d, output %r"
              % (target.name, target.arch_name, target.exit_status,
                 target.process.output().strip()))


if __name__ == "__main__":
    main()
