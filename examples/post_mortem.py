#!/usr/bin/env python
"""Post-mortem debugging: crash, auto-core, offline backtrace.

The debugger cannot always be there when a program dies.  This example
shows the whole graceful-degradation path:

  1. a target runs with auto-cores configured (``core_path``) and dies
     of SIGSEGV; the nub writes a core *before* anything else — the
     registers, the memory image (sparse, compressed, checksummed),
     the fault record, the planted breakpoints, and the loader symbol
     table all ride along in one file;
  2. the live session inspects the fault: backtrace, globals;
  3. a completely fresh debugger — no executable, no nub, no process —
     opens the core with ``open_core`` and gets the *same* backtrace
     and the same variable values, byte for byte;
  4. mutating verbs refuse the corpse with clear errors: a core is for
     reading, not for resuming.

Run:  python examples/post_mortem.py
"""

import io
import os
import tempfile

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.ldb.breakpoints import BreakpointError
from repro.ldb.target import TargetError
from repro.machines import SIGSEGV

BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""


def main():
    core_path = os.path.join(tempfile.mkdtemp(), "boom.core")
    exe = compile_and_link({"boom.c": BOOM}, "rmips", debug=True)

    print("=== the target dies; the nub leaves a core behind ===")
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe, core_path=core_path)
    while ldb.run_to_stop() == "stopped" and target.signo != SIGSEGV:
        pass
    assert target.signo == SIGSEGV
    live_bt = ldb.backtrace_text()
    live_g = ldb.print_variable("g")
    print("signal %d at icount %d" % (target.signo, target.current_icount()))
    print("auto-core: %s (%d bytes)"
          % (core_path, os.path.getsize(core_path)))
    print("live backtrace:\n%s" % live_bt)

    print("=== a fresh debugger opens the core: no nub, no process ===")
    post = Ldb(stdout=io.StringIO())
    corpse = post.open_core(core_path)
    print("post-mortem target %s (%s): signal %d, icount %d"
          % (corpse.name, corpse.arch_name, corpse.signo,
             corpse.core.icount))
    post_bt = post.backtrace_text()
    post_g = post.print_variable("g")
    print("core backtrace:\n%s" % post_bt)
    assert post_bt == live_bt, "core and live backtraces differ"
    assert post_g == live_g, "core and live variable values differ"
    print("backtrace and g=%s match the live session, byte for byte"
          % post_g.strip())

    print("\n=== a core is read-only: mutating verbs refuse ===")
    for verb, attempt in [("continue", corpse.cont),
                          ("kill", corpse.kill),
                          ("break", lambda: post.break_at_function("main"))]:
        try:
            attempt()
        except (TargetError, BreakpointError) as err:
            print("%-8s -> %s" % (verb, err))

    print("\n=== inspection, though, is fully alive ===")
    print("g + 100 = %s" % post.evaluate("g + 100"))
    print("pc = 0x%x" % corpse.stop_pc())


if __name__ == "__main__":
    main()
