#!/usr/bin/env python
"""A language that compiles to C, debugged at source level (Sec. 7.1).

The paper: "ldb may well suit language implementations that compile to
C, because the first compiler can emit PostScript code that manipulates
the symbols emitted by the C compiler, producing one set of symbols that
combines the results of two compilations."

This example implements CALC, a toy language with *money* values
(fixed-point cents) that translates to C.  The CALC compiler emits:

  1. C code (money becomes int cents, names are mangled), and
  2. a PostScript overlay that rebuilds CALC-level symbols on top of the
     C symbol table: original names, a `money` type whose printer renders
     dollars, and the same locations the C compiler assigned.

ldb itself is untouched; `print price` shows `$2.50`.

Run:  python examples/lang_to_c.py
"""

import io

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb

CALC_PROGRAM = """
money price = 2.50
money shipping = 4.99
count items = 3
money total = price * items + shipping
show total
"""


def compile_calc(source):
    """The 'first compiler': CALC -> C + a PostScript overlay."""
    c_lines = []
    overlay = ["% CALC overlay: rebuild source-level symbols"]
    body = []
    variables = []
    for raw in source.strip().splitlines():
        words = raw.split()
        if not words:
            continue
        if words[0] in ("money", "count"):
            kind, name, _eq, *expr = words
            c_name = "calc_" + name
            variables.append((name, kind, c_name))
            if kind == "money" and len(expr) == 1 and "." in expr[0]:
                dollars, cents = expr[0].split(".")
                value = "%d" % (int(dollars) * 100 + int(cents))
                c_lines.append("int %s = %s;" % (c_name, value))
            elif len(expr) == 1:
                c_lines.append("int %s = %s;" % (c_name, expr[0]))
            else:
                # an expression over earlier variables
                c_expr = " ".join("calc_" + w if w.isidentifier() else w
                                  for w in expr)
                c_lines.append("int %s;" % c_name)
                body.append("%s = %s;" % (c_name, c_expr))
        elif words[0] == "show":
            c_name = "calc_" + words[1]
            body.append('printf("%%d\\n", %s);' % c_name)
    c_source = "%s\nint main(void) {\n    %s\n    return 0;\n}\n" % (
        "\n".join(c_lines), "\n    ".join(body))

    # the overlay: a money printer plus re-rooted symbol entries
    overlay.append("""
/MONEY {
  pop fetch32
  /&cents exch def
  ($) Put &cents 100 idiv Put (.) Put
  /&frac &cents 100 mod def
  &frac 10 lt { (0) Put } if
  &frac Put
} def
/MoneyType << /decl (money %s) /printer { MONEY } /size 4 >> def
/CountType << /decl (count %s) /printer { INT } /size 4 >> def
""")
    for name, kind, c_name in variables:
        type_name = "MoneyType" if kind == "money" else "CountType"
        overlay.append("""
CalcTable /symtab get /externs get /%(c)s get /&centry exch def
/%(n)s <<
  /name (%(n)s) /kind (variable) /type %(t)s
  /sourcefile (program.calc) /sourcey 0 /sourcex 0
  /where &centry /where get
  /uplink null
>> def
CalcTable /symtab get /externs get /%(n)s %(n)s put
""" % {"c": c_name, "n": name, "t": type_name})
    return c_source, "\n".join(overlay)


def main():
    print("=== the CALC program ===")
    print(CALC_PROGRAM)
    c_source, overlay_ps = compile_calc(CALC_PROGRAM)
    print("=== generated C ===")
    print(c_source)

    exe = compile_and_link({"program.calc.c": c_source}, "rmips", debug=True)
    ldb = Ldb()
    target = ldb.load_program(exe)

    print("=== applying the PostScript overlay (ldb unchanged) ===")
    ldb.interp.define("CalcTable", target.table)
    ldb.interp.run(overlay_ps)

    # run to the end of main and print CALC-level values
    ldb.break_at_line("program.calc.c", len(c_source.splitlines()) - 2)
    ldb.run_to_stop()
    import sys
    for name in ("price", "shipping", "items", "total"):
        sys.stdout.write("(ldb) print %-9s => " % name)
        sys.stdout.flush()
        ldb.print_variable(name)
    target.kill()


if __name__ == "__main__":
    main()
