#!/usr/bin/env python
"""Debugger crash-reconnect with breakpoint recovery (paper Sec. 7.1).

The nub's half of the robustness story is old news: it preserves the
target when a connection breaks.  This example shows the debugger's
half — the fault-tolerant session layer:

  1. a debugger attaches over TCP and plants breakpoints through the
     PLANT extension, so the nub knows about them;
  2. the connection dies mid-session (the "debugger crash");
  3. the same Target calls ``reconnect()``: the session re-attaches
     through the nub's listener, the nub re-announces the preserved
     stop, the HELLO handshake renegotiates hardened framing, and a
     BREAKS replay recovers the exact planted-breakpoint set;
  4. for good measure, a *fresh* debugger instance then adopts the
     target the classic way and runs it to a clean exit.

Run:  python examples/crash_recovery.py
"""

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb
from repro.machines import Process
from repro.nub import Listener, Nub, NubRunner

FIB = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


def main():
    exe = compile_and_link({"fib.c": FIB}, "rmips", debug=True)
    table_ps = loader_table_ps(exe)
    listener = Listener()
    process = Process(exe)
    nub = Nub(process, listener=listener, accept_timeout=30.0)
    runner = NubRunner(nub).start()

    print("=== attach and plant breakpoints ===")
    ldb = Ldb()
    target = ldb.attach("127.0.0.1", listener.port, table_ps)
    ldb.break_at_stop("fib", 9)
    ldb.break_at_stop("fib", 6)
    planted = sorted(target.breakpoints.planted)
    print("planted: %s (session features: crc=%s seq=%s ack=%s)"
          % ([hex(a) for a in planted], target.session.crc_active,
             target.session.seq_active, target.session.ack_active))

    print("\n=== the connection dies mid-session ===")
    target.channel.sock.close()
    # ...and the debugger's in-memory table is lost with it
    target.breakpoints.planted.clear()
    print("state after a failed wait: %s" % target.wait_for_stop(timeout=0.5))

    print("\n=== Target.reconnect(): re-attach and resynchronize ===")
    target.reconnect()
    recovered = sorted(target.breakpoints.planted)
    print("state: %s, reconnects: %d" % (target.state,
                                         target.session.reconnects))
    print("recovered by the BREAKS replay: %s"
          % [hex(a) for a in recovered])
    assert recovered == planted
    print("notes:", {hex(a): bp.note
                     for a, bp in target.breakpoints.planted.items()})

    print("\n=== the session works as if nothing happened ===")
    ldb.run_to_stop()
    print("stopped at 0x%x; n = %s" % (target.stop_pc(), ldb.evaluate("n")))
    target.breakpoints.remove_all()
    target.detach()
    print("detached; the nub preserves the target again")

    print("\n=== a fresh debugger adopts the target and finishes ===")
    second = Ldb()
    adopted = second.attach("127.0.0.1", listener.port, table_ps)
    print("adopted in state: %s" % adopted.state)
    while second.run_to_stop(target=adopted) == "stopped":
        pass
    print("exit status:", adopted.exit_status)
    print("program output:", process.output().strip())
    runner.join()
    listener.close()


if __name__ == "__main__":
    main()
