#!/usr/bin/env python
"""Time-travel debugging: run forward into a crash, then back out of it.

The retargetable debugger's nub (paper Sec. 3) is a tiny server over
the target process; the time-travel extension teaches it four more
messages — CHECKPOINT / RESTORE / DROPCKPT / ICOUNT — plus a bounded
resume (RUNTO).  Checkpoints are copy-on-write snapshots held *inside*
the nub: only a 4-byte id ever crosses the wire.  Reverse execution is
then rr-style replay: restore the nearest earlier checkpoint and re-run
forward deterministically to just before the present.

The classic workflow this enables:

  1. a program corrupts memory in a loop, then crashes later;
  2. run forward (recording) straight into the SIGSEGV;
  3. ``reverse-continue`` — land back on the last breakpoint hit
     *before* the crash, with all state byte-exact;
  4. inspect locals there, ``reverse-step`` further back, or ``goto``
     any recorded instruction count.

Run:  python examples/time_travel.py
"""

import io

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.machines import SIGSEGV

BOOM_C = """int sum;
void note(int i) { sum = sum + i; }
void poke(int *p) { *p = 42; }       /* the crash */
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        note(i);
    poke((int *)0x7fffffff);
    return 0;
}
"""


def main():
    exe = compile_and_link({"boom.c": BOOM_C}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)

    # start recording: a base checkpoint now, an automatic one every
    # 40 retired instructions from here on
    replay = ldb.enable_time_travel(interval=40)
    print("recording (checkpoint every %d instructions)" % replay.interval)

    ldb.break_at_function("note")
    state = ldb.run_to_stop()
    proc, filename, line = ldb.where_am_i()
    print("first stop: %s () at %s:%d, icount %d"
          % (proc, filename, line, target.current_icount()))

    # run on — through five more breakpoint hits, into the crash
    while state == "stopped" and target.signo != SIGSEGV:
        state = ldb.run_to_stop()
    assert target.signo == SIGSEGV
    print("crashed: signal %d at icount %d (pc 0x%x)"
          % (target.signo, target.current_icount(), target.stop_pc()))

    # back out of the crash onto the most recent breakpoint hit
    hit = ldb.reverse_continue()
    proc, filename, line = ldb.where_am_i()
    print("reverse-continue: %s () at %s:%d, icount %d"
          % (proc, filename, line, hit.icount))
    print("  i  = %d (the last loop iteration)" % ldb.evaluate("i"))
    print("  sum = %d" % ldb.evaluate("sum"))

    # step backwards through source-level stopping points
    back = ldb.reverse_step()
    proc, filename, line = ldb.where_am_i()
    print("reverse-step: %s () at %s:%d, icount %d"
          % (proc, filename, line, back.icount))

    # travel to an absolute position: forward again to the crash site
    ldb.goto_icount(target.current_icount() + 1)  # any recorded icount
    ldb.goto_icount(hit.icount)
    print("goto %d: back on the breakpoint (sigcode %d)"
          % (hit.icount, target.sigcode))

    print("checkpoints recorded:")
    for ck in replay.ring.entries:
        print("  ckpt %-3d icount %-5d pc 0x%-8x %s"
              % (ck.cid, ck.icount, ck.pc, ck.kind))


if __name__ == "__main__":
    main()
