#!/usr/bin/env python
"""Quickstart: compile the paper's fib program and debug it.

Recreates the workflow of the paper's Figs. 1 and 2: compile fib.c with
debugging support (-g), start it under ldb, stop at a stopping point
inside the first for loop, print `i` (a register variable), `n` (a
parameter), and `a` (a static array, printed by the PostScript ARRAY
procedure), evaluate expressions, and continue to completion.

Run:  python examples/quickstart.py [arch]
      arch in {rmips, rmipsel, rsparc, rm68k, rvax}; default rmips
"""

import sys

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

FIB_C = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


def main():
    arch = sys.argv[1] if len(sys.argv) > 1 else "rmips"
    print("=== compiling fib.c for %s with -g ===" % arch)
    exe = compile_and_link({"fib.c": FIB_C}, arch, debug=True)
    print("text: %d bytes, data: %d bytes, entry: 0x%x"
          % (len(exe.text), len(exe.data), exe.entry))

    print("\n=== starting the target under ldb ===")
    ldb = Ldb()
    target = ldb.load_program(exe)
    print("target %s (%s): %s before main" % (target.name, target.arch_name,
                                              target.state))

    print("\n=== breakpoint at stopping point 7 of fib (i++) ===")
    address = ldb.break_at_stop("fib", 7)
    print("planted at 0x%x (overwrote the compiler's no-op)" % address)
    ldb.run_to_stop()
    proc, filename, line = ldb.where_am_i()
    print("stopped in %s () at %s:%d" % (proc, filename, line))

    print("\n=== printing variables through the abstract-memory DAG ===")
    entry = target.top_frame().resolve("i")
    where = target.location_of(entry, target.top_frame())
    print("i lives at %r (space %r = %s)"
          % (where, where.space,
             "a register" if where.space == "r" else "memory"))
    for name in ("i", "n", "a"):
        sys.stdout.write("%s = " % name)
        sys.stdout.flush()
        ldb.print_variable(name)  # the printer writes to stdout

    print("\n=== expressions via the expression server ===")
    for text in ("n * 2 + 1", "a[i-1] + a[i-2]", "i < n && a[0] == 1"):
        print("(ldb) print %s\n%s" % (text, ldb.evaluate(text)))

    print("\n=== assignment, then continue to completion ===")
    ldb.evaluate("n = 6")
    print("set n = 6; the program now prints only 6 numbers:")
    target.breakpoints.remove_all()
    while ldb.run_to_stop() == "stopped":
        pass
    print("exit status:", target.exit_status)
    print("program output:", target.process.output().strip())


if __name__ == "__main__":
    main()
