#!/usr/bin/env python
"""Event-driven debugging: tracing, conditions, stepping (Sec. 7.1).

The paper's future-work design, implemented: the debugger's internals
are event-driven, and "event-driven debugging subsumes conditional
breakpoints as a special case."  Tools like Dalek — the event-action
debugger the paper cites — sit naturally on this layer.

This example:
  1. traces a loop variable on every hit of a breakpoint without
     stopping (an event handler that resumes);
  2. stops on a *conditional* breakpoint (`i == 6`);
  3. single-steps at source level, over and into calls — all built on
     the no-op breakpoints of Sec. 3.

Run:  python examples/event_tracing.py
"""

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

PROGRAM = """int square(int x) {
    int result = x * x;
    return result;
}
int main(void) {
    int i, total = 0;
    for (i = 1; i <= 8; i++)
        total += square(i);      /* line 8 */
    printf("total=%d\\n", total);
    return 0;
}
"""


def main():
    exe = compile_and_link({"trace.c": PROGRAM}, "rmips", debug=True)
    ldb = Ldb()
    target = ldb.load_program(exe)

    print("=== 1. an event-action trace (auto-continue) ===")
    trace = []

    def tracer(event):
        if event.kind == "breakpoint" and len(trace) < 4:
            value = ldb.evaluate("i", frame=event.frame)
            trace.append(value)
            print("  hit at i=%d, total so far=%d"
                  % (value, ldb.evaluate("total", frame=event.frame)))
            event.resume = True

    ldb.events.on_event(tracer)
    ldb.break_at_line("trace.c", 8)
    event = ldb.events.wait()      # runs until the handler stops resuming
    print("  handler released control at i=%d" % ldb.evaluate("i"))
    ldb.events.handlers.clear()
    target.breakpoints.remove_all()

    print("\n=== 2. a conditional breakpoint (i == 6) ===")
    ldb.break_if("trace.c:8", "i == 6")
    event = ldb.events.wait()
    print("  stopped: i=%d total=%d" % (ldb.evaluate("i"),
                                        ldb.evaluate("total")))
    target.breakpoints.remove_all()
    ldb.events.conditions.clear()

    print("\n=== 3. source-level stepping on top of breakpoints ===")
    step_into = ldb.step()          # lands inside square()
    proc, filename, line = ldb.where_am_i()
    print("  step : now in %s () at %s:%d" % (proc, filename, line))
    step_over = ldb.step_over()     # finishes square, back in main? no —
    proc, filename, line = ldb.where_am_i()
    print("  next : now in %s () at %s:%d" % (proc, filename, line))

    print("\n=== run to completion ===")
    while True:
        event = ldb.events.wait()
        if event.kind == "exit":
            break
    print("exit status:", event.status)
    print("program output:", target.process.output().strip())


if __name__ == "__main__":
    main()
