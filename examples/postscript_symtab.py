#!/usr/bin/env python
"""PostScript symbol tables, up close (paper Sec. 2).

Compiles the paper's fib.c and shows the actual artifacts:

  * the generated PostScript symbol-table source (the S10/S8 entries);
  * the loader table built from nm output;
  * the uplink tree of Fig. 2, reconstructed by walking entries;
  * the stopping points of Fig. 1;
  * a printer procedure (ARRAY) interpreted against an abstract memory.

Run:  python examples/postscript_symtab.py
"""

import io

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.machines import nm
from repro.postscript import new_interp

FIB_C = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


def main():
    exe = compile_and_link({"fib.c": FIB_C}, "rmips", debug=True)
    pssym = exe.compiled_units[0].unit.pssym

    print("=== the generated PostScript symbol table (first entries) ===\n")
    for line in pssym.splitlines()[:8]:
        print("  " + (line if len(line) < 100 else line[:97] + "..."))

    print("\n=== nm output the driver transforms into the loader table ===\n")
    for line in nm(exe).splitlines()[:10]:
        print("  " + line)

    print("\n=== interpreting the loader table ===\n")
    interp = new_interp(stdout=io.StringIO())
    interp.run(loader_table_ps(exe))
    table = interp.pop()
    symtab = table["symtab"]
    print("  architecture: %s" % symtab["architecture"].text)
    print("  procedures:   %s" % ", ".join(
        e["name"].text for e in symtab["procs"]))
    print("  anchors:      %s" % ", ".join(
        a.text for a in symtab["anchors"]))

    print("\n=== the uplink tree of Fig. 2 ===\n")
    fib = symtab["externs"]["fib"]
    # loci arrive deferred (a quoted string, Sec. 5); force them the way
    # ldb's symbol-table layer does
    interp.push_dict(interp.systemdict["ArchDicts"]["rmips"])
    interp.call(fib["loci"])
    loci = list(interp.pop())
    interp.pop_dict_stack()
    print("  fib has %d stopping points (Fig. 1 shows 14)" % len(loci))
    seen = {}
    for index, stop in enumerate(loci):
        entry = stop["syms"]
        chain = []
        while entry is not None:
            chain.append(entry["name"].text)
            entry = entry.get("uplink")
        print("  stop %2d at line %2d: visible %s"
              % (index, stop["sourcey"], " -> ".join(chain) or "(params only)"))

    print("\n=== a type dictionary and its printer procedure ===\n")
    a_entry = fib["statics"]["a"]
    a_type = a_entry["type"]
    print("  decl      : %s" % a_type["decl"].text.replace("%s", "a"))
    print("  elemsize  : %s   arraysize: %s"
          % (a_type["elemsize"], a_type["arraysize"]))
    print("  printer   : %r  (deferred: scanned as a string)"
          % a_type["printer"])
    print("  where     : %r  (LazyData: resolved via the anchor symbol)"
          % a_entry["where"])


if __name__ == "__main__":
    main()
