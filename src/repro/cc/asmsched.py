"""The rmips assembler pass: load-delay-slot scheduling.

The rmips simulator enforces R3000 load-delay semantics (an instruction
in a load's delay slot reads the *old* register value), so this pass is
a correctness requirement, exactly like the real MIPS assembler.

For every integer load whose next instruction consumes (or clobbers) the
loaded register, the pass either

* **fills** the slot by moving the immediately preceding independent ALU
  instruction after the load, or
* **pads** with a nop.

Scheduling regions are what the paper describes (Sec. 3): when compiled
for debugging, the program may stop before any top-level expression, so
instructions may be rearranged only *between stopping points*; without
debugging, only basic-block leaders bound the regions.  The restricted
regions leave delay slots the scheduler cannot fill — the paper measures
this at 13% extra MIPS code, independent of the explicit no-ops.
"""

from __future__ import annotations

from typing import List, Set, Tuple, Union

from ..machines.isa import Insn, Label

_INT_LOADS = frozenset(["lw", "lh", "lhu", "lb", "lbu"])
_CONTROL = frozenset(["beq", "bne", "blez", "bgtz", "bltz", "bgez",
                      "j", "jal", "jr", "jalr", "syscall", "break"])
_STORES = frozenset(["sw", "sh", "sb", "swc1", "sdc1"])
_FP_ONLY = frozenset(["fadd", "fsub", "fmul", "fdiv", "negd", "movd",
                      "lwc1", "ldc1"])
#: instructions the scheduler may move: pure integer ALU only — they
#: carry no floating-point or memory dependences
_INT_ALU = frozenset(["add", "sub", "mul", "div", "rem", "divu", "remu",
                      "and", "or", "xor", "nor", "sll", "srl", "sra",
                      "slli", "srli", "srai", "slt", "sltu", "seq", "sne",
                      "addi", "ori", "lui"])


class SchedStats:
    """What the pass did — consumed by bench_mips_sched."""

    def __init__(self):
        self.loads = 0
        self.hazards = 0
        self.filled = 0
        self.nops_inserted = 0

    def __repr__(self) -> str:
        return ("<sched loads=%d hazards=%d filled=%d nops=%d>"
                % (self.loads, self.hazards, self.filled, self.nops_inserted))


def reg_uses(insn: Insn) -> Set[int]:
    """Integer registers an rmips instruction reads."""
    op = insn.op
    uses: Set[int] = set()
    if op in ("nop", "break", "j", "jal", "lui"):
        return uses
    if op == "syscall":
        return set(range(32))  # the OS may read anything
    if op in ("jr", "jalr"):
        return {insn.rs}
    if op in _INT_LOADS or op in ("lwc1", "ldc1"):
        return {insn.rs}
    if op in ("sw", "sh", "sb"):
        return {insn.rd, insn.rs}
    if op in ("swc1", "sdc1"):
        return {insn.rs}
    if op in ("beq", "bne"):
        return {insn.rd, insn.rs}
    if op in ("blez", "bgtz", "bltz", "bgez"):
        return {insn.rd}
    if op in ("addi", "ori", "slli", "srli", "srai"):
        return {insn.rs}
    if op in ("cvtdw",):
        return {insn.rs}
    if op in ("cvtwd", "fslt", "fsle", "fseq"):
        return set()
    if op in _FP_ONLY:
        return set()
    # three-register ALU
    return {insn.rs, insn.rt}


def reg_defs(insn: Insn) -> Set[int]:
    """Integer registers an rmips instruction writes."""
    op = insn.op
    if op in ("nop", "break", "j", "jr"):
        return set()
    if op == "syscall":
        return {2}  # return value convention
    if op in ("jal", "jalr"):
        return {31}
    if op in _STORES or op in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
        return set()
    if op in ("lwc1", "ldc1", "cvtdw") or op in ("fadd", "fsub", "fmul",
                                                 "fdiv", "negd", "movd"):
        return set()
    return {insn.rd} if insn.rd is not None else set()


def _is_boundary(item: Union[Insn, Label], debug: bool) -> bool:
    """Is this item a scheduling-region boundary?"""
    if isinstance(item, Label):
        if item.stop_index is not None:
            return debug  # stopping points bound regions only under -g
        return True
    return item.op in _CONTROL


def _can_fill_slot(prev: Insn, load: Insn) -> bool:
    """May ``prev`` move after ``load`` into its delay slot?"""
    if prev.op not in _INT_ALU:
        return False
    defs = reg_defs(prev)
    if load.rs in defs or load.rd in defs:
        return False
    # prev reading load.rd is fine: in the slot it still sees the old value
    return True


def schedule(text: List[Union[Insn, Label]], debug: bool) -> Tuple[List[Union[Insn, Label]], SchedStats]:
    """Run the delay-slot pass; returns (new text, statistics)."""
    stats = SchedStats()
    out: List[Union[Insn, Label]] = []
    items = list(text)
    i = 0
    while i < len(items):
        item = items[i]
        out.append(item)
        i += 1
        if not isinstance(item, Insn) or item.op not in _INT_LOADS:
            continue
        stats.loads += 1
        load = item
        hazard = _next_consumes(items, i, load, debug)
        if not hazard:
            continue
        stats.hazards += 1
        # Try to fill the slot with an independent ALU instruction from
        # the surrounding region: first one from before the load, then
        # one from after it (typically the next statement's setup code —
        # exactly the motion that stopping points forbid under -g).
        # Transparent labels may be crossed, region boundaries may not.
        filled = _fill_from_region(out, load, debug) \
            or _fill_from_ahead(out, items, i, load, debug)
        if filled:
            stats.filled += 1
        else:
            out.append(Insn("nop"))
            stats.nops_inserted += 1
    return out, stats


def _fill_from_ahead(out, items, start: int, load: Insn, debug: bool,
                     window: int = 10) -> bool:
    """Hoist a later independent ALU instruction into the load's slot."""
    forbidden = reg_uses(load) | reg_defs(load)
    crossed_defs = set()
    crossed_touch = set()
    j = start
    steps = 0
    while j < len(items) and steps < window:
        item = items[j]
        if _is_boundary(item, debug):
            return False
        if isinstance(item, Label):
            j += 1
            continue
        steps += 1
        candidate_ok = (
            item.op in _INT_ALU
            and not ((reg_uses(item) | reg_defs(item)) & forbidden)
            and not (reg_uses(item) & crossed_defs)
            and not (reg_defs(item) & crossed_touch)
            and not _hoist_breaks_slot(items, j))
        if candidate_ok:
            out.append(items.pop(j))
            return True
        crossed_defs |= reg_defs(item)
        crossed_touch |= reg_uses(item) | reg_defs(item)
        j += 1
    return False


def _hoist_breaks_slot(items, j: int) -> bool:
    """Would removing items[j] put a conflicting insn into the delay
    slot of a load immediately before it?"""
    prev = j - 1
    while prev >= 0 and isinstance(items[prev], Label):
        prev -= 1
    if prev < 0 or not isinstance(items[prev], Insn) \
            or items[prev].op not in _INT_LOADS:
        return False
    loaded = items[prev].rd
    succ = j + 1
    while succ < len(items) and isinstance(items[succ], Label):
        succ += 1
    if succ >= len(items):
        return True
    nxt = items[succ]
    return loaded in reg_uses(nxt) or loaded in reg_defs(nxt) \
        or nxt.op == "syscall"


def _fill_from_region(out, load: Insn, debug: bool, window: int = 16) -> bool:
    """Move an independent earlier ALU instruction into the load's slot.

    Only register-to-register instructions move (never loads, stores, or
    control), so crossing memory operations is safe; register
    independence with everything crossed is tracked in the blocked sets.
    Removing a candidate that sits in *another* load's delay slot could
    reintroduce a hazard there, so such candidates are checked against
    their new successor.
    """
    blocked_defs = reg_uses(load) | reg_defs(load)
    blocked_uses = reg_defs(load)
    index = len(out) - 2  # the item just before the load
    steps = 0
    while index >= 0 and steps < window:
        item = out[index]
        if _is_boundary(item, debug):
            return False
        if isinstance(item, Label):
            index -= 1
            continue
        steps += 1
        if _can_fill_slot(item, load) \
                and not (reg_defs(item) & blocked_defs) \
                and not (reg_uses(item) & blocked_uses) \
                and not _removal_breaks_earlier_slot(out, index):
            out.append(out.pop(index))
            return True
        # crossing this instruction adds register constraints
        blocked_defs |= reg_uses(item) | reg_defs(item)
        blocked_uses |= reg_defs(item)
        index -= 1
    return False


def _removal_breaks_earlier_slot(out, index: int) -> bool:
    """Would removing out[index] put a conflicting insn into the delay
    slot of the load just before it?"""
    prev = index - 1
    while prev >= 0 and isinstance(out[prev], Label):
        prev -= 1
    if prev < 0 or not isinstance(out[prev], Insn) \
            or out[prev].op not in _INT_LOADS:
        return False
    loaded = out[prev].rd
    succ = index + 1
    while succ < len(out) and isinstance(out[succ], Label):
        succ += 1
    if succ >= len(out):
        return True  # the pending hazard load becomes the successor
    nxt = out[succ]
    return loaded in reg_uses(nxt) or loaded in reg_defs(nxt) \
        or nxt.op == "syscall"


def _next_consumes(items, i: int, load: Insn, debug: bool) -> bool:
    """Does the instruction in the load's delay slot interact with it?"""
    j = i
    while j < len(items) and isinstance(items[j], Label):
        j += 1
    if j >= len(items):
        return True  # conservatively pad at end of text
    nxt = items[j]
    if nxt.op == "syscall":
        return True
    uses = reg_uses(nxt)
    defs = reg_defs(nxt)
    return load.rd in uses or load.rd in defs


def count_insns(text) -> int:
    return sum(1 for item in text if isinstance(item, Insn))
