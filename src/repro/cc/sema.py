"""Semantic analysis: name resolution, typing, implicit conversions.

Output is the same AST annotated with ``ctype`` on every expression and
``symbol`` on identifiers, plus a :class:`~repro.cc.symtab.UnitInfo`
recording the per-function scope chains the symbol-table emitters need.

The scope chain construction mirrors the paper (Sec. 2): each local or
parameter's ``uplink`` is the previously declared symbol visible at its
declaration; block exit restores the chain, so symbols in sibling blocks
share an uplink — the tree of Fig. 2.
"""

from __future__ import annotations

from typing import Optional

from . import tree
from .ctypes_ import (
    ArrayType,
    CType,
    EnumType,
    FunctionType,
    PointerType,
    StructType,
    TypeSystem,
    UnionType,
    compatible,
)
from .lexer import CError
from .symtab import CSymbol, FunctionInfo, Scope, UnitInfo


class Sema:
    def __init__(self, types: TypeSystem, unit_name: str = "<unit>"):
        self.types = types
        self.globals = Scope()
        self.scope = self.globals
        self.unit = UnitInfo(unit_name)
        self.current_fn: Optional[FunctionInfo] = None
        self.chain: Optional[CSymbol] = None
        self._static_counter = 0
        self._declare_builtins()

    def _declare_builtins(self) -> None:
        t = self.types
        charp = PointerType(t.char)
        for name, ftype in (
            ("printf", FunctionType(t.int, [("fmt", charp)], varargs=True)),
            ("putchar", FunctionType(t.int, [("c", t.int)])),
            ("exit", FunctionType(t.void, [("status", t.int)])),
        ):
            sym = CSymbol(name, ftype, "func")
            sym.label = "_" + name
            self.globals.declare(sym)

    # -- driver -------------------------------------------------------------

    def analyze(self, unit: tree.TranslationUnit) -> UnitInfo:
        self.unit.name = unit.name
        for decl in unit.decls:
            if isinstance(decl, tree.FuncDef):
                self.function_def(decl)
            elif isinstance(decl, tree.VarDecl):
                self.global_decl(decl)
        return self.unit

    def error(self, message: str, node=None) -> CError:
        pos = getattr(node, "pos", None)
        if pos is not None:
            return CError(message, pos.filename, pos.line, pos.col)
        return CError(message)

    # -- declarations ----------------------------------------------------------

    def global_decl(self, decl: tree.VarDecl) -> None:
        if decl.storage == "typedef":
            return
        if decl.storage == "enumconst":
            sym = CSymbol(decl.name, self.types.int, "enumconst", decl.pos)
            sym.value = decl.init.value
            self.globals.declare(sym)
            decl.symbol = sym
            return
        existing = self.globals.lookup_here(decl.name)
        if isinstance(decl.ctype, FunctionType):
            if existing is None:
                sym = CSymbol(decl.name, decl.ctype, "func", decl.pos)
                sym.label = "_" + decl.name
                self.globals.declare(sym)
            decl.symbol = existing or self.globals.lookup_here(decl.name)
            return
        if existing is not None and decl.init is None:
            decl.symbol = existing
            return
        sclass = {"static": "static", "extern": "extern"}.get(decl.storage, "global")
        if existing is not None:
            sym = existing
            if sym.sclass == "extern" and sclass != "extern":
                sym.sclass = sclass
        else:
            sym = CSymbol(decl.name, decl.ctype, sclass, decl.pos)
            sym.label = "_" + decl.name
            self.globals.declare(sym)
        decl.symbol = sym
        if decl.init is not None:
            sym.defined = True
            self.unit.global_inits[sym.uid] = self.check_initializer(decl, sym)
        if sclass == "extern":
            self.unit.externs.append(sym)
        elif sclass == "static":
            if sym not in self.unit.statics:
                self.unit.statics.append(sym)
        else:
            if sym not in self.unit.globals:
                self.unit.globals.append(sym)

    def check_initializer(self, decl: tree.VarDecl, sym: CSymbol):
        """Type-check a static initializer; return a folded form.

        Scalars fold to int/float; char arrays accept string literals;
        arrays/structs accept brace lists of constants.
        """
        return self._fold_init(decl.init, sym.ctype, decl)

    def _fold_init(self, init, ctype: CType, node):
        if isinstance(init, list):
            if isinstance(ctype, ArrayType):
                folded = [self._fold_init(item, ctype.elem, node) for item in init]
                if ctype.count is None:
                    ctype.count = len(folded)
                    ctype.size = ctype.elem.size * len(folded)
                if len(folded) > (ctype.count or 0):
                    raise self.error("too many initializers", node)
                return folded
            if isinstance(ctype, StructType):
                if len(init) > len(ctype.fields):
                    raise self.error("too many initializers", node)
                return [self._fold_init(item, f.ctype, node)
                        for item, f in zip(init, ctype.fields)]
            raise self.error("brace initializer for scalar", node)
        if isinstance(init, tree.StringLit):
            if isinstance(ctype, ArrayType):
                if ctype.count is None:
                    ctype.count = len(init.value) + 1
                    ctype.size = ctype.count
                return init.value
            if ctype.is_pointer():
                return init  # pointer to string data; emitter handles
            raise self.error("string initializer for non-array", node)
        value = self._const_value(init)
        if isinstance(value, CSymbol):
            if ctype.is_pointer():
                return value  # emitted as a relocation to the symbol
            raise self.error("address constant initializes a non-pointer", node)
        if ctype.is_float():
            return float(value)
        if ctype.is_integer() or ctype.is_pointer() or isinstance(ctype, EnumType):
            return int(value)
        raise self.error("bad initializer", node)

    def _const_value(self, expr: tree.Expr):
        if isinstance(expr, tree.IntLit):
            return expr.value
        if isinstance(expr, tree.FloatLit):
            return expr.value
        if isinstance(expr, tree.Unary) and expr.op == "-":
            return -self._const_value(expr.operand)
        if isinstance(expr, tree.Ident):
            sym = self.globals.lookup(expr.name)
            if sym is not None and sym.sclass == "enumconst":
                return sym.value
            if sym is not None and sym.sclass in ("func", "global", "static",
                                                  "extern"):
                return sym  # an address constant; becomes a relocation
        if isinstance(expr, tree.Unary) and expr.op == "&" \
                and isinstance(expr.operand, tree.Ident):
            sym = self.globals.lookup(expr.operand.name)
            if sym is not None and sym.label:
                return sym
        if isinstance(expr, tree.SizeofType):
            return expr.target_type.size
        if isinstance(expr, tree.Binary):
            from .parser import _fold_binary
            return _fold_binary(expr.op, self._const_value(expr.left),
                                self._const_value(expr.right))
        if isinstance(expr, tree.Cast):
            return self._const_value(expr.operand)
        raise self.error("initializer is not constant", expr)

    # -- functions ---------------------------------------------------------------

    def function_def(self, fn: tree.FuncDef) -> None:
        existing = self.globals.lookup_here(fn.name)
        if existing is not None and existing.sclass == "func":
            sym = existing
            sym.ctype = fn.ftype
        else:
            sym = CSymbol(fn.name, fn.ftype, "func", fn.pos)
            sym.label = "_" + fn.name
            self.globals.declare(sym)
        sym.defined = True
        if fn.storage == "static":
            sym.sclass = "func"  # static functions still get labels
        fn.symbol = sym

        info = FunctionInfo(sym)
        self.current_fn = info
        self.unit.functions.append(info)
        self.chain = None

        self.scope = Scope(self.globals)
        for pname, ptype in fn.ftype.params:
            if pname is None:
                raise self.error("unnamed parameter in definition", fn)
            psym = CSymbol(pname, ptype, "param", fn.pos)
            psym.uplink = self.chain
            self.chain = psym
            self.scope.declare(psym)
            info.params.append(psym)
        info.param_chain = self.chain

        self.block(fn.body, new_scope=False)

        self.scope = self.globals
        self.current_fn = None
        self.chain = None

    # -- statements -----------------------------------------------------------------

    def block(self, blk: tree.Block, new_scope: bool = True) -> None:
        saved_chain = self.chain
        if new_scope:
            self.scope = Scope(self.scope)
        for item in blk.items:
            if isinstance(item, tree.VarDecl):
                self.local_decl(item)
            else:
                self.statement(item)
        if new_scope:
            self.scope = self.scope.parent
        self.chain = saved_chain

    def local_decl(self, decl: tree.VarDecl) -> None:
        info = self.current_fn
        if decl.storage == "typedef":
            return
        if decl.storage == "enumconst":
            sym = CSymbol(decl.name, self.types.int, "enumconst", decl.pos)
            sym.value = decl.init.value
            self.scope.declare(sym)
            decl.symbol = sym
            return
        if decl.storage == "extern":
            sym = CSymbol(decl.name, decl.ctype, "extern", decl.pos)
            sym.label = "_" + decl.name
            self.scope.declare(sym)
            decl.symbol = sym
            return
        if decl.storage == "static":
            self._static_counter += 1
            sym = CSymbol(decl.name, decl.ctype, "static", decl.pos)
            sym.label = "_%s_%d" % (decl.name, self._static_counter)
            self.scope.declare(sym)
            sym.uplink = self.chain
            self.chain = sym
            info.statics.append(sym)
            decl.symbol = sym
            if decl.init is not None:
                self.unit.global_inits[sym.uid] = self.check_initializer(decl, sym)
            return
        sclass = "register" if decl.storage == "register" else "local"
        sym = CSymbol(decl.name, decl.ctype, sclass, decl.pos)
        sym.uplink = self.chain
        self.chain = sym
        self.scope.declare(sym)
        info.locals.append(sym)
        decl.symbol = sym
        if decl.init is not None:
            if isinstance(decl.init, (list, tree.StringLit)) and not decl.ctype.is_scalar():
                raise self.error("aggregate initializers on locals are not supported",
                                 decl)
            decl.init = self.coerce(self.expr(decl.init), sym.ctype, decl)

    def statement(self, stmt: tree.Stmt) -> None:
        info = self.current_fn
        info.chain_at[id(stmt)] = self.chain
        if isinstance(stmt, tree.Block):
            self.block(stmt)
        elif isinstance(stmt, tree.ExprStmt):
            stmt.expr = self.expr(stmt.expr)
        elif isinstance(stmt, tree.If):
            stmt.cond = self.scalar(self.expr(stmt.cond))
            self.statement(stmt.then)
            if stmt.els is not None:
                self.statement(stmt.els)
        elif isinstance(stmt, tree.While):
            stmt.cond = self.scalar(self.expr(stmt.cond))
            self.statement(stmt.body)
        elif isinstance(stmt, tree.DoWhile):
            self.statement(stmt.body)
            stmt.cond = self.scalar(self.expr(stmt.cond))
        elif isinstance(stmt, tree.For):
            if stmt.init is not None:
                stmt.init = self.expr(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self.scalar(self.expr(stmt.cond))
            if stmt.step is not None:
                stmt.step = self.expr(stmt.step)
            self.statement(stmt.body)
        elif isinstance(stmt, tree.Return):
            ret = self.current_fn.symbol.ctype.ret
            if stmt.value is not None:
                if ret.is_void():
                    raise self.error("return with a value in void function", stmt)
                stmt.value = self.coerce(self.expr(stmt.value), ret, stmt)
            elif not ret.is_void():
                raise self.error("return without a value", stmt)
        elif isinstance(stmt, tree.Switch):
            stmt.expr = self.coerce(self.expr(stmt.expr), self.types.int, stmt)
            self.statement(stmt.body)
        elif isinstance(stmt, tree.Case):
            stmt.resolved = self._const_value(stmt.value)
        elif isinstance(stmt, (tree.Break, tree.Continue, tree.Default, tree.Empty)):
            pass
        else:
            raise self.error("unknown statement %r" % stmt, stmt)

    # -- expressions ---------------------------------------------------------------

    def expr(self, e: tree.Expr) -> tree.Expr:
        method = getattr(self, "_expr_" + type(e).__name__, None)
        if method is None:
            raise self.error("unknown expression %r" % e, e)
        return method(e)

    def _expr_IntLit(self, e: tree.IntLit) -> tree.Expr:
        e.ctype = self.types.uint if e.value >= 1 << 31 else self.types.int
        return e

    def _expr_FloatLit(self, e: tree.FloatLit) -> tree.Expr:
        e.ctype = self.types.double
        return e

    def _expr_StringLit(self, e: tree.StringLit) -> tree.Expr:
        e.ctype = PointerType(self.types.char)
        return e

    def _expr_Ident(self, e: tree.Ident) -> tree.Expr:
        sym = self.scope.lookup(e.name)
        if sym is None:
            raise self.error("undeclared identifier %r" % e.name, e)
        e.symbol = sym
        if sym.sclass == "enumconst":
            lit = tree.IntLit(sym.value, e.pos)
            lit.ctype = self.types.int
            return lit
        e.ctype = sym.ctype
        return e

    def _expr_Unary(self, e: tree.Unary) -> tree.Expr:
        op = e.op
        if op == "sizeof":
            operand = self.expr(e.operand)
            lit = tree.IntLit(self._sizeof_operand(operand), e.pos)
            lit.ctype = self.types.uint
            return lit
        e.operand = self.expr(e.operand)
        t = e.operand.ctype
        if op in ("-", "+"):
            if not t.is_arith():
                raise self.error("unary %s on non-arithmetic" % op, e)
            e.operand = self.promote_expr(e.operand)
            e.ctype = e.operand.ctype
        elif op == "~":
            if not t.is_integer() and not isinstance(t, EnumType):
                raise self.error("~ on non-integer", e)
            e.operand = self.promote_expr(e.operand)
            e.ctype = e.operand.ctype
        elif op == "!":
            self.scalar(e.operand)
            e.ctype = self.types.int
        elif op == "*":
            t = self.decay_type(t)
            if not t.is_pointer():
                raise self.error("dereference of non-pointer", e)
            if t.ref.is_void():
                raise self.error("dereference of void *", e)
            e.ctype = t.ref
        elif op == "&":
            if not self.is_lvalue(e.operand) and not isinstance(
                    e.operand.ctype, (ArrayType, FunctionType)):
                raise self.error("& of non-lvalue", e)
            inner = e.operand.ctype
            if isinstance(inner, ArrayType):
                e.ctype = PointerType(inner.elem)
            elif isinstance(inner, FunctionType):
                e.ctype = PointerType(inner)
            else:
                e.ctype = PointerType(inner)
        elif op in ("pre++", "pre--", "post++", "post--"):
            if not self.is_lvalue(e.operand):
                raise self.error("%s of non-lvalue" % op, e)
            t = e.operand.ctype
            if not (t.is_arith() or t.is_pointer() or isinstance(t, EnumType)):
                raise self.error("%s on bad type" % op, e)
            e.ctype = t
        else:
            raise self.error("unknown unary %r" % op, e)
        return e

    def _sizeof_operand(self, operand: tree.Expr) -> int:
        return operand.ctype.size

    def _expr_SizeofType(self, e: tree.SizeofType) -> tree.Expr:
        lit = tree.IntLit(e.target_type.size, e.pos)
        lit.ctype = self.types.uint
        return lit

    def _expr_Binary(self, e: tree.Binary) -> tree.Expr:
        op = e.op
        e.left = self.expr(e.left)
        e.right = self.expr(e.right)
        lt = self.decay_type(e.left.ctype)
        rt = self.decay_type(e.right.ctype)
        if op in ("&&", "||"):
            self.scalar(e.left)
            self.scalar(e.right)
            e.ctype = self.types.int
            return e
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lt.is_pointer() or rt.is_pointer():
                e.ctype = self.types.int
                return e
            common = self.types.usual_arith(self._arith(lt, e), self._arith(rt, e))
            e.left = self.coerce(e.left, common, e)
            e.right = self.coerce(e.right, common, e)
            e.ctype = self.types.int
            return e
        if op == "+":
            if lt.is_pointer() and rt.is_integer():
                e.ctype = lt
                return e
            if rt.is_pointer() and lt.is_integer():
                e.ctype = rt
                return e
        if op == "-":
            if lt.is_pointer() and rt.is_integer():
                e.ctype = lt
                return e
            if lt.is_pointer() and rt.is_pointer():
                e.ctype = self.types.int
                return e
        if op in ("<<", ">>"):
            e.left = self.promote_expr(e.left)
            e.right = self.coerce(e.right, self.types.int, e)
            e.ctype = e.left.ctype
            return e
        if op in ("%", "&", "|", "^"):
            if not (lt.is_integer() or isinstance(lt, EnumType)) or \
               not (rt.is_integer() or isinstance(rt, EnumType)):
                raise self.error("integer operands required for %r" % op, e)
        common = self.types.usual_arith(self._arith(lt, e), self._arith(rt, e))
        e.left = self.coerce(e.left, common, e)
        e.right = self.coerce(e.right, common, e)
        e.ctype = common
        return e

    def _arith(self, t: CType, node) -> CType:
        if isinstance(t, EnumType):
            return self.types.int
        if not t.is_arith():
            raise self.error("arithmetic operand required", node)
        return t

    def _expr_Assign(self, e: tree.Assign) -> tree.Expr:
        e.target = self.expr(e.target)
        if not self.is_lvalue(e.target):
            raise self.error("assignment to non-lvalue", e)
        if isinstance(e.target.ctype, ArrayType):
            raise self.error("assignment to array", e)
        e.value = self.expr(e.value)
        target_type = e.target.ctype
        if e.op == "=":
            if isinstance(target_type, (StructType, UnionType)):
                if e.value.ctype is not target_type:
                    raise self.error("struct assignment type mismatch", e)
            else:
                e.value = self.coerce(e.value, target_type, e)
        else:
            # compound assignment: target op= value
            vt = self.decay_type(e.value.ctype)
            if target_type.is_pointer() and e.op in ("+=", "-="):
                if not vt.is_integer():
                    raise self.error("pointer %s needs integer" % e.op, e)
            else:
                if not target_type.is_scalar() and not isinstance(target_type, EnumType):
                    raise self.error("bad compound assignment", e)
                e.value = self.coerce(e.value, self._compound_type(target_type), e)
        e.ctype = target_type
        return e

    def _compound_type(self, target_type: CType) -> CType:
        if isinstance(target_type, EnumType):
            return self.types.int
        return target_type

    def _expr_Cond(self, e: tree.Cond) -> tree.Expr:
        e.cond = self.scalar(self.expr(e.cond))
        e.then = self.expr(e.then)
        e.els = self.expr(e.els)
        tt = self.decay_type(e.then.ctype)
        et = self.decay_type(e.els.ctype)
        if tt.is_arith() and et.is_arith():
            common = self.types.usual_arith(tt, et)
            e.then = self.coerce(e.then, common, e)
            e.els = self.coerce(e.els, common, e)
            e.ctype = common
        elif tt.is_pointer():
            e.ctype = tt
        elif et.is_pointer():
            e.ctype = et
        elif tt.is_void() and et.is_void():
            e.ctype = tt
        else:
            raise self.error("incompatible conditional arms", e)
        return e

    def _expr_Call(self, e: tree.Call) -> tree.Expr:
        # implicit declaration: calling an unknown name declares int f()
        if isinstance(e.fn, tree.Ident) and self.scope.lookup(e.fn.name) is None:
            ftype = FunctionType(self.types.int, [], varargs=True, oldstyle=True)
            sym = CSymbol(e.fn.name, ftype, "func", e.fn.pos)
            sym.label = "_" + e.fn.name
            self.globals.declare(sym)
        e.fn = self.expr(e.fn)
        ftype = e.fn.ctype
        if isinstance(ftype, PointerType) and isinstance(ftype.ref, FunctionType):
            ftype = ftype.ref
        if not isinstance(ftype, FunctionType):
            raise self.error("call of non-function", e)
        e.args = [self.expr(arg) for arg in e.args]
        params = ftype.params
        if not ftype.oldstyle:
            if len(e.args) < len(params) or \
               (len(e.args) > len(params) and not ftype.varargs):
                raise self.error("wrong number of arguments", e)
        for i, arg in enumerate(e.args):
            if i < len(params) and not ftype.oldstyle:
                e.args[i] = self.coerce(arg, params[i][1], e)
            else:
                e.args[i] = self.default_promote(arg)
        e.ctype = ftype.ret
        return e

    def _expr_Index(self, e: tree.Index) -> tree.Expr:
        e.base = self.expr(e.base)
        e.index = self.coerce(self.expr(e.index), self.types.int, e)
        bt = self.decay_type(e.base.ctype)
        if not bt.is_pointer():
            raise self.error("subscript of non-array", e)
        e.ctype = bt.ref
        return e

    def _expr_Member(self, e: tree.Member) -> tree.Expr:
        e.base = self.expr(e.base)
        bt = e.base.ctype
        if e.arrow:
            bt = self.decay_type(bt)
            if not bt.is_pointer() or not isinstance(bt.ref, StructType):
                raise self.error("-> on non-struct-pointer", e)
            stype = bt.ref
        else:
            if not isinstance(bt, StructType):
                raise self.error(". on non-struct", e)
            stype = bt
        field = stype.field(e.name)
        if field is None:
            raise self.error("no member %r in %s" % (e.name, stype), e)
        e.field = field
        e.ctype = field.ctype
        return e

    def _expr_Cast(self, e: tree.Cast) -> tree.Expr:
        e.operand = self.expr(e.operand)
        target = e.target_type
        source = self.decay_type(e.operand.ctype)
        if not (target.is_scalar() or target.is_void()
                or isinstance(target, EnumType)):
            raise self.error("bad cast target", e)
        if not (source.is_scalar() or isinstance(source, EnumType)):
            raise self.error("bad cast operand", e)
        e.ctype = target
        return e

    def _expr_Comma(self, e: tree.Comma) -> tree.Expr:
        e.left = self.expr(e.left)
        e.right = self.expr(e.right)
        e.ctype = e.right.ctype
        return e

    # -- helpers -----------------------------------------------------------------

    def decay_type(self, t: CType) -> CType:
        if isinstance(t, ArrayType):
            return PointerType(t.elem)
        if isinstance(t, FunctionType):
            return PointerType(t)
        return t

    def is_lvalue(self, e: tree.Expr) -> bool:
        if isinstance(e, tree.Ident):
            return e.symbol is not None and e.symbol.sclass != "func" \
                and not isinstance(e.symbol.ctype, FunctionType)
        if isinstance(e, tree.Unary) and e.op == "*":
            return True
        if isinstance(e, tree.Index):
            return True
        if isinstance(e, tree.Member):
            return True
        return False

    def scalar(self, e: tree.Expr) -> tree.Expr:
        t = self.decay_type(e.ctype)
        if not (t.is_scalar() or isinstance(t, EnumType)):
            raise self.error("scalar required", e)
        return e

    def promote_expr(self, e: tree.Expr) -> tree.Expr:
        promoted = self.types.promote(e.ctype)
        return self.coerce(e, promoted, e)

    def default_promote(self, e: tree.Expr) -> tree.Expr:
        """Default argument promotions for varargs calls."""
        t = self.decay_type(e.ctype)
        if t.is_float() and t.size == 4:
            return self.coerce(e, self.types.double, e)
        if t.is_integer() and t.size < 4:
            return self.coerce(e, self.types.int, e)
        if isinstance(t, EnumType):
            return self.coerce(e, self.types.int, e)
        return e

    def coerce(self, e: tree.Expr, target: CType, node) -> tree.Expr:
        source = self.decay_type(e.ctype)
        if source is target:
            return e
        if isinstance(target, EnumType):
            target = self.types.int
        if isinstance(source, EnumType):
            source = self.types.int
        if target.is_pointer() and isinstance(e, tree.IntLit) and e.value == 0:
            e.ctype = target  # the null pointer constant
            return e
        from .ctypes_ import _same
        if _same(source, target):
            if e.ctype is not target:
                e.ctype = target if not isinstance(e.ctype, (ArrayType, FunctionType)) else e.ctype
            return e
        if not compatible(target, source):
            raise self.error("cannot convert %s to %s" % (source, target), node)
        cast = tree.Cast(target, e, getattr(e, "pos", None), implicit=True)
        cast.ctype = target
        return cast
