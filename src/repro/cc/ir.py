"""The rcc intermediate representation — the lcc IR analog.

Trees of operators with type-kind suffixes, in the spirit of lcc's
code-generation interface [Fraser & Hanson 1991].  The same IR serves
two consumers, exactly as in the paper:

* the four machine code generators (:mod:`repro.cc.gen`);
* the expression server, whose IR trees are *rewritten into PostScript*
  rather than passed to a back end (paper Sec. 3; the rewriter lives in
  :mod:`repro.ldb.exprserver`).

Kinds: ``i1 i2 i4`` signed, ``u1 u2 u4`` unsigned, ``f4 f8 f10`` floats,
``p`` pointer, ``v`` void, ``b`` block.  The operator vocabulary — each
(op, kind) pair is an operator in lcc's counting — is enumerated by
:func:`all_operators`; the paper puts lcc's count at 112.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: value-producing expression operators and the kinds they come in
_EXPR_OPS = {
    "CNST": ("i1", "i2", "i4", "u1", "u2", "u4", "f4", "f8", "f10", "p"),
    "ADDRG": ("p",),
    "ADDRL": ("p",),
    "ADDRF": ("p",),
    "INDIR": ("i1", "i2", "i4", "u1", "u2", "u4", "f4", "f8", "f10", "p"),
    "CVT": ("i1", "i2", "i4", "u1", "u2", "u4", "f4", "f8", "f10", "p"),
    "NEG": ("i4", "u4", "f4", "f8", "f10"),
    "BCOM": ("i4", "u4"),
    "ADD": ("i4", "u4", "f4", "f8", "f10", "p"),
    "SUB": ("i4", "u4", "f4", "f8", "f10", "p"),
    "MUL": ("i4", "u4", "f4", "f8", "f10"),
    "DIV": ("i4", "u4", "f4", "f8", "f10"),
    "MOD": ("i4", "u4"),
    "BAND": ("i4", "u4"),
    "BOR": ("i4", "u4"),
    "BXOR": ("i4", "u4"),
    "LSH": ("i4", "u4"),
    "RSH": ("i4", "u4"),
    "EQ": ("i4", "u4", "f4", "f8", "f10", "p"),
    "NE": ("i4", "u4", "f4", "f8", "f10", "p"),
    "LT": ("i4", "u4", "f4", "f8", "f10", "p"),
    "LE": ("i4", "u4", "f4", "f8", "f10", "p"),
    "GT": ("i4", "u4", "f4", "f8", "f10", "p"),
    "GE": ("i4", "u4", "f4", "f8", "f10", "p"),
    "CALL": ("i4", "u4", "f4", "f8", "f10", "p", "v"),
    "COND": ("i4", "u4", "f4", "f8", "f10", "p"),
    "ANDAND": ("i4",),
    "OROR": ("i4",),
    "NOT": ("i4",),
}

#: statement-level operators
_STMT_OPS = {
    "ASGN": ("i1", "i2", "i4", "u1", "u2", "u4", "f4", "f8", "f10", "p"),
    "JUMP": ("v",),
    "CJUMP": ("v",),
    "LABEL": ("v",),
    "RET": ("i4", "u4", "f4", "f8", "f10", "p", "v"),
    "STOP": ("v",),
}


def all_operators() -> List[Tuple[str, str]]:
    """Every (op, kind) operator pair — the vocabulary the IR-to-
    PostScript rewriter must cover (paper Sec. 5: lcc's IR has 112)."""
    out = []
    for table in (_EXPR_OPS, _STMT_OPS):
        for op, kinds in table.items():
            out.extend((op, kind) for kind in kinds)
    return out


class IRNode:
    """One IR tree node."""

    __slots__ = ("op", "kind", "kids", "value", "symbol", "target",
                 "from_kind", "negate", "pos", "size")

    def __init__(self, op: str, kind: str = "v", kids: Optional[List["IRNode"]] = None,
                 value=None, symbol=None, target: Optional[str] = None,
                 from_kind: Optional[str] = None, pos=None):
        self.op = op
        self.kind = kind
        self.kids = kids if kids is not None else []
        self.value = value
        self.symbol = symbol
        self.target = target
        self.from_kind = from_kind
        self.negate = False
        self.pos = pos
        self.size = 0  # block-copy size for ASGN b

    def __repr__(self) -> str:
        bits = ["%s.%s" % (self.op, self.kind)]
        if self.value is not None:
            bits.append(repr(self.value))
        if self.symbol is not None:
            bits.append(getattr(self.symbol, "name", str(self.symbol)))
        if self.target is not None:
            bits.append("->%s" % self.target)
        if self.kids:
            bits.append("(%s)" % ", ".join(repr(k) for k in self.kids))
        return "<%s>" % " ".join(bits)


# ------------------------------------------------------------- constructors

def CNST(kind: str, value) -> IRNode:
    return IRNode("CNST", kind, value=value)


def ADDRG(symbol) -> IRNode:
    return IRNode("ADDRG", "p", symbol=symbol)


def ADDRL(symbol) -> IRNode:
    return IRNode("ADDRL", "p", symbol=symbol)


def ADDRF(symbol) -> IRNode:
    return IRNode("ADDRF", "p", symbol=symbol)


def INDIR(kind: str, addr: IRNode) -> IRNode:
    return IRNode("INDIR", kind, [addr])


def ASGN(kind: str, addr: IRNode, value: IRNode) -> IRNode:
    return IRNode("ASGN", kind, [addr, value])


def CVT(kind: str, from_kind: str, kid: IRNode) -> IRNode:
    return IRNode("CVT", kind, [kid], from_kind=from_kind)


def BINOP(op: str, kind: str, left: IRNode, right: IRNode) -> IRNode:
    return IRNode(op, kind, [left, right])


def CALL(kind: str, func, args: List[IRNode]) -> IRNode:
    node = IRNode("CALL", kind, list(args))
    node.symbol = func  # a CSymbol, or an IRNode for indirect calls
    return node


def JUMP(target: str) -> IRNode:
    return IRNode("JUMP", "v", target=target)


def CJUMP(cond: IRNode, target: str, negate: bool = False) -> IRNode:
    node = IRNode("CJUMP", "v", [cond], target=target)
    node.negate = negate
    return node


def LABEL(name: str) -> IRNode:
    return IRNode("LABEL", "v", target=name)


def RET(kind: str, value: Optional[IRNode] = None) -> IRNode:
    return IRNode("RET", kind, [value] if value is not None else [])


def STOP(index: int, pos=None) -> IRNode:
    node = IRNode("STOP", "v", value=index, pos=pos)
    return node


class StopPoint:
    """One stopping point of a function (paper Sec. 2: the loci array)."""

    __slots__ = ("index", "pos", "chain", "label")

    def __init__(self, index: int, pos, chain, label: str):
        self.index = index
        self.pos = pos
        self.chain = chain  # innermost visible CSymbol, or None
        self.label = label  # the code label lcc places at the point

    def __repr__(self) -> str:
        return "<stop %d at %s>" % (self.index, self.pos)


class FuncIR:
    """The IR for one function."""

    def __init__(self, symbol, params, body: List[IRNode],
                 stops: List[StopPoint], locals_, statics):
        self.symbol = symbol
        self.params = params
        self.body = body
        self.stops = stops
        self.locals = locals_
        self.statics = statics

    @property
    def name(self) -> str:
        return self.symbol.name


class UnitIR:
    """The IR for one translation unit."""

    def __init__(self, name: str):
        self.name = name
        self.functions: List[FuncIR] = []
        #: (label, text) string literals
        self.strings: List[Tuple[str, str]] = []
        #: data symbols defined in this unit, with folded initializers
        self.data: List[Tuple[object, object]] = []  # (CSymbol, init or None)
        self.externs: List[object] = []
