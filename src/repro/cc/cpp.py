"""A small C preprocessor for rcc.

Supports the directives the paper's scenario needs — ``#define`` (object-
and function-like), ``#undef``, ``#include "file"``, ``#ifdef`` /
``#ifndef`` / ``#else`` / ``#endif`` — while preserving line structure so
source coordinates in symbol tables stay true.  Macro expansion happens
in place on the line, which is how "a single source location may
correspond to more than one stopping point" (paper Sec. 2): a macro that
expands to several statements puts several stopping points on one line.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Tuple

from .lexer import CError

_NAME = r"[A-Za-z_][A-Za-z0-9_]*"
_DEFINE_RE = re.compile(r"#\s*define\s+(%s)(\(([^)]*)\))?\s*(.*)" % _NAME)
_UNDEF_RE = re.compile(r"#\s*undef\s+(%s)" % _NAME)
_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')
_IFDEF_RE = re.compile(r"#\s*ifdef\s+(%s)" % _NAME)
_IFNDEF_RE = re.compile(r"#\s*ifndef\s+(%s)" % _NAME)
_ELSE_RE = re.compile(r"#\s*else\b")
_ENDIF_RE = re.compile(r"#\s*endif\b")
_WORD_RE = re.compile(_NAME)


class Macro:
    __slots__ = ("name", "params", "body")

    def __init__(self, name: str, params: Optional[List[str]], body: str):
        self.name = name
        self.params = params  # None for object-like macros
        self.body = body


class Preprocessor:
    """One preprocessing run; macros persist across included files."""

    def __init__(self, include_dirs: Optional[List[str]] = None,
                 files: Optional[Dict[str, str]] = None,
                 defines: Optional[Dict[str, str]] = None):
        self.include_dirs = include_dirs if include_dirs is not None else ["."]
        #: in-memory include resolution (tests and the driver use this)
        self.files = files if files is not None else {}
        self.macros: Dict[str, Macro] = {}
        for name, body in (defines or {}).items():
            self.macros[name] = Macro(name, None, body)
        self._include_depth = 0

    # -- driving --------------------------------------------------------------

    def process(self, source: str, filename: str = "<input>") -> str:
        out_lines: List[str] = []
        # condition stack: (parent_active, this_branch_taken, in_else)
        conditions: List[Tuple[bool, bool, bool]] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            stripped = line.lstrip()
            active = all(taken for _p, taken, _e in conditions)
            if stripped.startswith("#"):
                out_lines.append("")  # keep line numbering intact
                self._directive(stripped, conditions, active,
                                filename, lineno, out_lines)
                continue
            if not active:
                out_lines.append("")
                continue
            out_lines.append(self.expand(line, filename, lineno))
        if conditions:
            raise CError("unterminated #ifdef", filename, len(out_lines), 1)
        return "\n".join(out_lines) + "\n"

    def _directive(self, text: str, conditions, active: bool,
                   filename: str, lineno: int, out_lines: List[str]) -> None:
        match = _IFDEF_RE.match(text)
        if match:
            taken = active and match.group(1) in self.macros
            conditions.append((active, taken, False))
            return
        match = _IFNDEF_RE.match(text)
        if match:
            taken = active and match.group(1) not in self.macros
            conditions.append((active, taken, False))
            return
        if _ELSE_RE.match(text):
            if not conditions:
                raise CError("#else without #ifdef", filename, lineno, 1)
            parent, taken, in_else = conditions[-1]
            if in_else:
                raise CError("duplicate #else", filename, lineno, 1)
            conditions[-1] = (parent, parent and not taken, True)
            return
        if _ENDIF_RE.match(text):
            if not conditions:
                raise CError("#endif without #ifdef", filename, lineno, 1)
            conditions.pop()
            return
        if not active:
            return
        match = _DEFINE_RE.match(text)
        if match:
            name, has_params, params_text, body = match.groups()
            params = None
            if has_params is not None:
                params = [p.strip() for p in params_text.split(",") if p.strip()]
            self.macros[name] = Macro(name, params, body.strip())
            return
        match = _UNDEF_RE.match(text)
        if match:
            self.macros.pop(match.group(1), None)
            return
        match = _INCLUDE_RE.match(text)
        if match:
            included = self._read_include(match.group(1), filename, lineno)
            # include bodies join the output; their own line numbers are
            # lost (the paper-era compromise), but macros persist
            out_lines[-1] = self.process_include(included, match.group(1))
            return
        raise CError("unknown directive %r" % text.split()[0],
                     filename, lineno, 1)

    def process_include(self, source: str, filename: str) -> str:
        self._include_depth += 1
        if self._include_depth > 16:
            raise CError("#include nesting too deep", filename, 1, 1)
        try:
            return self.process(source, filename).rstrip("\n")
        finally:
            self._include_depth -= 1

    def _read_include(self, name: str, filename: str, lineno: int) -> str:
        if name in self.files:
            return self.files[name]
        for directory in self.include_dirs:
            path = os.path.join(directory, name)
            if os.path.exists(path):
                with open(path) as f:
                    return f.read()
        raise CError("cannot find include %r" % name, filename, lineno, 1)

    # -- expansion --------------------------------------------------------------

    def expand(self, line: str, filename: str, lineno: int,
               hide: Optional[frozenset] = None) -> str:
        """Expand macros in one line, respecting strings and comments."""
        hide = hide or frozenset()
        out: List[str] = []
        pos = 0
        n = len(line)
        while pos < n:
            ch = line[pos]
            if ch == '"' or ch == "'":
                end = self._skip_literal(line, pos, ch)
                out.append(line[pos:end])
                pos = end
                continue
            if line.startswith("//", pos):
                out.append(line[pos:])
                break
            if line.startswith("/*", pos):
                end = line.find("*/", pos + 2)
                if end < 0:
                    out.append(line[pos:])
                    break
                out.append(line[pos : end + 2])
                pos = end + 2
                continue
            match = _WORD_RE.match(line, pos)
            if not match:
                out.append(ch)
                pos += 1
                continue
            word = match.group(0)
            pos = match.end()
            macro = self.macros.get(word)
            if macro is None or word in hide:
                out.append(word)
                continue
            if macro.params is None:
                out.append(self.expand(macro.body, filename, lineno,
                                       hide | {word}))
                continue
            args, pos = self._collect_args(line, pos, word, filename, lineno)
            if args is None:  # no parenthesis: not a macro call
                out.append(word)
                continue
            if len(args) != len(macro.params):
                raise CError("macro %s expects %d arguments, got %d"
                             % (word, len(macro.params), len(args)),
                             filename, lineno, pos)
            body = macro.body
            substituted = self._substitute(body, macro.params, args)
            out.append(self.expand(substituted, filename, lineno,
                                   hide | {word}))
        return "".join(out)

    def _skip_literal(self, line: str, pos: int, quote: str) -> int:
        end = pos + 1
        while end < len(line):
            if line[end] == "\\":
                end += 2
                continue
            if line[end] == quote:
                return end + 1
            end += 1
        return end

    def _collect_args(self, line: str, pos: int, name: str,
                      filename: str, lineno: int):
        probe = pos
        while probe < len(line) and line[probe] in " \t":
            probe += 1
        if probe >= len(line) or line[probe] != "(":
            return None, pos
        depth = 1
        probe += 1
        args: List[str] = []
        current: List[str] = []
        while probe < len(line):
            ch = line[probe]
            if ch in "\"'":
                end = self._skip_literal(line, probe, ch)
                current.append(line[probe:end])
                probe = end
                continue
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    text = "".join(current).strip()
                    if text or args:
                        args.append(text)
                    return args, probe + 1
            elif ch == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
                probe += 1
                continue
            current.append(ch)
            probe += 1
        raise CError("unterminated macro call %s(" % name,
                     filename, lineno, pos)

    def _substitute(self, body: str, params: List[str], args: List[str]) -> str:
        out: List[str] = []
        pos = 0
        while pos < len(body):
            ch = body[pos]
            if ch in "\"'":
                end = self._skip_literal(body, pos, ch)
                out.append(body[pos:end])
                pos = end
                continue
            match = _WORD_RE.match(body, pos)
            if not match:
                out.append(ch)
                pos += 1
                continue
            word = match.group(0)
            pos = match.end()
            if word in params:
                out.append(args[params.index(word)])
            else:
                out.append(word)
        return "".join(out)


def preprocess(source: str, filename: str = "<input>",
               files: Optional[Dict[str, str]] = None,
               defines: Optional[Dict[str, str]] = None) -> str:
    """One-shot convenience wrapper."""
    return Preprocessor(files=files, defines=defines).process(source, filename)
