"""The shared (machine-independent) code-generation driver.

Walks rcc IR trees with a simple on-the-fly register allocator over each
target's temporary registers, spilling to reserved frame slots when the
pool runs dry or a call intervenes.  Everything machine-dependent is
behind the ``emit_*`` / frame-layout hooks that the four backends
implement — keeping the backends small is the point of the exercise
(paper Sec. 4.3).

Frame model (canonical offsets):

* every local, parameter, temp, and spill slot has a *frame offset* in
  the target's canonical terms — vfp-relative on rmips (no frame
  pointer), fp-relative elsewhere;
* the layout is computed **before** body emission, so offsets are plain
  integers (the rmips backend folds ``vfp+off`` into ``sp+framesize+off``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...machines.isa import Insn, Label
from ...machines.loader import FuncInfo, ObjectUnit, Relocation, Symbol
from ..ir import FuncIR, IRNode, UnitIR
from ..ctypes_ import ArrayType, CType, StructType, UnionType
from ..symtab import CSymbol

#: number of reserved spill slots (8 bytes each, doubles fit)
SPILL_SLOTS = 12

_INT_KINDS = ("i1", "i2", "i4", "u1", "u2", "u4", "p")
_FLOAT_KINDS = ("f4", "f8", "f10")

_KIND_SIZE = {"i1": 1, "i2": 2, "i4": 4, "u1": 1, "u2": 2, "u4": 4,
              "p": 4, "f4": 4, "f8": 8, "f10": 10, "v": 0, "b": 0}


class GenError(Exception):
    """An internal code-generation failure (e.g. expression too complex)."""


class Value:
    """An evaluated IR value: in a register or in a spill slot."""

    __slots__ = ("where", "index", "kind")

    def __init__(self, where: str, index: int, kind: str):
        self.where = where  # 'r', 'f', 'spill', 'fspill'
        self.index = index
        self.kind = kind

    def is_float(self) -> bool:
        return self.kind in _FLOAT_KINDS

    def __repr__(self) -> str:
        return "<val %s%d %s>" % (self.where, self.index, self.kind)


class CodeGen:
    """Base class for the four backends."""

    # subclasses set these
    arch = None
    temp_regs: Sequence[int] = ()
    ftemp_regs: Sequence[int] = ()
    #: callee-saved registers available for register variables
    var_regs: Sequence[int] = ()

    def __init__(self):
        self.unit: Optional[ObjectUnit] = None
        self.debug = False
        self.text: List[object] = []
        # per-function state
        self.fn: Optional[FuncIR] = None
        self.framesize = 0
        self.free_iregs: List[int] = []
        self.free_fregs: List[int] = []
        self.live: List[Value] = []
        self.spill_used: List[bool] = []
        self.spill_base = 0  # canonical frame offset of spill slot 0
        self.reg_vars: Dict[int, int] = {}  # sym.uid -> register
        self.used_var_regs: List[int] = []
        self.epilogue_label = ""
        self.max_outgoing = 0

    # ==================================================================
    # unit driver

    def compile_unit(self, unit_ir: UnitIR, debug: bool = False) -> ObjectUnit:
        """Generate an ObjectUnit from a unit's IR.

        ``debug`` controls the no-ops at stopping points and the anchor
        block (paper Sec. 3); labels are placed either way.
        """
        self.debug = debug
        unit = ObjectUnit(unit_ir.name, self.arch.name)
        self.unit = unit
        self._anchor_entries: List[str] = []  # symbol/label per anchor slot
        self.anchor_index: Dict[str, int] = {}
        self.text = unit.text

        for fn_ir in unit_ir.functions:
            self.gen_function(fn_ir)

        self._emit_data(unit, unit_ir)
        if debug:
            self._emit_anchor_block(unit, unit_ir)
        return unit

    def anchor_slot(self, name: str) -> int:
        """Index of ``name``'s address slot in the unit's anchor block."""
        if name not in self.anchor_index:
            self.anchor_index[name] = len(self._anchor_entries)
            self._anchor_entries.append(name)
        return self.anchor_index[name]

    def anchor_symbol_name(self, unit: ObjectUnit) -> str:
        import hashlib
        digest = hashlib.md5(unit.name.encode()).hexdigest()[:12]
        return "_stanchor__%s" % digest

    def _emit_anchor_block(self, unit: ObjectUnit, unit_ir: UnitIR) -> None:
        """The anchor block: one address word per static / stopping point.

        The compiler inserts relocatable addresses at locations known
        relative to the anchor symbol, so the debugger never needs the
        value of a private or static symbol from the linker (Sec. 7).
        """
        base = len(unit.data)
        base = (base + 3) & ~3
        unit.data.extend(b"\0" * (base - len(unit.data)))
        unit.symbols.append(Symbol(self.anchor_symbol_name(unit), "data", base, "D"))
        for i, name in enumerate(self._anchor_entries):
            unit.data.extend(b"\0\0\0\0")
            unit.data_relocs.append(Relocation(base + 4 * i, name))

    def _emit_data(self, unit: ObjectUnit, unit_ir: UnitIR) -> None:
        byteorder = self.arch.byteorder
        self._pending_strings: List[Tuple[str, str]] = []
        for label, textstr in unit_ir.strings:
            offset = len(unit.data)
            unit.data.extend(textstr.encode("latin-1") + b"\0")
            unit.symbols.append(Symbol(label, "data", offset, "d"))
        for sym, init in unit_ir.data:
            offset = (len(unit.data) + sym.ctype.align - 1) & ~(sym.ctype.align - 1)
            unit.data.extend(b"\0" * (offset - len(unit.data)))
            kind = "d" if sym.sclass == "static" else "D"
            unit.symbols.append(Symbol(sym.label, "data", offset, kind))
            sym.loc = ("global", sym.label)
            if sym.sclass == "static":
                sym.anchor_index = self.anchor_slot(sym.label)
            blob = bytearray(sym.ctype.size)
            relocs: List[Tuple[int, str]] = []
            if init is not None:
                self._fill_init(blob, 0, sym.ctype, init, relocs, unit_ir)
            unit.data.extend(blob)
            for roff, rsym in relocs:
                unit.data_relocs.append(Relocation(offset + roff, rsym))
        # string literals discovered while filling initializers (char *
        # globals pointing at strings) are emitted after all data symbols
        for label, textstr in self._pending_strings:
            offset = len(unit.data)
            unit.data.extend(textstr.encode("latin-1") + b"\0")
            unit.symbols.append(Symbol(label, "data", offset, "d"))
        self._pending_strings = []

    def _fill_init(self, blob: bytearray, offset: int, ctype: CType, init,
                   relocs: List[Tuple[int, str]], unit_ir: UnitIR) -> None:
        byteorder = self.arch.byteorder
        if isinstance(init, list):
            if isinstance(ctype, ArrayType):
                for i, item in enumerate(init):
                    self._fill_init(blob, offset + i * ctype.elem.size,
                                    ctype.elem, item, relocs, unit_ir)
            elif isinstance(ctype, (StructType, UnionType)):
                for item, field in zip(init, ctype.fields):
                    self._fill_init(blob, offset + field.offset, field.ctype,
                                    item, relocs, unit_ir)
            return
        if isinstance(init, str):  # char array from a string literal
            data = init.encode("latin-1") + b"\0"
            blob[offset : offset + len(data)] = data
            return
        from ..symtab import CSymbol as _CSymbol
        if isinstance(init, _CSymbol):  # an address constant
            relocs.append((offset, init.label))
            return
        from .. import tree as ast
        if isinstance(init, ast.StringLit):  # char * pointing at a literal
            label = None
            for lbl, text in unit_ir.strings:
                if text == init.value:
                    label = lbl
            for lbl, text in self._pending_strings:
                if text == init.value:
                    label = lbl
            if label is None:
                label = "_stri%d_%s" % (len(self._pending_strings),
                                        self.unit.name_suffix())
                self._pending_strings.append((label, init.value))
            relocs.append((offset, label))
            return
        if ctype.is_float():
            import struct
            fmt_map = {4: "f", 8: "d"}
            if ctype.size in fmt_map:
                fmt = (">" if byteorder == "big" else "<") + fmt_map[ctype.size]
                blob[offset : offset + ctype.size] = struct.pack(fmt, float(init))
            else:  # f10
                from ...machines import float80
                raw = (float80.encode_be(float(init)) if byteorder == "big"
                       else float80.encode(float(init)))
                blob[offset : offset + 10] = raw
            return
        size = max(ctype.size, 1)
        blob[offset : offset + size] = (int(init) & ((1 << (size * 8)) - 1)) \
            .to_bytes(size, byteorder)

    # ==================================================================
    # function driver

    def gen_function(self, fn: FuncIR) -> None:
        self.fn = fn
        self.free_iregs = list(self.temp_regs)
        self.free_fregs = list(self.ftemp_regs)
        self.live = []
        self.spill_used = [False] * SPILL_SLOTS
        self.reg_vars = {}
        self.used_var_regs = []
        self.epilogue_label = fn.symbol.label + ".exit"
        self.max_outgoing = self._scan_outgoing(fn)

        self._assign_register_variables(fn)
        self.layout_frame(fn)

        self.text.append(Label(fn.symbol.label))
        self.prologue(fn)
        for node in fn.body:
            self.gen_stmt(node)
        self.text.append(Label(self.epilogue_label, is_block_leader=True))
        self.epilogue(fn)

        info = FuncInfo(fn.symbol.name, fn.symbol.label, self.framesize,
                        self.reg_save_mask(), self.reg_save_offset())
        self.unit.funcs.append(info)
        self.unit.symbols.append(
            Symbol(fn.symbol.label, "text", fn.symbol.label, "T"))
        fn.symbol.loc = ("global", fn.symbol.label)
        fn.symbol.frame_info = info
        if self.debug:
            for stop in fn.stops:
                self.anchor_slot(stop.label)
        self.fn = None

    def _scan_outgoing(self, fn: FuncIR) -> int:
        """Max outgoing-argument bytes over all calls in the body."""
        worst = 0

        def visit(node: IRNode) -> None:
            nonlocal worst
            if node.op == "CALL":
                arg_kinds, _varargs = node.value
                total = sum(8 if k.startswith("f") else 4 for k in arg_kinds)
                worst = max(worst, total, 16)
            for kid in node.kids:
                visit(kid)
            if isinstance(node.symbol, IRNode):
                visit(node.symbol)

        for node in fn.body:
            visit(node)
        return worst

    #: backends that register-allocate eligible parameters too
    promote_params = False

    def _assign_register_variables(self, fn: FuncIR) -> None:
        """Put eligible scalar locals (and, on targets that do it,
        parameters) in callee-saved registers.

        This is what makes `i` live in a register at a stopping point
        (the paper's S10 entry: ``/where 30 Regset0 Absolute``).
        """
        available = list(self.var_regs)
        candidates = list(fn.params) if self.promote_params else []
        candidates += list(fn.locals)
        for sym in candidates:
            if not available:
                break
            if sym.name.startswith("."):
                continue  # compiler temp
            if getattr(sym, "addr_taken", False):
                continue
            if isinstance(sym.ctype, (ArrayType, StructType, UnionType)):
                continue  # aggregates always live in memory
            kind = _sym_kind(sym)
            if kind not in ("i4", "u4", "p"):
                continue
            reg = available.pop(0)
            self.reg_vars[sym.uid] = reg
            self.used_var_regs.append(reg)
            sym.loc = ("reg", reg)

    # ==================================================================
    # statements

    def gen_stmt(self, node: IRNode) -> None:
        op = node.op
        if op == "STOP":
            stop = self.fn.stops[node.value]
            self.text.append(Label(stop.label, stop_index=node.value))
            if self.debug:
                self.text.append(Insn("nop"))
        elif op == "LABEL":
            self.text.append(Label(node.target, is_block_leader=True))
        elif op == "JUMP":
            self.emit_jump(node.target)
        elif op == "CJUMP":
            self.gen_cjump(node)
        elif op == "ASGN":
            self.gen_asgn(node)
        elif op == "RET":
            if node.kids:
                value = self.eval(node.kids[0])
                self.emit_ret_move(value, node.kind)
                self.release(value)
            self.emit_jump(self.epilogue_label)
        elif op == "CALL":
            result = self.gen_call(node)
            if result is not None:
                self.release(result)
        else:
            raise GenError("statement op %r" % op)
        if self.live:
            raise GenError("value leak after %r: %r" % (op, self.live))

    def gen_cjump(self, node: IRNode) -> None:
        cond = node.kids[0]
        if cond.op in ("EQ", "NE", "LT", "LE", "GT", "GE") \
                and cond.kind in _INT_KINDS:
            a = self.eval(cond.kids[0])
            b = self.eval(cond.kids[1])
            ra = self.in_ireg(a)
            rb = self.in_ireg(b)
            op = _negate_cmp(cond.op) if node.negate else cond.op
            self.emit_branch_cmp(op, cond.kind, ra, rb, node.target)
            self.release(a)
            self.release(b)
            return
        value = self.eval(cond)
        reg = self.in_ireg(value)
        if node.negate:
            self.emit_branch_false(reg, node.target)
        else:
            self.emit_branch_true(reg, node.target)
        self.release(value)

    def gen_asgn(self, node: IRNode) -> None:
        addr, value_node = node.kids
        kind = node.kind
        # register-variable fast path
        sym = addr.symbol if addr.op in ("ADDRL", "ADDRF") else None
        if sym is not None and sym.uid in self.reg_vars:
            value = self.eval(value_node)
            reg = self.reg_vars[sym.uid]
            if value.is_float():
                raise GenError("float value into integer register variable")
            src = self.in_ireg(value)
            self.emit_move(reg, src)
            if kind in ("i1", "i2", "u1", "u2"):
                self.emit_truncate(reg, kind)
            self.release(value)
            return
        value = self.eval(value_node)
        frame_off = self.frame_offset_of(addr)
        if frame_off is not None:
            if value.is_float():
                freg = self.in_freg(value)
                self.emit_fstore_frame(freg, frame_off, kind)
            else:
                reg = self.in_ireg(value)
                self.emit_store_frame(reg, frame_off, kind)
            self.release(value)
            return
        addr_value = self.eval(addr)
        addr_reg = self.in_ireg(addr_value)
        if value.is_float():
            freg = self.in_freg(value)
            self.emit_fstore_ind(addr_reg, freg, kind)
        else:
            reg = self.in_ireg(value)
            self.emit_store_ind(addr_reg, reg, kind)
        self.release(value)
        self.release(addr_value)

    # ==================================================================
    # expressions

    def eval(self, node: IRNode) -> Value:
        op = node.op
        if op == "CNST":
            if node.kind in _FLOAT_KINDS:
                value = self.alloc_fval(node.kind)
                self.emit_fconst(value.index, float(node.value))
                return value
            value = self.alloc_ival(node.kind)
            self.emit_load_const(value.index, int(node.value))
            return value
        if op in ("ADDRG", "ADDRL", "ADDRF"):
            return self.gen_addr(node)
        if op == "INDIR":
            return self.gen_indir(node)
        if op == "CVT":
            return self.gen_cvt(node)
        if op in ("NEG", "BCOM"):
            return self.gen_unary(node)
        if op in ("ADD", "SUB", "MUL", "DIV", "MOD", "BAND", "BOR", "BXOR",
                  "LSH", "RSH"):
            return self.gen_binop(node)
        if op in ("EQ", "NE", "LT", "LE", "GT", "GE"):
            return self.gen_compare(node)
        if op == "CALL":
            result = self.gen_call(node)
            if result is None:
                raise GenError("void call used as value")
            return result
        raise GenError("expression op %r" % op)

    def gen_addr(self, node: IRNode) -> Value:
        sym = node.symbol
        if node.op == "ADDRG" or (sym.loc is not None and sym.loc[0] == "global"):
            value = self.alloc_ival("p")
            self.emit_load_sym_addr(value.index, sym.label)
            return value
        if sym.uid in self.reg_vars:
            raise GenError("address of register variable %s" % sym.name)
        offset = self.local_frame_offset(sym)
        value = self.alloc_ival("p")
        self.emit_frame_addr(value.index, offset)
        return value

    def gen_indir(self, node: IRNode) -> Value:
        addr = node.kids[0]
        kind = node.kind
        sym = addr.symbol if addr.op in ("ADDRL", "ADDRF") else None
        if sym is not None and sym.uid in self.reg_vars:
            value = self.alloc_ival(kind)
            self.emit_move(value.index, self.reg_vars[sym.uid])
            return value
        frame_off = self.frame_offset_of(addr)
        if frame_off is not None:
            if kind in _FLOAT_KINDS:
                value = self.alloc_fval(kind)
                self.emit_fload_frame(value.index, frame_off, kind)
            else:
                value = self.alloc_ival(kind)
                self.emit_load_frame(value.index, frame_off, kind)
            return value
        addr_value = self.eval(addr)
        addr_reg = self.in_ireg(addr_value)
        self.release(addr_value)
        if kind in _FLOAT_KINDS:
            value = self.alloc_fval(kind)
            self.emit_fload_ind(value.index, addr_reg, kind)
        else:
            value = self.alloc_ival(kind)
            self.emit_load_ind(value.index, addr_reg, kind)
        return value

    def frame_offset_of(self, addr: IRNode) -> Optional[int]:
        """Canonical frame offset when addr is a direct local/param ref."""
        if addr.op in ("ADDRL", "ADDRF"):
            sym = addr.symbol
            if sym.loc is not None and sym.loc[0] == "global":
                return None
            if sym.uid in self.reg_vars:
                return None
            return self.local_frame_offset(sym)
        return None

    def gen_cvt(self, node: IRNode) -> Value:
        src = self.eval(node.kids[0])
        to_kind = node.kind
        from_kind = node.from_kind
        if to_kind in _FLOAT_KINDS and from_kind in _FLOAT_KINDS:
            src.kind = to_kind  # registers hold doubles; width applies at memory
            return src
        if to_kind in _FLOAT_KINDS:  # int -> float
            reg = self.in_ireg(src)
            value = self.alloc_fval(to_kind)
            self.emit_cvt_int_float(value.index, reg)
            self.release(src)
            return value
        if from_kind in _FLOAT_KINDS:  # float -> int
            freg = self.in_freg(src)
            value = self.alloc_ival(to_kind)
            self.emit_cvt_float_int(value.index, freg)
            self.release(src)
            if to_kind in ("i1", "i2", "u1", "u2"):
                self.emit_truncate(value.index, to_kind)
            return value
        # int -> int
        reg = self.in_ireg(src)
        if to_kind in ("i1", "i2", "u1", "u2") and \
                _KIND_SIZE[to_kind] < _KIND_SIZE.get(from_kind, 4):
            self.emit_truncate(reg, to_kind)
        src.kind = to_kind
        return src

    def gen_unary(self, node: IRNode) -> Value:
        src = self.eval(node.kids[0])
        if node.kind in _FLOAT_KINDS:
            freg = self.in_freg(src)
            self.emit_fneg(freg)
            return src
        reg = self.in_ireg(src)
        if node.op == "NEG":
            self.emit_neg(reg)
        else:
            self.emit_bcom(reg)
        return src

    def gen_binop(self, node: IRNode) -> Value:
        kind = node.kind
        left = self.eval(node.kids[0])
        right = self.eval(node.kids[1])
        if kind in _FLOAT_KINDS:
            fa = self.in_freg(left)
            fb = self.in_freg(right)
            self.emit_fbinop(node.op, fa, fb)
            self.release(right)
            return left
        ra = self.in_ireg(left)
        rb = self.in_ireg(right)
        self.emit_binop(node.op, kind, ra, ra, rb)
        self.release(right)
        return left

    def gen_compare(self, node: IRNode) -> Value:
        kind = node.kids[0].kind if node.kids[0].kind != "v" else node.kind
        kind = node.kind
        left = self.eval(node.kids[0])
        right = self.eval(node.kids[1])
        if kind in _FLOAT_KINDS:
            fa = self.in_freg(left)
            fb = self.in_freg(right)
            out = self.alloc_ival("i4")
            self.emit_fcompare(node.op, out.index, fa, fb)
            self.release(left)
            self.release(right)
            return out
        ra = self.in_ireg(left)
        rb = self.in_ireg(right)
        self.emit_compare(node.op, kind, ra, ra, rb)
        self.release(right)
        left.kind = "i4"
        return left

    # ==================================================================
    # calls

    def gen_call(self, node: IRNode) -> Optional[Value]:
        arg_kinds, varargs = node.value
        args = [self.eval(kid) for kid in node.kids]
        func = node.symbol
        func_value = None
        if isinstance(func, IRNode):
            func_value = self.eval(func)
        # force every other live value into spill slots: temp registers do
        # not survive calls
        self.spill_live(keep=args + ([func_value] if func_value else []))
        cleanup = self.place_args(args, arg_kinds, varargs)
        for arg in args:
            self.release(arg)
        if func_value is not None:
            reg = self.in_ireg(func_value)
            self.release(func_value)
            self.spill_live(keep=[])
            self.emit_call_reg(reg)
        else:
            self.spill_live(keep=[])
            self.emit_call_sym(func.label)
        self.after_call(cleanup)
        if node.kind == "v":
            return None
        if node.kind in _FLOAT_KINDS:
            value = self.alloc_fval(node.kind)
            self.emit_fmove(value.index, self.fret_reg)
            return value
        value = self.alloc_ival(node.kind)
        self.emit_move(value.index, self.arch.ret_reg)
        return value

    # ==================================================================
    # value/register management

    def alloc_ival(self, kind: str) -> Value:
        reg = self._take_ireg()
        value = Value("r", reg, kind)
        self.live.append(value)
        return value

    def alloc_fval(self, kind: str) -> Value:
        reg = self._take_freg()
        value = Value("f", reg, kind)
        self.live.append(value)
        return value

    def _take_ireg(self) -> int:
        if self.free_iregs:
            return self.free_iregs.pop(0)
        # spill the oldest live register-resident int value
        for value in self.live:
            if value.where == "r":
                self._spill_value(value)
                return self.free_iregs.pop(0)
        raise GenError("out of integer registers")

    def _take_freg(self) -> int:
        if self.free_fregs:
            return self.free_fregs.pop(0)
        for value in self.live:
            if value.where == "f":
                self._spill_value(value)
                return self.free_fregs.pop(0)
        raise GenError("out of float registers")

    def _spill_value(self, value: Value) -> None:
        slot = self._take_spill_slot()
        offset = self.spill_base + 8 * slot
        if value.where == "r":
            self.emit_store_frame(value.index, offset, "i4")
            self.free_iregs.append(value.index)
            value.where = "spill"
        else:
            self.emit_fstore_frame(value.index, offset, "f8")
            self.free_fregs.append(value.index)
            value.where = "fspill"
        value.index = slot

    def _take_spill_slot(self) -> int:
        for i, used in enumerate(self.spill_used):
            if not used:
                self.spill_used[i] = True
                return i
        raise GenError("expression too complex: out of spill slots")

    def in_ireg(self, value: Value) -> int:
        if value.where == "r":
            return value.index
        if value.where != "spill":
            raise GenError("float value where integer expected")
        slot = value.index
        reg = self._take_ireg()
        self.emit_load_frame(reg, self.spill_base + 8 * slot, "i4")
        self.spill_used[slot] = False
        value.where = "r"
        value.index = reg
        return reg

    def in_freg(self, value: Value) -> int:
        if value.where == "f":
            return value.index
        if value.where == "spill":
            # an integer value used as float operand is a bug upstream
            raise GenError("integer value where float expected")
        slot = value.index
        reg = self._take_freg()
        self.emit_fload_frame(reg, self.spill_base + 8 * slot, "f8")
        self.spill_used[slot] = False
        value.where = "f"
        value.index = reg
        return reg

    def release(self, value: Value) -> None:
        self.live.remove(value)
        if value.where == "r":
            self.free_iregs.append(value.index)
        elif value.where == "f":
            self.free_fregs.append(value.index)
        else:
            self.spill_used[value.index] = False

    def spill_live(self, keep: List[Value]) -> None:
        for value in list(self.live):
            if value in keep:
                continue
            if value.where in ("r", "f"):
                self._spill_value(value)

    # ==================================================================
    # emit plumbing

    def emit(self, op: str, **fields) -> Insn:
        insn = Insn(op, **fields)
        self.text.append(insn)
        return insn

    def emit_jump(self, label: str) -> None:
        raise NotImplementedError

    # every emit_* hook below is machine-dependent
    def layout_frame(self, fn: FuncIR) -> None:
        raise NotImplementedError

    def local_frame_offset(self, sym: CSymbol) -> int:
        raise NotImplementedError

    def param_slot_adjust(self, ctype: CType) -> int:
        """Sub-word parameters live in the low-order bytes of their
        4-byte argument slot; on a big-endian target those are at the
        slot's high addresses."""
        if self.arch.byteorder == "big" and 0 < ctype.size < 4 \
                and not ctype.is_float():
            return 4 - ctype.size
        return 0

    def prologue(self, fn: FuncIR) -> None:
        raise NotImplementedError

    def epilogue(self, fn: FuncIR) -> None:
        raise NotImplementedError

    def reg_save_mask(self) -> int:
        return 0

    def reg_save_offset(self) -> int:
        return 0

    fret_reg = 0

    # (the remaining hooks are documented in the backends)


def _sym_kind(sym: CSymbol) -> str:
    from ..irgen import kind_of
    return kind_of(sym.ctype)


def _negate_cmp(op: str) -> str:
    return {"EQ": "NE", "NE": "EQ", "LT": "GE", "GE": "LT",
            "LE": "GT", "GT": "LE"}[op]


def kind_size(kind: str) -> int:
    return _KIND_SIZE[kind]
