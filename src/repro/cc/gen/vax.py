"""rvax backend.

Three-operand CISC with operand specifiers.  Arguments are pushed
right-to-left (the caller pops); frames hang off the frame pointer with
the saved fp at fp+0 and the return address at fp+4, so the generic
stack walk works unchanged.  No register variables; r0 doubles as the
return register and an emit-local scratch.
"""

from __future__ import annotations

from typing import List

from ...machines import vax as v
from ...machines.vax import Operand
from ..ir import FuncIR
from ..irgen import kind_of
from .common import SPILL_SLOTS, CodeGen, GenError, Value, kind_size

_SCRATCH = 0  # r0: return register, safe as intra-emit scratch


def R(reg: int) -> Operand:
    return Operand.reg_(reg)


def FP(off: int) -> Operand:
    return Operand.disp(v.REG_FP, off)


def IMM(value) -> Operand:
    return Operand.imm(value)


class VaxGen(CodeGen):
    temp_regs = list(v.TEMP_REGS)    # r1-r5
    var_regs = ()
    ftemp_regs = list(v.FTEMP_REGS)  # f1-f3
    fret_reg = v.FRET_REG

    def __init__(self):
        from ...machines import get_arch
        self.arch = get_arch("rvax")
        super().__init__()
        self._local_offsets = {}

    # -- frame layout --------------------------------------------------------

    def layout_frame(self, fn: FuncIR) -> None:
        self._local_offsets = {}
        slot = 0
        for sym in fn.params:
            self._local_offsets[sym.uid] = 8 + 4 * slot
            sym.loc = ("frame", 8 + 4 * slot)
            slot += max(1, kind_size(kind_of(sym.ctype)) // 4)
        cur = 0
        for sym in fn.locals:
            size = max(4, sym.ctype.size)
            align = max(4, sym.ctype.align)
            cur = -((-cur + size + align - 1) & ~(align - 1))
            self._local_offsets[sym.uid] = cur
            sym.loc = ("frame", cur)
        cur -= 8 * SPILL_SLOTS
        self.spill_base = cur
        self.framesize = (-cur + 3) & ~3

    def local_frame_offset(self, sym) -> int:
        return self._local_offsets[sym.uid]

    def prologue(self, fn: FuncIR) -> None:
        self.emit("pushl", imm=[R(v.REG_FP)])
        self.emit("movl", imm=[R(v.REG_SP), R(v.REG_FP)])
        self.emit("addl3", imm=[IMM(-self.framesize), R(v.REG_SP), R(v.REG_SP)])

    def epilogue(self, fn: FuncIR) -> None:
        self.emit("movl", imm=[R(v.REG_FP), R(v.REG_SP)])
        self.emit("popl", imm=[R(v.REG_FP)])
        self.emit("ret")

    # -- basic emission ----------------------------------------------------------

    def emit_jump(self, label: str) -> None:
        self.emit("brb", imm=("br", label))

    def emit_load_const(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        self.emit("movl", imm=[IMM(value), R(reg)])

    def emit_fconst(self, freg: int, value: float) -> None:
        self.emit("movd", imm=[Operand.fimm(value), R(freg)])

    def emit_load_sym_addr(self, reg: int, label: str) -> None:
        self.emit("movl", imm=[IMM(label), R(reg)])

    def emit_frame_addr(self, reg: int, frame_offset: int) -> None:
        self.emit("moval", imm=[FP(frame_offset), R(reg)])

    _LOAD_OPS = {"i1": "movb", "u1": "movzbl", "i2": "movw", "u2": "movzwl",
                 "i4": "movl", "u4": "movl", "p": "movl"}
    _STORE_OPS = {"i1": "movb", "u1": "movb", "i2": "movw", "u2": "movw",
                  "i4": "movl", "u4": "movl", "p": "movl"}

    def emit_load_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], imm=[FP(frame_offset), R(reg)])

    def emit_store_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], imm=[R(reg), FP(frame_offset)])

    def emit_fload_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        op = "movf" if kind == "f4" else "movd"
        self.emit(op, imm=[FP(frame_offset), R(freg)])

    def emit_fstore_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        op = "movf" if kind == "f4" else "movd"
        self.emit(op, imm=[R(freg), FP(frame_offset)])

    def emit_load_ind(self, reg: int, addr_reg: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], imm=[Operand.defer(addr_reg), R(reg)])

    def emit_store_ind(self, addr_reg: int, reg: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], imm=[R(reg), Operand.defer(addr_reg)])

    def emit_fload_ind(self, freg: int, addr_reg: int, kind: str) -> None:
        op = "movf" if kind == "f4" else "movd"
        self.emit(op, imm=[Operand.defer(addr_reg), R(freg)])

    def emit_fstore_ind(self, addr_reg: int, freg: int, kind: str) -> None:
        op = "movf" if kind == "f4" else "movd"
        self.emit(op, imm=[R(freg), Operand.defer(addr_reg)])

    def emit_move(self, rd: int, rs: int) -> None:
        if rd != rs:
            self.emit("movl", imm=[R(rs), R(rd)])

    def emit_fmove(self, fd: int, fs: int) -> None:
        if fd != fs:
            self.emit("movd", imm=[R(fs), R(fd)])

    def emit_truncate(self, reg: int, kind: str) -> None:
        op = {"i1": "movb", "u1": "movzbl", "i2": "movw", "u2": "movzwl"}[kind]
        if op in ("movb", "movw"):
            # register-to-register byte/word moves sign-extend
            self.emit(op, imm=[R(reg), R(reg)])
        else:
            self.emit(op, imm=[R(reg), R(reg)])

    def emit_neg(self, reg: int) -> None:
        self.emit("subl3", imm=[R(reg), IMM(0), R(reg)])

    def emit_bcom(self, reg: int) -> None:
        self.emit("xorl3", imm=[IMM(0xFFFFFFFF), R(reg), R(reg)])

    def emit_binop(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        if op == "ADD":
            self.emit("addl3", imm=[R(ra), R(rb), R(rd)])
        elif op == "SUB":
            self.emit("subl3", imm=[R(rb), R(ra), R(rd)])
        elif op == "MUL":
            self.emit("mull3", imm=[R(ra), R(rb), R(rd)])
        elif op == "DIV":
            name = "divul3" if unsigned else "divl3"
            self.emit(name, imm=[R(rb), R(ra), R(rd)])
        elif op == "MOD":
            name = "remul3" if unsigned else "reml3"
            self.emit(name, imm=[R(rb), R(ra), R(rd)])
        elif op == "BAND":
            self.emit("andl3", imm=[R(ra), R(rb), R(rd)])
        elif op == "BOR":
            self.emit("orl3", imm=[R(ra), R(rb), R(rd)])
        elif op == "BXOR":
            self.emit("xorl3", imm=[R(ra), R(rb), R(rd)])
        elif op == "LSH":
            self.emit("ashl", imm=[R(rb), R(ra), R(rd)])
        elif op == "RSH":
            if unsigned:
                self.emit("lshr", imm=[R(rb), R(ra), R(rd)])
            else:
                self.emit("subl3", imm=[R(rb), IMM(0), R(_SCRATCH)])
                self.emit("ashl", imm=[R(_SCRATCH), R(ra), R(rd)])
        else:
            raise GenError("binop %r" % op)

    def emit_fbinop(self, op: str, fa: int, fb: int) -> None:
        if op == "ADD":
            self.emit("addd3", imm=[R(fa), R(fb), R(fa)])
        elif op == "SUB":
            self.emit("subd3", imm=[R(fb), R(fa), R(fa)])
        elif op == "MUL":
            self.emit("muld3", imm=[R(fa), R(fb), R(fa)])
        else:  # DIV
            self.emit("divd3", imm=[R(fb), R(fa), R(fa)])

    _SCC = {("EQ", False): "seql", ("NE", False): "sneq",
            ("LT", False): "slss", ("LE", False): "sleq",
            ("GT", False): "sgtr", ("GE", False): "sgeq",
            ("EQ", True): "seql", ("NE", True): "sneq",
            ("LT", True): "slssu", ("LE", True): "slequ",
            ("GT", True): "sgtru", ("GE", True): "sgequ"}

    def emit_compare(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        self.emit("cmpl", imm=[R(ra), R(rb)])
        self.emit(self._SCC[(op, unsigned)], imm=[R(rd)])

    def emit_fcompare(self, op: str, rd: int, fa: int, fb: int) -> None:
        self.emit("cmpd", imm=[R(fa), R(fb)])
        self.emit(self._SCC[(op, False)], imm=[R(rd)])

    _BCC = {("EQ", False): "beql", ("NE", False): "bneq",
            ("LT", False): "blss", ("LE", False): "bleq",
            ("GT", False): "bgtr", ("GE", False): "bgeq",
            ("EQ", True): "beql", ("NE", True): "bneq",
            ("LT", True): "blssu", ("LE", True): "blequ",
            ("GT", True): "bgtru", ("GE", True): "bgequ"}

    def emit_branch_cmp(self, op: str, kind: str, ra: int, rb: int, label: str) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        self.emit("cmpl", imm=[R(ra), R(rb)])
        self.emit(self._BCC[(op, unsigned)], imm=("br", label))

    def emit_branch_true(self, reg: int, label: str) -> None:
        self.emit("cmpl", imm=[R(reg), IMM(0)])
        self.emit("bneq", imm=("br", label))

    def emit_branch_false(self, reg: int, label: str) -> None:
        self.emit("cmpl", imm=[R(reg), IMM(0)])
        self.emit("beql", imm=("br", label))

    def emit_cvt_int_float(self, fd: int, rs: int) -> None:
        self.emit("cvtld", imm=[R(rs), R(fd)])

    def emit_cvt_float_int(self, rd: int, fs: int) -> None:
        self.emit("cvtdl", imm=[R(fs), R(rd)])

    def emit_fneg(self, freg: int) -> None:
        self.emit("negd", imm=[R(freg), R(freg)])

    # -- calls ------------------------------------------------------------------

    def place_args(self, args: List[Value], kinds: List[str], varargs: bool):
        total = 0
        for value, kind in zip(reversed(args), reversed(kinds)):
            if kind == "f4":
                freg = self.in_freg(value)
                self.emit("addl3", imm=[IMM(-4), R(v.REG_SP), R(v.REG_SP)])
                self.emit("movf", imm=[R(freg), Operand.defer(v.REG_SP)])
                total += 4
            elif kind.startswith("f"):
                freg = self.in_freg(value)
                self.emit("addl3", imm=[IMM(-8), R(v.REG_SP), R(v.REG_SP)])
                self.emit("movd", imm=[R(freg), Operand.defer(v.REG_SP)])
                total += 8
            else:
                reg = self.in_ireg(value)
                self.emit("pushl", imm=[R(reg)])
                total += 4
        return total

    def after_call(self, cleanup) -> None:
        if cleanup:
            self.emit("addl3", imm=[IMM(cleanup), R(v.REG_SP), R(v.REG_SP)])

    def emit_call_sym(self, label: str) -> None:
        self.emit("call", target=label)

    def emit_call_reg(self, reg: int) -> None:
        self.emit("callr", imm=[R(reg)])

    def emit_ret_move(self, value: Value, kind: str) -> None:
        if value.is_float():
            self.emit_fmove(self.fret_reg, self.in_freg(value))
        else:
            self.emit_move(v.REG_RETVAL, self.in_ireg(value))
