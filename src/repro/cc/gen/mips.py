"""rmips backend: the MIPS code generator.

Machine-dependent facts (paper Sec. 4.1, 4.3): the machine has no frame
pointer, so locals are addressed off the *virtual frame pointer*
``vfp = sp + framesize``; frame sizes and register-save information go
into the runtime procedure table via :class:`FuncInfo`.  Canonical frame
offsets in this backend are vfp-relative and become ``sp + framesize +
offset`` in the emitted code.  Integer loads have a delay slot; the
assembler pass (:mod:`repro.cc.asmsched`) schedules or pads them.
"""

from __future__ import annotations

from typing import List

from ...machines import mips as m
from ...machines.loader import Symbol
from ..ir import FuncIR
from ..irgen import kind_of
from .common import SPILL_SLOTS, CodeGen, Value, kind_size


class MipsGen(CodeGen):
    temp_regs = list(m.TEMP_REGS)       # r8-r15
    var_regs = list(m.SAVED_REGS)       # r16-r23: register variables
    promote_params = True
    ftemp_regs = list(range(2, 10))
    fret_reg = m.FRET_REG               # f0

    def __init__(self, arch_name: str = "rmips"):
        from ...machines import get_arch
        self.arch = get_arch(arch_name)
        super().__init__()
        self._local_offsets = {}
        self._save_list: List[int] = []
        self._save_base = 0
        self._has_calls = False

    # -- frame layout --------------------------------------------------------
    #
    #   vfp = sp + framesize = caller's sp
    #   vfp + 4*i   : argument slots (caller's outgoing area)
    #   vfp - k     : locals, temps
    #   below locals: saved registers (register variables + ra)
    #   below saves : spill slots
    #   sp + 4*i    : our outgoing argument area

    def layout_frame(self, fn: FuncIR) -> None:
        self._local_offsets = {}
        cur = 0
        slot = 0
        for sym in fn.params:
            offset = 4 * slot + self.param_slot_adjust(sym.ctype)
            self._local_offsets[sym.uid] = offset
            if sym.uid not in self.reg_vars:
                sym.loc = ("frame", offset)
            slot += max(1, kind_size(kind_of(sym.ctype)) // 4)
        for sym in fn.locals:
            if sym.uid in self.reg_vars:
                continue
            size = max(4, sym.ctype.size)
            align = max(4, sym.ctype.align)
            cur = -((-cur + size + align - 1) & ~(align - 1))
            self._local_offsets[sym.uid] = cur
            sym.loc = ("frame", cur)
        self._has_calls = self.max_outgoing > 0
        self._save_list = sorted(self.used_var_regs)
        if self._has_calls:
            self._save_list.append(m.REG_RA)
        cur -= 4 * len(self._save_list)
        self._save_base = cur
        cur -= 8 * SPILL_SLOTS
        self.spill_base = cur
        frame = -cur + self.max_outgoing
        self.framesize = (frame + 7) & ~7

    def local_frame_offset(self, sym) -> int:
        return self._local_offsets[sym.uid]

    def _sp_off(self, frame_offset: int) -> int:
        return self.framesize + frame_offset

    def prologue(self, fn: FuncIR) -> None:
        self.emit("addi", rd=m.REG_SP, rs=m.REG_SP, imm=-self.framesize)
        for k, reg in enumerate(self._save_list):
            self.emit("sw", rd=reg, rs=m.REG_SP,
                      imm=self._sp_off(self._save_base + 4 * k))
        slot = 0
        for sym in fn.params:
            kind = kind_of(sym.ctype)
            if not kind.startswith("f") and slot < 4:
                home = self.reg_vars.get(sym.uid)
                if home is not None:
                    self.emit_move(home, m.REG_ARG0 + slot)
                else:
                    self.emit("sw", rd=m.REG_ARG0 + slot, rs=m.REG_SP,
                              imm=self._sp_off(4 * slot))
            elif not kind.startswith("f") and sym.uid in self.reg_vars:
                self.emit("lw", rd=self.reg_vars[sym.uid], rs=m.REG_SP,
                          imm=self._sp_off(4 * slot))
            slot += max(1, kind_size(kind) // 4)

    def epilogue(self, fn: FuncIR) -> None:
        for k, reg in enumerate(self._save_list):
            self.emit("lw", rd=reg, rs=m.REG_SP,
                      imm=self._sp_off(self._save_base + 4 * k))
        self.emit("addi", rd=m.REG_SP, rs=m.REG_SP, imm=self.framesize)
        self.emit("jr", rs=m.REG_RA)

    def reg_save_mask(self) -> int:
        mask = 0
        for reg in self._save_list:
            mask |= 1 << reg
        return mask

    def reg_save_offset(self) -> int:
        return self._save_base

    # -- basic emission ----------------------------------------------------------

    def emit_jump(self, label: str) -> None:
        self.emit("j", target=label)

    def emit_load_const(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        signed = value - (1 << 32) if value >= 1 << 31 else value
        if -32768 <= signed < 32768:
            self.emit("addi", rd=reg, rs=0, imm=signed)
        else:
            self.emit("lui", rd=reg, imm=(value >> 16) & 0xFFFF)
            if value & 0xFFFF:
                self.emit("ori", rd=reg, rs=reg, imm=value & 0xFFFF)

    def emit_fconst(self, freg: int, value: float) -> None:
        # no float-immediate instruction: route through a pool in data
        label = self._float_literal(value)
        self.emit("lui", rd=m.REG_AT, imm=("hi", label))
        self.emit("ori", rd=m.REG_AT, rs=m.REG_AT, imm=("lo", label))
        self.emit("ldc1", rd=freg, rs=m.REG_AT, imm=0)

    def _float_literal(self, value: float) -> str:
        import struct
        key = struct.pack(">d", value)
        pool = getattr(self.unit, "_float_pool", None)
        if pool is None:
            pool = {}
            self.unit._float_pool = pool
        if key not in pool:
            label = "_fp%d_%s" % (len(pool), self.unit.name_suffix())
            offset = (len(self.unit.data) + 7) & ~7
            self.unit.data.extend(b"\0" * (offset - len(self.unit.data)))
            fmt = ">d" if self.arch.byteorder == "big" else "<d"
            self.unit.data.extend(struct.pack(fmt, value))
            self.unit.symbols.append(Symbol(label, "data", offset, "d"))
            pool[key] = label
        return pool[key]

    def emit_load_sym_addr(self, reg: int, label: str) -> None:
        self.emit("lui", rd=reg, imm=("hi", label))
        self.emit("ori", rd=reg, rs=reg, imm=("lo", label))

    def emit_frame_addr(self, reg: int, frame_offset: int) -> None:
        self.emit("addi", rd=reg, rs=m.REG_SP, imm=self._sp_off(frame_offset))

    _LOAD_OPS = {"i1": "lb", "u1": "lbu", "i2": "lh", "u2": "lhu",
                 "i4": "lw", "u4": "lw", "p": "lw"}
    _STORE_OPS = {"i1": "sb", "u1": "sb", "i2": "sh", "u2": "sh",
                  "i4": "sw", "u4": "sw", "p": "sw"}

    def emit_load_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], rd=reg, rs=m.REG_SP,
                  imm=self._sp_off(frame_offset))

    def emit_store_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], rd=reg, rs=m.REG_SP,
                  imm=self._sp_off(frame_offset))

    def emit_fload_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        op = "lwc1" if kind == "f4" else "ldc1"
        self.emit(op, rd=freg, rs=m.REG_SP, imm=self._sp_off(frame_offset))

    def emit_fstore_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        op = "swc1" if kind == "f4" else "sdc1"
        self.emit(op, rd=freg, rs=m.REG_SP, imm=self._sp_off(frame_offset))

    def emit_load_ind(self, reg: int, addr_reg: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], rd=reg, rs=addr_reg, imm=0)

    def emit_store_ind(self, addr_reg: int, reg: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], rd=reg, rs=addr_reg, imm=0)

    def emit_fload_ind(self, freg: int, addr_reg: int, kind: str) -> None:
        self.emit("lwc1" if kind == "f4" else "ldc1", rd=freg, rs=addr_reg, imm=0)

    def emit_fstore_ind(self, addr_reg: int, freg: int, kind: str) -> None:
        self.emit("swc1" if kind == "f4" else "sdc1", rd=freg, rs=addr_reg, imm=0)

    def emit_move(self, rd: int, rs: int) -> None:
        if rd != rs:
            self.emit("or", rd=rd, rs=rs, rt=0)

    def emit_fmove(self, fd: int, fs: int) -> None:
        if fd != fs:
            self.emit("movd", rd=fd, rs=fs)

    def emit_truncate(self, reg: int, kind: str) -> None:
        bits = 24 if kind in ("i1", "u1") else 16
        self.emit("slli", rd=reg, rs=reg, imm=bits)
        self.emit("srai" if kind[0] == "i" else "srli", rd=reg, rs=reg, imm=bits)

    def emit_neg(self, reg: int) -> None:
        self.emit("sub", rd=reg, rs=0, rt=reg)

    def emit_bcom(self, reg: int) -> None:
        self.emit("nor", rd=reg, rs=reg, rt=0)

    _BINOPS = {"ADD": "add", "SUB": "sub", "MUL": "mul", "BAND": "and",
               "BOR": "or", "BXOR": "xor", "LSH": "sll"}

    def emit_binop(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        if op == "DIV":
            self.emit("divu" if unsigned else "div", rd=rd, rs=ra, rt=rb)
        elif op == "MOD":
            self.emit("remu" if unsigned else "rem", rd=rd, rs=ra, rt=rb)
        elif op == "RSH":
            self.emit("srl" if unsigned else "sra", rd=rd, rs=ra, rt=rb)
        else:
            self.emit(self._BINOPS[op], rd=rd, rs=ra, rt=rb)

    def emit_fbinop(self, op: str, fa: int, fb: int) -> None:
        names = {"ADD": "fadd", "SUB": "fsub", "MUL": "fmul", "DIV": "fdiv"}
        self.emit(names[op], rd=fa, rs=fa, rt=fb)

    def emit_compare(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        slt = "sltu" if unsigned else "slt"
        if op == "EQ":
            self.emit("seq", rd=rd, rs=ra, rt=rb)
        elif op == "NE":
            self.emit("sne", rd=rd, rs=ra, rt=rb)
        elif op == "LT":
            self.emit(slt, rd=rd, rs=ra, rt=rb)
        elif op == "GT":
            self.emit(slt, rd=rd, rs=rb, rt=ra)
        elif op == "GE":
            self.emit(slt, rd=rd, rs=ra, rt=rb)
            self.emit("seq", rd=rd, rs=rd, rt=0)
        else:  # LE
            self.emit(slt, rd=rd, rs=rb, rt=ra)
            self.emit("seq", rd=rd, rs=rd, rt=0)

    def emit_fcompare(self, op: str, rd: int, fa: int, fb: int) -> None:
        if op == "EQ":
            self.emit("fseq", rd=rd, rs=fa, rt=fb)
        elif op == "NE":
            self.emit("fseq", rd=rd, rs=fa, rt=fb)
            self.emit("seq", rd=rd, rs=rd, rt=0)
        elif op == "LT":
            self.emit("fslt", rd=rd, rs=fa, rt=fb)
        elif op == "LE":
            self.emit("fsle", rd=rd, rs=fa, rt=fb)
        elif op == "GT":
            self.emit("fslt", rd=rd, rs=fb, rt=fa)
        else:  # GE
            self.emit("fsle", rd=rd, rs=fb, rt=fa)

    def emit_branch_cmp(self, op: str, kind: str, ra: int, rb: int, label: str) -> None:
        if op == "EQ":
            self.emit("beq", rd=ra, rs=rb, imm=("br", label))
            return
        if op == "NE":
            self.emit("bne", rd=ra, rs=rb, imm=("br", label))
            return
        self.emit_compare(op, kind, m.REG_AT, ra, rb)
        self.emit("bne", rd=m.REG_AT, rs=0, imm=("br", label))

    def emit_branch_true(self, reg: int, label: str) -> None:
        self.emit("bne", rd=reg, rs=0, imm=("br", label))

    def emit_branch_false(self, reg: int, label: str) -> None:
        self.emit("beq", rd=reg, rs=0, imm=("br", label))

    def emit_cvt_int_float(self, fd: int, rs: int) -> None:
        self.emit("cvtdw", rd=fd, rs=rs)

    def emit_cvt_float_int(self, rd: int, fs: int) -> None:
        self.emit("cvtwd", rd=rd, rs=fs)

    def emit_fneg(self, freg: int) -> None:
        self.emit("negd", rd=freg, rs=freg)

    # -- calls ------------------------------------------------------------------

    def place_args(self, args: List[Value], kinds: List[str], varargs: bool):
        offset = 0
        slot = 0
        for value, kind in zip(args, kinds):
            if kind == "f4":
                freg = self.in_freg(value)
                self.emit("swc1", rd=freg, rs=m.REG_SP, imm=offset)
                offset += 4
                slot += 1
            elif kind.startswith("f"):
                freg = self.in_freg(value)
                self.emit("sdc1", rd=freg, rs=m.REG_SP, imm=offset)
                offset += 8
                slot += 2
            else:
                reg = self.in_ireg(value)
                if not varargs and slot < 4:
                    self.emit_move(m.REG_ARG0 + slot, reg)
                else:
                    self.emit("sw", rd=reg, rs=m.REG_SP, imm=offset)
                offset += 4
                slot += 1
        return None

    def after_call(self, cleanup) -> None:
        pass

    def emit_call_sym(self, label: str) -> None:
        self.emit("jal", target=label)

    def emit_call_reg(self, reg: int) -> None:
        self.emit("jalr", rs=reg)

    def emit_ret_move(self, value: Value, kind: str) -> None:
        if value.is_float():
            self.emit_fmove(self.fret_reg, self.in_freg(value))
        else:
            self.emit_move(m.REG_RETVAL, self.in_ireg(value))
