"""Startup code and the runtime library stubs.

The startup stub is the "system-dependent startup code ... modified to
call the nub instead of main" (paper Sec. 4.3): before calling ``_main``
it executes one breakpoint instruction at the label ``__nub_pause`` —
the per-machine one-line "pause" procedure that stops the target before
main.  The nub (or the plain process runner, when nobody is debugging)
decides whether to wait for a debugger there or to continue.

The runtime library supplies ``_exit``, ``_putchar``, and ``_printf`` as
tiny stubs around the simulator's syscalls; printf's arguments arrive in
a packed block on the stack (varargs convention) on every target.
"""

from __future__ import annotations

from typing import List

from ...machines.isa import Insn, Label, SYS_EXIT, SYS_PRINTF, SYS_PUTCHAR
from ...machines.loader import FuncInfo, ObjectUnit, Symbol
from ...machines.vax import Operand


def startup(arch, stack_top: int):
    """Build the startup text for the linker: (text, symbols, funcs)."""
    name = arch.name
    text: List[object] = [Label("__start")]
    if name in ("rmips", "rmipsel"):
        text += [
            Insn("lui", rd=29, imm=(stack_top >> 16) & 0xFFFF),
            Insn("ori", rd=29, rs=29, imm=stack_top & 0xFFFF),
            Label("__nub_pause"),
            Insn("break"),
            Insn("jal", target="_main"),
            Insn("or", rd=4, rs=2, rt=0),
            Insn("syscall", imm=SYS_EXIT),
        ]
    elif name == "rsparc":
        low = stack_top & 0x1FFF
        if low >= 0x1000:
            low -= 0x2000
        text += [
            Insn("sethi", rd=14, imm=((stack_top - low) >> 13) & 0x7FFFF),
            Insn("add", rd=14, rs=14, imm=low),
            Label("__nub_pause"),
            Insn("break"),
            Insn("call", target="_main"),
            Insn("syscall", imm=SYS_EXIT),  # status already in o0
        ]
    elif name == "rm68k":
        text += [
            Insn("movei", rd=15, imm=stack_top),
            Label("__nub_pause"),
            Insn("break"),
            Insn("jsr", target="_main"),
            Insn("push", rs=0),       # status argument
            Insn("push", rs=0),       # dummy return-address slot
            Insn("syscall", imm=SYS_EXIT),
        ]
    elif name == "rvax":
        text += [
            Insn("movl", imm=[Operand.imm(stack_top), Operand.reg_(14)]),
            Label("__nub_pause"),
            Insn("bpt"),
            Insn("call", target="_main"),
            Insn("pushl", imm=[Operand.reg_(0)]),
            Insn("pushl", imm=[Operand.reg_(0)]),
            Insn("syscall", imm=SYS_EXIT),
        ]
    else:
        raise KeyError("no startup for %r" % name)
    symbols = [Symbol("__start", "text", "__start", "T"),
               Symbol("__nub_pause", "text", "__nub_pause", "t")]
    funcs = [FuncInfo("__start", "__start", 0)]
    return text, symbols, funcs


def runtime_unit(arch) -> ObjectUnit:
    """The runtime library: _exit, _putchar, _printf stubs."""
    name = arch.name
    unit = ObjectUnit("<runtime>", name)
    text: List[object] = []

    def stub(label: str, body: List[object]) -> None:
        text.append(Label(label))
        text.extend(body)
        unit.symbols.append(Symbol(label, "text", label, "T"))
        unit.funcs.append(FuncInfo(label.lstrip("_"), label, 0))

    if name in ("rmips", "rmipsel"):
        stub("_exit", [Insn("syscall", imm=SYS_EXIT)])
        stub("_putchar", [Insn("syscall", imm=SYS_PUTCHAR),
                          Insn("or", rd=2, rs=4, rt=0),
                          Insn("jr", rs=31)])
        stub("_printf", [Insn("syscall", imm=SYS_PRINTF),
                         Insn("addi", rd=2, rs=0, imm=0),
                         Insn("jr", rs=31)])
    elif name == "rsparc":
        stub("_exit", [Insn("syscall", imm=SYS_EXIT)])
        stub("_putchar", [Insn("syscall", imm=SYS_PUTCHAR),
                          Insn("jmpl", rs=15)])
        stub("_printf", [Insn("syscall", imm=SYS_PRINTF),
                         Insn("add", rd=8, rs=0, imm=0),
                         Insn("jmpl", rs=15)])
    elif name == "rm68k":
        stub("_exit", [Insn("syscall", imm=SYS_EXIT)])
        stub("_putchar", [Insn("syscall", imm=SYS_PUTCHAR),
                          Insn("load32", rd=0, rs=15, imm=4),
                          Insn("rts")])
        stub("_printf", [Insn("syscall", imm=SYS_PRINTF),
                         Insn("movei", rd=0, imm=0),
                         Insn("rts")])
    elif name == "rvax":
        stub("_exit", [Insn("syscall", imm=SYS_EXIT)])
        stub("_putchar", [Insn("syscall", imm=SYS_PUTCHAR),
                          Insn("movl", imm=[Operand.disp(14, 4), Operand.reg_(0)]),
                          Insn("ret")])
        stub("_printf", [Insn("syscall", imm=SYS_PRINTF),
                         Insn("movl", imm=[Operand.imm(0), Operand.reg_(0)]),
                         Insn("ret")])
    else:
        raise KeyError("no runtime for %r" % name)
    unit.text = text
    return unit
