"""rsparc backend.

Frame-pointer based: canonical frame offsets are fp-relative, with the
caller's sp becoming the callee's fp.  The saved fp and return address
live at fixed offsets (fp-4, fp-8), which is what lets this target share
the machine-independent linker interface and generic stack walk (paper
Sec. 4.3).  No register variables: locals always live in the frame.
"""

from __future__ import annotations

import struct
from typing import List

from ...machines import sparc as s
from ...machines.loader import Symbol
from ..ir import FuncIR
from ..irgen import kind_of
from .common import SPILL_SLOTS, CodeGen, Value, kind_size

_SCRATCH = 1  # g1: the assembler scratch register


class SparcGen(CodeGen):
    temp_regs = list(s.TEMP_REGS)   # l0-l7
    var_regs = ()                   # no register variables on this target
    ftemp_regs = list(range(2, 8))
    fret_reg = s.FRET_REG

    def __init__(self):
        from ...machines import get_arch
        self.arch = get_arch("rsparc")
        super().__init__()
        self._local_offsets = {}

    # -- frame layout --------------------------------------------------------
    #
    #   fp = caller's sp = sp + framesize
    #   fp + 4*i : argument slots (caller's outgoing area)
    #   fp - 4   : saved fp            fp - 8 : saved return address
    #   fp - 12..: locals, temps, spills
    #   sp + 4*i : our outgoing area

    def layout_frame(self, fn: FuncIR) -> None:
        self._local_offsets = {}
        slot = 0
        for sym in fn.params:
            offset = 4 * slot + self.param_slot_adjust(sym.ctype)
            self._local_offsets[sym.uid] = offset
            sym.loc = ("frame", offset)
            slot += max(1, kind_size(kind_of(sym.ctype)) // 4)
        cur = -8
        for sym in fn.locals:
            size = max(4, sym.ctype.size)
            align = max(4, sym.ctype.align)
            cur = -((-cur + size + align - 1) & ~(align - 1))
            self._local_offsets[sym.uid] = cur
            sym.loc = ("frame", cur)
        cur -= 8 * SPILL_SLOTS
        self.spill_base = cur
        self.framesize = ((-cur + self.max_outgoing) + 7) & ~7

    def local_frame_offset(self, sym) -> int:
        return self._local_offsets[sym.uid]

    def prologue(self, fn: FuncIR) -> None:
        self._add_imm(s.REG_SP, s.REG_SP, -self.framesize)
        self.emit("st", rd=s.REG_FP, rs=s.REG_SP, imm=self.framesize - 4)
        self.emit("st", rd=s.REG_RA, rs=s.REG_SP, imm=self.framesize - 8)
        self._add_imm(s.REG_FP, s.REG_SP, self.framesize)
        slot = 0
        for sym in fn.params:
            kind = kind_of(sym.ctype)
            if not kind.startswith("f") and slot < len(s.ARG_REGS):
                self.emit("st", rd=s.ARG_REGS[slot], rs=s.REG_FP, imm=4 * slot)
            slot += max(1, kind_size(kind) // 4)

    def epilogue(self, fn: FuncIR) -> None:
        self.emit("ld", rd=s.REG_RA, rs=s.REG_FP, imm=-8)
        self._add_imm(s.REG_SP, s.REG_FP, 0)
        self.emit("ld", rd=s.REG_FP, rs=s.REG_SP, imm=-4)
        self.emit("jmpl", rs=s.REG_RA)

    def _add_imm(self, rd: int, rs: int, imm: int) -> None:
        if -4096 <= imm < 4096:
            self.emit("add", rd=rd, rs=rs, imm=imm)
        else:
            self.emit_load_const(_SCRATCH, imm)
            self.emit("add", rd=rd, rs=rs, rt=_SCRATCH)

    # -- basic emission ----------------------------------------------------------

    def emit_jump(self, label: str) -> None:
        # an always-taken conditional branch: g0 == g0
        self.emit("beq", rd=0, rs=0, imm=("br", label))

    def emit_load_const(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        signed = value - (1 << 32) if value >= 1 << 31 else value
        if -4096 <= signed < 4096:
            self.emit("add", rd=reg, rs=0, imm=signed)
        else:
            low = value & 0x1FFF
            if low >= 0x1000:
                low -= 0x2000
            self.emit("sethi", rd=reg, imm=((value - low) >> 13) & 0x7FFFF)
            if low:
                self.emit("add", rd=reg, rs=reg, imm=low)

    def emit_fconst(self, freg: int, value: float) -> None:
        label = self._float_literal(value)
        self.emit_load_sym_addr(_SCRATCH, label)
        self.emit("lddf", rd=freg, rs=_SCRATCH, imm=0)

    def _float_literal(self, value: float) -> str:
        key = struct.pack(">d", value)
        pool = getattr(self.unit, "_float_pool", None)
        if pool is None:
            pool = {}
            self.unit._float_pool = pool
        if key not in pool:
            label = "_fp%d_%s" % (len(pool), self.unit.name_suffix())
            offset = (len(self.unit.data) + 7) & ~7
            self.unit.data.extend(b"\0" * (offset - len(self.unit.data)))
            fmt = ">d" if self.arch.byteorder == "big" else "<d"
            self.unit.data.extend(struct.pack(fmt, value))
            self.unit.symbols.append(Symbol(label, "data", offset, "d"))
            pool[key] = label
        return pool[key]

    def emit_load_sym_addr(self, reg: int, label: str) -> None:
        self.emit("sethi", rd=reg, imm=("hi19", label))
        self.emit("add", rd=reg, rs=reg, imm=("lo13", label))

    def emit_frame_addr(self, reg: int, frame_offset: int) -> None:
        self._add_imm(reg, s.REG_FP, frame_offset)

    _LOAD_OPS = {"i1": "ldsb", "u1": "ldub", "i2": "ldsh", "u2": "lduh",
                 "i4": "ld", "u4": "ld", "p": "ld"}
    _STORE_OPS = {"i1": "stb", "u1": "stb", "i2": "sth", "u2": "sth",
                  "i4": "st", "u4": "st", "p": "st"}

    def emit_load_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], rd=reg, rs=s.REG_FP, imm=frame_offset)

    def emit_store_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], rd=reg, rs=s.REG_FP, imm=frame_offset)

    def emit_fload_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        self.emit("ldf" if kind == "f4" else "lddf", rd=freg, rs=s.REG_FP,
                  imm=frame_offset)

    def emit_fstore_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        self.emit("stf" if kind == "f4" else "stdf", rd=freg, rs=s.REG_FP,
                  imm=frame_offset)

    def emit_load_ind(self, reg: int, addr_reg: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], rd=reg, rs=addr_reg, imm=0)

    def emit_store_ind(self, addr_reg: int, reg: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], rd=reg, rs=addr_reg, imm=0)

    def emit_fload_ind(self, freg: int, addr_reg: int, kind: str) -> None:
        self.emit("ldf" if kind == "f4" else "lddf", rd=freg, rs=addr_reg, imm=0)

    def emit_fstore_ind(self, addr_reg: int, freg: int, kind: str) -> None:
        self.emit("stf" if kind == "f4" else "stdf", rd=freg, rs=addr_reg, imm=0)

    def emit_move(self, rd: int, rs: int) -> None:
        if rd != rs:
            self.emit("or", rd=rd, rs=rs, rt=0)

    def emit_fmove(self, fd: int, fs: int) -> None:
        if fd != fs:
            self.emit("fmov", rd=fd, rs=fs)

    def emit_truncate(self, reg: int, kind: str) -> None:
        bits = 24 if kind in ("i1", "u1") else 16
        self.emit("sll", rd=reg, rs=reg, imm=bits)
        self.emit("sra" if kind[0] == "i" else "srl", rd=reg, rs=reg, imm=bits)

    def emit_neg(self, reg: int) -> None:
        self.emit("sub", rd=reg, rs=0, rt=reg)

    def emit_bcom(self, reg: int) -> None:
        self.emit("xor", rd=reg, rs=reg, imm=-1)

    _BINOPS = {"ADD": "add", "SUB": "sub", "MUL": "smul", "BAND": "and",
               "BOR": "or", "BXOR": "xor", "LSH": "sll"}

    def emit_binop(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        if op == "DIV":
            self.emit("udiv" if unsigned else "sdiv", rd=rd, rs=ra, rt=rb)
        elif op == "MOD":
            self.emit("urem" if unsigned else "srem", rd=rd, rs=ra, rt=rb)
        elif op == "RSH":
            self.emit("srl" if unsigned else "sra", rd=rd, rs=ra, rt=rb)
        else:
            self.emit(self._BINOPS[op], rd=rd, rs=ra, rt=rb)

    def emit_fbinop(self, op: str, fa: int, fb: int) -> None:
        names = {"ADD": "fadd", "SUB": "fsub", "MUL": "fmul", "DIV": "fdiv"}
        self.emit(names[op], rd=fa, rs=fa, rt=fb)

    def emit_compare(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        slt = "sltu" if unsigned else "slt"
        if op == "EQ":
            self.emit("seq", rd=rd, rs=ra, rt=rb)
        elif op == "NE":
            self.emit("sne", rd=rd, rs=ra, rt=rb)
        elif op == "LT":
            self.emit(slt, rd=rd, rs=ra, rt=rb)
        elif op == "GT":
            self.emit(slt, rd=rd, rs=rb, rt=ra)
        elif op == "GE":
            self.emit(slt, rd=rd, rs=ra, rt=rb)
            self.emit("seq", rd=rd, rs=rd, rt=0)
        else:  # LE
            self.emit(slt, rd=rd, rs=rb, rt=ra)
            self.emit("seq", rd=rd, rs=rd, rt=0)

    def emit_fcompare(self, op: str, rd: int, fa: int, fb: int) -> None:
        if op == "EQ":
            self.emit("fseq", rd=rd, rs=fa, rt=fb)
        elif op == "NE":
            self.emit("fseq", rd=rd, rs=fa, rt=fb)
            self.emit("seq", rd=rd, rs=rd, rt=0)
        elif op == "LT":
            self.emit("fslt", rd=rd, rs=fa, rt=fb)
        elif op == "LE":
            self.emit("fsle", rd=rd, rs=fa, rt=fb)
        elif op == "GT":
            self.emit("fslt", rd=rd, rs=fb, rt=fa)
        else:  # GE
            self.emit("fsle", rd=rd, rs=fb, rt=fa)

    def emit_branch_cmp(self, op: str, kind: str, ra: int, rb: int, label: str) -> None:
        if op == "EQ":
            self.emit("beq", rd=ra, rs=rb, imm=("br", label))
            return
        if op == "NE":
            self.emit("bne", rd=ra, rs=rb, imm=("br", label))
            return
        self.emit_compare(op, kind, _SCRATCH, ra, rb)
        self.emit("bne", rd=_SCRATCH, rs=0, imm=("br", label))

    def emit_branch_true(self, reg: int, label: str) -> None:
        self.emit("bne", rd=reg, rs=0, imm=("br", label))

    def emit_branch_false(self, reg: int, label: str) -> None:
        self.emit("beq", rd=reg, rs=0, imm=("br", label))

    def emit_cvt_int_float(self, fd: int, rs: int) -> None:
        self.emit("fitod", rd=fd, rs=rs)

    def emit_cvt_float_int(self, rd: int, fs: int) -> None:
        self.emit("fdtoi", rd=rd, rs=fs)

    def emit_fneg(self, freg: int) -> None:
        self.emit("fneg", rd=freg, rs=freg)

    # -- calls ------------------------------------------------------------------

    def place_args(self, args: List[Value], kinds: List[str], varargs: bool):
        offset = 0
        slot = 0
        for value, kind in zip(args, kinds):
            if kind == "f4":
                freg = self.in_freg(value)
                self.emit("stf", rd=freg, rs=s.REG_SP, imm=offset)
                offset += 4
                slot += 1
            elif kind.startswith("f"):
                freg = self.in_freg(value)
                self.emit("stdf", rd=freg, rs=s.REG_SP, imm=offset)
                offset += 8
                slot += 2
            else:
                reg = self.in_ireg(value)
                if not varargs and slot < len(s.ARG_REGS):
                    self.emit_move(s.ARG_REGS[slot], reg)
                else:
                    self.emit("st", rd=reg, rs=s.REG_SP, imm=offset)
                offset += 4
                slot += 1
        return None

    def after_call(self, cleanup) -> None:
        pass

    def emit_call_sym(self, label: str) -> None:
        self.emit("call", target=label)

    def emit_call_reg(self, reg: int) -> None:
        self.emit("callr", rs=reg)

    def emit_ret_move(self, value: Value, kind: str) -> None:
        if value.is_float():
            self.emit_fmove(self.fret_reg, self.in_freg(value))
        else:
            self.emit_move(s.REG_RETVAL, self.in_ireg(value))
