"""rm68k backend.

Two-address CISC with LINK/UNLK frames: arguments are pushed
right-to-left and popped by the caller; canonical frame offsets are
fp-relative (saved fp at fp+0, return address at fp+4, parameters from
fp+8).  Register variables live in the callee-saved data registers
d4-d7; the save mask and save-area offset are recorded for the symbol
table — the 68020 register-save masks the paper mentions (Sec. 5).
Floats use the 80-bit registers; ``long double`` locals are 10 bytes.
"""

from __future__ import annotations

from typing import List

from ...machines import m68k as m
from ..ir import FuncIR
from ..irgen import kind_of
from .common import SPILL_SLOTS, CodeGen, Value, kind_size


class M68kGen(CodeGen):
    temp_regs = list(m.TEMP_REGS)    # d1-d3
    var_regs = list(m.SAVED_REGS)    # d4-d7
    promote_params = True
    ftemp_regs = list(m.FTEMP_REGS)  # fp1-fp3
    fret_reg = m.FRET_REG            # fp0

    def __init__(self):
        from ...machines import get_arch
        self.arch = get_arch("rm68k")
        super().__init__()
        self._local_offsets = {}
        self._save_list: List[int] = []
        self._save_base = 0

    # -- frame layout --------------------------------------------------------
    #
    #   fp + 8 + 4*i : arguments      fp + 4 : return address
    #   fp + 0       : saved fp       fp - k : locals, saves, spills

    def layout_frame(self, fn: FuncIR) -> None:
        self._local_offsets = {}
        slot = 0
        for sym in fn.params:
            offset = 8 + 4 * slot + self.param_slot_adjust(sym.ctype)
            self._local_offsets[sym.uid] = offset
            if sym.uid not in self.reg_vars:
                sym.loc = ("frame", offset)
            slot += max(1, kind_size(kind_of(sym.ctype)) // 4)
        cur = 0
        for sym in fn.locals:
            if sym.uid in self.reg_vars:
                continue
            size = max(4, sym.ctype.size)
            align = max(2, sym.ctype.align)
            cur = -((-cur + size + align - 1) & ~(align - 1))
            self._local_offsets[sym.uid] = cur
            sym.loc = ("frame", cur)
        self._save_list = sorted(self.used_var_regs)
        cur -= 4 * len(self._save_list)
        self._save_base = cur
        cur -= 8 * SPILL_SLOTS
        self.spill_base = cur
        self.framesize = (-cur + 3) & ~3

    def local_frame_offset(self, sym) -> int:
        return self._local_offsets[sym.uid]

    def prologue(self, fn: FuncIR) -> None:
        self.emit("link", imm=self.framesize)
        for k, reg in enumerate(self._save_list):
            self.emit("store32", rd=m.REG_FP, rs=reg,
                      imm=self._save_base + 4 * k)
        for sym in fn.params:
            home = self.reg_vars.get(sym.uid)
            if home is not None:
                self.emit("load32", rd=home, rs=m.REG_FP,
                          imm=self._local_offsets[sym.uid])

    def epilogue(self, fn: FuncIR) -> None:
        for k, reg in enumerate(self._save_list):
            self.emit("load32", rd=reg, rs=m.REG_FP,
                      imm=self._save_base + 4 * k)
        self.emit("unlk")
        self.emit("rts")

    def reg_save_mask(self) -> int:
        mask = 0
        for reg in self._save_list:
            mask |= 1 << reg
        return mask

    def reg_save_offset(self) -> int:
        return self._save_base

    # -- basic emission ----------------------------------------------------------

    def emit_jump(self, label: str) -> None:
        self.emit("bra", imm=("br", label))

    def emit_load_const(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if value >= 1 << 31:
            value -= 1 << 32
        self.emit("movei", rd=reg, imm=value)

    def emit_fconst(self, freg: int, value: float) -> None:
        self.emit("fmovei", rd=freg, imm=value)

    def emit_load_sym_addr(self, reg: int, label: str) -> None:
        self.emit("movei", rd=reg, imm=label)

    def emit_frame_addr(self, reg: int, frame_offset: int) -> None:
        self.emit("lea", rd=reg, rs=m.REG_FP, imm=frame_offset)

    _LOAD_OPS = {"i1": "load8s", "u1": "load8u", "i2": "load16s",
                 "u2": "load16u", "i4": "load32", "u4": "load32", "p": "load32"}
    _STORE_OPS = {"i1": "store8", "u1": "store8", "i2": "store16",
                  "u2": "store16", "i4": "store32", "u4": "store32", "p": "store32"}
    _FLOAD = {"f4": "fload32", "f8": "fload64", "f10": "fload80"}
    _FSTORE = {"f4": "fstore32", "f8": "fstore64", "f10": "fstore80"}

    def emit_load_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], rd=reg, rs=m.REG_FP, imm=frame_offset)

    def emit_store_frame(self, reg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], rd=m.REG_FP, rs=reg, imm=frame_offset)

    def emit_fload_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._FLOAD[kind], rd=freg, rs=m.REG_FP, imm=frame_offset)

    def emit_fstore_frame(self, freg: int, frame_offset: int, kind: str) -> None:
        self.emit(self._FSTORE[kind], rd=freg, rs=m.REG_FP, imm=frame_offset)

    def emit_load_ind(self, reg: int, addr_reg: int, kind: str) -> None:
        self.emit(self._LOAD_OPS[kind], rd=reg, rs=addr_reg, imm=0)

    def emit_store_ind(self, addr_reg: int, reg: int, kind: str) -> None:
        self.emit(self._STORE_OPS[kind], rd=addr_reg, rs=reg, imm=0)

    def emit_fload_ind(self, freg: int, addr_reg: int, kind: str) -> None:
        self.emit(self._FLOAD[kind], rd=freg, rs=addr_reg, imm=0)

    def emit_fstore_ind(self, addr_reg: int, freg: int, kind: str) -> None:
        # the freg travels in rd, the base register in rs
        self.emit(self._FSTORE[kind], rd=freg, rs=addr_reg, imm=0)

    def emit_move(self, rd: int, rs: int) -> None:
        if rd != rs:
            self.emit("move", rd=rd, rs=rs)

    def emit_fmove(self, fd: int, fs: int) -> None:
        if fd != fs:
            self.emit("fmove", rd=fd, rs=fs)

    def emit_truncate(self, reg: int, kind: str) -> None:
        bits = 24 if kind in ("i1", "u1") else 16
        self.emit("lsli", rd=reg, imm=bits)
        self.emit("asri" if kind[0] == "i" else "lsri", rd=reg, imm=bits)

    def emit_neg(self, reg: int) -> None:
        self.emit("neg", rd=reg)

    def emit_bcom(self, reg: int) -> None:
        self.emit("not", rd=reg)

    _BINOPS = {"ADD": "add", "SUB": "sub", "MUL": "muls", "BAND": "and",
               "BOR": "or", "BXOR": "eor", "LSH": "lsl"}

    def emit_binop(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        if op == "DIV":
            self.emit("divu" if unsigned else "divs", rd=rd, rs=rb)
        elif op == "MOD":
            self.emit("remu" if unsigned else "rems", rd=rd, rs=rb)
        elif op == "RSH":
            self.emit("lsr" if unsigned else "asr", rd=rd, rs=rb)
        else:
            self.emit(self._BINOPS[op], rd=rd, rs=rb)

    def emit_fbinop(self, op: str, fa: int, fb: int) -> None:
        names = {"ADD": "fadd", "SUB": "fsub", "MUL": "fmul", "DIV": "fdiv"}
        self.emit(names[op], rd=fa, rs=fb)

    _SCC = {("EQ", False): "seq", ("NE", False): "sne",
            ("LT", False): "slt", ("LE", False): "sle",
            ("GT", False): "sgt", ("GE", False): "sge",
            ("EQ", True): "seq", ("NE", True): "sne",
            ("LT", True): "sltu", ("LE", True): "sleu",
            ("GT", True): "sgtu", ("GE", True): "sgeu"}

    def emit_compare(self, op: str, kind: str, rd: int, ra: int, rb: int) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        self.emit("cmp", rd=ra, rs=rb)
        self.emit(self._SCC[(op, unsigned)], rd=rd)

    def emit_fcompare(self, op: str, rd: int, fa: int, fb: int) -> None:
        self.emit("fcmp", rd=fa, rs=fb)
        self.emit(self._SCC[(op, False)], rd=rd)

    _BCC = {("EQ", False): "beq", ("NE", False): "bne",
            ("LT", False): "blt", ("LE", False): "ble",
            ("GT", False): "bgt", ("GE", False): "bge",
            ("EQ", True): "beq", ("NE", True): "bne",
            ("LT", True): "bltu", ("LE", True): "bleu",
            ("GT", True): "bgtu", ("GE", True): "bgeu"}

    def emit_branch_cmp(self, op: str, kind: str, ra: int, rb: int, label: str) -> None:
        unsigned = kind.startswith("u") or kind == "p"
        self.emit("cmp", rd=ra, rs=rb)
        self.emit(self._BCC[(op, unsigned)], imm=("br", label))

    def emit_branch_true(self, reg: int, label: str) -> None:
        self.emit("tst", rd=reg)
        self.emit("bne", imm=("br", label))

    def emit_branch_false(self, reg: int, label: str) -> None:
        self.emit("tst", rd=reg)
        self.emit("beq", imm=("br", label))

    def emit_cvt_int_float(self, fd: int, rs: int) -> None:
        self.emit("fitod", rd=fd, rs=rs)

    def emit_cvt_float_int(self, rd: int, fs: int) -> None:
        self.emit("fdtoi", rd=rd, rs=fs)

    def emit_fneg(self, freg: int) -> None:
        self.emit("fneg", rd=freg)

    # -- calls ------------------------------------------------------------------

    def place_args(self, args: List[Value], kinds: List[str], varargs: bool):
        total = 0
        for value, kind in zip(reversed(args), reversed(kinds)):
            if kind == "f4":
                freg = self.in_freg(value)
                self.emit("lea", rd=m.REG_SP, rs=m.REG_SP, imm=-4)
                self.emit("fstore32", rd=freg, rs=m.REG_SP, imm=0)
                total += 4
            elif kind.startswith("f"):
                freg = self.in_freg(value)
                self.emit("lea", rd=m.REG_SP, rs=m.REG_SP, imm=-8)
                self.emit("fstore64", rd=freg, rs=m.REG_SP, imm=0)
                total += 8
            else:
                reg = self.in_ireg(value)
                self.emit("push", rs=reg)
                total += 4
        return total

    def after_call(self, cleanup) -> None:
        if cleanup:
            self.emit("lea", rd=m.REG_SP, rs=m.REG_SP, imm=cleanup)

    def emit_call_sym(self, label: str) -> None:
        self.emit("jsr", target=label)

    def emit_call_reg(self, reg: int) -> None:
        self.emit("jsrr", rs=reg)

    def emit_ret_move(self, value: Value, kind: str) -> None:
        if value.is_float():
            self.emit_fmove(self.fret_reg, self.in_freg(value))
        else:
            self.emit_move(m.REG_RETVAL, self.in_ireg(value))
