"""Code generators: one shared driver, four machine-dependent backends.

The division mirrors lcc's code-generation interface (and the paper's
LoC table, Sec. 4.3): the tree-walking driver, register allocation, and
spilling live in :mod:`repro.cc.gen.common`; each backend supplies only
instruction selection, frame layout, and the calling convention.
"""

from .common import CodeGen, GenError


def get_backend(arch_name: str):
    """The CodeGen subclass for a target name."""
    if arch_name in ("rmips", "rmipsel"):
        from .mips import MipsGen
        return MipsGen(arch_name)
    if arch_name == "rsparc":
        from .sparc import SparcGen
        return SparcGen()
    if arch_name == "rm68k":
        from .m68k import M68kGen
        return M68kGen()
    if arch_name == "rvax":
        from .vax import VaxGen
        return VaxGen()
    raise KeyError("no backend for %r" % arch_name)
