"""Lowering: typed AST -> IR trees.

Statement lowering places the stopping points (paper Sec. 3): one at
function entry, one before every top-level expression (each statement
expression, each of a for-loop's three parts, every condition), and one
at the function's closing brace — matching the numbering of Fig. 1.

The same expression lowering is reused by the expression server
(:mod:`repro.ldb.exprserver`), which is the paper's architecture: the
server is "a variant of the compiler" whose IR output is rewritten into
PostScript instead of being passed to a back end.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import tree
from .ctypes_ import (
    ArrayType,
    CType,
    EnumType,
    FunctionType,
    PointerType,
    StructType,
    TypeSystem,
    UnionType,
)
from .ir import (
    ADDRF,
    ADDRG,
    ADDRL,
    ASGN,
    BINOP,
    CALL,
    CJUMP,
    CNST,
    CVT,
    FuncIR,
    INDIR,
    IRNode,
    JUMP,
    LABEL,
    RET,
    STOP,
    StopPoint,
    UnitIR,
)
from .lexer import CError
from .symtab import CSymbol, FunctionInfo, UnitInfo

_BINOP_NAMES = {"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
                "&": "BAND", "|": "BOR", "^": "BXOR", "<<": "LSH", ">>": "RSH"}
_CMP_NAMES = {"==": "EQ", "!=": "NE", "<": "LT", "<=": "LE", ">": "GT", ">=": "GE"}


def kind_of(ctype: CType) -> str:
    if isinstance(ctype, (ArrayType, FunctionType)):
        return "p"
    if isinstance(ctype, EnumType):
        return "i4"
    if isinstance(ctype, (StructType, UnionType)):
        return "b"
    return ctype.ir_kind()


class IRGen:
    """Per-unit IR generator."""

    def __init__(self, types: TypeSystem, unit_info: UnitInfo,
                 unit_suffix: Optional[str] = None):
        self.types = types
        self.info = unit_info
        suffix = unit_suffix or re.sub(r"\W", "_", unit_info.name)
        self.unit_suffix = suffix
        self.unit = UnitIR(unit_info.name)
        self._string_labels: Dict[str, str] = {}
        self._label_counter = 0
        self._temp_counter = 0
        # per-function state
        self.fn: Optional[FunctionInfo] = None
        self.body: List[IRNode] = []
        self.stops: List[StopPoint] = []
        self.break_stack: List[str] = []
        self.continue_stack: List[str] = []
        self.extra_locals: List[CSymbol] = []

    # -- unit driver ----------------------------------------------------------

    def generate(self, unit_ast: tree.TranslationUnit) -> UnitIR:
        fn_iter = iter(self.info.functions)
        for decl in unit_ast.decls:
            if isinstance(decl, tree.FuncDef):
                self.function(decl, next(fn_iter))
        for sym in self.info.globals + self.info.statics:
            self.unit.data.append((sym, self.info.global_inits.get(sym.uid)))
        for fn_info in self.info.functions:
            for sym in fn_info.statics:
                self.unit.data.append((sym, self.info.global_inits.get(sym.uid)))
        self.unit.externs = list(self.info.externs)
        return self.unit

    # -- labels and temps --------------------------------------------------------

    def new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return ".%s%d.%s" % (hint, self._label_counter, self.unit_suffix)

    def new_temp(self, ctype: CType) -> CSymbol:
        self._temp_counter += 1
        sym = CSymbol(".t%d" % self._temp_counter, ctype, "local")
        self.extra_locals.append(sym)
        return sym

    def string_label(self, text: str) -> str:
        if text not in self._string_labels:
            label = "_str%d_%s" % (len(self._string_labels), self.unit_suffix)
            self._string_labels[text] = label
            self.unit.strings.append((label, text))
        return self._string_labels[text]

    def error(self, message: str, node=None) -> CError:
        pos = getattr(node, "pos", None)
        if pos is not None:
            return CError(message, pos.filename, pos.line, pos.col)
        return CError(message)

    # -- functions ----------------------------------------------------------------

    def function(self, fn: tree.FuncDef, info: FunctionInfo) -> None:
        self.fn = info
        self.body = []
        self.stops = []
        self.extra_locals = []
        self.break_stack = []
        self.continue_stack = []

        self.stop_point(fn.pos, info.param_chain)  # entry: the { brace
        # parameter and local initializers run after the entry stop
        self.block_items(fn.body, toplevel=True)
        exit_chain = info.param_chain
        self.stop_point(fn.end_pos, exit_chain)    # exit: the } brace
        if not self.body or self.body[-1].op != "RET":
            self.body.append(RET("v"))

        func_ir = FuncIR(info.symbol, info.params, self.body, self.stops,
                         info.locals + self.extra_locals, info.statics)
        self.unit.functions.append(func_ir)
        self.fn = None

    def stop_point(self, pos, chain) -> StopPoint:
        index = len(self.stops)
        label = "%s.S%d" % (self.fn.symbol.label, index)
        stop = StopPoint(index, pos, chain, label)
        self.stops.append(stop)
        self.body.append(STOP(index, pos))
        return stop

    def stop_for(self, node: tree.Node) -> StopPoint:
        chain = self.fn.chain_at.get(id(node))
        return self.stop_point(node.pos, chain)

    # -- statements ------------------------------------------------------------------

    def block_items(self, blk: tree.Block, toplevel: bool = False) -> None:
        for item in blk.items:
            if isinstance(item, tree.VarDecl):
                if item.symbol is not None and item.symbol.sclass in \
                        ("local", "register") and item.init is not None:
                    # an initializer is a top-level expression, so it gets
                    # a stopping point; the declared symbol heads the chain
                    self.stop_point(item.pos, item.symbol)
                    self.assign_to(item.symbol, item.init)
            else:
                self.statement(item)

    def assign_to(self, sym: CSymbol, value_expr: tree.Expr) -> None:
        value = self.expr_value(value_expr)
        self.body.append(ASGN(kind_of(sym.ctype), ADDRL(sym), value))

    def statement(self, stmt: tree.Stmt) -> None:
        if isinstance(stmt, tree.Block):
            self.block_items(stmt)
        elif isinstance(stmt, tree.Empty):
            pass
        elif isinstance(stmt, tree.ExprStmt):
            self.stop_for(stmt)
            self.expr_effect(stmt.expr)
        elif isinstance(stmt, tree.If):
            self.if_stmt(stmt)
        elif isinstance(stmt, tree.While):
            self.while_stmt(stmt)
        elif isinstance(stmt, tree.DoWhile):
            self.do_while_stmt(stmt)
        elif isinstance(stmt, tree.For):
            self.for_stmt(stmt)
        elif isinstance(stmt, tree.Return):
            self.stop_for(stmt)
            if stmt.value is not None:
                value = self.expr_value(stmt.value)
                self.body.append(RET(kind_of(stmt.value.ctype), value))
            else:
                self.body.append(RET("v"))
        elif isinstance(stmt, tree.Break):
            if not self.break_stack:
                raise self.error("break outside loop or switch", stmt)
            self.body.append(JUMP(self.break_stack[-1]))
        elif isinstance(stmt, tree.Continue):
            if not self.continue_stack:
                raise self.error("continue outside loop", stmt)
            self.body.append(JUMP(self.continue_stack[-1]))
        elif isinstance(stmt, tree.Switch):
            self.switch_stmt(stmt)
        elif isinstance(stmt, (tree.Case, tree.Default)):
            raise self.error("case label outside switch", stmt)
        else:
            raise self.error("cannot lower %r" % stmt, stmt)

    def if_stmt(self, stmt: tree.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif") if stmt.els is not None else else_label
        self.stop_for(stmt)
        self.branch_unless(stmt.cond, else_label)
        self.statement(stmt.then)
        if stmt.els is not None:
            self.body.append(JUMP(end_label))
            self.body.append(LABEL(else_label))
            self.statement(stmt.els)
        self.body.append(LABEL(end_label))

    def while_stmt(self, stmt: tree.While) -> None:
        test = self.new_label("while")
        end = self.new_label("wend")
        self.body.append(LABEL(test))
        self.stop_for(stmt)
        self.branch_unless(stmt.cond, end)
        self.break_stack.append(end)
        self.continue_stack.append(test)
        self.statement(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.body.append(JUMP(test))
        self.body.append(LABEL(end))

    def do_while_stmt(self, stmt: tree.DoWhile) -> None:
        top = self.new_label("do")
        test = self.new_label("dotest")
        end = self.new_label("doend")
        self.body.append(LABEL(top))
        self.break_stack.append(end)
        self.continue_stack.append(test)
        self.statement(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.body.append(LABEL(test))
        self.stop_for(stmt)
        self.branch_if(stmt.cond, top)
        self.body.append(LABEL(end))

    def for_stmt(self, stmt: tree.For) -> None:
        """Stops in the paper's order (Fig. 1): init, cond, body, incr."""
        test = self.new_label("for")
        cont = self.new_label("fcont")
        end = self.new_label("fend")
        if stmt.init is not None:
            self.stop_for(stmt)
            self.expr_effect(stmt.init)
        self.body.append(LABEL(test))
        if stmt.cond is not None:
            self.stop_for(stmt)
            self.branch_unless(stmt.cond, end)
        self.break_stack.append(end)
        self.continue_stack.append(cont)
        self.statement(stmt.body)
        self.break_stack.pop()
        self.continue_stack.pop()
        self.body.append(LABEL(cont))
        if stmt.step is not None:
            self.stop_for(stmt)
            self.expr_effect(stmt.step)
        self.body.append(JUMP(test))
        self.body.append(LABEL(end))

    def switch_stmt(self, stmt: tree.Switch) -> None:
        self.stop_for(stmt)
        temp = self.new_temp(self.types.int)
        self.body.append(ASGN("i4", ADDRL(temp), self.expr_value(stmt.expr)))
        end = self.new_label("swend")
        body = stmt.body
        if not isinstance(body, tree.Block):
            raise self.error("switch body must be a block", stmt)
        # collect case labels among the block's immediate items
        cases: List[Tuple[int, str]] = []
        default_label: Optional[str] = None
        labels: Dict[int, str] = {}
        for item in body.items:
            if isinstance(item, tree.Case):
                label = self.new_label("case")
                labels[id(item)] = label
                cases.append((item.resolved, label))
            elif isinstance(item, tree.Default):
                label = self.new_label("default")
                labels[id(item)] = label
                default_label = label
        for value, label in cases:
            load = INDIR("i4", ADDRL(temp))
            self.body.append(CJUMP(BINOP("EQ", "i4", load, CNST("i4", value)), label))
        self.body.append(JUMP(default_label if default_label else end))
        self.break_stack.append(end)
        for item in body.items:
            if isinstance(item, (tree.Case, tree.Default)):
                self.body.append(LABEL(labels[id(item)]))
            elif isinstance(item, tree.VarDecl):
                if item.symbol is not None and item.symbol.sclass in \
                        ("local", "register") and item.init is not None:
                    self.assign_to(item.symbol, item.init)
            else:
                self.statement(item)
        self.break_stack.pop()
        self.body.append(LABEL(end))

    # -- conditions ---------------------------------------------------------------------

    def branch_if(self, cond: tree.Expr, label: str) -> None:
        self._branch(cond, label, True)

    def branch_unless(self, cond: tree.Expr, label: str) -> None:
        self._branch(cond, label, False)

    def _branch(self, cond: tree.Expr, label: str, sense: bool) -> None:
        if isinstance(cond, tree.Unary) and cond.op == "!":
            self._branch(cond.operand, label, not sense)
            return
        if isinstance(cond, tree.Binary) and cond.op in ("&&", "||"):
            is_and = cond.op == "&&"
            if is_and != sense:
                # branch taken if either/short-circuit aligns with sense
                self._branch(cond.left, label, sense)
                self._branch(cond.right, label, sense)
            else:
                skip = self.new_label("sc")
                self._branch(cond.left, skip, not sense)
                self._branch(cond.right, label, sense)
                self.body.append(LABEL(skip))
            return
        if isinstance(cond, tree.Binary) and cond.op in _CMP_NAMES:
            node = self.compare_value(cond)
            self.body.append(CJUMP(node, label, negate=not sense))
            return
        value = self.expr_value(cond)
        kind = kind_of(cond.ctype)
        if kind.startswith("f"):
            zero = CNST(kind, 0.0)
            node = BINOP("NE", kind, value, zero)
            self.body.append(CJUMP(node, label, negate=not sense))
        else:
            self.body.append(CJUMP(value, label, negate=not sense))

    def compare_value(self, e: tree.Binary) -> IRNode:
        op = _CMP_NAMES[e.op]
        operand_kind = kind_of(e.left.ctype)
        if operand_kind in ("i1", "i2"):
            operand_kind = "i4"
        elif operand_kind in ("u1", "u2"):
            operand_kind = "u4"
        return BINOP(op, operand_kind, self.expr_value(e.left),
                     self.expr_value(e.right))

    # -- expressions ----------------------------------------------------------------------

    def expr_effect(self, e: tree.Expr) -> None:
        """Evaluate for side effects only."""
        if isinstance(e, tree.Comma):
            self.expr_effect(e.left)
            self.expr_effect(e.right)
            return
        if isinstance(e, tree.Assign):
            self.assign(e, want_value=False)
            return
        if isinstance(e, tree.Unary) and e.op in ("pre++", "pre--", "post++", "post--"):
            self.incdec(e, want_value=False)
            return
        if isinstance(e, tree.Call):
            self.body.append(self.call_node(e))
            return
        if isinstance(e, tree.Cast) and e.target_type.is_void():
            self.expr_effect(e.operand)
            return
        # evaluate and discard (may still have effects inside)
        value = self.expr_value(e)
        if _has_effects(value):
            temp = self.new_temp(self.types.int if e.ctype.is_void() else e.ctype)
            kind = kind_of(e.ctype) if not e.ctype.is_void() else "i4"
            if e.ctype.is_void():
                self.body.append(value)
            else:
                self.body.append(ASGN(kind, ADDRL(temp), value))

    def expr_value(self, e: tree.Expr) -> IRNode:
        method = getattr(self, "_val_" + type(e).__name__, None)
        if method is None:
            raise self.error("cannot lower %r" % e, e)
        return method(e)

    def _val_IntLit(self, e: tree.IntLit) -> IRNode:
        return CNST(kind_of(e.ctype), e.value)

    def _val_FloatLit(self, e: tree.FloatLit) -> IRNode:
        return CNST(kind_of(e.ctype), e.value)

    def _val_StringLit(self, e: tree.StringLit) -> IRNode:
        label = self.string_label(e.value)
        sym = CSymbol(label, PointerType(self.types.char), "string")
        sym.label = label
        return ADDRG(sym)

    def _val_Ident(self, e: tree.Ident) -> IRNode:
        sym = e.symbol
        if isinstance(sym.ctype, FunctionType):
            return ADDRG(sym)
        if isinstance(sym.ctype, ArrayType):
            return self.symbol_addr(sym)
        addr = self.symbol_addr(sym)
        return INDIR(kind_of(sym.ctype), addr)

    def symbol_addr(self, sym: CSymbol) -> IRNode:
        if sym.sclass in ("global", "extern", "static", "func", "string"):
            return ADDRG(sym)
        if sym.sclass == "param":
            return ADDRF(sym)
        return ADDRL(sym)

    def _val_Unary(self, e: tree.Unary) -> IRNode:
        op = e.op
        if op in ("pre++", "pre--", "post++", "post--"):
            return self.incdec(e, want_value=True)
        if op == "&":
            return self.expr_addr(e.operand)
        if op == "*":
            addr = self.expr_value(e.operand)
            if isinstance(e.ctype, (ArrayType, FunctionType)):
                return addr
            return INDIR(kind_of(e.ctype), addr)
        if op == "+":
            return self.expr_value(e.operand)
        if op == "-":
            return IRNode("NEG", _widen(kind_of(e.ctype)),
                          [self.expr_value(e.operand)])
        if op == "~":
            return IRNode("BCOM", _widen(kind_of(e.ctype)),
                          [self.expr_value(e.operand)])
        if op == "!":
            inner = self.expr_value(e.operand)
            kind = _widen(kind_of(e.operand.ctype))
            zero = CNST(kind, 0.0 if kind.startswith("f") else 0)
            return BINOP("EQ", kind, inner, zero)
        raise self.error("cannot lower unary %r" % op, e)

    def _val_Binary(self, e: tree.Binary) -> IRNode:
        op = e.op
        if op in _CMP_NAMES:
            return self.compare_value(e)
        if op in ("&&", "||"):
            name = "ANDAND" if op == "&&" else "OROR"
            # value context: evaluate via branches into a temp
            temp = self.new_temp(self.types.int)
            done = self.new_label("bool")
            self.body.append(ASGN("i4", ADDRL(temp), CNST("i4", 0)))
            skip = self.new_label("bfalse")
            self._branch(e, skip, False)
            self.body.append(ASGN("i4", ADDRL(temp), CNST("i4", 1)))
            self.body.append(LABEL(skip))
            return INDIR("i4", ADDRL(temp))
        if op == "+" and e.ctype.is_pointer():
            return self.pointer_add(e.left, e.right, negate=False, node=e)
        if op == "-" and e.ctype.is_pointer():
            return self.pointer_add(e.left, e.right, negate=True, node=e)
        if op == "-" and self.decayed(e.left.ctype).is_pointer() \
                and self.decayed(e.right.ctype).is_pointer():
            elem = self.decayed(e.left.ctype).ref
            diff = BINOP("SUB", "i4", self.expr_value(e.left), self.expr_value(e.right))
            return BINOP("DIV", "i4", diff, CNST("i4", max(elem.size, 1)))
        name = _BINOP_NAMES[op]
        kind = kind_of(e.ctype)
        return BINOP(name, kind, self.expr_value(e.left), self.expr_value(e.right))

    def decayed(self, t: CType) -> CType:
        if isinstance(t, ArrayType):
            return PointerType(t.elem)
        return t

    def pointer_add(self, ptr: tree.Expr, index: tree.Expr, negate: bool, node) -> IRNode:
        pt = self.decayed(ptr.ctype)
        it = self.decayed(index.ctype)
        if it.is_pointer():  # int + ptr
            ptr, index = index, ptr
            pt, it = it, pt
        elem_size = max(pt.ref.size, 1)
        scaled = self.expr_value(index)
        if elem_size != 1:
            scaled = BINOP("MUL", "i4", scaled, CNST("i4", elem_size))
        op = "SUB" if negate else "ADD"
        return BINOP(op, "p", self.expr_value(ptr), scaled)

    def _val_Assign(self, e: tree.Assign) -> IRNode:
        return self.assign(e, want_value=True)

    def assign(self, e: tree.Assign, want_value: bool) -> Optional[IRNode]:
        target_type = e.target.ctype
        kind = kind_of(target_type)
        if kind == "b":
            return self.block_assign(e, want_value)
        if e.op == "=":
            addr = self.expr_addr(e.target, mark=False)
            value = self.expr_value(e.value)
        else:
            addr = self.expr_addr(e.target, mark=False)
            addr, reuse = self.reuse_addr(addr)
            binop = e.op[:-1]
            old = INDIR(kind, reuse)
            if target_type.is_pointer():
                elem = max(target_type.ref.size, 1)
                delta = self.expr_value(e.value)
                if elem != 1:
                    delta = BINOP("MUL", "i4", delta, CNST("i4", elem))
                value = BINOP("ADD" if binop == "+" else "SUB", "p", old, delta)
            else:
                op_kind = _widen(kind)
                left = old if op_kind == kind else CVT(op_kind, kind, old)
                value = BINOP(_BINOP_NAMES[binop], op_kind, left,
                              self.expr_value(e.value))
                if op_kind != kind:
                    value = CVT(kind, op_kind, value)
        if want_value:
            temp = self.new_temp(target_type)
            self.body.append(ASGN(kind, ADDRL(temp), value))
            addr2, reuse2 = (addr, addr) if addr.op in ("ADDRL", "ADDRF", "ADDRG") \
                else (addr, addr)
            self.body.append(ASGN(kind, addr, INDIR(kind, ADDRL(temp))))
            return INDIR(kind, ADDRL(temp))
        self.body.append(ASGN(kind, addr, value))
        return None

    def block_assign(self, e: tree.Assign, want_value: bool) -> Optional[IRNode]:
        """Struct assignment: expanded into word copies (no backend help)."""
        stype = e.target.ctype
        dst = self.materialize_addr(self.expr_addr(e.target, mark=False))
        src = self.materialize_addr(self.expr_addr(e.value, mark=False))
        offset = 0
        while offset + 4 <= stype.size:
            self.copy_unit(dst, src, offset, "i4")
            offset += 4
        while offset < stype.size:
            self.copy_unit(dst, src, offset, "i1")
            offset += 1
        if want_value:
            raise self.error("struct assignment has no value here", e)
        return None

    def copy_unit(self, dst: CSymbol, src: CSymbol, offset: int, kind: str) -> None:
        load = INDIR(kind, BINOP("ADD", "p", INDIR("p", ADDRL(src)),
                                 CNST("i4", offset)))
        store_addr = BINOP("ADD", "p", INDIR("p", ADDRL(dst)), CNST("i4", offset))
        self.body.append(ASGN(kind, store_addr, load))

    def materialize_addr(self, addr: IRNode) -> CSymbol:
        temp = self.new_temp(PointerType(self.types.void))
        self.body.append(ASGN("p", ADDRL(temp), addr))
        return temp

    def reuse_addr(self, addr: IRNode) -> Tuple[IRNode, IRNode]:
        """An address used twice (compound assignment): keep simple
        addresses, spill complex ones to a temp."""
        if addr.op in ("ADDRL", "ADDRF", "ADDRG"):
            return addr, IRNode(addr.op, "p", symbol=addr.symbol)
        temp = self.materialize_addr(addr)
        return INDIR("p", ADDRL(temp)), INDIR("p", ADDRL(temp))

    def incdec(self, e: tree.Unary, want_value: bool) -> Optional[IRNode]:
        target = e.operand
        kind = kind_of(target.ctype)
        addr, reuse = self.reuse_addr(self.expr_addr(target, mark=False))
        old = INDIR(kind, reuse)
        if target.ctype.is_pointer():
            delta = max(target.ctype.ref.size, 1)
        else:
            delta = 1
        op = "ADD" if "++" in e.op else "SUB"
        op_kind = "p" if target.ctype.is_pointer() else _widen(kind)
        if op_kind != kind and not target.ctype.is_pointer():
            grown = CVT(op_kind, kind, old)
        else:
            grown = old
        delta_kind = "i4" if op_kind != "p" else "i4"
        if op_kind.startswith("f"):
            new = BINOP(op, op_kind, grown, CNST(op_kind, 1.0))
        else:
            new = BINOP(op, op_kind, grown, CNST("i4", delta))
        if op_kind != kind and not target.ctype.is_pointer():
            new = CVT(kind, op_kind, new)
        if not want_value:
            self.body.append(ASGN(kind, addr, new))
            return None
        temp = self.new_temp(target.ctype)
        if e.op.startswith("post"):
            self.body.append(ASGN(kind, ADDRL(temp), INDIR(kind, reuse)))
            self.body.append(ASGN(kind, addr, new))
        else:
            self.body.append(ASGN(kind, addr, new))
            self.body.append(ASGN(kind, ADDRL(temp), INDIR(kind, reuse)))
        return INDIR(kind, ADDRL(temp))

    def _val_Cond(self, e: tree.Cond) -> IRNode:
        kind = kind_of(e.ctype)
        temp = self.new_temp(e.ctype)
        els = self.new_label("celse")
        end = self.new_label("cend")
        self.branch_unless(e.cond, els)
        self.body.append(ASGN(kind, ADDRL(temp), self.expr_value(e.then)))
        self.body.append(JUMP(end))
        self.body.append(LABEL(els))
        self.body.append(ASGN(kind, ADDRL(temp), self.expr_value(e.els)))
        self.body.append(LABEL(end))
        return INDIR(kind, ADDRL(temp))

    def _val_Call(self, e: tree.Call) -> IRNode:
        node = self.call_node(e)
        if node.kind == "v":
            raise self.error("void value used", e)
        # materialize the result so later calls in the same expression
        # cannot clobber it
        temp = self.new_temp(e.ctype)
        self.body.append(ASGN(node.kind, ADDRL(temp), node))
        return INDIR(node.kind, ADDRL(temp))

    def call_node(self, e: tree.Call) -> IRNode:
        args = [self.expr_value(arg) for arg in e.args]
        arg_kinds = [kind_of(arg.ctype) for arg in e.args]
        fn = e.fn
        ftype = fn.ctype
        if isinstance(ftype, PointerType):
            ftype = ftype.ref
        if isinstance(fn, tree.Ident) and isinstance(fn.ctype, FunctionType):
            func = fn.symbol
        else:
            func = self.expr_value(fn)
        node = CALL(kind_of(e.ctype) if not e.ctype.is_void() else "v", func, args)
        node.value = (arg_kinds, ftype.varargs)
        return node

    def _val_Index(self, e: tree.Index) -> IRNode:
        addr = self.index_addr(e)
        if isinstance(e.ctype, ArrayType):
            return addr
        return INDIR(kind_of(e.ctype), addr)

    def index_addr(self, e: tree.Index) -> IRNode:
        base = self.expr_value(e.base)
        elem_size = max(e.ctype.size, 1) if not isinstance(e.ctype, ArrayType) \
            else e.ctype.size
        index = self.expr_value(e.index)
        if elem_size != 1:
            index = BINOP("MUL", "i4", index, CNST("i4", elem_size))
        return BINOP("ADD", "p", base, index)

    def _val_Member(self, e: tree.Member) -> IRNode:
        addr = self.member_addr(e)
        if isinstance(e.ctype, ArrayType):
            return addr
        if isinstance(e.ctype, (StructType, UnionType)):
            return addr
        return INDIR(kind_of(e.ctype), addr)

    def member_addr(self, e: tree.Member) -> IRNode:
        if e.arrow:
            base = self.expr_value(e.base)
        else:
            base = self.expr_addr(e.base)
        if e.field.offset == 0:
            return base
        return BINOP("ADD", "p", base, CNST("i4", e.field.offset))

    def _val_Cast(self, e: tree.Cast) -> IRNode:
        inner = self.expr_value(e.operand)
        from_kind = kind_of(e.operand.ctype)
        to_kind = kind_of(e.target_type)
        if e.target_type.is_void():
            return inner
        if from_kind == to_kind:
            return inner
        return CVT(to_kind, from_kind, inner)

    def _val_Comma(self, e: tree.Comma) -> IRNode:
        self.expr_effect(e.left)
        return self.expr_value(e.right)

    # -- addresses --------------------------------------------------------------------------

    def expr_addr(self, e: tree.Expr, mark: bool = True) -> IRNode:
        """The address of an lvalue.

        ``mark`` records address-taken-ness; internal consumers (compound
        assignment, ++/--) pass False because the backends resolve plain
        ADDRL references to register variables without a memory home.
        """
        if isinstance(e, tree.Ident):
            if mark:
                e.symbol.addr_taken = True
            return self.symbol_addr(e.symbol)
        if isinstance(e, tree.Unary) and e.op == "*":
            return self.expr_value(e.operand)
        if isinstance(e, tree.Index):
            return self.index_addr(e)
        if isinstance(e, tree.Member):
            return self.member_addr(e)
        if isinstance(e, tree.StringLit):
            return self._val_StringLit(e)
        if isinstance(e, tree.Cast) and e.implicit:
            return self.expr_addr(e.operand, mark)
        raise self.error("expression has no address", e)


def _widen(kind: str) -> str:
    if kind in ("i1", "i2"):
        return "i4"
    if kind in ("u1", "u2"):
        return "u4"
    return kind


def _has_effects(node: IRNode) -> bool:
    if node.op in ("CALL", "ASGN"):
        return True
    return any(_has_effects(kid) for kid in node.kids if isinstance(kid, IRNode))
