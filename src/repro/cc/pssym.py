"""PostScript symbol-table emission (paper Sec. 2).

The compiler emits *machine-independent* symbol tables represented by
PostScript programs that build PostScript objects.  Each symbol-table
entry is a dictionary (``/S10 << /name (i) ... >> def``); entries for
locals link into the uplink tree of Fig. 2; procedure entries carry the
``loci`` array of stopping points; statics and stopping points are
located through anchor symbols and ``LazyData``.

Two emission modes support the paper's deferral measurement (Sec. 5):

* ``defer=True`` (production): procedures that are interpreted at most
  once — ``where`` computations, ``loci`` locations, printers — are
  quoted as strings (``(...) cvx``), so the scanner reads them quickly
  and lexical analysis happens only on demand;
* ``defer=False``: the same procedures inline as ``{...}`` bodies, fully
  scanned at load time.  ``bench_deferral.py`` measures the difference.

Machine-dependent data rides along where the paper says it does: the
compiler adds register-save masks to procedure entries for the rm68k
target (Sec. 5), and element sizes/offsets in type dictionaries are
target-specific by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ctypes_ import (
    ArrayType,
    CType,
    EnumType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    TypeSystem,
    UnionType,
    VoidType,
)
from .ir import FuncIR, StopPoint, UnitIR
from .symtab import CSymbol, FunctionInfo, UnitInfo


def ps_string(text: str) -> str:
    """Quote text as a PostScript string."""
    out = []
    for ch in text:
        if ch in "()\\":
            out.append("\\" + ch)
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        else:
            out.append(ch)
    return "(%s)" % "".join(out)


def decl_pattern(t: CType, inner: str = "%s") -> str:
    """Build the C declarator pattern for a type (``int %s[20]``)."""
    if isinstance(t, PointerType):
        ref = t.ref
        star = "*" + inner
        if isinstance(ref, (ArrayType, FunctionType)):
            star = "(%s)" % star
        return decl_pattern(ref, star)
    if isinstance(t, ArrayType):
        count = "" if t.count is None else str(t.count)
        return decl_pattern(t.elem, "%s[%s]" % (inner, count))
    if isinstance(t, FunctionType):
        params = ", ".join(decl_pattern(pt, "") for _, pt in t.params) or "void"
        if t.varargs:
            params += ", ..."
        return decl_pattern(t.ret, "%s(%s)" % (inner, params))
    if isinstance(t, (StructType, UnionType)):
        return ("%s %s %s" % (t.kind_word, t.tag or "", inner)).strip()
    if isinstance(t, EnumType):
        return ("enum %s %s" % (t.tag or "", inner)).strip()
    return ("%s %s" % (t, inner)).rstrip()


def struct_cdef(t: StructType) -> str:
    """The C definition of a struct/union, for the expression server."""
    members = " ".join("%s;" % decl_pattern(f.ctype, f.name) for f in t.fields)
    return "%s %s { %s }" % (t.kind_word, t.tag or "", members)


_INT_PRINTERS = {(1, True): "CHAR", (1, False): "UCHAR",
                 (2, True): "SHORT", (2, False): "USHORT",
                 (4, True): "INT", (4, False): "UINT"}
_FLOAT_PRINTERS = {4: "FLOAT", 8: "DOUBLE", 10: "LDOUBLE"}


class _Emitter:
    def __init__(self, unit, unit_ir: UnitIR, info: UnitInfo, backend,
                 types: TypeSystem, defer: bool):
        self.unit = unit
        self.unit_ir = unit_ir
        self.info = info
        self.backend = backend
        self.types = types
        self.defer = defer
        self.lines: List[str] = []
        self.type_names: Dict[int, str] = {}
        self.type_fill: List[Tuple[str, CType]] = []
        self.anchor_name = backend.anchor_symbol_name(unit)
        self._type_counter = [0]
        self._held: List[CType] = []  # keep ids stable

    # -- procedures-as-code: the deferral seam -----------------------------

    def proc(self, body: str) -> str:
        """Emit a procedure body, deferred or eager (Sec. 5)."""
        if self.defer:
            return "%s cvx" % ps_string(body)
        return "{ %s }" % body

    # -- types --------------------------------------------------------------

    def type_ref(self, t: CType) -> str:
        key = id(t)
        if key not in self.type_names:
            self._type_counter[0] += 1
            name = "T%d_%s" % (self._type_counter[0], self.unit.name_suffix())
            self.type_names[key] = name
            self._held.append(t)
            # declare now, fill later: handles recursive structs
            self.lines.append("/%s 12 dict def" % name)
            self.type_fill.append((name, t))
        return self.type_names[key]

    def fill_types(self) -> None:
        while self.type_fill:
            name, t = self.type_fill.pop(0)
            for key, value in self.type_body(t):
                self.lines.append("%s /%s %s put" % (name, key, value))

    def type_body(self, t: CType) -> List[Tuple[str, str]]:
        body: List[Tuple[str, str]] = [
            ("decl", ps_string(decl_pattern(t))),
            ("size", str(max(t.size, 0))),
        ]
        if isinstance(t, IntType):
            body.append(("printer", self.proc(_INT_PRINTERS[(t.size, t.signed)])))
        elif isinstance(t, FloatType):
            body.append(("printer", self.proc(_FLOAT_PRINTERS[t.size])))
        elif isinstance(t, PointerType):
            ref = t.ref
            if isinstance(ref, IntType) and ref.size == 1:
                body.append(("printer", self.proc("CSTRING")))
            elif isinstance(ref, FunctionType):
                body.append(("printer", self.proc("FUNC")))
            else:
                body.append(("printer", self.proc("PTR")))
            if not ref.is_void() and not isinstance(ref, FunctionType):
                body.append(("pointee", self.type_ref(ref)))
        elif isinstance(t, ArrayType):
            body.append(("printer", self.proc("ARRAY")))
            body.append(("elemsize", str(t.elem.size)))
            body.append(("arraysize", str(t.size)))
            body.append(("elemtype", self.type_ref(t.elem)))
        elif isinstance(t, UnionType):
            body.append(("printer", self.proc("UNION")))
            body.append(("fields", self._fields(t)))
            body.append(("cdef", ps_string(struct_cdef(t))))
        elif isinstance(t, StructType):
            body.append(("printer", self.proc("STRUCT")))
            body.append(("fields", self._fields(t)))
            body.append(("cdef", ps_string(struct_cdef(t))))
        elif isinstance(t, EnumType):
            body.append(("printer", self.proc("ENUM")))
            tags = " ".join("%d %s" % (value, ps_string(name))
                            for name, value in t.enumerators)
            body.append(("enumtags", "<< %s >>" % tags))
        elif isinstance(t, FunctionType):
            body.append(("printer", self.proc("FUNC")))
        elif isinstance(t, VoidType):
            body.append(("printer", self.proc("PTR")))
        return body

    def _fields(self, t: StructType) -> str:
        parts = []
        for field in t.fields:
            parts.append("<< /name %s /offset %d /ftype %s >>"
                         % (ps_string(field.name), field.offset,
                            self.type_ref(field.ctype)))
        return "[ %s ]" % " ".join(parts)

    # -- locations -------------------------------------------------------------

    def where(self, sym: CSymbol) -> Optional[str]:
        loc = sym.loc
        if loc is None:
            if sym.sclass == "extern":
                return self.proc("%s GlobalData"
                                 % ps_string(sym.label or "_" + sym.name))
            return None
        if loc[0] == "reg":
            return "%d Regset0 Absolute" % loc[1]
        if loc[0] == "frame":
            op = "Param" if sym.sclass == "param" else "Local"
            return self.proc("%d %s" % (loc[1], op))
        if loc[0] == "global":
            if sym.anchor_index is not None:
                return self.proc("%s %d LazyData"
                                 % (ps_string(self.anchor_name), sym.anchor_index))
            return self.proc("%s GlobalData" % ps_string(loc[1]))
        return None

    # -- symbol entries -----------------------------------------------------------

    def sym_name(self, sym: CSymbol) -> str:
        return "S%d" % sym.uid

    def entry(self, sym: CSymbol, kind: str,
              extra: Optional[List[Tuple[str, str]]] = None) -> None:
        pos = sym.pos
        fields = [
            ("name", ps_string(sym.name)),
            ("type", self.type_ref(sym.ctype)),
            ("sourcefile", ps_string(pos.filename if pos else self.unit_ir.name)),
            ("sourcey", str(pos.line if pos else 0)),
            ("sourcex", str(pos.col if pos else 0)),
            ("kind", ps_string(kind)),
        ]
        where = self.where(sym)
        if where is not None:
            fields.append(("where", where))
        uplink = self.sym_name(sym.uplink) if sym.uplink is not None else "null"
        fields.append(("uplink", uplink))
        if extra:
            fields.extend(extra)
        body = " ".join("/%s %s" % (key, value) for key, value in fields)
        self.lines.append("/%s << %s >> def" % (self.sym_name(sym), body))

    def stop_where(self, stop: StopPoint) -> str:
        index = self.backend.anchor_index.get(stop.label)
        if index is None:
            return "null"
        return self.proc("%s %d LazyData" % (ps_string(self.anchor_name), index))

    def function(self, fn_ir: FuncIR, fn_info: FunctionInfo) -> None:
        # declaration order (uid order) so uplink references resolve:
        # the chain may interleave params, locals, and function statics
        everything = list(fn_info.params) + list(fn_ir.locals) + list(fn_info.statics)
        for sym in sorted(everything, key=lambda s: s.uid):
            if sym.name.startswith("."):
                continue  # compiler temporaries stay out of the table
            self.entry(sym, "variable")
        loci_parts = []
        for stop in fn_ir.stops:
            syms = self.sym_name(stop.chain) if stop.chain is not None else "null"
            pos = stop.pos
            loci_parts.append(
                "<< /sourcey %d /sourcex %d /where %s /syms %s >>"
                % (pos.line if pos else 0, pos.col if pos else 0,
                   self.stop_where(stop), syms))
        statics_body = " ".join(
            "/%s %s" % (sym.name, self.sym_name(sym)) for sym in fn_info.statics)
        formals = (self.sym_name(fn_info.params[-1])
                   if fn_info.params else "null")
        # the loci array is the bulk of a procedure's entry and is
        # interpreted at most once, so in deferred mode its *lexical
        # analysis* is deferred too: the whole array arrives as a quoted
        # string the scanner reads quickly (paper Sec. 5)
        loci_value = self.proc("[ %s ]" % " ".join(loci_parts))
        extra: List[Tuple[str, str]] = [
            ("formals", formals),
            ("statics", "<< %s >>" % statics_body),
            ("loci", loci_value),
        ]
        if self.backend.arch.name == "rm68k":
            # the register-save mask the paper's 68020 compiler adds
            frame_info = getattr(fn_ir.symbol, "frame_info", None)
            if frame_info is not None:
                extra.append(("savemask", str(frame_info.regmask)))
                extra.append(("saveoffset", str(frame_info.regsave_offset)))
                extra.append(("framesize", str(frame_info.framesize)))
        self.entry(fn_ir.symbol, "procedure", extra)

    # -- unit ------------------------------------------------------------------------

    def emit(self) -> str:
        self.lines.append("%% PostScript symbol table for %s (%s)"
                          % (self.unit_ir.name, self.backend.arch.name))
        func_statics = set()
        for fi in self.info.functions:
            func_statics.update(id(sym) for sym in fi.statics)
        for sym, _init in self.unit_ir.data:
            if id(sym) in func_statics or sym.sclass == "string":
                continue  # function statics are emitted with their function
            self.entry(sym, "variable")
        for sym in self.unit_ir.externs:
            self.entry(sym, "variable")
        fn_iter = iter(self.info.functions)
        for fn_ir in self.unit_ir.functions:
            self.function(fn_ir, next(fn_iter))
        self.fill_types()
        # top-level contributions (accumulated by the symload harness)
        for fn_ir in self.unit_ir.functions:
            self.lines.append("%s AddProc" % self.sym_name(fn_ir.symbol))
            self.lines.append("/%s %s AddExtern"
                              % (fn_ir.symbol.name, self.sym_name(fn_ir.symbol)))
        for sym in self.info.globals:
            self.lines.append("/%s %s AddExtern" % (sym.name, self.sym_name(sym)))
        source_procs = " ".join(self.sym_name(fn.symbol)
                                for fn in self.unit_ir.functions)
        self.lines.append("%s [ %s ] AddSource"
                          % (ps_string(self.unit_ir.name), source_procs))
        if self.backend.anchor_index:
            self.lines.append("/%s AddAnchor" % self.anchor_name)
        return "\n".join(self.lines) + "\n"


def emit_unit(unit, unit_ir: UnitIR, info: UnitInfo, backend,
              types: TypeSystem, defer: bool = True) -> str:
    """Emit the PostScript symbol table for one compiled unit."""
    return _Emitter(unit, unit_ir, info, backend, types, defer).emit()
