"""dbx-style "stabs" emission: the machine-dependent baseline format.

Production lcc emits symbol-table stabs for dbx and gdb (paper Sec. 2);
this module is the analog, used as the baseline in the symbol-table size
comparison (Sec. 7: PostScript is ~9x larger than binary stabs, ~2x
after compression).

Format: the classic a.out ``nlist`` layout — a 12-byte record per stab
(string-table offset, type code, other, desc, value) followed by the
string table.  Strings use dbx's type grammar: ``int:t1=r1;...``,
``i:1`` for a local of type 1, ``a:S3`` for a static, ``fib:F1`` for a
function, plus N_SLINE records for the stopping points.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .ctypes_ import (
    ArrayType,
    CType,
    EnumType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    TypeSystem,
    UnionType,
    VoidType,
)
from .ir import UnitIR
from .symtab import UnitInfo

# a.out stab type codes
N_GSYM = 0x20
N_FUN = 0x24
N_STSYM = 0x26
N_LCSYM = 0x28
N_RSYM = 0x40
N_SLINE = 0x44
N_SO = 0x64
N_LSYM = 0x80
N_PSYM = 0xA0


class _StabWriter:
    def __init__(self):
        self.records: List[Tuple[int, int, int, int]] = []  # strx, type, desc, value
        self.strtab = bytearray(b"\0")
        self._interned: Dict[str, int] = {}

    def intern(self, text: str) -> int:
        if text not in self._interned:
            self._interned[text] = len(self.strtab)
            self.strtab.extend(text.encode("latin-1") + b"\0")
        return self._interned[text]

    def stab(self, text: str, ntype: int, desc: int = 0, value: int = 0) -> None:
        self.records.append((self.intern(text), ntype, desc, value & 0xFFFFFFFF))

    def tobytes(self) -> bytes:
        header = struct.pack("<II", len(self.records), len(self.strtab))
        body = b"".join(struct.pack("<IBBhI", strx, ntype, 0, desc, value)
                        for strx, ntype, desc, value in self.records)
        return header + body + bytes(self.strtab)


class _Typist:
    """Assigns dbx type numbers and builds type definition strings."""

    def __init__(self, writer: _StabWriter):
        self.writer = writer
        self.numbers: Dict[int, int] = {}
        self.next_number = 1
        self._held: List[CType] = []

    def ref(self, t: CType) -> int:
        key = id(t)
        if key in self.numbers:
            return self.numbers[key]
        number = self.next_number
        self.next_number += 1
        self.numbers[key] = number
        self._held.append(t)
        definition = self.define(t, number)
        name = getattr(t, "name", None) or ""
        self.writer.stab("%s:t%d=%s" % (name, number, definition), N_LSYM)
        return number

    def define(self, t: CType, number: int) -> str:
        if isinstance(t, IntType):
            if t.signed:
                low = -(1 << (8 * t.size - 1))
                high = (1 << (8 * t.size - 1)) - 1
            else:
                low = 0
                high = (1 << (8 * t.size)) - 1
            return "r%d;%d;%d;" % (number, low, high)
        if isinstance(t, FloatType):
            return "r%d;%d;0;" % (number, t.size)
        if isinstance(t, VoidType):
            return "%d" % number  # void is self-referential in dbx
        if isinstance(t, PointerType):
            return "*%d" % self.ref(t.ref)
        if isinstance(t, ArrayType):
            count = (t.count or 1) - 1
            return "ar1;0;%d;%d" % (count, self.ref(t.elem))
        if isinstance(t, UnionType):
            fields = "".join("%s:%d,%d,%d;" % (f.name, self.ref(f.ctype),
                                               f.offset * 8, f.ctype.size * 8)
                             for f in t.fields)
            return "u%d%s;" % (t.size, fields)
        if isinstance(t, StructType):
            fields = "".join("%s:%d,%d,%d;" % (f.name, self.ref(f.ctype),
                                               f.offset * 8, f.ctype.size * 8)
                             for f in t.fields)
            return "s%d%s;" % (t.size, fields)
        if isinstance(t, EnumType):
            tags = "".join("%s:%d," % (name, value) for name, value in t.enumerators)
            return "e%s;" % tags
        if isinstance(t, FunctionType):
            return "f%d" % self.ref(t.ret)
        return "%d" % number


def emit_unit(unit_ir: UnitIR, info: UnitInfo, types: TypeSystem) -> bytes:
    """Emit binary stabs for one unit (the dbx/gdb baseline)."""
    writer = _StabWriter()
    typist = _Typist(writer)
    writer.stab(unit_ir.name, N_SO)

    func_statics = set()
    for fi in info.functions:
        func_statics.update(id(sym) for sym in fi.statics)

    for sym, _init in unit_ir.data:
        if id(sym) in func_statics or sym.sclass == "string":
            continue
        number = typist.ref(sym.ctype)
        code = N_LCSYM if sym.sclass == "static" else N_GSYM
        letter = "S" if sym.sclass == "static" else "G"
        writer.stab("%s:%s%d" % (sym.name, letter, number), code)

    fn_iter = iter(info.functions)
    for fn_ir in unit_ir.functions:
        fn_info = next(fn_iter)
        ret_num = typist.ref(fn_ir.symbol.ctype.ret)
        line = fn_ir.symbol.pos.line if fn_ir.symbol.pos else 0
        writer.stab("%s:F%d" % (fn_ir.name, ret_num), N_FUN, desc=line)
        for sym in fn_info.params:
            offset = sym.loc[1] if sym.loc and sym.loc[0] == "frame" else 0
            writer.stab("%s:p%d" % (sym.name, typist.ref(sym.ctype)),
                        N_PSYM, value=offset)
        for sym in fn_ir.locals:
            if sym.name.startswith("."):
                continue
            number = typist.ref(sym.ctype)
            if sym.loc and sym.loc[0] == "reg":
                writer.stab("%s:r%d" % (sym.name, number), N_RSYM,
                            value=sym.loc[1])
            else:
                offset = sym.loc[1] if sym.loc and sym.loc[0] == "frame" else 0
                writer.stab("%s:%d" % (sym.name, number), N_LSYM, value=offset)
        for sym in fn_info.statics:
            writer.stab("%s:V%d" % (sym.name, typist.ref(sym.ctype)),
                        N_LCSYM)
        for stop in fn_ir.stops:
            writer.stab("", N_SLINE, desc=stop.pos.line if stop.pos else 0)
    return writer.tobytes()
