"""C lexer for the rcc compiler (the lcc analog).

Tokens carry source coordinates (file, line, column) because the
debugger's symbol tables record them: every symbol-table entry has
``sourcefile``/``sourcey``/``sourcex`` (paper Sec. 2).
"""

from __future__ import annotations

from typing import List, NamedTuple, Union


class CError(Exception):
    """A compile-time error with a source position."""

    def __init__(self, message: str, filename: str = "", line: int = 0, col: int = 0):
        self.message = message
        self.filename = filename
        self.line = line
        self.col = col
        where = "%s:%d:%d: " % (filename, line, col) if filename else ""
        super().__init__(where + message)


class Token(NamedTuple):
    kind: str        # 'id', 'keyword', 'int', 'float', 'char', 'string', 'punct', 'eof'
    text: str
    value: Union[int, float, str, None]
    filename: str
    line: int
    col: int


KEYWORDS = frozenset("""
    auto break case char const continue default do double else enum extern
    float for goto if int long register return short signed sizeof static
    struct switch typedef union unsigned void volatile while
""".split())

_PUNCTS3 = ("<<=", ">>=", "...")
_PUNCTS2 = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->")
_PUNCTS1 = "+-*/%<>=!&|^~?:;,.(){}[]#"

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v"}


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize C source into a list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    pos = 0
    n = len(source)

    def error(msg: str) -> CError:
        return CError(msg, filename, line, col)

    while pos < n:
        ch = source[pos]
        # whitespace
        if ch == "\n":
            line += 1
            col = 1
            pos += 1
            continue
        if ch in " \t\r\f\v":
            pos += 1
            col += 1
            continue
        # comments
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise error("unterminated comment")
            skipped = source[pos : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            pos = end + 2
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end < 0 else end
            continue
        start_line, start_col = line, col
        # identifiers and keywords
        if ch.isalpha() or ch == "_":
            end = pos + 1
            while end < n and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[pos:end]
            kind = "keyword" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, text, filename, start_line, start_col))
            col += end - pos
            pos = end
            continue
        # numbers
        if ch.isdigit() or (ch == "." and pos + 1 < n and source[pos + 1].isdigit()):
            token, end = _scan_number(source, pos, filename, start_line, start_col)
            tokens.append(token)
            col += end - pos
            pos = end
            continue
        # character constants
        if ch == "'":
            value, end = _scan_char(source, pos, error)
            tokens.append(Token("int", source[pos:end], value, filename,
                                start_line, start_col))
            col += end - pos
            pos = end
            continue
        # string literals
        if ch == '"':
            text, end = _scan_string(source, pos, error)
            tokens.append(Token("string", source[pos:end], text, filename,
                                start_line, start_col))
            col += end - pos
            pos = end
            continue
        # punctuation (longest match)
        matched = None
        for group in (_PUNCTS3, _PUNCTS2):
            for punct in group:
                if source.startswith(punct, pos):
                    matched = punct
                    break
            if matched:
                break
        if matched is None and ch in _PUNCTS1:
            matched = ch
        if matched is None:
            raise error("stray character %r" % ch)
        tokens.append(Token("punct", matched, matched, filename, start_line, start_col))
        col += len(matched)
        pos += len(matched)
    tokens.append(Token("eof", "", None, filename, line, col))
    return tokens


def _scan_number(source, pos, filename, line, col):
    n = len(source)
    end = pos
    is_float = False
    if source.startswith(("0x", "0X"), pos):
        end = pos + 2
        while end < n and source[end] in "0123456789abcdefABCDEF":
            end += 1
        value = int(source[pos:end], 16)
    else:
        while end < n and source[end].isdigit():
            end += 1
        if end < n and source[end] == ".":
            is_float = True
            end += 1
            while end < n and source[end].isdigit():
                end += 1
        if end < n and source[end] in "eE":
            probe = end + 1
            if probe < n and source[probe] in "+-":
                probe += 1
            if probe < n and source[probe].isdigit():
                is_float = True
                end = probe
                while end < n and source[end].isdigit():
                    end += 1
        text = source[pos:end]
        if is_float:
            value = float(text)
        elif text.startswith("0") and len(text) > 1:
            value = int(text, 8)
        else:
            value = int(text)
    # suffixes (uUlLfF) are accepted and ignored, except f on floats
    while end < n and source[end] in "uUlLfF":
        if source[end] in "fF" and not is_float:
            break
        end += 1
    kind = "float" if is_float else "int"
    return Token(kind, source[pos:end], value, filename, line, col), end


def _scan_char(source, pos, error):
    n = len(source)
    end = pos + 1
    if end >= n:
        raise error("unterminated character constant")
    if source[end] == "\\":
        end += 1
        if end >= n:
            raise error("unterminated character constant")
        esc = source[end]
        if esc == "x":
            end += 1
            start = end
            while end < n and source[end] in "0123456789abcdefABCDEF":
                end += 1
            value = int(source[start:end], 16)
        elif esc.isdigit():
            start = end
            while end < n and source[end].isdigit() and end - start < 3:
                end += 1
            value = int(source[start:end], 8)
        else:
            if esc not in _ESCAPES:
                raise error("unknown escape \\%s" % esc)
            value = ord(_ESCAPES[esc])
            end += 1
    else:
        value = ord(source[end])
        end += 1
    if end >= n or source[end] != "'":
        raise error("unterminated character constant")
    return value, end + 1


def _scan_string(source, pos, error):
    n = len(source)
    end = pos + 1
    chars = []
    while True:
        if end >= n:
            raise error("unterminated string literal")
        ch = source[end]
        if ch == '"':
            return "".join(chars), end + 1
        if ch == "\n":
            raise error("newline in string literal")
        if ch == "\\":
            end += 1
            if end >= n:
                raise error("unterminated string literal")
            esc = source[end]
            if esc == "x":
                end += 1
                start = end
                while end < n and source[end] in "0123456789abcdefABCDEF":
                    end += 1
                chars.append(chr(int(source[start:end], 16)))
                continue
            if esc.isdigit():
                start = end
                while end < n and source[end].isdigit() and end - start < 3:
                    end += 1
                chars.append(chr(int(source[start:end], 8)))
                continue
            if esc not in _ESCAPES:
                raise error("unknown escape \\%s" % esc)
            chars.append(_ESCAPES[esc])
            end += 1
            continue
        chars.append(ch)
        end += 1
