"""C type representations for the rcc compiler.

Sizes follow the four targets: char 1, short 2, int/long/pointer 4,
float 4, double 8.  ``long double`` is 10 bytes on rm68k (the 80-bit
extended format the paper's abstract memory supports) and 8 elsewhere —
the per-target difference travels through :class:`TypeSystem`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class CType:
    size = 0
    align = 1

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_arith(self) -> bool:
        return self.is_integer() or self.is_float()

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_scalar(self) -> bool:
        return self.is_arith() or self.is_pointer()

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def ir_kind(self) -> str:
        """The IR kind (lcc type suffix analog) carrying this type."""
        raise NotImplementedError(type(self).__name__)


class VoidType(CType):
    size = 0

    def ir_kind(self) -> str:
        return "v"

    def __str__(self) -> str:
        return "void"


class IntType(CType):
    def __init__(self, size: int, signed: bool, name: str):
        self.size = size
        self.align = size
        self.signed = signed
        self.name = name

    def ir_kind(self) -> str:
        return ("i" if self.signed else "u") + str(self.size)

    def __str__(self) -> str:
        return self.name


class FloatType(CType):
    def __init__(self, size: int, name: str):
        self.size = size
        self.align = 2 if size == 10 else size
        self.name = name

    def ir_kind(self) -> str:
        return "f" + str(self.size)

    def __str__(self) -> str:
        return self.name


class PointerType(CType):
    size = 4
    align = 4

    def __init__(self, ref: CType):
        self.ref = ref

    def ir_kind(self) -> str:
        return "p"

    def __str__(self) -> str:
        return "%s *" % self.ref


class ArrayType(CType):
    def __init__(self, elem: CType, count: Optional[int]):
        self.elem = elem
        self.count = count
        self.size = elem.size * count if count is not None else 0
        self.align = elem.align

    def ir_kind(self) -> str:
        return "p"  # arrays decay

    def __str__(self) -> str:
        return "%s[%s]" % (self.elem, self.count if self.count is not None else "")


class Field:
    def __init__(self, name: str, ctype: CType, offset: int):
        self.name = name
        self.ctype = ctype
        self.offset = offset


class StructType(CType):
    kind_word = "struct"

    def __init__(self, tag: Optional[str]):
        self.tag = tag
        self.fields: List[Field] = []
        self.complete = False
        self.size = 0
        self.align = 1

    def define(self, members: Sequence[Tuple[str, CType]]) -> None:
        offset = 0
        align = 1
        for name, ctype in members:
            offset = _round_up(offset, ctype.align)
            self.fields.append(Field(name, ctype, offset))
            offset += ctype.size
            align = max(align, ctype.align)
        self.size = _round_up(offset, align)
        self.align = align
        self.complete = True

    def field(self, name: str) -> Optional[Field]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def ir_kind(self) -> str:
        return "b"  # block

    def __str__(self) -> str:
        return "%s %s" % (self.kind_word, self.tag or "<anon>")


class UnionType(StructType):
    kind_word = "union"

    def define(self, members: Sequence[Tuple[str, CType]]) -> None:
        size = 0
        align = 1
        for name, ctype in members:
            self.fields.append(Field(name, ctype, 0))
            size = max(size, ctype.size)
            align = max(align, ctype.align)
        self.size = _round_up(size, align)
        self.align = align
        self.complete = True


class EnumType(CType):
    size = 4
    align = 4

    def __init__(self, tag: Optional[str]):
        self.tag = tag
        self.enumerators: List[Tuple[str, int]] = []
        self.complete = False

    def ir_kind(self) -> str:
        return "i4"

    def __str__(self) -> str:
        return "enum %s" % (self.tag or "<anon>")


class FunctionType(CType):
    size = 0

    def __init__(self, ret: CType, params: Sequence[Tuple[str, CType]],
                 varargs: bool = False, oldstyle: bool = False):
        self.ret = ret
        self.params = list(params)
        self.varargs = varargs
        self.oldstyle = oldstyle

    def ir_kind(self) -> str:
        return "p"

    def __str__(self) -> str:
        inner = ", ".join(str(t) for _, t in self.params) or "void"
        if self.varargs:
            inner += ", ..."
        return "%s (%s)" % (self.ret, inner)


class TypeSystem:
    """Per-target primitive types (long double differs on rm68k)."""

    def __init__(self, arch_name: str = "rmips"):
        self.arch_name = arch_name
        self.char = IntType(1, True, "char")
        self.uchar = IntType(1, False, "unsigned char")
        self.short = IntType(2, True, "short")
        self.ushort = IntType(2, False, "unsigned short")
        self.int = IntType(4, True, "int")
        self.uint = IntType(4, False, "unsigned int")
        self.long = IntType(4, True, "long")
        self.ulong = IntType(4, False, "unsigned long")
        self.float = FloatType(4, "float")
        self.double = FloatType(8, "double")
        ld_size = 10 if arch_name == "rm68k" else 8
        self.ldouble = FloatType(ld_size, "long double")
        self.void = VoidType()

    def pointer(self, ref: CType) -> PointerType:
        return PointerType(ref)

    def usual_arith(self, a: CType, b: CType) -> CType:
        """The usual arithmetic conversions (simplified C89 rules)."""
        if a.is_float() or b.is_float():
            best = max((t for t in (a, b) if t.is_float()),
                       key=lambda t: t.size, default=self.double)
            if best.size >= 10:
                return self.ldouble
            return self.double if best.size == 8 else self.float
        a = self.promote(a)
        b = self.promote(b)
        if not a.signed or not b.signed:
            return self.uint
        return self.int

    def promote(self, t: CType) -> IntType:
        """Integral promotion: sub-int types widen to int."""
        if isinstance(t, EnumType):
            return self.int
        if isinstance(t, IntType) and t.size < 4:
            return self.int
        return t if isinstance(t, IntType) else self.int


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


def compatible(a: CType, b: CType) -> bool:
    """Loose type compatibility for assignment checking."""
    if a is b:
        return True
    if a.is_arith() and b.is_arith():
        return True
    if a.is_pointer() and b.is_pointer():
        ra, rb = a.ref, b.ref
        return ra is rb or ra.is_void() or rb.is_void() or _same(ra, rb)
    if isinstance(a, (StructType, UnionType)) and a is b:
        return True
    return False


def _same(a: CType, b: CType) -> bool:
    if a is b:
        return True
    if isinstance(a, IntType) and isinstance(b, IntType):
        return a.size == b.size and a.signed == b.signed
    if isinstance(a, FloatType) and isinstance(b, FloatType):
        return a.size == b.size
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return _same(a.ref, b.ref)
    if isinstance(a, ArrayType) and isinstance(b, ArrayType):
        return a.count == b.count and _same(a.elem, b.elem)
    if isinstance(a, FunctionType) and isinstance(b, FunctionType):
        if len(a.params) != len(b.params) or a.varargs != b.varargs:
            return False
        if not _same(a.ret, b.ret):
            return False
        return all(_same(pa, pb) for (_, pa), (_, pb) in zip(a.params, b.params))
    return False
