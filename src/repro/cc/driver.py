"""The rcc compiler driver (the lcc driver analog).

Compiles C sources to object units, links them with the runtime and
startup code, and — after linking — plays the role the paper gives the
driver in Sec. 3: it runs the ``nm`` analog over the linked program and
generates the PostScript that builds the **loader table**.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..machines import Executable, ObjectUnit, get_arch, link, nm
from .asmsched import SchedStats, schedule
from .ctypes_ import TypeSystem
from .gen import get_backend
from .gen.runtime import runtime_unit, startup
from .irgen import IRGen
from .lexer import CError
from .parser import parse
from .sema import Sema


class CompiledUnit:
    """An object unit plus the front-end artifacts the debugger needs."""

    def __init__(self, unit: ObjectUnit, unit_ir, unit_info, sched: Optional[SchedStats]):
        self.unit = unit
        self.unit_ir = unit_ir
        self.unit_info = unit_info
        self.sched = sched


def compile_unit(source: str, filename: str, arch_name: str,
                 debug: bool = True, includes=None, defines=None) -> CompiledUnit:
    """Compile one C translation unit for ``arch_name``.

    With ``debug`` the unit carries no-ops at stopping points, the anchor
    block, and the PostScript symbol table; stabs (the baseline format)
    are emitted either way.  ``includes`` maps include names to source
    text for the preprocessor; ``defines`` predefines object macros.
    """
    if "#" in source:
        from .cpp import preprocess
        source = preprocess(source, filename, files=includes, defines=defines)
    types = TypeSystem(arch_name)
    ast = parse(source, filename, types)
    sema = Sema(types, filename)
    info = sema.analyze(ast)
    irgen = IRGen(types, info)
    unit_ir = irgen.generate(ast)
    backend = get_backend(arch_name)
    unit = backend.compile_unit(unit_ir, debug=debug)
    sched_stats = None
    if arch_name in ("rmips", "rmipsel"):
        unit.text, sched_stats = schedule(unit.text, debug)
    from . import pssym, stabs
    if debug:
        unit.pssym = pssym.emit_unit(unit, unit_ir, info, backend, types)
    unit.stabs = stabs.emit_unit(unit_ir, info, types)
    return CompiledUnit(unit, unit_ir, info, sched_stats)


def link_program(compiled: Sequence[CompiledUnit], arch_name: str,
                 memsize: int = 1 << 20) -> Executable:
    """Link compiled units with the runtime library and startup code."""
    arch = get_arch(arch_name)
    units = [c.unit for c in compiled] + [runtime_unit(arch)]
    exe = link(arch, units, startup, memsize=memsize)
    exe.compiled_units = list(compiled)
    return exe


def compile_and_link(sources: Dict[str, str], arch_name: str,
                     debug: bool = True, memsize: int = 1 << 20,
                     includes=None, defines=None) -> Executable:
    """Compile ``{filename: source}`` and link into an executable."""
    compiled = [compile_unit(src, name, arch_name, debug,
                             includes=includes, defines=defines)
                for name, src in sources.items()]
    return link_program(compiled, arch_name, memsize=memsize)


def loader_table_ps(exe: Executable) -> str:
    """Generate the loader-table PostScript from ``nm`` output (Sec. 3).

    The loader table contains the program's top-level dictionary, the
    anchormap (anchor symbol -> address), and the proctable of
    (address, name) pairs for every procedure.
    """
    lines: List[str] = ["% loader table generated from nm output"]
    lines.append("BeginLoaderTable")
    lines.append("(%s) UseArchitecture" % exe.arch.name)
    for c in getattr(exe, "compiled_units", []):
        if c.unit.pssym:
            lines.append("%% --- unit %s" % c.unit.name)
            lines.append(c.unit.pssym)
    # anchormap, proctable, externmap from nm output
    anchors: List[Tuple[str, int]] = []
    procs: List[Tuple[int, str]] = []
    externs: List[Tuple[str, int]] = []
    for line in nm(exe).splitlines():
        text = line.strip()
        if not text:
            continue
        addr_text, kind, name = text.split()
        address = int(addr_text, 16)
        if name.startswith("_stanchor__"):
            anchors.append((name, address))
        elif kind in ("T", "t"):
            procs.append((address, name))
        elif kind in ("D", "d"):
            externs.append((name, address))
    lines.append("(%s)" % exe.arch.name)
    lines.append("<<")
    for name, address in anchors:
        lines.append("  /%s 16#%08x" % (name, address))
    lines.append(">>")
    lines.append("[")
    for address, name in procs:
        lines.append("  16#%08x (%s)" % (address, name))
    lines.append("]")
    lines.append("<<")
    for name, address in externs:
        lines.append("  /%s 16#%08x" % (name, address))
    lines.append(">>")
    lines.append("EndLoaderTable")
    lines.append("EndArchitecture")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: rcc -target <arch> [-g] file.c ... [-o out.img]"""
    import argparse
    import pickle

    ap = argparse.ArgumentParser(prog="rcc", description="the rcc compiler")
    ap.add_argument("sources", nargs="+")
    ap.add_argument("-target", default="rmips",
                    choices=["rmips", "rmipsel", "rsparc", "rm68k", "rvax"])
    ap.add_argument("-g", action="store_true", help="emit debugging support")
    ap.add_argument("-o", default="a.img")
    ap.add_argument("--emit-ps", action="store_true",
                    help="print the loader-table PostScript")
    args = ap.parse_args(argv)
    sources = {}
    for path in args.sources:
        with open(path) as f:
            sources[path] = f.read()
    try:
        exe = compile_and_link(sources, args.target, debug=args.g)
    except CError as err:
        print("rcc: %s" % err, file=sys.stderr)
        return 1
    if args.emit_ps:
        print(loader_table_ps(exe))
    from ..machines.atomicio import atomic_write_bytes
    compiled = exe.compiled_units
    exe.loader_ps = loader_table_ps(exe)
    exe.compiled_units = None  # pickled images carry no front-end state
    try:
        atomic_write_bytes(args.o, pickle.dumps(exe))
    finally:
        exe.compiled_units = compiled
    return 0


if __name__ == "__main__":
    sys.exit(main())
