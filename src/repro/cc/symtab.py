"""Compiler symbol tables.

Symbols carry everything the debugger's PostScript symbol tables need
(paper Sec. 2): source coordinates, the uplink chain that forms the
scope *tree* (Fig. 2), and — after code generation — locations: a
register number, a frame offset, or an anchor-relative data slot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .ctypes_ import CType
from .tree import Pos


class CSymbol:
    """One declared identifier."""

    _next_uid = [1]

    def __init__(self, name: str, ctype: CType, sclass: str,
                 pos: Optional[Pos] = None):
        self.name = name
        self.ctype = ctype
        #: 'global', 'static', 'extern', 'func', 'param', 'local',
        #: 'register', 'typedef', 'enumconst'
        self.sclass = sclass
        self.pos = pos
        self.uid = CSymbol._next_uid[0]
        CSymbol._next_uid[0] += 1
        #: previous symbol in the scope chain (the uplink tree, Fig. 2)
        self.uplink: Optional["CSymbol"] = None
        #: assembly-level name for globals/statics/functions
        self.label: Optional[str] = None
        #: enum constant value
        self.value: Optional[int] = None
        #: location, filled by the code generator:
        #: ('reg', n) | ('freg', n) | ('frame', offset) | ('global', label)
        self.loc = None
        #: index of this symbol's address slot in the unit's anchor block
        #: (statics and stopping points are found via anchors, Sec. 2)
        self.anchor_index: Optional[int] = None
        self.defined = False

    def is_local_kind(self) -> bool:
        return self.sclass in ("param", "local", "register")

    def __repr__(self) -> str:
        return "<csym %s %s %s>" % (self.name, self.sclass, self.ctype)


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.names: Dict[str, CSymbol] = {}
        self.level = 0 if parent is None else parent.level + 1

    def declare(self, sym: CSymbol) -> None:
        self.names[sym.name] = sym

    def lookup_here(self, name: str) -> Optional[CSymbol]:
        return self.names.get(name)

    def lookup(self, name: str) -> Optional[CSymbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class FunctionInfo:
    """Everything sema learned about one function definition."""

    def __init__(self, symbol: CSymbol):
        self.symbol = symbol
        self.params: List[CSymbol] = []
        self.locals: List[CSymbol] = []   # block-scoped autos, flattened
        self.statics: List[CSymbol] = []  # function-scoped statics
        #: visible-chain head per statement node: id(node) -> CSymbol
        self.chain_at: Dict[int, Optional[CSymbol]] = {}
        #: chain head at function exit (all params)
        self.param_chain: Optional[CSymbol] = None


class UnitInfo:
    """Everything sema learned about one translation unit."""

    def __init__(self, name: str):
        self.name = name
        self.functions: List[FunctionInfo] = []
        self.globals: List[CSymbol] = []   # defined globals (with storage)
        self.statics: List[CSymbol] = []   # file-scope statics
        self.externs: List[CSymbol] = []   # declared but not defined here
        self.global_inits: Dict[int, object] = {}  # sym.uid -> initializer
