"""AST node classes for the rcc compiler.

Nodes carry source positions; statement nodes additionally mark the
stopping points the compiler places before every top-level expression
(paper Sec. 3) — the marking itself happens during IR generation.
Expression nodes gain a ``ctype`` annotation during semantic analysis.
"""

from __future__ import annotations

from typing import List, Optional


class Pos:
    __slots__ = ("filename", "line", "col")

    def __init__(self, filename: str, line: int, col: int):
        self.filename = filename
        self.line = line
        self.col = col

    @classmethod
    def of(cls, token) -> "Pos":
        return cls(token.filename, token.line, token.col)

    def __repr__(self) -> str:
        return "%s:%d:%d" % (self.filename, self.line, self.col)


class Node:
    __slots__ = ("pos",)

    def __init__(self, pos: Optional[Pos] = None):
        self.pos = pos


# ---------------------------------------------------------------- expressions

class Expr(Node):
    __slots__ = ("ctype",)

    def __init__(self, pos=None):
        super().__init__(pos)
        self.ctype = None


class Ident(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, name: str, pos=None):
        super().__init__(pos)
        self.name = name
        self.symbol = None


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, pos=None):
        super().__init__(pos)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, pos=None):
        super().__init__(pos)
        self.value = value


class StringLit(Expr):
    __slots__ = ("value", "label")

    def __init__(self, value: str, pos=None):
        super().__init__(pos)
        self.value = value
        self.label = None  # data label assigned during IR generation


class Unary(Expr):
    """op in: - + ! ~ * & pre++ pre-- post++ post-- sizeof"""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, pos=None):
        super().__init__(pos)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """op in: + - * / % << >> < <= > >= == != & | ^ && ||"""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, pos=None):
        super().__init__(pos)
        self.op = op
        self.left = left
        self.right = right


class Assign(Expr):
    """op in: = += -= *= /= %= <<= >>= &= |= ^="""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, pos=None):
        super().__init__(pos)
        self.op = op
        self.target = target
        self.value = value


class Cond(Expr):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Expr, els: Expr, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.then = then
        self.els = els


class Call(Expr):
    __slots__ = ("fn", "args")

    def __init__(self, fn: Expr, args: List[Expr], pos=None):
        super().__init__(pos)
        self.fn = fn
        self.args = args


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, pos=None):
        super().__init__(pos)
        self.base = base
        self.index = index


class Member(Expr):
    __slots__ = ("base", "name", "arrow", "field")

    def __init__(self, base: Expr, name: str, arrow: bool, pos=None):
        super().__init__(pos)
        self.base = base
        self.name = name
        self.arrow = arrow
        self.field = None


class Cast(Expr):
    __slots__ = ("target_type", "operand", "implicit")

    def __init__(self, target_type, operand: Expr, pos=None, implicit=False):
        super().__init__(pos)
        self.target_type = target_type
        self.operand = operand
        self.implicit = implicit


class Comma(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr, pos=None):
        super().__init__(pos)
        self.left = left
        self.right = right


class SizeofType(Expr):
    __slots__ = ("target_type",)

    def __init__(self, target_type, pos=None):
        super().__init__(pos)
        self.target_type = target_type


# ----------------------------------------------------------------- statements

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("items",)

    def __init__(self, items: List[Node], pos=None):
        super().__init__(pos)
        self.items = items


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, pos=None):
        super().__init__(pos)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Stmt, els: Optional[Stmt], pos=None):
        super().__init__(pos)
        self.cond = cond
        self.then = then
        self.els = els


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body: Stmt, cond: Expr, pos=None):
        super().__init__(pos)
        self.body = body
        self.cond = cond


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body: Stmt, pos=None):
        super().__init__(pos)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], pos=None):
        super().__init__(pos)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Switch(Stmt):
    __slots__ = ("expr", "body")

    def __init__(self, expr: Expr, body: Stmt, pos=None):
        super().__init__(pos)
        self.expr = expr
        self.body = body


class Case(Stmt):
    __slots__ = ("value", "resolved")

    def __init__(self, value: Expr, pos=None):
        super().__init__(pos)
        self.value = value
        self.resolved = None  # constant value, filled by sema


class Default(Stmt):
    __slots__ = ()


class Empty(Stmt):
    __slots__ = ()


# --------------------------------------------------------------- declarations

class VarDecl(Node):
    __slots__ = ("name", "ctype", "storage", "init", "symbol")

    def __init__(self, name: str, ctype, storage: str, init, pos=None):
        super().__init__(pos)
        self.name = name
        self.ctype = ctype
        self.storage = storage  # '', 'static', 'extern', 'register', 'typedef'
        self.init = init
        self.symbol = None


class FuncDef(Node):
    __slots__ = ("name", "ftype", "param_names", "body", "storage", "symbol",
                 "end_pos")

    def __init__(self, name: str, ftype, param_names: List[str], body: Block,
                 storage: str, pos=None, end_pos=None):
        super().__init__(pos)
        self.name = name
        self.ftype = ftype
        self.param_names = param_names
        self.body = body
        self.storage = storage
        self.symbol = None
        self.end_pos = end_pos  # the closing brace: the exit stopping point


class TranslationUnit(Node):
    __slots__ = ("name", "decls")

    def __init__(self, name: str, decls: List[Node]):
        super().__init__(None)
        self.name = name
        self.decls = decls
