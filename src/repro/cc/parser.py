"""Recursive-descent C parser for the rcc compiler.

Parses the C subset documented in README.md: all of the paper's example
programs plus structs, unions, enums, typedefs, pointers, arrays,
function pointers, switch, and the full expression grammar.  Types are
constructed during parsing (the lcc approach): the parser owns the
typedef/tag scopes it needs to resolve the declaration grammar.

Not supported (documented substitutions): bitfields, struct
passing/return by value, varargs definitions (printf is a runtime
builtin), goto, K&R-style definitions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import tree
from .ctypes_ import (
    ArrayType,
    CType,
    EnumType,
    FunctionType,
    PointerType,
    StructType,
    TypeSystem,
    UnionType,
)
from .lexer import CError, Token, tokenize
from .tree import Pos

_TYPE_KEYWORDS = frozenset(
    "void char short int long float double signed unsigned struct union enum const volatile".split())
_STORAGE_KEYWORDS = frozenset("static extern register auto typedef".split())

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="])

# binary precedence levels, loosest first
_BINARY_LEVELS = [
    ["||"], ["&&"], ["|"], ["^"], ["&"],
    ["==", "!="], ["<", ">", "<=", ">="],
    ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
]


class Parser:
    def __init__(self, source: str, filename: str = "<input>",
                 types: Optional[TypeSystem] = None):
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.filename = filename
        self.types = types if types is not None else TypeSystem()
        # scope stacks for the declaration grammar
        self.typedef_scopes: List[dict] = [{}]
        self.tag_scopes: List[dict] = [{}]
        self.enum_const_scopes: List[dict] = [{}]

    # -- token plumbing ---------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token.text == text and token.kind in ("punct", "keyword")

    def accept(self, text: str) -> Optional[Token]:
        if self.at(text):
            return self.next()
        return None

    def expect(self, text: str) -> Token:
        token = self.peek()
        if not self.at(text):
            raise self.error("expected %r, found %r" % (text, token.text or "<eof>"))
        return self.next()

    def error(self, message: str) -> CError:
        token = self.peek()
        return CError(message, token.filename, token.line, token.col)

    # -- scope plumbing -----------------------------------------------------

    def enter_scope(self) -> None:
        self.typedef_scopes.append({})
        self.tag_scopes.append({})
        self.enum_const_scopes.append({})

    def leave_scope(self) -> None:
        self.typedef_scopes.pop()
        self.tag_scopes.pop()
        self.enum_const_scopes.pop()

    def lookup_typedef(self, name: str) -> Optional[CType]:
        for scope in reversed(self.typedef_scopes):
            if name in scope:
                return scope[name]
        return None

    def lookup_tag(self, tag: str) -> Optional[CType]:
        for scope in reversed(self.tag_scopes):
            if tag in scope:
                return scope[tag]
        return None

    def lookup_enum_const(self, name: str) -> Optional[int]:
        for scope in reversed(self.enum_const_scopes):
            if name in scope:
                return scope[name]
        return None

    def shadow_typedef(self, name: str) -> None:
        """A variable declaration hides a typedef of the same name."""
        self.typedef_scopes[-1][name] = None

    # -- entry points ---------------------------------------------------------

    def parse_translation_unit(self) -> tree.TranslationUnit:
        decls: List[tree.Node] = []
        while self.peek().kind != "eof":
            decls.extend(self.external_declaration())
        return tree.TranslationUnit(self.filename, decls)

    # -- declarations ---------------------------------------------------------

    def starts_type(self, token: Token) -> bool:
        if token.kind == "keyword" and token.text in _TYPE_KEYWORDS | _STORAGE_KEYWORDS:
            return True
        if token.kind == "id" and self.lookup_typedef(token.text) is not None:
            return True
        return False

    def external_declaration(self) -> List[tree.Node]:
        if self.accept(";"):
            return []
        base, storage, decls_out = self.declaration_specifiers()
        if self.at(";"):  # bare struct/union/enum declaration
            self.next()
            return decls_out
        name, ctype, name_token = self.declarator(base)
        # function definition?
        if isinstance(ctype, FunctionType) and self.at("{"):
            return decls_out + [self.function_definition(name, ctype, storage, name_token)]
        out = decls_out
        out.append(self.init_declarator(name, ctype, storage, name_token))
        while self.accept(","):
            name, ctype, name_token = self.declarator(base)
            out.append(self.init_declarator(name, ctype, storage, name_token))
        self.expect(";")
        return out

    def init_declarator(self, name, ctype, storage, name_token) -> tree.VarDecl:
        if name is None:
            raise self.error("declarator requires a name")
        init = None
        if self.accept("="):
            init = self.initializer()
        if storage == "typedef":
            self.typedef_scopes[-1][name] = ctype
        else:
            self.shadow_typedef(name)
        decl = tree.VarDecl(name, ctype, storage, init, Pos.of(name_token))
        return decl

    def initializer(self):
        if self.at("{"):
            self.next()
            items = []
            if not self.at("}"):
                items.append(self.initializer())
                while self.accept(","):
                    if self.at("}"):
                        break
                    items.append(self.initializer())
            self.expect("}")
            return items
        return self.assignment_expr()

    def function_definition(self, name, ftype, storage, name_token) -> tree.FuncDef:
        self.enter_scope()
        for pname, _ptype in ftype.params:
            if pname:
                self.shadow_typedef(pname)
        body = self.block(enter=False)
        self.leave_scope()
        end = self.tokens[self.pos - 1]  # the closing brace just consumed
        return tree.FuncDef(name, ftype, [p for p, _ in ftype.params], body,
                            storage, Pos.of(name_token), Pos.of(end))

    def declaration_specifiers(self) -> Tuple[CType, str, List[tree.Node]]:
        """Parse type specifiers + storage class.

        Returns (base type, storage class, implicit declarations) — the
        implicit declarations are enum constants surfaced as VarDecls.
        """
        storage = ""
        out: List[tree.Node] = []
        seen: List[str] = []
        base: Optional[CType] = None
        while True:
            token = self.peek()
            text = token.text
            if token.kind == "keyword" and text in _STORAGE_KEYWORDS:
                self.next()
                if text != "auto":
                    if storage and storage != text:
                        raise self.error("conflicting storage classes")
                    storage = text
                continue
            if token.kind == "keyword" and text in ("const", "volatile"):
                self.next()  # qualifiers are accepted and ignored
                continue
            if token.kind == "keyword" and text in ("struct", "union"):
                base = self.struct_or_union()
                continue
            if token.kind == "keyword" and text == "enum":
                base, consts = self.enum_specifier()
                out.extend(consts)
                continue
            if token.kind == "keyword" and text in _TYPE_KEYWORDS:
                self.next()
                seen.append(text)
                continue
            if (token.kind == "id" and base is None and not seen
                    and self.lookup_typedef(text) is not None):
                # a typedef name, but only if no type seen yet and the next
                # token cannot start a declarator name conflict
                self.next()
                base = self.lookup_typedef(text)
                continue
            break
        if base is None:
            base = self._base_from_keywords(seen)
        elif seen:
            raise self.error("invalid type specifier combination")
        return base, storage, out

    def _base_from_keywords(self, seen: List[str]) -> CType:
        t = self.types
        key = " ".join(sorted(seen))
        table = {
            "": t.int,
            "void": t.void,
            "char": t.char,
            "char signed": t.char,
            "char unsigned": t.uchar,
            "short": t.short,
            "int short": t.short,
            "short unsigned": t.ushort,
            "int short unsigned": t.ushort,
            "int": t.int,
            "signed": t.int,
            "int signed": t.int,
            "unsigned": t.uint,
            "int unsigned": t.uint,
            "long": t.long,
            "int long": t.long,
            "long unsigned": t.ulong,
            "int long unsigned": t.ulong,
            "float": t.float,
            "double": t.double,
            "double long": t.ldouble,
        }
        if key not in table:
            raise self.error("unsupported type %r" % " ".join(seen))
        return table[key]

    def struct_or_union(self) -> CType:
        keyword = self.next().text
        cls = StructType if keyword == "struct" else UnionType
        tag = None
        if self.peek().kind == "id":
            tag = self.next().text
        if self.at("{"):
            if tag is not None:
                existing = self.tag_scopes[-1].get(tag)
                if existing is not None and not existing.complete:
                    stype = existing
                else:
                    stype = cls(tag)
                    self.tag_scopes[-1][tag] = stype
            else:
                stype = cls(tag)
            self.next()
            members: List[Tuple[str, CType]] = []
            while not self.at("}"):
                base, storage, _ = self.declaration_specifiers()
                if storage:
                    raise self.error("storage class in struct member")
                name, ctype, _tok = self.declarator(base)
                members.append((name, ctype))
                while self.accept(","):
                    name, ctype, _tok = self.declarator(base)
                    members.append((name, ctype))
                self.expect(";")
            self.expect("}")
            stype.define(members)
            return stype
        if tag is None:
            raise self.error("%s requires a tag or a body" % keyword)
        existing = self.lookup_tag(tag)
        if existing is not None:
            return existing
        stype = cls(tag)
        self.tag_scopes[-1][tag] = stype
        return stype

    def enum_specifier(self) -> Tuple[CType, List[tree.Node]]:
        self.next()  # 'enum'
        tag = None
        if self.peek().kind == "id":
            tag = self.next().text
        consts: List[tree.Node] = []
        if self.at("{"):
            etype = EnumType(tag)
            if tag is not None:
                self.tag_scopes[-1][tag] = etype
            self.next()
            value = 0
            while not self.at("}"):
                name_token = self.next()
                if name_token.kind != "id":
                    raise self.error("expected enumerator name")
                if self.accept("="):
                    value = self.const_expr()
                etype.enumerators.append((name_token.text, value))
                self.enum_const_scopes[-1][name_token.text] = value
                decl = tree.VarDecl(name_token.text, self.types.int, "enumconst",
                                    tree.IntLit(value, Pos.of(name_token)),
                                    Pos.of(name_token))
                consts.append(decl)
                value += 1
                if not self.accept(","):
                    break
            self.expect("}")
            etype.complete = True
            return etype, consts
        if tag is None:
            raise self.error("enum requires a tag or a body")
        existing = self.lookup_tag(tag)
        if existing is not None:
            return existing, consts
        etype = EnumType(tag)
        self.tag_scopes[-1][tag] = etype
        return etype, consts

    # -- declarators ------------------------------------------------------------

    def declarator(self, base: CType):
        """Parse a declarator; returns (name or None, type, name token)."""
        ctype = base
        while self.accept("*"):
            while self.peek().text in ("const", "volatile"):
                self.next()
            ctype = PointerType(ctype)
        return self._direct_declarator(ctype)

    def _direct_declarator(self, ctype: CType):
        name = None
        name_token = self.peek()
        inner_marker = None
        if self.at("("):
            # distinguish grouping parens from parameter lists: a grouping
            # paren is followed by * or an identifier that is not a type
            probe = self.peek(1)
            if probe.text == "*" or (probe.kind == "id"
                                     and self.lookup_typedef(probe.text) is None):
                self.next()
                inner_start = self.pos
                depth = 1
                while depth:
                    token = self.next()
                    if token.kind == "eof":
                        raise self.error("unbalanced parentheses in declarator")
                    if token.text == "(":
                        depth += 1
                    elif token.text == ")":
                        depth -= 1
                inner_marker = (inner_start, self.pos - 1)
        elif self.peek().kind == "id":
            name_token = self.next()
            name = name_token.text
        # suffixes apply to the outer type
        ctype = self._declarator_suffixes(ctype)
        if inner_marker is not None:
            # re-parse the inner declarator against the suffixed type
            saved = self.pos
            self.pos = inner_marker[0]
            name, ctype, name_token = self.declarator(ctype)
            if self.pos != inner_marker[1]:
                raise self.error("malformed parenthesized declarator")
            self.pos = saved
        return name, ctype, name_token

    def _declarator_suffixes(self, ctype: CType) -> CType:
        suffixes = []
        while True:
            if self.at("["):
                self.next()
                count = None
                if not self.at("]"):
                    count = self.const_expr()
                self.expect("]")
                suffixes.append(("array", count))
            elif self.at("("):
                self.next()
                params, varargs = self.parameter_list()
                suffixes.append(("func", (params, varargs)))
            else:
                break
        for kind, payload in reversed(suffixes):
            if kind == "array":
                ctype = ArrayType(ctype, payload)
            else:
                params, varargs = payload
                ctype = FunctionType(ctype, params, varargs)
        return ctype

    def parameter_list(self):
        params: List[Tuple[Optional[str], CType]] = []
        varargs = False
        if self.at(")"):
            self.next()
            return params, varargs
        if self.at("void") and self.peek(1).text == ")":
            self.next()
            self.next()
            return params, varargs
        while True:
            if self.at("..."):
                self.next()
                varargs = True
                break
            base, storage, _ = self.declaration_specifiers()
            if storage not in ("", "register"):
                raise self.error("bad storage class in parameter")
            name, ctype, _tok = self.declarator(base)
            if isinstance(ctype, ArrayType):
                ctype = PointerType(ctype.elem)  # parameters decay
            if isinstance(ctype, FunctionType):
                ctype = PointerType(ctype)
            params.append((name, ctype))
            if not self.accept(","):
                break
        self.expect(")")
        return params, varargs

    def type_name(self) -> CType:
        """An abstract declarator, for casts and sizeof."""
        base, storage, _ = self.declaration_specifiers()
        if storage:
            raise self.error("storage class in type name")
        ctype = base
        while self.accept("*"):
            ctype = PointerType(ctype)
        ctype = self._declarator_suffixes(ctype)
        return ctype

    # -- statements -------------------------------------------------------------

    def block(self, enter: bool = True) -> tree.Block:
        open_token = self.expect("{")
        if enter:
            self.enter_scope()
        items: List[tree.Node] = []
        while not self.at("}"):
            if self.peek().kind == "eof":
                raise self.error("unterminated block")
            if self.starts_type(self.peek()):
                items.extend(self.local_declaration())
            else:
                items.append(self.statement())
        self.expect("}")
        if enter:
            self.leave_scope()
        return tree.Block(items, Pos.of(open_token))

    def local_declaration(self) -> List[tree.Node]:
        base, storage, out = self.declaration_specifiers()
        if self.accept(";"):
            return out
        name, ctype, name_token = self.declarator(base)
        out.append(self.init_declarator(name, ctype, storage, name_token))
        while self.accept(","):
            name, ctype, name_token = self.declarator(base)
            out.append(self.init_declarator(name, ctype, storage, name_token))
        self.expect(";")
        return out

    def statement(self) -> tree.Stmt:
        token = self.peek()
        text = token.text
        if self.at("{"):
            return self.block()
        if self.accept(";"):
            return tree.Empty(Pos.of(token))
        if token.kind == "keyword":
            if text == "if":
                self.next()
                self.expect("(")
                cond = self.expression()
                self.expect(")")
                then = self.statement()
                els = self.statement() if self.accept("else") else None
                return tree.If(cond, then, els, Pos.of(token))
            if text == "while":
                self.next()
                self.expect("(")
                cond = self.expression()
                self.expect(")")
                return tree.While(cond, self.statement(), Pos.of(token))
            if text == "do":
                self.next()
                body = self.statement()
                self.expect("while")
                self.expect("(")
                cond = self.expression()
                self.expect(")")
                self.expect(";")
                return tree.DoWhile(body, cond, Pos.of(token))
            if text == "for":
                self.next()
                self.expect("(")
                init = None if self.at(";") else self.expression()
                self.expect(";")
                cond = None if self.at(";") else self.expression()
                self.expect(";")
                step = None if self.at(")") else self.expression()
                self.expect(")")
                return tree.For(init, cond, step, self.statement(), Pos.of(token))
            if text == "return":
                self.next()
                value = None if self.at(";") else self.expression()
                self.expect(";")
                return tree.Return(value, Pos.of(token))
            if text == "break":
                self.next()
                self.expect(";")
                stmt = tree.Break(Pos.of(token))
                return stmt
            if text == "continue":
                self.next()
                self.expect(";")
                return tree.Continue(Pos.of(token))
            if text == "switch":
                self.next()
                self.expect("(")
                expr = self.expression()
                self.expect(")")
                return tree.Switch(expr, self.statement(), Pos.of(token))
            if text == "case":
                self.next()
                value = self.conditional_expr()
                self.expect(":")
                case = tree.Case(value, Pos.of(token))
                return case
            if text == "default":
                self.next()
                self.expect(":")
                return tree.Default(Pos.of(token))
        expr = self.expression()
        self.expect(";")
        return tree.ExprStmt(expr, expr.pos or Pos.of(token))

    # -- expressions -------------------------------------------------------------

    def expression(self) -> tree.Expr:
        expr = self.assignment_expr()
        while self.at(","):
            token = self.next()
            right = self.assignment_expr()
            expr = tree.Comma(expr, right, Pos.of(token))
        return expr

    def assignment_expr(self) -> tree.Expr:
        left = self.conditional_expr()
        token = self.peek()
        if token.kind == "punct" and token.text in _ASSIGN_OPS:
            self.next()
            right = self.assignment_expr()
            return tree.Assign(token.text, left, right, Pos.of(token))
        return left

    def conditional_expr(self) -> tree.Expr:
        cond = self.binary_expr(0)
        if self.at("?"):
            token = self.next()
            then = self.expression()
            self.expect(":")
            els = self.conditional_expr()
            return tree.Cond(cond, then, els, Pos.of(token))
        return cond

    def binary_expr(self, level: int) -> tree.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.cast_expr()
        left = self.binary_expr(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.peek().kind == "punct" and self.peek().text in ops:
            token = self.next()
            right = self.binary_expr(level + 1)
            left = tree.Binary(token.text, left, right, Pos.of(token))
        return left

    def cast_expr(self) -> tree.Expr:
        if self.at("(") and self.starts_type(self.peek(1)) \
                and self.peek(1).text not in _STORAGE_KEYWORDS:
            token = self.next()
            ctype = self.type_name()
            self.expect(")")
            return tree.Cast(ctype, self.cast_expr(), Pos.of(token))
        return self.unary_expr()

    def unary_expr(self) -> tree.Expr:
        token = self.peek()
        text = token.text
        if text in ("-", "+", "!", "~", "*", "&"):
            self.next()
            return tree.Unary(text, self.cast_expr(), Pos.of(token))
        if text == "++" or text == "--":
            self.next()
            return tree.Unary("pre" + text, self.unary_expr(), Pos.of(token))
        if token.kind == "keyword" and text == "sizeof":
            self.next()
            if self.at("(") and self.starts_type(self.peek(1)):
                self.next()
                ctype = self.type_name()
                self.expect(")")
                return tree.SizeofType(ctype, Pos.of(token))
            return tree.Unary("sizeof", self.unary_expr(), Pos.of(token))
        return self.postfix_expr()

    def postfix_expr(self) -> tree.Expr:
        expr = self.primary_expr()
        while True:
            token = self.peek()
            if self.at("["):
                self.next()
                index = self.expression()
                self.expect("]")
                expr = tree.Index(expr, index, Pos.of(token))
            elif self.at("("):
                self.next()
                args = []
                if not self.at(")"):
                    args.append(self.assignment_expr())
                    while self.accept(","):
                        args.append(self.assignment_expr())
                self.expect(")")
                expr = tree.Call(expr, args, Pos.of(token))
            elif self.at("."):
                self.next()
                name = self.next()
                expr = tree.Member(expr, name.text, False, Pos.of(token))
            elif self.at("->"):
                self.next()
                name = self.next()
                expr = tree.Member(expr, name.text, True, Pos.of(token))
            elif self.at("++"):
                self.next()
                expr = tree.Unary("post++", expr, Pos.of(token))
            elif self.at("--"):
                self.next()
                expr = tree.Unary("post--", expr, Pos.of(token))
            else:
                return expr

    def primary_expr(self) -> tree.Expr:
        token = self.peek()
        if token.kind == "int":
            self.next()
            return tree.IntLit(token.value, Pos.of(token))
        if token.kind == "float":
            self.next()
            return tree.FloatLit(token.value, Pos.of(token))
        if token.kind == "string":
            self.next()
            value = token.value
            while self.peek().kind == "string":  # adjacent literals concatenate
                value += self.next().value
            return tree.StringLit(value, Pos.of(token))
        if token.kind == "id":
            self.next()
            return tree.Ident(token.text, Pos.of(token))
        if self.at("("):
            self.next()
            expr = self.expression()
            self.expect(")")
            return expr
        raise self.error("unexpected token %r" % (token.text or "<eof>"))

    # -- constant expressions -------------------------------------------------------

    def const_expr(self) -> int:
        expr = self.conditional_expr()
        return self.eval_const(expr)

    def eval_const(self, expr: tree.Expr) -> int:
        """Parse-time constant folding for array sizes and enum values."""
        if isinstance(expr, tree.IntLit):
            return expr.value
        if isinstance(expr, tree.Ident):
            value = self.lookup_enum_const(expr.name)
            if value is None:
                raise CError("not a constant: %s" % expr.name,
                             expr.pos.filename if expr.pos else "",
                             expr.pos.line if expr.pos else 0,
                             expr.pos.col if expr.pos else 0)
            return value
        if isinstance(expr, tree.SizeofType):
            return expr.target_type.size
        if isinstance(expr, tree.Unary):
            value = self.eval_const(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(not value)
            if expr.op == "sizeof":
                raise CError("sizeof expression not constant here")
        if isinstance(expr, tree.Binary):
            a = self.eval_const(expr.left)
            b = self.eval_const(expr.right)
            return _fold_binary(expr.op, a, b)
        if isinstance(expr, tree.Cond):
            return (self.eval_const(expr.then) if self.eval_const(expr.cond)
                    else self.eval_const(expr.els))
        if isinstance(expr, tree.Cast):
            return self.eval_const(expr.operand)
        raise CError("expression is not constant")


def _fold_binary(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise CError("division by zero in constant expression")
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    if op == "%":
        if b == 0:
            raise CError("division by zero in constant expression")
        r = abs(a) % abs(b)
        return -r if a < 0 else r
    if op == "<<":
        return a << b
    if op == ">>":
        return a >> b
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise CError("bad constant operator %r" % op)


def parse(source: str, filename: str = "<input>",
          types: Optional[TypeSystem] = None) -> tree.TranslationUnit:
    return Parser(source, filename, types).parse_translation_unit()
