"""The replay controller: reverse execution by checkpoint + re-run.

Reverse commands never execute backwards.  Each one is a *search over
forward replays*: restore the nearest earlier checkpoint, replay
forward under a ``RUNTO`` bound recording where the interesting stops
(breakpoint hits) land, then restore once more and replay **to** the
chosen stop.  Determinism of the simulated targets makes the replays
byte-exact, and the search visits checkpoint windows newest-first so
the common case — the hit is in the most recent window — costs one
window replay plus one landing replay.

The controller also drives *recording*: forward execution is chunked
with ``RUNTO`` so an automatic checkpoint is taken every ``interval``
retired instructions, plus one at every user-visible stop.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..machines.isa import SIGTRAP
from .ring import Checkpoint, CheckpointRing


class ReplayError(Exception):
    """A reverse command could not be satisfied (nothing earlier
    recorded, history exhausted, or the target is in the wrong state)."""


class Hit:
    """One breakpoint stop observed during a replay scan."""

    __slots__ = ("icount", "pc", "sp")

    def __init__(self, icount: int, pc: int, sp: Optional[int]):
        self.icount = icount
        self.pc = pc
        self.sp = sp

    def __repr__(self) -> str:
        return "<hit icount=%d pc=0x%x>" % (self.icount, self.pc)


class ReplayController:
    """Checkpoint/replay for one target.

    ``interval`` is the automatic-checkpoint spacing in retired
    instructions: smaller means faster reverse commands (shorter
    replays) but more copy-on-write captures while running forward.
    ``capacity`` bounds how many checkpoints the nub holds at once.
    """

    def __init__(self, target, interval: int = 5_000, capacity: int = 32,
                 timeout: float = 30.0, max_stops: int = 100_000):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.target = target
        self.interval = interval
        self.ring = CheckpointRing(capacity)
        self.timeout = timeout
        #: safety bound on stops consumed inside one replay loop
        self.max_stops = max_stops
        #: the target's observability hub (shared metrics + tracer)
        self.obs = target.obs
        #: the TraceWriter persisting this session's checkpoints to a
        #: recording file, if any (repro.trace.writer); every checkpoint
        #: taken here is offered to it as a spill
        self.writer = None

    # -- recording ---------------------------------------------------------

    def enable(self) -> Checkpoint:
        """Start recording at the current stop: the base checkpoint.
        Everything from here on is reachable by reverse commands."""
        self._require_stopped()
        return self._ensure_checkpoint_here()

    def continue_forward(self, timeout: Optional[float] = None) -> str:
        """The recording 'continue': chunk execution with RUNTO, taking
        an automatic checkpoint at every interval boundary and one more
        at the stop that ends the chunk run.  Returns the target state
        exactly like ``Target.wait_for_stop``."""
        timeout = self.timeout if timeout is None else timeout
        t = self.target
        self._require_stopped()
        # resuming forward after time travel: the recorded future may
        # diverge from what happens now, so forget it
        here = t.current_icount()
        for stale in self.ring.drop_future(here):
            t.drop_checkpoint(stale.cid)
        if self.writer is not None:
            # the recorded future is stale for the file too
            self.writer.drop_future(here)
        for _ in range(self.max_stops):
            here = t.current_icount()
            t.run_to_icount(here + self.interval, at_pc=self._skip_pc())
            state = self._wait(timeout)
            if state != "stopped":
                return state
            if t.at_icount_stop():
                self._checkpoint_here(kind="auto")
                continue
            self._checkpoint_here(kind="stop")
            return state
        raise ReplayError("recording ran %d chunks without a real stop"
                          % self.max_stops)

    # -- reverse commands --------------------------------------------------

    def reverse_continue(self):
        """Rewind to the most recent breakpoint hit strictly before the
        current position; returns the landing :class:`Hit`."""
        self.obs.metrics.inc("replay.reverse_commands")
        with self.obs.tracer.span("replay.reverse_continue") as span:
            hit = self._reverse(lambda hit: True, what="breakpoint hit")
            span.note(icount=hit.icount)
            return hit

    def reverse_step(self):
        """Rewind to the previous stopping point (source-level step
        backwards, into calls)."""
        self.obs.metrics.inc("replay.reverse_commands")
        temps = self._plant_temps()
        try:
            with self.obs.tracer.span("replay.reverse_step") as span:
                hit = self._reverse(lambda hit: True, what="stopping point")
                span.note(icount=hit.icount)
                return hit
        finally:
            self._remove_temps(temps)

    def reverse_next(self):
        """Rewind to the previous stopping point in the same or a
        shallower frame (source-level step backwards, over calls)."""
        self._require_stopped()
        self.obs.metrics.inc("replay.reverse_commands")
        origin_sp = self._sp()
        temps = self._plant_temps()

        def same_or_shallower(hit: Hit) -> bool:
            if origin_sp is None or hit.sp is None:
                return True
            return hit.sp >= origin_sp  # stacks grow downward

        try:
            with self.obs.tracer.span("replay.reverse_next") as span:
                hit = self._reverse(same_or_shallower,
                                    what="stopping point at this depth")
                span.note(icount=hit.icount)
                return hit
        finally:
            self._remove_temps(temps)

    def goto_icount(self, icount: int) -> str:
        """Travel to an absolute position: restore the nearest earlier
        checkpoint and replay forward (or just replay forward when the
        position is ahead).  Returns the final target state."""
        self._require_stopped()
        self.obs.metrics.inc("replay.reverse_commands")
        with self.obs.tracer.span("replay.goto", icount=icount):
            t = self.target
            here = t.current_icount()
            if icount < here:
                ck = self.ring.at_or_before(icount)
                if ck is None:
                    raise ReplayError(
                        "icount %d predates the recorded history" % icount)
                self._restore(ck)
            return self._run_to(icount)

    # -- the reverse search ------------------------------------------------

    def _reverse(self, keep: Callable[[Hit], bool], what: str) -> Hit:
        """Restore-and-replay search, newest checkpoint window first.

        Each window ``(ck.icount, end)`` is scanned by one forward
        replay that records every breakpoint stop; the last surviving
        hit wins and a second, targeted replay lands on it.  A window
        with no hits shrinks ``end`` to its checkpoint, whose own stop
        is the remaining candidate before moving to an older window.
        The search leaves the target back at the origin if it fails.
        """
        self._require_stopped()
        t = self.target
        origin = t.current_icount()
        origin_ck = self._ensure_checkpoint_here()
        end = origin
        for ck in self.ring.before(origin):
            hits = [h for h in self._scan(ck, end) if keep(h)]
            if hits:
                hit = hits[-1]
                self._restore(ck)
                self._run_to(hit.icount)
                return hit
            if (ck.kind == "stop" and ck.signo == SIGTRAP
                    and ck.sigcode == 0
                    and t.breakpoints.at(ck.pc) is not None):
                # the checkpoint itself sits at a breakpoint stop (not,
                # say, the entry pause): a candidate
                hit = Hit(ck.icount, ck.pc, ck.sp)
                if keep(hit):
                    self._restore(ck)
                    return hit
            end = ck.icount
        self._restore(origin_ck)
        raise ReplayError("no earlier %s in the recorded history" % what)

    def _scan(self, ck: Checkpoint, end: int) -> List[Hit]:
        """Replay the window ``(ck.icount, end)`` once, recording every
        breakpoint stop before ``end``."""
        t = self.target
        metrics = self.obs.metrics
        metrics.inc("replay.windows")
        # window size, not an extra ICOUNT round-trip: the scan replays
        # at most end - ck.icount instructions
        metrics.inc("replay.instructions_replayed", max(0, end - ck.icount))
        with self.obs.tracer.span("replay.scan", window_start=ck.icount,
                                  window_end=end) as span:
            hits = self._scan_window(ck, end)
            span.note(hits=len(hits))
            return hits

    def _scan_window(self, ck: Checkpoint, end: int) -> List[Hit]:
        t = self.target
        self._restore(ck)
        hits: List[Hit] = []
        for _ in range(self.max_stops):
            t.run_to_icount(end, at_pc=self._skip_pc())
            state = self._wait(self.timeout)
            if state != "stopped":
                return hits  # the window ends in the origin exit
            if t.at_icount_stop():
                return hits  # the RUNTO bound: window exhausted
            icount = t.current_icount()
            if icount >= end:
                return hits  # the origin event itself re-fired
            if t.at_breakpoint():
                hits.append(Hit(icount, t.stop_pc(), self._sp()))
            elif t.signo != SIGTRAP:
                return hits  # a mid-window signal: scan no further
        raise ReplayError("replay scan exceeded %d stops" % self.max_stops)

    def _run_to(self, icount: int) -> str:
        """Replay forward until the stop at exactly ``icount``, resuming
        through earlier breakpoint traps.  A trap retiring as the
        ``icount``-th instruction beats the RUNTO bound, so a landing on
        a breakpoint hit arrives as the genuine SIGTRAP stop."""
        t = self.target
        self.obs.metrics.inc("replay.landings")
        for _ in range(self.max_stops):
            if t.state != "stopped":
                return t.state
            if t.current_icount() >= icount:
                return "stopped"
            if t.signo != SIGTRAP:
                return "stopped"  # a fatal signal blocks the way forward
            t.run_to_icount(icount, at_pc=self._skip_pc())
            self._wait(self.timeout)
        raise ReplayError("landing replay exceeded %d stops"
                          % self.max_stops)

    # -- plumbing ----------------------------------------------------------

    def _require_stopped(self) -> None:
        if self.target.state != "stopped":
            raise ReplayError("target %s is %s, not stopped"
                              % (self.target.name, self.target.state))

    def _wait(self, timeout: float) -> str:
        """Wait for a stop, riding out connection deaths: the nub keeps
        the target (and every checkpoint) across a reconnect."""
        t = self.target
        for _ in range(8):
            state = t.wait_for_stop(timeout)
            if state == "reconnecting":
                t.reconnect()
                if t.state != "running":
                    return t.state
                continue
            return state
        raise ReplayError("connection kept dying while waiting for a stop")

    def _skip_pc(self) -> Optional[int]:
        """Where to resume from the current stop.

        A trap stop (a breakpoint, the entry pause — sigcode 0) resumes
        *past* the no-op: the trap already retired in the no-op's place,
        and re-executing the site would retire it twice and shear every
        replay's icounts off by one.  This must hold even when the
        breakpoint has since been removed from the table (a temporary
        one, say): what matters is that a trap fired here, not whether
        it is still planted.  An icount stop has not executed the
        instruction at pc yet, so it resumes in place.
        """
        t = self.target
        if t.state != "stopped" or t.signo != SIGTRAP:
            return None
        if t.at_icount_stop():
            return None
        return t.breakpoints.resume_pc(t.stop_pc())

    def _sp(self) -> Optional[int]:
        try:
            return self.target.top_frame().sp
        except Exception:
            return None  # an unwalkable stop (corrupt stack, etc.)

    def _checkpoint_here(self, kind: str) -> Checkpoint:
        t = self.target
        icount = t.current_icount()
        existing = self.ring.find(icount)
        if existing is not None:
            if self.writer is not None:
                # a writer attached after this checkpoint was taken
                # still wants the state on disk (spill() dedups)
                self.writer.spill(existing)
            return existing  # determinism: same icount, same state
        cid, icount = t.take_checkpoint()
        ck = Checkpoint(cid, icount, t.stop_pc(), self._sp(),
                        t.signo, t.sigcode, kind)
        for evicted in self.ring.add(ck):
            if self.writer is not None:
                # the file may still need this state; pull it before
                # the nub releases the snapshot
                self.writer.materialize(evicted, home=ck)
            t.drop_checkpoint(evicted.cid)
        self.obs.metrics.inc("replay.checkpoints")
        self.obs.metrics.set_gauge("replay.ring_size", len(self.ring.entries))
        if self.writer is not None:
            self.writer.spill(ck)
        return ck

    def _ensure_checkpoint_here(self) -> Checkpoint:
        return self._checkpoint_here(kind="stop")

    def _restore(self, ck: Checkpoint) -> None:
        """Restore a checkpoint and put back the stop identity it was
        taken at (``Target.restore_checkpoint`` can only assume a plain
        trap stop; the ring knows better)."""
        self.obs.metrics.inc("replay.restores")
        self.target.restore_checkpoint(ck.cid)
        self.target.signo = ck.signo
        self.target.sigcode = ck.sigcode

    # -- temporary breakpoints for reverse stepping ------------------------

    def _plant_temps(self) -> List[int]:
        """Make every stopping point a stop, as the event engine does
        for forward stepping — reverse stepping is the same trick run
        inside a replay."""
        t = self.target
        temps: List[int] = []
        for proc_entry in t.symtab.procs():
            for stop in t.symtab.loci(proc_entry):
                address = t.symtab.stop_address(stop)
                if address is None or t.breakpoints.at(address) is not None:
                    continue
                try:
                    t.breakpoints.plant(address, note="reverse-step")
                except Exception:
                    continue  # e.g. the current stop sits on this no-op
                temps.append(address)
        return temps

    def _remove_temps(self, temps: List[int]) -> None:
        for address in temps:
            try:
                self.target.breakpoints.remove(address)
            except Exception:
                pass
