"""Time-travel debugging: checkpoint/replay with reverse execution.

The four simulated targets are fully deterministic, so the classic
record/replay construction applies: take cheap copy-on-write
checkpoints as the target runs forward, and implement every *reverse*
command as "restore an earlier checkpoint, replay forward, stop one
event short".  Checkpoints live **nub-side** (the images never cross
the wire — only small ids and instruction counts do), and replay is
driven over the ordinary nub protocol with one new control message,
``RUNTO``, that bounds execution by retired-instruction count.

The pieces:

* :class:`CheckpointRing` — the debugger's metadata about the nub-side
  checkpoints: a bounded ring that always retains the base (oldest)
  checkpoint and recycles the rest FIFO;
* :class:`ReplayController` — drives recording (chunked RUNTO with
  automatic checkpoints), ``reverse-continue``, ``reverse-step``,
  ``reverse-next``, and ``goto-icount``.
"""

from .replay import Hit, ReplayController, ReplayError
from .ring import Checkpoint, CheckpointRing

__all__ = [
    "Checkpoint",
    "CheckpointRing",
    "Hit",
    "ReplayController",
    "ReplayError",
]
