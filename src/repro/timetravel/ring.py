"""The debugger's checkpoint bookkeeping.

The images themselves live with the nub; the debugger holds only this
metadata — the id it can pass to ``RESTORE``, where in execution the
checkpoint sits (retired-instruction count, pc, sp), and what kind of
stop it was taken at.  The ring is bounded: the **base** (oldest)
checkpoint is never evicted, so the recorded history always reaches
back to where recording began, and the rest recycle first-in-first-out.
"""

from __future__ import annotations

from typing import List, Optional


class Checkpoint:
    """Metadata for one nub-side checkpoint."""

    __slots__ = ("cid", "icount", "pc", "sp", "signo", "sigcode", "kind")

    def __init__(self, cid: int, icount: int, pc: int, sp: Optional[int],
                 signo: int, sigcode: int, kind: str):
        self.cid = cid
        self.icount = icount
        self.pc = pc
        self.sp = sp
        self.signo = signo
        self.sigcode = sigcode
        #: "stop" — taken at a user-visible stop (breakpoint, fault,
        #: the entry pause); "auto" — taken at a RUNTO interval boundary
        self.kind = kind

    def __repr__(self) -> str:
        return "<ckpt %d icount=%d pc=0x%x %s>" % (self.cid, self.icount,
                                                   self.pc, self.kind)


class CheckpointRing:
    """A bounded, icount-ordered collection of checkpoints.

    ``add`` returns the entries evicted to stay within ``capacity`` so
    the caller can release them nub-side; the base entry (smallest
    icount, normally where recording was enabled) is never evicted.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 2:
            raise ValueError("capacity must allow a base and one more")
        self.capacity = capacity
        self.entries: List[Checkpoint] = []  # ascending icount

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, ck: Checkpoint) -> List[Checkpoint]:
        """Insert in icount order; returns what got evicted."""
        index = 0
        for index, existing in enumerate(self.entries):
            if existing.icount > ck.icount:
                break
        else:
            index = len(self.entries)
        self.entries.insert(index, ck)
        evicted = []
        while len(self.entries) > self.capacity:
            evicted.append(self.entries.pop(1))  # keep the base at [0]
        return evicted

    def find(self, icount: int) -> Optional[Checkpoint]:
        """The entry exactly at ``icount``, if any."""
        for ck in self.entries:
            if ck.icount == icount:
                return ck
        return None

    def before(self, icount: int) -> List[Checkpoint]:
        """Entries strictly earlier than ``icount``, newest first —
        the reverse-search visiting order."""
        return [ck for ck in reversed(self.entries) if ck.icount < icount]

    def at_or_before(self, icount: int) -> Optional[Checkpoint]:
        """The newest entry at or earlier than ``icount``."""
        best = None
        for ck in self.entries:
            if ck.icount <= icount:
                best = ck
        return best

    def drop_future(self, icount: int) -> List[Checkpoint]:
        """Remove and return entries later than ``icount`` — called when
        the user resumes forward after time-travelling, since execution
        may now diverge from the recorded future."""
        stale = [ck for ck in self.entries if ck.icount > icount]
        self.entries = [ck for ck in self.entries if ck.icount <= icount]
        return stale
