"""Stack-hash normalization: from a backtrace to a crash identity.

Two crashes are "the same bug" when they died the same way in the same
place — not when their core files are byte-identical.  The normalizer
folds a backtrace down to what identifies the crash and nothing more:

* every frame pc becomes ``function+0xoffset`` — the procedure name
  from the linker's proc table plus the pc's offset into it, so two
  runs of the same program bucket together no matter what their heaps,
  globals, or instruction counts looked like;
* a pc outside every known procedure keeps its raw address (it still
  distinguishes *where* an unsymbolizable crash happened);
* the defensive unwinder's ``<corrupt frame>`` sentinel folds to a
  single ``<corrupt>`` token — a family whose stack is smashed at the
  same depth still buckets, and a partial walk never aborts triage;
* only the top ``MAX_HASH_FRAMES`` frames participate, so recursion
  depth (which varies with input) does not split one bug into many
  groups;
* the fault kind (signal number and code) and the architecture prefix
  the fold — a SIGSEGV and a SIGFPE at the same pc are different bugs,
  and so are the "same" source crash compiled for two machines.

The hash itself is the first 16 hex digits of a SHA-256 over the
normalized fold: stable across processes and Python versions (unlike
``hash()``), short enough to read in a report, long enough that
collisions are not a practical concern at fleet scale.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

#: frames beyond this depth do not participate in the hash (they still
#: appear in exemplar backtraces) — deep recursion varies with input,
#: the crashing prefix does not
MAX_HASH_FRAMES = 16

#: what a CorruptFrame sentinel folds to
CORRUPT_TOKEN = "<corrupt>"


def fold_frame(name: Optional[str], pc: int,
               proc_addr: Optional[int]) -> str:
    """One frame's normalized token: ``function+0xoffset``."""
    if name is None:
        return "0x%x" % pc
    offset = pc - proc_addr if proc_addr is not None else 0
    return "%s+0x%x" % (name, offset)


def fold_api_frames(frames: List[dict]) -> List[str]:
    """Fold the ``backtrace`` API verb's frame dicts (which carry
    ``pc``, ``proc``, ``offset``, and ``corrupt``) into tokens."""
    tokens: List[str] = []
    for frame in frames[:MAX_HASH_FRAMES]:
        if frame.get("corrupt"):
            tokens.append(CORRUPT_TOKEN)
            break  # the walk ended here; nothing below is trustworthy
        offset = frame.get("offset")
        if offset is None:
            tokens.append("0x%x" % frame.get("pc", 0))
        else:
            tokens.append("%s+0x%x" % (frame["proc"], offset))
    return tokens


def stack_hash(arch: str, signo: int, code: int,
               tokens: List[str]) -> str:
    """The crash-group identity for one normalized stack."""
    identity = "%s|%d/%d|%s" % (arch, signo, code, "|".join(tokens))
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]


def hash_backtrace(arch: str, signo: int, code: int,
                   frames: List[dict]) -> Tuple[str, List[str]]:
    """``(stack_hash, tokens)`` for a ``backtrace`` verb result."""
    tokens = fold_api_frames(frames)
    return stack_hash(arch, signo, code, tokens), tokens
