"""Fleet-scale crash triage over the post-mortem debugging stack.

`ROADMAP item 4 <../../ROADMAP.md>`_: cores and recordings made crashes
durable; this package makes them *countable*.  See ``docs/artifacts.md``
for the user-facing story and DESIGN.md Sec. 14 for the architecture.
"""

from .engine import (DEFAULT_FRAME_LIMIT, KIND_CORE, KIND_RECORDING,
                     TriageEngine, TriageError, classify, scan_dir,
                     triage_artifact)
from .report import (ERROR_CORRUPT_CORE, ERROR_CORRUPT_RECORDING,
                     ERROR_DIVERGED, ERROR_KINDS, ERROR_NOT_ARTIFACT,
                     ERROR_SYMBOLIZE, ERROR_UNREADABLE, ArtifactError,
                     ArtifactRecord, CrashGroup, TriageReport)
from .stackhash import (CORRUPT_TOKEN, MAX_HASH_FRAMES, fold_api_frames,
                        fold_frame, hash_backtrace, stack_hash)

__all__ = [
    "TriageEngine", "TriageError", "TriageReport", "CrashGroup",
    "ArtifactRecord", "ArtifactError", "classify", "scan_dir",
    "triage_artifact", "hash_backtrace", "stack_hash", "fold_frame",
    "fold_api_frames", "KIND_CORE", "KIND_RECORDING", "ERROR_KINDS",
    "ERROR_UNREADABLE", "ERROR_NOT_ARTIFACT", "ERROR_CORRUPT_CORE",
    "ERROR_CORRUPT_RECORDING", "ERROR_DIVERGED", "ERROR_SYMBOLIZE",
    "MAX_HASH_FRAMES", "CORRUPT_TOKEN", "DEFAULT_FRAME_LIMIT",
]
