"""Triage results: per-artifact records, crash groups, and the report.

Everything here is deliberately dumb data — JSON-able dicts behind thin
classes — because the report *is* the product: the engine's callers
(the CLI, the gateway, the bench, a cron job filing tickets) all
consume the same shape.  The two record kinds mirror the batch
contract: an artifact either triages to an :class:`ArtifactRecord`
(symbolized, hashed, bucketable) or fails to an :class:`ArtifactError`
with a typed ``kind`` — and a failure of one artifact never aborts the
batch (the corruption-matrix tests hold the engine to that).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: the typed per-artifact failure kinds (ArtifactError.kind)
ERROR_UNREADABLE = "unreadable"            # cannot read the file at all
ERROR_NOT_ARTIFACT = "not-an-artifact"     # neither LDBC nor LDBT magic
ERROR_CORRUPT_CORE = "corrupt-core"        # CoreError: damaged/truncated
ERROR_CORRUPT_RECORDING = "corrupt-recording"  # TraceError: damaged file
ERROR_DIVERGED = "diverged"                # replay contradicted its log
ERROR_SYMBOLIZE = "symbolize-failed"       # opened, but triage verbs failed

ERROR_KINDS = (ERROR_UNREADABLE, ERROR_NOT_ARTIFACT, ERROR_CORRUPT_CORE,
               ERROR_CORRUPT_RECORDING, ERROR_DIVERGED, ERROR_SYMBOLIZE)


class ArtifactError:
    """One artifact the batch could not triage, and why."""

    __slots__ = ("path", "kind", "message")

    def __init__(self, path: str, kind: str, message: str):
        assert kind in ERROR_KINDS, kind
        self.path = path
        self.kind = kind
        self.message = message

    def to_dict(self) -> dict:
        return {"path": self.path, "kind": self.kind,
                "message": self.message}

    def __repr__(self) -> str:
        return "<artifact-error %s: %s>" % (self.kind, self.path)


class ArtifactRecord:
    """One successfully triaged artifact."""

    __slots__ = ("path", "kind", "arch", "signo", "code", "fault_pc",
                 "icount", "stack_hash", "tokens", "frames", "where",
                 "corrupt_stack", "seconds", "salvaged")

    def __init__(self, path: str, kind: str, arch: str, signo: int,
                 code: int, fault_pc: Optional[int], icount: int,
                 stack_hash: str, tokens: List[str], frames: List[dict],
                 where: Optional[dict], corrupt_stack: bool,
                 seconds: float, salvaged: bool = False):
        self.path = path
        #: "core" or "recording"
        self.kind = kind
        self.arch = arch
        self.signo = signo
        self.code = code
        self.fault_pc = fault_pc
        self.icount = icount
        self.stack_hash = stack_hash
        #: the normalized function+offset fold the hash covers
        self.tokens = tokens
        #: the full symbolized backtrace (every frame, proc/file/line)
        self.frames = frames
        self.where = where
        #: did the defensive unwinder truncate the walk?
        self.corrupt_stack = corrupt_stack
        self.seconds = seconds
        #: was the artifact damaged and recovered on its valid prefix?
        self.salvaged = salvaged

    def to_dict(self) -> dict:
        return {"path": self.path, "kind": self.kind, "arch": self.arch,
                "signo": self.signo, "code": self.code,
                "fault_pc": self.fault_pc, "icount": self.icount,
                "stack_hash": self.stack_hash, "tokens": self.tokens,
                "frames": self.frames, "where": self.where,
                "corrupt_stack": self.corrupt_stack,
                "seconds": round(self.seconds, 6),
                "salvaged": self.salvaged}


class CrashGroup:
    """One bucket of duplicate crashes: everything that folded to the
    same normalized stack hash."""

    __slots__ = ("stack_hash", "members")

    def __init__(self, stack_hash: str):
        self.stack_hash = stack_hash
        self.members: List[ArtifactRecord] = []

    @property
    def count(self) -> int:
        return len(self.members)

    @property
    def exemplar(self) -> ArtifactRecord:
        """The group's representative: the first member triaged."""
        return self.members[0]

    def to_dict(self) -> dict:
        ex = self.exemplar
        return {
            "stack_hash": self.stack_hash,
            "count": self.count,
            "arch": ex.arch,
            "signo": ex.signo,
            "code": ex.code,
            "tokens": ex.tokens,
            "exemplar": ex.to_dict(),
            "paths": [m.path for m in self.members],
        }


class TriageReport:
    """The batch's outcome: ranked groups plus the error ledger."""

    def __init__(self, groups: List[CrashGroup], errors: List[ArtifactError],
                 scanned: int, elapsed_seconds: float, workers: int):
        #: largest group first; ties break on the hash for determinism
        self.groups = sorted(groups,
                             key=lambda g: (-g.count, g.stack_hash))
        self.errors = errors
        self.scanned = scanned
        self.elapsed_seconds = elapsed_seconds
        self.workers = workers

    @property
    def triaged(self) -> int:
        return sum(group.count for group in self.groups)

    def group_of(self, path: str) -> Optional[CrashGroup]:
        """The group holding ``path`` (the dedup-quality tests' probe)."""
        for group in self.groups:
            if any(member.path == path for member in group.members):
                return group
        return None

    def to_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "triaged": self.triaged,
            "groups": [group.to_dict() for group in self.groups],
            "errors": [error.to_dict() for error in self.errors],
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "workers": self.workers,
        }

    def dump_json(self, path: str) -> None:
        """Write the report crash-consistently (temp + fsync + rename):
        a fleet cron job killed mid-dump leaves the previous report,
        never a torn JSON file."""
        from ..machines.atomicio import atomic_write_text
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        atomic_write_text(path, text)

    # -- the human-readable rendering ---------------------------------------

    def render(self, top: int = 10, frames: int = 8) -> str:
        """The ranked crash-group report as terminal text."""
        lines: List[str] = []
        lines.append("triaged %d/%d artifacts into %d crash groups "
                     "(%d errors) in %.2fs with %d workers"
                     % (self.triaged, self.scanned, len(self.groups),
                        len(self.errors), self.elapsed_seconds,
                        self.workers))
        for rank, group in enumerate(self.groups[:top], 1):
            ex = group.exemplar
            lines.append("")
            lines.append("#%-2d %5d crash%s  %s  %s  signal %d/%d"
                         % (rank, group.count,
                            "es" if group.count != 1 else "  ",
                            group.stack_hash, ex.arch, ex.signo, ex.code))
            where = ex.where or {}
            if where.get("proc"):
                lines.append("    died in %s () at %s:%s"
                             % (where.get("proc"), where.get("file"),
                                where.get("line")))
            for frame in ex.frames[:frames]:
                if frame.get("corrupt"):
                    lines.append("      #%-2d <corrupt frame>"
                                 % frame.get("level", 0))
                    break
                lines.append("      #%-2d %s () at %s:%s"
                             % (frame.get("level", 0), frame.get("proc"),
                                frame.get("file"), frame.get("line")))
            if len(ex.frames) > frames:
                lines.append("      ... %d more frames"
                             % (len(ex.frames) - frames))
            lines.append("    exemplar %s" % ex.path)
        if len(self.groups) > top:
            lines.append("")
            lines.append("... %d more groups (see the JSON report)"
                         % (len(self.groups) - top))
        if self.errors:
            lines.append("")
            lines.append("%d artifacts could not be triaged:"
                         % len(self.errors))
            counts: Dict[str, int] = {}
            for error in self.errors:
                counts[error.kind] = counts.get(error.kind, 0) + 1
            for kind in sorted(counts):
                lines.append("    %-20s %d" % (kind, counts[kind]))
        return "\n".join(lines) + "\n"
