"""The batch crash-triage engine: thousands of artifacts, one report.

Cores (PR 5) and recordings (PR 8) gave every dead target a durable
artifact; this module is what consumes them *in bulk* — the payoff
Hanson argues a machine-independent debugging vocabulary exists for
(MSR-TR-99-4, PAPERS.md): programmatic, automated debugging.  The
engine ingests a directory (or manifest) of artifacts and, for each:

1. **classifies** it by magic — ``LDBC`` is a core, ``LDBT`` a
   recording, anything else a typed error record;
2. **symbolizes** it through the existing post-mortem stack: a fresh
   :class:`~repro.ldb.debugger.Ldb` opens the artifact over
   ``CoreTransport``/``ReplayTransport`` and the triage questions are
   asked through :class:`~repro.ldb.api.DebugAPI` verbs (``status``,
   ``fault``, ``backtrace``, ``where``) — no new debugger code paths,
   the same vocabulary the session server speaks;
3. **normalizes** the backtrace to a stack hash (frame pcs folded to
   ``function+offset``, corrupt frames tolerated — see
   :mod:`.stackhash`);
4. **buckets** it with every other artifact that folded to the same
   hash.

The batch contract mirrors the session server's: every artifact is
*answered* — an :class:`~.report.ArtifactRecord` or a typed
:class:`~.report.ArtifactError` — and a malformed, truncated, or
actively hostile file never aborts the batch.  Work fans out over a
pool of workers, each owning a whole debugger stack for the artifact
it is triaging (the one-thread-per-stack pattern of ``repro/serve``);
``mode="process"`` swaps the thread pool for processes when the
symbolization load should escape the interpreter lock.  Everything
observable lands in the shared registry under ``triage.*``.
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import Dict, List, Optional

from ..machines.core import MAGIC as CORE_MAGIC
from ..trace.format import TRACE_MAGIC
from .report import (
    ERROR_CORRUPT_CORE,
    ERROR_CORRUPT_RECORDING,
    ERROR_DIVERGED,
    ERROR_NOT_ARTIFACT,
    ERROR_SYMBOLIZE,
    ERROR_UNREADABLE,
    ArtifactError,
    ArtifactRecord,
    CrashGroup,
    TriageReport,
)
from .stackhash import hash_backtrace

#: artifact kinds (ArtifactRecord.kind)
KIND_CORE = "core"
KIND_RECORDING = "recording"

#: how many frames the exemplar backtrace keeps (the hash uses fewer;
#: see stackhash.MAX_HASH_FRAMES)
DEFAULT_FRAME_LIMIT = 32


class TriageError(Exception):
    """A *batch*-level failure: nothing to triage, unreadable manifest,
    bad engine arguments.  Per-artifact failures never raise this —
    they land in the report's error ledger."""


def classify(path: str) -> str:
    """``core`` / ``recording`` by magic, or a typed error kind."""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(4)
    except OSError:
        return ERROR_UNREADABLE
    if magic == CORE_MAGIC:
        return KIND_CORE
    if magic == TRACE_MAGIC:
        return KIND_RECORDING
    return ERROR_NOT_ARTIFACT


def triage_artifact(path: str,
                    frame_limit: int = DEFAULT_FRAME_LIMIT) -> dict:
    """Triage one artifact; always returns a JSON-able dict — either
    ``{"ok": True, ...record fields...}`` or ``{"ok": False, "kind":
    <error kind>, "message": ...}``.

    This is the unit of work the pools fan out (a plain function over
    a path, so a process pool can run it unchanged), and the promise
    the corruption matrix tests: *whatever* is behind ``path``, this
    returns a dict — it never raises.
    """
    started = time.perf_counter()
    kind = classify(path)
    if kind == ERROR_UNREADABLE:
        return {"ok": False, "path": path, "kind": kind,
                "message": "cannot read %s" % path}
    if kind == ERROR_NOT_ARTIFACT:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        return {"ok": False, "path": path, "kind": kind,
                "message": "%s is neither a core (LDBC) nor a recording "
                           "(LDBT); %d bytes" % (path, size)}
    try:
        return _symbolize(path, kind, frame_limit, started)
    except Exception as err:  # the batch contract: a dict, whatever broke
        return {"ok": False, "path": path, "kind": ERROR_SYMBOLIZE,
                "message": "%s: %s" % (type(err).__name__, err)}


def _symbolize(path: str, kind: str, frame_limit: int,
               started: float) -> dict:
    # deferred imports: a process-pool worker pays them once, and the
    # triage package stays importable without dragging the whole stack
    import warnings

    from ..ldb import Ldb
    from ..ldb.api import ApiError, DebugAPI
    from ..ldb.target import TargetError
    from ..machines.atomicio import SalvagedArtifact
    from ..trace import DivergenceError

    ldb = Ldb(stdout=io.StringIO())
    salvaged = False
    try:
        # a truncated artifact (a machine that died mid-write without
        # the atomic path, say) still triages: it opens salvaged on
        # its valid prefix, and the row says so
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", SalvagedArtifact)
            if kind == KIND_CORE:
                ldb.open_core(path)
            else:
                target = ldb.open_recording(path)
                # a recording restores its final spill without
                # re-executing, which is exactly the window a tampered
                # event log would slip through — check the landing
                # digest before trusting it
                target.transport.verify_here()
        salvaged = any(issubclass(entry.category, SalvagedArtifact)
                       for entry in caught)
    except DivergenceError as err:
        return {"ok": False, "path": path, "kind": ERROR_DIVERGED,
                "message": str(err)}
    except TargetError as err:
        bad = (ERROR_CORRUPT_CORE if kind == KIND_CORE
               else ERROR_CORRUPT_RECORDING)
        return {"ok": False, "path": path, "kind": bad,
                "message": str(err)}

    api = DebugAPI(ldb)
    fault = api.execute("fault")
    bt = api.execute("backtrace", {"limit": frame_limit})
    try:
        where = api.execute("where")
    except ApiError:
        where = None  # an unlocatable fault is still a triagable fault
    stack_hash, tokens = hash_backtrace(fault["arch"], fault["signo"],
                                        fault["code"], bt["frames"])
    return {
        "ok": True,
        "path": path,
        "artifact": kind,
        "arch": fault["arch"],
        "signo": fault["signo"],
        "code": fault["code"],
        "fault_pc": fault["fault_pc"],
        "icount": fault["icount"],
        "stack_hash": stack_hash,
        "tokens": tokens,
        "frames": bt["frames"],
        "where": where,
        "corrupt_stack": any(f.get("corrupt") for f in bt["frames"]),
        "seconds": time.perf_counter() - started,
        "salvaged": salvaged,
    }


class TriageEngine:
    """Fan a corpus of crash artifacts through the post-mortem stack
    and bucket the results into ranked crash groups."""

    def __init__(self, *, workers: int = 4, mode: str = "thread",
                 frame_limit: int = DEFAULT_FRAME_LIMIT, obs=None):
        if mode not in ("thread", "process"):
            raise TriageError("mode must be 'thread' or 'process', "
                              "not %r" % mode)
        if workers < 1:
            raise TriageError("workers must be >= 1, not %r" % workers)
        if obs is None:
            from ..obs import Observability
            obs = Observability()
        self.obs = obs
        self.workers = workers
        self.mode = mode
        self.frame_limit = frame_limit

    # -- ingestion ----------------------------------------------------------

    def triage(self, path: str) -> TriageReport:
        """Triage whatever ``path`` is: a directory of artifacts, a
        JSON manifest, or a single artifact file."""
        if os.path.isdir(path):
            return self.triage_dir(path)
        if not os.path.exists(path):
            # a mistyped corpus path is a batch error, loudly — only a
            # *member* of a real corpus degrades to a typed record
            raise TriageError("no such corpus: %s" % path)
        if path.endswith(".json"):
            return self.triage_manifest(path)
        return self.triage_paths([path])

    def triage_dir(self, directory: str) -> TriageReport:
        """Every artifact under ``directory`` (recursive, sorted).
        Hidden files and ``*.json`` sidecars (manifests, reports) are
        skipped; everything else is an artifact candidate — corrupt or
        alien files become typed error records, not crashes."""
        return self.triage_paths(scan_dir(directory))

    def triage_manifest(self, manifest_path: str) -> TriageReport:
        """The paths named by a JSON manifest — either a plain list or
        ``{"artifacts": [{"path": ...}, ...]}`` (the shape
        ``tools/make_crash_corpus.py`` writes).  Relative paths resolve
        against the manifest's own directory."""
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as err:
            raise TriageError("cannot read manifest %s: %s"
                              % (manifest_path, err))
        if isinstance(manifest, dict):
            entries = manifest.get("artifacts", [])
        else:
            entries = manifest
        base = os.path.dirname(os.path.abspath(manifest_path))
        paths = []
        for entry in entries:
            path = entry.get("path") if isinstance(entry, dict) else entry
            if not isinstance(path, str):
                raise TriageError("manifest entry %r names no path" % entry)
            paths.append(path if os.path.isabs(path)
                         else os.path.join(base, path))
        return self.triage_paths(paths)

    # -- the batch ----------------------------------------------------------

    def triage_paths(self, paths: List[str]) -> TriageReport:
        paths = list(paths)
        if not paths:
            raise TriageError("nothing to triage: no artifact paths")
        started = time.perf_counter()
        self.obs.tracer.event("triage.batch", artifacts=len(paths),
                              workers=self.workers, mode=self.mode)
        results = self._map(paths)
        report = self._collect(results, len(paths),
                               time.perf_counter() - started)
        self.obs.metrics.inc("triage.batches")
        self.obs.metrics.observe("triage.batch_seconds",
                                 report.elapsed_seconds)
        return report

    def _map(self, paths: List[str]) -> List[dict]:
        if self.workers == 1:
            return [triage_artifact(path, self.frame_limit)
                    for path in paths]
        # one artifact = one worker-owned debugger stack, the serve
        # pattern; futures keep submission order so reports (and
        # exemplar choice) are deterministic regardless of scheduling
        from concurrent.futures import (ProcessPoolExecutor,
                                        ThreadPoolExecutor)
        pool_cls = (ProcessPoolExecutor if self.mode == "process"
                    else ThreadPoolExecutor)
        with pool_cls(max_workers=self.workers) as pool:
            futures = [pool.submit(triage_artifact, path, self.frame_limit)
                       for path in paths]
            return [future.result() for future in futures]

    def _collect(self, results: List[dict], scanned: int,
                 elapsed: float) -> TriageReport:
        metrics = self.obs.metrics
        groups: Dict[str, CrashGroup] = {}
        errors: List[ArtifactError] = []
        for row in results:
            metrics.inc("triage.artifacts")
            if not row["ok"]:
                error = ArtifactError(row["path"], row["kind"],
                                      row["message"])
                errors.append(error)
                metrics.inc("triage.errors")
                metrics.inc("triage.errors.%s" % error.kind)
                continue
            record = ArtifactRecord(
                row["path"], row["artifact"], row["arch"], row["signo"],
                row["code"], row["fault_pc"], row["icount"],
                row["stack_hash"], row["tokens"], row["frames"],
                row["where"], row["corrupt_stack"], row["seconds"],
                salvaged=row.get("salvaged", False))
            metrics.inc("triage.cores" if record.kind == KIND_CORE
                        else "triage.recordings")
            if record.corrupt_stack:
                metrics.inc("triage.corrupt_stacks")
            if record.salvaged:
                metrics.inc("triage.salvaged")
            metrics.observe("triage.artifact_seconds", record.seconds)
            groups.setdefault(record.stack_hash,
                              CrashGroup(record.stack_hash)
                              ).members.append(record)
        report = TriageReport(list(groups.values()), errors, scanned,
                              elapsed, self.workers)
        metrics.set_gauge("triage.groups", len(report.groups))
        self.obs.tracer.event("triage.report", groups=len(report.groups),
                              triaged=report.triaged, errors=len(errors))
        return report


def scan_dir(directory: str) -> List[str]:
    """The artifact candidates under ``directory``, sorted for
    deterministic reports: regular files, minus dotfiles and ``.json``
    sidecars."""
    if not os.path.isdir(directory):
        raise TriageError("%s is not a directory" % directory)
    found: List[str] = []
    for root, dirs, files in os.walk(directory):
        dirs.sort()
        for name in sorted(files):
            if name.startswith(".") or name.endswith(".json"):
                continue
            found.append(os.path.join(root, name))
    if not found:
        raise TriageError("no artifact files under %s" % directory)
    return found
