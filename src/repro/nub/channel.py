"""Byte channels between the debugger and the nub.

The nub uses sockets because they are more uniform across systems than
process-control facilities (paper Sec. 4.2).  Three connection styles
mirror the paper's: a socketpair for the forked-child case, TCP over the
network, and a listener the nub waits on so a faulty process can be
picked up by a debugger started later — or by a *new* debugger after the
first one crashed.

Channels carry the framing state negotiated by the HELLO handshake
(``crc``, ``seq_mode``): a fresh connection always starts with plain
frames, and both peers flip the flags after the handshake round-trip.
"""

from __future__ import annotations

import socket
import time
from typing import Optional, Tuple

from .protocol import CrcError, FrameError, Message, decode, encode


class ChannelClosed(Exception):
    """The peer went away (e.g. a debugger crash)."""


class Channel:
    """A framed message channel over a socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""
        #: negotiated framing extras (HELLO handshake); plain by default
        self.crc = False
        self.seq_mode = False

    def send(self, msg: Message) -> None:
        try:
            self.sock.sendall(encode(msg, crc=self.crc, seq_mode=self.seq_mode))
        except OSError as err:
            raise ChannelClosed(str(err))

    def recv(self, timeout: Optional[float] = None) -> Message:
        try:
            old = self.sock.gettimeout()
            self.sock.settimeout(timeout)
        except OSError as err:
            raise ChannelClosed(str(err))
        try:
            while True:
                try:
                    msg, self._buffer = decode(self._buffer, crc=self.crc,
                                               seq_mode=self.seq_mode)
                except CrcError as err:
                    # the bad frame is consumed; the stream stays framed
                    self._buffer = err.rest
                    raise
                except FrameError:
                    # a hostile length field poisons the whole stream:
                    # drop the connection
                    self.close()
                    raise
                if msg is not None:
                    return msg
                try:
                    chunk = self.sock.recv(4096)
                except socket.timeout:
                    raise TimeoutError("no message within %s seconds" % timeout)
                except OSError as err:
                    raise ChannelClosed(str(err))
                if not chunk:
                    raise ChannelClosed("peer closed the connection")
                self._buffer += chunk
        finally:
            try:
                self.sock.settimeout(old)
            except OSError:
                pass

    def drain(self) -> int:
        """Discard any buffered or immediately-readable input; returns
        the number of bytes dropped.  The nub uses this when a new stop
        is announced: in the lockstep request/reply conversation, input
        queued from before the stop is stale (e.g. duplicated frames)."""
        dropped = len(self._buffer)
        self._buffer = b""
        try:
            old = self.sock.gettimeout()
        except OSError:
            return dropped
        try:
            self.sock.settimeout(0.0)
            while True:
                chunk = self.sock.recv(4096)
                if not chunk:
                    break
                dropped += len(chunk)
        except (BlockingIOError, socket.timeout, OSError):
            pass
        finally:
            try:
                self.sock.settimeout(old)
            except OSError:
                pass
        return dropped

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def pair() -> Tuple[Channel, Channel]:
    """A connected channel pair (the forked-child connection style)."""
    a, b = socket.socketpair()
    return Channel(a), Channel(b)


class Listener:
    """A TCP listener the nub waits on for (re)connections."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind((host, port))
        self.sock.listen(4)
        self.address = self.sock.getsockname()

    @property
    def port(self) -> int:
        return self.address[1]

    def accept(self, timeout: Optional[float] = None) -> Channel:
        self.sock.settimeout(timeout)
        try:
            conn, _peer = self.sock.accept()
        except socket.timeout:
            # callers see one timeout type, like Channel.recv
            raise TimeoutError("no connection within %s seconds" % timeout)
        return Channel(conn)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def connect(host: str, port: int, timeout: float = 10.0,
            attempts: int = 3, base_delay: float = 0.05,
            multiplier: float = 2.0) -> Channel:
    """Connect to a listening nub over the network.

    A nub that is mid-restart (or briefly out of accept slots) refuses
    or times out the first connection, so the dial is retried with
    exponential backoff up to ``attempts`` times, all bounded by the
    single overall ``timeout`` budget.  Every failure mode — refused,
    unreachable, or slow — surfaces as one consistent
    ``TimeoutError("no connection to HOST:PORT within S seconds ...")``
    so callers (and their tests) match a single message shape.
    """
    deadline = time.monotonic() + timeout
    last_err: Optional[Exception] = None
    for attempt in range(max(1, attempts)):
        if attempt:
            pause = base_delay * multiplier ** (attempt - 1)
            pause = min(pause, max(0.0, deadline - time.monotonic()))
            time.sleep(pause)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            sock = socket.create_connection((host, port), timeout=remaining)
        except OSError as err:  # includes socket.timeout
            last_err = err
            continue
        sock.settimeout(None)
        return Channel(sock)
    raise TimeoutError(
        "no connection to %s:%d within %s seconds (%d attempts): %s"
        % (host, port, timeout, max(1, attempts), last_err))
