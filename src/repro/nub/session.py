"""Fault-tolerant debugger sessions over a nub channel.

The paper's robustness story (Sec. 7.1) is that the *nub* survives a
debugger crash: it preserves the target, keeps planted breakpoints, and
waits for a new connection.  This module supplies the debugger half of
that story: a :class:`NubSession` wraps the channel in a retrying
request/reply layer, so transient faults — dropped, corrupted,
truncated, duplicated or delayed frames, and outright connection
crashes — are absorbed instead of surfacing as exceptions.

* requests are retried under an exponential-backoff-with-jitter
  :class:`RetryPolicy`;
* a broken connection is re-established through the nub's listener
  (``connector``), the nub re-announces the interrupted stop, and an
  ``on_reconnect`` hook lets the owner resynchronize state (ldb's
  :class:`Target` replays ``BREAKS`` to recover the breakpoint table);
* the HELLO handshake negotiates hardened framing: CRC32 trailers,
  sequence-numbered frames (stale replies from duplicated or timed-out
  exchanges are discarded by id), and acknowledged control messages so
  CONTINUE/KILL/DETACH are retryable too;
* against a legacy nub that answers HELLO with an error, the session
  degrades to plain frames and best-effort controls — the baseline
  debugger keeps working, exactly in the spirit of the paper's optional
  protocol extensions;
* every exchange is observable: the session feeds the unified
  :mod:`repro.obs` registry (``session.*`` counters, a round-trip
  latency histogram) and, when tracing is enabled, records each frame
  *decoded* — opcode, fields, sequence id, byte size — so a session
  transcript is human-readable and diffable.
"""

from __future__ import annotations

import abc
import random
import time
from collections import deque
from typing import Callable, Iterable, Optional, Tuple

from . import protocol
from .channel import Channel, ChannelClosed


class TransportError(Exception):
    """The transport could not complete a request (connection dead,
    retry budget exhausted, reply unframeable)."""


class SessionError(TransportError):
    """A request could not be completed within the retry budget."""


class DeadlineExceeded(SessionError):
    """A request ran out of *deadline*, not retry budget: the caller's
    time bound expired while the exchange (attempts, backoff sleeps,
    reconnects) was still in flight.  Supervisors map this to their
    deadline answer rather than treating the nub as dead."""


class NubError(Exception):
    """The nub answered with a semantic ERROR (bad address, bad space,
    unsupported operation).  Carries the protocol error code."""

    def __init__(self, code: int, request: Optional[protocol.Message] = None):
        super().__init__("nub error %d answering %r" % (code, request))
        self.code = code
        self.request = request


class Transport(abc.ABC):
    """How a debugger talks to one nub.

    The two implementations are :class:`NubSession` — the normal case,
    adding retry/backoff, crash-reconnect, and negotiated hardened
    framing — and :class:`ChannelTransport`, a thin adapter over a bare
    :class:`Channel` for direct, unretried access.  Both surface nub
    errors identically: :meth:`transact` either returns a reply of an
    expected type, raises :class:`NubError` for a semantic ERROR reply,
    or raises :class:`TransportError` when no usable reply arrives.
    """

    #: Can this connection move raw memory blocks (BLOCKFETCH)?
    #: True/False once known; None means "not negotiated yet — try it".
    block_active: Optional[bool] = None

    #: Can this connection time-travel (CHECKPOINT/RESTORE/RUNTO)?
    #: True/False once known; None means "not negotiated yet — try it".
    timetravel_active: Optional[bool] = None

    #: Can this connection serialize a core (DUMPCORE)?
    #: True/False once known; None means "not negotiated yet — try it".
    core_active: Optional[bool] = None

    #: Observers of successful request/reply exchanges: callables
    #: ``tap(request, reply)`` fired after :meth:`transact` settles on a
    #: non-error reply.  The trace writer (repro.trace.writer) listens
    #: here to log debugger-injected inputs without patching call sites.
    #: Class default is an immutable empty tuple; implementations that
    #: support taps replace it with a per-instance list.
    taps: tuple = ()

    def notify_taps(self, msg: protocol.Message,
                    reply: protocol.Message) -> None:
        for tap in self.taps:
            tap(msg, reply)

    @abc.abstractmethod
    def transact(self, msg: protocol.Message, expect: Iterable[int],
                 timeout: Optional[float] = None) -> protocol.Message:
        """Send ``msg``; return the reply whose type is in ``expect``.

        Raises :class:`NubError` on an ERROR reply and
        :class:`TransportError` on anything else (timeout, dead
        connection, unexpected reply type)."""

    @abc.abstractmethod
    def control(self, msg: protocol.Message) -> None:
        """Send a control message (CONTINUE/DETACH/KILL)."""

    @abc.abstractmethod
    def recv_event(self, timeout: Optional[float] = None) -> protocol.Message:
        """Block for the next SIGNAL/EXITED notification."""

    @abc.abstractmethod
    def close(self) -> None:
        """Drop the connection."""


class ChannelTransport(Transport):
    """A :class:`Transport` over a bare channel: one lockstep exchange
    per request, no retries, no handshake.

    ``block_active`` stays None — there is no negotiation on a bare
    channel, so callers may *try* block transfers and let a legacy nub's
    error answer settle the question.
    """

    def __init__(self, channel: Channel, reply_timeout: float = 15.0):
        self.channel = channel
        self.reply_timeout = reply_timeout
        self.pending_events: deque = deque()
        self.taps = []

    def transact(self, msg: protocol.Message, expect: Iterable[int],
                 timeout: Optional[float] = None) -> protocol.Message:
        expect = tuple(expect)
        timeout = self.reply_timeout if timeout is None else timeout
        try:
            self.channel.send(msg)
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("no reply within %s seconds" % timeout)
                reply = self.channel.recv(remaining)
                if reply.mtype in _EVENT_TYPES:
                    self.pending_events.append(reply)
                    continue
                break
        except (ChannelClosed, TimeoutError,
                protocol.ProtocolError) as err:
            raise TransportError("request %r failed: %s" % (msg, err))
        if reply.mtype == protocol.MSG_ERROR:
            raise NubError(protocol.parse_error(reply), msg)
        if reply.mtype not in expect:
            raise TransportError("expected %s, got %r" % (expect, reply))
        self.notify_taps(msg, reply)
        return reply

    def control(self, msg: protocol.Message) -> None:
        self.channel.send(msg)

    def recv_event(self, timeout: Optional[float] = None) -> protocol.Message:
        if self.pending_events:
            return self.pending_events.popleft()
        while True:
            msg = self.channel.recv(timeout)
            if msg.mtype in _EVENT_TYPES:
                return msg

    def close(self) -> None:
        self.channel.close()


class _Transient(Exception):
    """Internal: the nub reported our frame mangled; retry immediately."""


class RetryPolicy:
    """Exponential backoff with *full* jitter, deterministically seeded.

    The sleep before retry ``n`` is drawn uniformly from
    ``[(1 - jitter) * cap, cap]`` where ``cap`` is the capped
    exponential ``min(max_delay, base_delay * multiplier**n)`` — with
    the default ``jitter=1.0`` that is full jitter, uniform over
    ``(0, cap]``.  A fleet of sessions reconnecting after a shared
    outage therefore spreads its retries across the whole window
    instead of thundering back at the same deterministic instants.
    The RNG is seeded, so a fault-matrix run replays exactly.
    """

    def __init__(self, max_attempts: int = 6, base_delay: float = 0.02,
                 max_delay: float = 0.5, multiplier: float = 2.0,
                 jitter: float = 1.0, seed: int = 0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """The sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        return cap * (1.0 - self.jitter * self._rng.random())


_EVENT_TYPES = (protocol.MSG_SIGNAL, protocol.MSG_EXITED)


class NubSession(Transport):
    """A retrying, reconnecting request/reply session with one nub."""

    def __init__(self, channel: Optional[Channel] = None,
                 connector: Optional[Callable[[], Channel]] = None,
                 policy: Optional[RetryPolicy] = None,
                 want_crc: bool = True, want_seq: bool = True,
                 want_ack: bool = True, want_block: bool = True,
                 want_timetravel: bool = True, want_core: bool = True,
                 reply_timeout: float = 10.0,
                 on_reconnect: Optional[Callable[["NubSession"], None]] = None,
                 obs=None):
        if obs is None:
            # imported here: repro.obs decodes frames via repro.nub, so
            # a module-level import would be circular
            from ..obs import Observability
            obs = Observability()
        #: the unified tracing + metrics hub (repro.obs.Observability)
        self.obs = obs
        self.channel = channel
        self.connector = connector
        self.policy = policy if policy is not None else RetryPolicy()
        self.want_crc = want_crc
        self.want_seq = want_seq
        self.want_ack = want_ack
        self.want_block = want_block
        self.want_timetravel = want_timetravel
        self.want_core = want_core
        self.reply_timeout = reply_timeout
        self.on_reconnect = on_reconnect
        #: negotiated state (HELLO handshake, per connection)
        self.hello_done = False
        self.crc_active = False
        self.seq_active = False
        self.ack_active = False
        #: None until the handshake settles it (each reconnect renegotiates)
        self.block_active: Optional[bool] = None if want_block else False
        self.timetravel_active: Optional[bool] = (None if want_timetravel
                                                  else False)
        self.core_active: Optional[bool] = None if want_core else False
        #: SIGNAL/EXITED frames that arrived while awaiting a reply
        self.pending_events: deque = deque()
        self.taps = []
        #: the last (signo, code, context) announced by the nub
        self.last_signal: Optional[Tuple[int, int, int]] = None
        #: counters, for tests and curiosity
        self.retries = 0
        self.reconnects = 0
        self._seq = 0
        self._in_callback = False
        #: absolute (monotonic) deadline applied to *every* request
        #: while set — how a supervisor bounds a whole command, fetches
        #: and retries included, without threading a parameter through
        #: each call site
        self.deadline_abs: Optional[float] = None

    # -- the request/reply engine -----------------------------------------

    def request(self, msg: protocol.Message,
                expect: Iterable[int] = (protocol.MSG_OK,),
                timeout: Optional[float] = None,
                deadline: Optional[float] = None) -> protocol.Message:
        """Send ``msg`` and return the nub's reply, retrying through
        transient faults and reconnecting through connection crashes.

        ``expect`` names the success reply types; an ERROR reply with a
        semantic code (bad address, unsupported, ...) is returned to the
        caller as-is, while ``ERR_BAD_MESSAGE`` — "your frame arrived
        mangled" — triggers a retry.

        ``deadline`` bounds the *whole* exchange in seconds — every
        attempt, backoff sleep, and reconnect included — so a caller
        under its own deadline (the session server's supervisor) gets a
        :class:`SessionError` in bounded time instead of waiting out
        the full retry budget.  ``timeout`` still bounds each attempt.
        """
        timeout = self.reply_timeout if timeout is None else timeout
        started_at = time.monotonic()
        overall = None if deadline is None else started_at + deadline
        if self.deadline_abs is not None:
            overall = (self.deadline_abs if overall is None
                       else min(overall, self.deadline_abs))
        expect = tuple(expect)
        msg.seq = self._next_seq()
        metrics = self.obs.metrics
        metrics.inc("session.requests")
        last_err: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self.retries += 1
                metrics.inc("session.retries")
                pause = self.policy.delay(attempt - 1)
                if overall is not None:
                    pause = min(pause, max(0.0, overall - time.monotonic()))
                time.sleep(pause)
            if overall is not None:
                remaining = overall - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        "request %r missed its %.3fs deadline after "
                        "%d attempts: %s" % (msg, overall - started_at,
                                             attempt, last_err))
                timeout_now = min(timeout, remaining)
            else:
                timeout_now = timeout
            try:
                self._ensure_channel()
                self._ensure_handshake()
                self._trace_frame("wire.send", msg, attempt=attempt)
                metrics.inc("session.sends")
                metrics.inc("session.bytes_out", self._frame_size(msg))
                started = time.perf_counter()
                self.channel.send(msg)
                reply = self._await_reply(msg, expect, timeout_now)
                metrics.observe("session.latency_us",
                                int((time.perf_counter() - started) * 1e6))
                metrics.inc("session.replies")
                metrics.inc("session.bytes_in", self._frame_size(reply))
                self._trace_frame("wire.recv", reply)
                return reply
            except ChannelClosed as err:
                last_err = err
                self._drop_channel()
            except protocol.FrameError as err:
                last_err = err
                self._drop_channel()
            except TimeoutError as err:
                # the request (or its reply) was lost; shed any late
                # reply still in flight before resending
                last_err = err
                self._flush()
            except (protocol.ProtocolError, _Transient) as err:
                last_err = err
        raise SessionError("request %r failed after %d attempts: %s"
                           % (msg, self.policy.max_attempts, last_err))

    def transact(self, msg: protocol.Message,
                 expect: Iterable[int] = (protocol.MSG_OK,),
                 timeout: Optional[float] = None,
                 deadline: Optional[float] = None) -> protocol.Message:
        """The :class:`Transport` request: an expected reply, or
        :class:`NubError` for the nub's semantic ERROR answers —
        identical surfacing to :class:`ChannelTransport`."""
        reply = self.request(msg, expect=expect, timeout=timeout,
                             deadline=deadline)
        if reply.mtype == protocol.MSG_ERROR:
            raise NubError(protocol.parse_error(reply), msg)
        self.notify_taps(msg, reply)
        return reply

    def control(self, msg: protocol.Message) -> None:
        """Send a control message (CONTINUE/DETACH/KILL): acknowledged
        and retried when the nub speaks FEATURE_ACK, best-effort
        otherwise."""
        try:
            self._ensure_channel()
            self._ensure_handshake()
        except (ChannelClosed, protocol.ProtocolError):
            # a dead connection under the handshake: one reconnect
            # (the request engine below retries everything else)
            self._drop_channel()
            self._ensure_channel()
            self._ensure_handshake()
        if self.ack_active:
            self.request(msg, expect=(protocol.MSG_OK,))
        else:
            self._trace_frame("wire.send", msg)
            self.obs.metrics.inc("session.sends")
            self.obs.metrics.inc("session.bytes_out", self._frame_size(msg))
            self.channel.send(msg)

    def send(self, msg: protocol.Message) -> None:
        """A raw, unretried send (legacy escape hatch)."""
        self._ensure_channel()
        self.channel.send(msg)

    def recv_event(self, timeout: Optional[float] = None) -> protocol.Message:
        """The next SIGNAL/EXITED notification (stale replies from
        faulted exchanges are skipped)."""
        if self.pending_events:
            return self.pending_events.popleft()
        if self.channel is None:
            raise ChannelClosed("session is not connected")
        while True:
            try:
                msg = self.channel.recv(timeout)
            except protocol.CrcError:
                continue
            except protocol.FrameError as err:
                self._drop_channel()
                raise ChannelClosed("unrecoverable framing: %s" % err)
            if msg.mtype == protocol.MSG_SIGNAL:
                self.last_signal = protocol.parse_signal(msg)
                self._count_event(msg)
                return msg
            if msg.mtype == protocol.MSG_EXITED:
                self._count_event(msg)
                return msg

    def reconnect(self) -> None:
        """Drop the current connection (if any) and re-attach through
        the connector; the nub re-announces the interrupted stop."""
        self._drop_channel()
        self._reconnect()

    def close(self) -> None:
        self._drop_channel()

    # -- internals ---------------------------------------------------------

    def _trace_frame(self, name: str, msg: protocol.Message, **extra) -> None:
        """One decoded frame into the trace (only when tracing is on)."""
        tracer = self.obs.tracer
        if not tracer.enabled:
            return
        from ..obs import wiretap  # deferred: obs decodes via this package
        tracer.event(name, **dict(wiretap.describe(msg), **extra))

    def _frame_size(self, msg: protocol.Message) -> int:
        return ((9 if self.seq_active else 5) + len(msg.payload)
                + (4 if self.crc_active else 0))

    def _count_event(self, msg: protocol.Message) -> None:
        self.obs.metrics.inc("session.events")
        self._trace_frame("wire.event", msg)

    def _next_seq(self) -> int:
        self._seq += 1
        if self._seq >= protocol.NO_SEQ:
            self._seq = 1
        return self._seq

    def _await_reply(self, msg, expect, timeout) -> protocol.Message:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("no reply within %s seconds" % timeout)
            reply = self.channel.recv(remaining)
            if reply.mtype in _EVENT_TYPES:
                self._note_event(reply)
                continue
            if self.seq_active and reply.seq != msg.seq:
                # a stale reply (duplicate or late after a timeout);
                # ERR_BAD_MESSAGE means a mangled frame reached the nub
                if (reply.mtype == protocol.MSG_ERROR
                        and protocol.parse_error(reply)
                        == protocol.ERR_BAD_MESSAGE):
                    raise _Transient("nub saw a mangled frame")
                continue
            if reply.mtype == protocol.MSG_ERROR:
                if protocol.parse_error(reply) == protocol.ERR_BAD_MESSAGE:
                    raise _Transient("nub saw a mangled frame")
                return reply
            if reply.mtype in expect:
                return reply
            # without sequence ids a stale reply shows up as the wrong
            # type: flush the stream and retry
            raise _Transient("expected %s, got %r" % (expect, reply))

    def _note_event(self, msg: protocol.Message) -> None:
        if msg.mtype == protocol.MSG_SIGNAL:
            self.last_signal = protocol.parse_signal(msg)
        self._count_event(msg)
        self.pending_events.append(msg)

    def _ensure_channel(self) -> None:
        if self.channel is None:
            if self.connector is None:
                raise ChannelClosed("session has no reconnect path")
            self._reconnect()

    def _drop_channel(self) -> None:
        if self.channel is not None:
            self.channel.close()
            self.channel = None
        self.hello_done = False
        self.crc_active = self.seq_active = self.ack_active = False
        self.block_active = None if self.want_block else False
        self.timetravel_active = None if self.want_timetravel else False
        self.core_active = None if self.want_core else False

    def _reconnect(self) -> None:
        if self.connector is None:
            raise ChannelClosed("session has no reconnect path")
        self.last_signal = None
        last_err: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            if attempt:
                time.sleep(self.policy.delay(attempt - 1))
            try:
                channel = self.connector()
            except OSError as err:
                last_err = err
                continue
            self.channel = channel
            self.hello_done = False
            self.crc_active = self.seq_active = self.ack_active = False
            self.block_active = None if self.want_block else False
            self.timetravel_active = None if self.want_timetravel else False
            self.core_active = None if self.want_core else False
            got_signal = False
            try:
                try:
                    msg = channel.recv(self.reply_timeout)
                except TimeoutError:
                    msg = None  # target still running; nothing announced
                if msg is not None:
                    if msg.mtype == protocol.MSG_SIGNAL:
                        # the nub re-announces the preserved stop; the
                        # on_reconnect hook applies it, so don't queue it
                        self.last_signal = protocol.parse_signal(msg)
                        got_signal = True
                    elif msg.mtype == protocol.MSG_EXITED:
                        self.pending_events.append(msg)
                if got_signal:
                    self._ensure_handshake()
            except (ChannelClosed, protocol.ProtocolError) as err:
                last_err = err
                self._drop_channel()
                continue
            self.reconnects += 1
            self.obs.metrics.inc("session.reconnects")
            self.obs.tracer.event("session.reconnect", attempt=attempt,
                                  announced=got_signal)
            if got_signal:
                self._run_reconnect_callback()
            return
        raise SessionError("reconnect failed after %d attempts: %s"
                           % (self.policy.max_attempts, last_err))

    def _run_reconnect_callback(self) -> None:
        if self.on_reconnect is None or self._in_callback:
            return
        self._in_callback = True
        try:
            self.on_reconnect(self)
        finally:
            self._in_callback = False

    def _ensure_handshake(self) -> None:
        if self.hello_done:
            return
        features = ((protocol.FEATURE_CRC if self.want_crc else 0)
                    | (protocol.FEATURE_SEQ if self.want_seq else 0)
                    | (protocol.FEATURE_ACK if self.want_ack else 0)
                    | (protocol.FEATURE_BLOCK if self.want_block else 0)
                    | (protocol.FEATURE_TIMETRAVEL
                       if self.want_timetravel else 0)
                    | (protocol.FEATURE_CORE if self.want_core else 0))
        if not features:
            self.hello_done = True
            return
        self.channel.send(protocol.hello(protocol.PROTOCOL_VERSION, features))
        while True:
            reply = self.channel.recv(self.reply_timeout)
            if reply.mtype in _EVENT_TYPES:
                self._note_event(reply)
                continue
            break
        if reply.mtype == protocol.MSG_HELLO:
            _version, accepted = protocol.parse_hello(reply)
            self.crc_active = bool(accepted & protocol.FEATURE_CRC)
            self.seq_active = bool(accepted & protocol.FEATURE_SEQ)
            self.ack_active = bool(accepted & protocol.FEATURE_ACK)
            self.block_active = bool(accepted & protocol.FEATURE_BLOCK)
            self.timetravel_active = bool(accepted
                                          & protocol.FEATURE_TIMETRAVEL)
            self.core_active = bool(accepted & protocol.FEATURE_CORE)
            self.channel.crc = self.crc_active
            self.channel.seq_mode = self.seq_active
        else:
            # a legacy nub: plain frames, unacknowledged controls,
            # per-word memory traffic only, no time travel
            self.crc_active = self.seq_active = self.ack_active = False
            self.block_active = False
            self.timetravel_active = False
            self.core_active = False
        self.hello_done = True

    def _flush(self) -> None:
        """Discard stale input (late replies) after a timeout, keeping
        any SIGNAL/EXITED notifications."""
        if self.channel is None:
            return
        try:
            while True:
                msg = self.channel.recv(0.02)
                if msg.mtype in _EVENT_TYPES:
                    self._note_event(msg)
        except TimeoutError:
            pass
        except protocol.ProtocolError:
            pass
        except ChannelClosed:
            self._drop_channel()
