"""The little-endian nub wire protocol (paper Sec. 4.2).

The protocol between ldb and the nub is little-endian regardless of host
and target byte order; the paper notes it "has been used on all
combinations of host and target byte orders and has been validated".

Message frame: one type byte, a 4-byte little-endian payload length, and
the payload.  The important property inherited from the paper: the
protocol does **not** mention breakpoints or single-stepping — ldb
implements breakpoints entirely with fetches and stores (Sec. 6).

Messages from the debugger::

    FETCH  space(1) addr(4) size(4)      -> DATA value bytes (little-endian)
    STORE  space(1) addr(4) bytes        -> OK / ERROR
    CONTINUE                             (restore context, resume)
    DETACH                               (break connection, stay stopped)
    KILL                                 (terminate the target)

Messages from the nub::

    SIGNAL signo(4) code(4) context(4)   (target stopped)
    EXITED status(4)
    DATA   bytes
    OK
    ERROR  code(4)

The nub answers FETCH/STORE only for the code ('c') and data ('d')
spaces; register values live in the context, which is in the data space.
Values travel in little-endian byte order — the nub does the target-
byte-order access (Sec. 4.1).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

MSG_FETCH = 1
MSG_STORE = 2
MSG_CONTINUE = 3
MSG_DETACH = 4
MSG_KILL = 5
# -- the Sec. 7.1 extension: breakpoint-aware stores, so a new debugger
# -- can learn what a crashed one planted
MSG_PLANT = 6
MSG_UNPLANT = 7
MSG_BREAKS = 8
MSG_SIGNAL = 16
MSG_EXITED = 17
MSG_DATA = 18
MSG_OK = 19
MSG_ERROR = 20
MSG_BREAKLIST = 21

_NAMES = {
    MSG_FETCH: "FETCH", MSG_STORE: "STORE", MSG_CONTINUE: "CONTINUE",
    MSG_DETACH: "DETACH", MSG_KILL: "KILL", MSG_SIGNAL: "SIGNAL",
    MSG_EXITED: "EXITED", MSG_DATA: "DATA", MSG_OK: "OK", MSG_ERROR: "ERROR",
    MSG_PLANT: "PLANT", MSG_UNPLANT: "UNPLANT", MSG_BREAKS: "BREAKS",
    MSG_BREAKLIST: "BREAKLIST",
}

ERR_BAD_SPACE = 1
ERR_BAD_ADDRESS = 2
ERR_BAD_MESSAGE = 3
ERR_UNSUPPORTED = 4

#: value sizes the protocol carries (the abstract-memory sizes)
VALUE_SIZES = (1, 2, 4, 8, 10)


class ProtocolError(Exception):
    pass


class Message:
    __slots__ = ("mtype", "payload")

    def __init__(self, mtype: int, payload: bytes = b""):
        self.mtype = mtype
        self.payload = payload

    def __eq__(self, other) -> bool:
        return (isinstance(other, Message) and other.mtype == self.mtype
                and other.payload == self.payload)

    def __repr__(self) -> str:
        return "<msg %s %r>" % (_NAMES.get(self.mtype, self.mtype), self.payload)


def encode(msg: Message) -> bytes:
    return struct.pack("<BI", msg.mtype, len(msg.payload)) + msg.payload


def decode(data: bytes) -> Tuple[Optional[Message], bytes]:
    """Decode one message from ``data``; returns (message, rest).

    Returns (None, data) when the buffer holds an incomplete frame.
    """
    if len(data) < 5:
        return None, data
    mtype, length = struct.unpack("<BI", data[:5])
    if len(data) < 5 + length:
        return None, data
    return Message(mtype, data[5 : 5 + length]), data[5 + length :]


# -- constructors -----------------------------------------------------------

def fetch(space: str, address: int, size: int) -> Message:
    if size not in VALUE_SIZES:
        raise ProtocolError("bad fetch size %d" % size)
    return Message(MSG_FETCH, struct.pack("<BII", ord(space), address, size))


def store(space: str, address: int, data: bytes) -> Message:
    if len(data) not in VALUE_SIZES:
        raise ProtocolError("bad store size %d" % len(data))
    return Message(MSG_STORE, struct.pack("<BI", ord(space), address) + data)


def cont() -> Message:
    return Message(MSG_CONTINUE)


def detach() -> Message:
    return Message(MSG_DETACH)


def kill() -> Message:
    return Message(MSG_KILL)


def signal(signo: int, code: int, context_addr: int) -> Message:
    return Message(MSG_SIGNAL, struct.pack("<III", signo, code, context_addr))


def exited(status: int) -> Message:
    return Message(MSG_EXITED, struct.pack("<i", status))


def data(value_bytes: bytes) -> Message:
    return Message(MSG_DATA, value_bytes)


def ok() -> Message:
    return Message(MSG_OK)


def error(code: int) -> Message:
    return Message(MSG_ERROR, struct.pack("<I", code))


# -- payload readers ---------------------------------------------------------

def parse_fetch(msg: Message) -> Tuple[str, int, int]:
    space, address, size = struct.unpack("<BII", msg.payload)
    return chr(space), address, size


def parse_store(msg: Message) -> Tuple[str, int, bytes]:
    space, address = struct.unpack("<BI", msg.payload[:5])
    return chr(space), address, msg.payload[5:]


def parse_signal(msg: Message) -> Tuple[int, int, int]:
    return struct.unpack("<III", msg.payload)


def parse_exited(msg: Message) -> int:
    return struct.unpack("<i", msg.payload)[0]


def parse_error(msg: Message) -> int:
    return struct.unpack("<I", msg.payload)[0]


# -- the breakpoint extension (paper Sec. 7.1) --------------------------------

def plant(address: int, trap_bytes: bytes) -> Message:
    """A store used only for planting breakpoints: the nub records the
    overwritten instruction so a later debugger can recover it."""
    if len(trap_bytes) not in VALUE_SIZES:
        raise ProtocolError("bad trap size %d" % len(trap_bytes))
    return Message(MSG_PLANT, struct.pack("<I", address) + trap_bytes)


def unplant(address: int) -> Message:
    return Message(MSG_UNPLANT, struct.pack("<I", address))


def breaks() -> Message:
    """Ask the nub for the breakpoints currently planted."""
    return Message(MSG_BREAKS)


def breaklist(entries) -> Message:
    """entries: iterable of (address, original little-endian bytes)."""
    payload = bytearray()
    for address, original in entries:
        payload += struct.pack("<IB", address, len(original)) + original
    return Message(MSG_BREAKLIST, bytes(payload))


def parse_plant(msg: Message):
    address = struct.unpack("<I", msg.payload[:4])[0]
    return address, msg.payload[4:]


def parse_unplant(msg: Message) -> int:
    return struct.unpack("<I", msg.payload)[0]


def parse_breaklist(msg: Message):
    entries = []
    data_bytes = msg.payload
    offset = 0
    while offset < len(data_bytes):
        address, size = struct.unpack("<IB", data_bytes[offset : offset + 5])
        offset += 5
        entries.append((address, data_bytes[offset : offset + size]))
        offset += size
    return entries
