"""The little-endian nub wire protocol (paper Sec. 4.2).

The protocol between ldb and the nub is little-endian regardless of host
and target byte order; the paper notes it "has been used on all
combinations of host and target byte orders and has been validated".

Message frame: one type byte, a 4-byte little-endian payload length, and
the payload.  The important property inherited from the paper: the
protocol does **not** mention breakpoints or single-stepping — ldb
implements breakpoints entirely with fetches and stores (Sec. 6).

Messages from the debugger::

    FETCH  space(1) addr(4) size(4)      -> DATA value bytes (little-endian)
    STORE  space(1) addr(4) bytes        -> OK / ERROR
    BLOCKFETCH space(1) addr(4) len(4)   -> DATA raw memory bytes / ERROR
    BLOCKSTORE space(1) addr(4) bytes    -> OK / ERROR
    CONTINUE                             (restore context, resume)
    DETACH                               (break connection, stay stopped)
    KILL                                 (terminate the target)
    HELLO  version(1) features(4)        -> HELLO (hardened-framing handshake)

Messages from the nub::

    SIGNAL signo(4) code(4) context(4)   (target stopped)
    EXITED status(4)
    DATA   bytes
    OK
    ERROR  code(4)

The nub answers FETCH/STORE only for the code ('c') and data ('d')
spaces; register values live in the context, which is in the data space.
Values travel in little-endian byte order — the nub does the target-
byte-order access (Sec. 4.1).

Block transfers (the MSR-TR-99-4 lesson: a compact block-oriented
protocol is what makes the nub fast) move a *span* of raw memory in one
round-trip.  Unlike FETCH, whose DATA reply is a little-endian **value**,
a BLOCKFETCH DATA reply is the **memory image**: bytes in ascending
address order, exactly as the target stores them.  Interpreting values
out of a block — byte-order reversal, the rmips saved-float word swap —
is the debugger's job, which is what lets the cached path reproduce the
per-value path byte for byte.  BLOCKSTORE writes raw memory-order bytes
verbatim.  Both are negotiated with ``FEATURE_BLOCK`` in the HELLO
handshake; a nub without the feature answers ``ERR_UNSUPPORTED`` and
the debugger falls back to per-value messages.

Time travel (``FEATURE_TIMETRAVEL``): four messages give a debugger
checkpoint/replay control over the deterministic simulated targets.
Checkpoint images stay nub-side — only small ids and instruction counts
cross the wire::

    CHECKPOINT                           -> CKPT id(4) icount(8)
    RESTORE  id(4)                       -> CKPT id(4) icount(8) / ERROR
    DROPCKPT id(4)                       -> OK / ERROR
    ICOUNT                               -> CKPT NO_CKPT icount(8)
    RUNTO    icount(8)                   (resume; stop when the retired-
                                          instruction count reaches the
                                          target: SIGNAL with
                                          code=CODE_ICOUNT)

Post-mortem (``FEATURE_CORE``): one request message asks the nub to
serialize the stopped target — registers, memory, icount, and the fault
record — into a versioned core image (see ``repro.machines.core``)::

    DUMPCORE                             -> DATA core bytes / ERROR

A nub built without the feature answers ``ERR_UNSUPPORTED`` and the
debugger reports core dumps unavailable.

``RUNTO`` is a control message like CONTINUE: acknowledged with OK
under ``FEATURE_ACK``, deduplicated by sequence id, and followed by the
usual unsolicited SIGNAL/EXITED when the target stops.  A nub built
without the feature answers the request messages with
``ERR_UNSUPPORTED`` and the debugger reports time travel unavailable;
forward debugging is unaffected.

Hardened framing (the fault-tolerance layer): a debugger may open a
session with HELLO, offering feature bits.  The nub answers with the
bits it accepts, and *subsequent* frames on the connection carry the
negotiated extras:

* ``FEATURE_CRC`` — every frame is followed by a CRC32 trailer over the
  header and payload; a mismatch raises :class:`CrcError` (the frame is
  consumed, the stream stays framed);
* ``FEATURE_SEQ`` — the header grows a 4-byte sequence id; replies echo
  the request's id so a retrying debugger can discard stale replies
  (duplicated or late frames);
* ``FEATURE_ACK`` — CONTINUE, DETACH and KILL are acknowledged with OK
  before taking effect, making the control messages retryable.

Every payload reader validates its length and raises
:class:`ProtocolError` naming the message — wire input can never surface
a raw ``struct.error``.  ``decode`` rejects frames whose declared length
exceeds :data:`MAX_PAYLOAD` with :class:`FrameError` (the connection
cannot be resynchronized past a hostile length field).
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple

MSG_FETCH = 1
MSG_STORE = 2
MSG_CONTINUE = 3
MSG_DETACH = 4
MSG_KILL = 5
# -- the Sec. 7.1 extension: breakpoint-aware stores, so a new debugger
# -- can learn what a crashed one planted
MSG_PLANT = 6
MSG_UNPLANT = 7
MSG_BREAKS = 8
# -- the fault-tolerance handshake: version + feature negotiation
MSG_HELLO = 9
# -- block transfers: a span of raw memory bytes per message
MSG_BLOCKFETCH = 10
MSG_BLOCKSTORE = 11
# -- time travel (FEATURE_TIMETRAVEL): checkpoint ids are allocated and
# -- held nub-side, so memory images never cross the wire
MSG_CHECKPOINT = 12
MSG_RESTORE = 13
MSG_ICOUNT = 14
MSG_RUNTO = 15
MSG_SIGNAL = 16
MSG_EXITED = 17
MSG_DATA = 18
MSG_OK = 19
MSG_ERROR = 20
MSG_BREAKLIST = 21
MSG_CKPT = 22
MSG_DROPCKPT = 23
# -- post-mortem (FEATURE_CORE): ask the nub to serialize the stopped
# -- target into a core image; the DATA reply carries the core bytes
MSG_DUMPCORE = 24
# -- recording (FEATURE_TIMETRAVEL): ask the nub to serialize the
# -- complete resumable machine state (registers, delay slots, memory,
# -- planted table) of the stopped target; the DATA reply carries a
# -- MachineState container (repro.machines.machstate)
MSG_SPILL = 25

_NAMES = {
    MSG_FETCH: "FETCH", MSG_STORE: "STORE", MSG_CONTINUE: "CONTINUE",
    MSG_DETACH: "DETACH", MSG_KILL: "KILL", MSG_SIGNAL: "SIGNAL",
    MSG_EXITED: "EXITED", MSG_DATA: "DATA", MSG_OK: "OK", MSG_ERROR: "ERROR",
    MSG_PLANT: "PLANT", MSG_UNPLANT: "UNPLANT", MSG_BREAKS: "BREAKS",
    MSG_BREAKLIST: "BREAKLIST", MSG_HELLO: "HELLO",
    MSG_BLOCKFETCH: "BLOCKFETCH", MSG_BLOCKSTORE: "BLOCKSTORE",
    MSG_CHECKPOINT: "CHECKPOINT", MSG_RESTORE: "RESTORE",
    MSG_ICOUNT: "ICOUNT", MSG_RUNTO: "RUNTO", MSG_CKPT: "CKPT",
    MSG_DROPCKPT: "DROPCKPT", MSG_DUMPCORE: "DUMPCORE",
    MSG_SPILL: "SPILL",
}


def type_name(mtype: int) -> str:
    """The opcode's name, for error messages and traces."""
    return _NAMES.get(mtype, "opcode %d" % mtype)

ERR_BAD_SPACE = 1
ERR_BAD_ADDRESS = 2
ERR_BAD_MESSAGE = 3
ERR_UNSUPPORTED = 4
ERR_BAD_CHECKPOINT = 5

#: value sizes the protocol carries (the abstract-memory sizes)
VALUE_SIZES = (1, 2, 4, 8, 10)

#: handshake version and negotiable feature bits
PROTOCOL_VERSION = 1
FEATURE_CRC = 1 << 0
FEATURE_SEQ = 1 << 1
FEATURE_ACK = 1 << 2
FEATURE_BLOCK = 1 << 3
FEATURE_TIMETRAVEL = 1 << 4
FEATURE_CORE = 1 << 5
ALL_FEATURES = (FEATURE_CRC | FEATURE_SEQ | FEATURE_ACK | FEATURE_BLOCK
                | FEATURE_TIMETRAVEL | FEATURE_CORE)

#: the largest span one BLOCKFETCH/BLOCKSTORE may move (well under
#: MAX_PAYLOAD, so block frames can never trip the framing cap)
MAX_BLOCK = 1024

#: sanity cap on a frame's declared payload length; anything larger is a
#: corrupt or hostile length field, and the stream cannot be reframed
MAX_PAYLOAD = 1 << 20

#: the sequence id carried by unsolicited frames (SIGNAL, EXITED) when
#: sequence numbering is active
NO_SEQ = 0xFFFFFFFF

#: the checkpoint id carried by a CKPT reply that answers ICOUNT (no
#: checkpoint was involved, only the retired-instruction count)
NO_CKPT = 0xFFFFFFFF


class ProtocolError(Exception):
    """Malformed wire input (bad payload length, bad field value)."""


class FrameError(ProtocolError):
    """Framing is destroyed (hostile length field); the connection
    cannot be resynchronized and must be dropped."""


class CrcError(ProtocolError):
    """A frame failed its CRC32 check.  The frame was consumed — the
    stream is still framed and ``rest`` holds the bytes after it."""

    def __init__(self, message: str, rest: bytes = b""):
        super().__init__(message)
        self.rest = rest


class Message:
    __slots__ = ("mtype", "payload", "seq")

    def __init__(self, mtype: int, payload: bytes = b"",
                 seq: Optional[int] = None):
        self.mtype = mtype
        self.payload = payload
        #: sequence id (FEATURE_SEQ); None outside sequenced framing
        self.seq = seq

    def __eq__(self, other) -> bool:
        return (isinstance(other, Message) and other.mtype == self.mtype
                and other.payload == self.payload)

    def __repr__(self) -> str:
        return "<msg %s %r>" % (_NAMES.get(self.mtype, self.mtype), self.payload)


def encode(msg: Message, crc: bool = False, seq_mode: bool = False) -> bytes:
    if seq_mode:
        seq = NO_SEQ if msg.seq is None else msg.seq
        frame = struct.pack("<BII", msg.mtype, len(msg.payload), seq)
    else:
        frame = struct.pack("<BI", msg.mtype, len(msg.payload))
    frame += msg.payload
    if crc:
        frame += struct.pack("<I", zlib.crc32(frame) & 0xFFFFFFFF)
    return frame


def decode(data: bytes, crc: bool = False,
           seq_mode: bool = False) -> Tuple[Optional[Message], bytes]:
    """Decode one message from ``data``; returns (message, rest).

    Returns (None, data) when the buffer holds an incomplete frame.
    Raises :class:`FrameError` on an insane declared length and
    :class:`CrcError` (carrying the remaining bytes) on a bad trailer.
    """
    header = 9 if seq_mode else 5
    if len(data) < header:
        return None, data
    if seq_mode:
        mtype, length, seq = struct.unpack("<BII", data[:9])
    else:
        mtype, length = struct.unpack("<BI", data[:5])
        seq = None
    if length > MAX_PAYLOAD:
        raise FrameError("declared payload length %d exceeds the %d-byte cap"
                         % (length, MAX_PAYLOAD))
    total = header + length + (4 if crc else 0)
    if len(data) < total:
        return None, data
    if crc:
        declared = struct.unpack("<I", data[header + length:total])[0]
        actual = zlib.crc32(data[:header + length]) & 0xFFFFFFFF
        if declared != actual:
            raise CrcError("CRC mismatch on %s frame"
                           % _NAMES.get(mtype, mtype), rest=data[total:])
    return Message(mtype, data[header:header + length], seq), data[total:]


def _payload(msg: Message, size: int, name: str, exact: bool = True) -> bytes:
    """The message's payload, validated to ``size`` bytes (or at least
    ``size`` when not exact); short payloads raise ProtocolError."""
    have = len(msg.payload)
    if (have != size) if exact else (have < size):
        raise ProtocolError(
            "truncated %s payload: %d bytes, need %s%d"
            % (name, have, "" if exact else ">= ", size))
    return msg.payload


# -- constructors -----------------------------------------------------------

def fetch(space: str, address: int, size: int) -> Message:
    if size not in VALUE_SIZES:
        raise ProtocolError("bad fetch size %d" % size)
    return Message(MSG_FETCH, struct.pack("<BII", ord(space), address, size))


def store(space: str, address: int, data: bytes) -> Message:
    if len(data) not in VALUE_SIZES:
        raise ProtocolError("bad store size %d" % len(data))
    return Message(MSG_STORE, struct.pack("<BI", ord(space), address) + data)


def blockfetch(space: str, address: int, length: int) -> Message:
    """Ask for ``length`` raw bytes of target memory at ``address``.

    The DATA reply carries the memory image in ascending address order
    (no byte-order normalization — that is the debugger's job)."""
    if not 1 <= length <= MAX_BLOCK:
        raise ProtocolError("bad blockfetch length %d" % length)
    return Message(MSG_BLOCKFETCH,
                   struct.pack("<BII", ord(space), address, length))


def blockstore(space: str, address: int, data_bytes: bytes) -> Message:
    """Write raw memory-order bytes verbatim at ``address``."""
    if not 1 <= len(data_bytes) <= MAX_BLOCK:
        raise ProtocolError("bad blockstore length %d" % len(data_bytes))
    return Message(MSG_BLOCKSTORE,
                   struct.pack("<BI", ord(space), address) + data_bytes)


def cont() -> Message:
    return Message(MSG_CONTINUE)


def detach() -> Message:
    return Message(MSG_DETACH)


def kill() -> Message:
    return Message(MSG_KILL)


def hello(version: int = PROTOCOL_VERSION,
          features: int = ALL_FEATURES) -> Message:
    """Open (or answer) the hardened-framing handshake."""
    return Message(MSG_HELLO, struct.pack("<BI", version, features))


# -- time travel (FEATURE_TIMETRAVEL) ----------------------------------------

def checkpoint() -> Message:
    """Ask the nub to snapshot the stopped target; answered with CKPT."""
    return Message(MSG_CHECKPOINT)


def restore(checkpoint_id: int) -> Message:
    """Rewind the stopped target to a previously taken checkpoint."""
    return Message(MSG_RESTORE, struct.pack("<I", checkpoint_id))


def drop_checkpoint(checkpoint_id: int) -> Message:
    """Release a checkpoint the debugger no longer needs."""
    return Message(MSG_DROPCKPT, struct.pack("<I", checkpoint_id))


def icount() -> Message:
    """Ask for the target's retired-instruction count."""
    return Message(MSG_ICOUNT)


def runto(target_icount: int) -> Message:
    """Resume, stopping when the retired-instruction count reaches
    ``target_icount`` (or earlier, on any trap/fault/exit)."""
    if target_icount < 0:
        raise ProtocolError("bad RUNTO icount %d" % target_icount)
    return Message(MSG_RUNTO, struct.pack("<Q", target_icount))


def ckpt(checkpoint_id: int, current_icount: int) -> Message:
    """The nub's answer to CHECKPOINT/RESTORE/ICOUNT."""
    return Message(MSG_CKPT, struct.pack("<IQ", checkpoint_id, current_icount))


def dumpcore() -> Message:
    """Ask the nub to serialize the stopped target into a core image
    (FEATURE_CORE); the DATA reply carries the serialized bytes."""
    return Message(MSG_DUMPCORE)


def spill() -> Message:
    """Ask the nub for the complete resumable machine state of the
    stopped target (FEATURE_TIMETRAVEL); the DATA reply carries a
    serialized MachineState container."""
    return Message(MSG_SPILL)


def signal(signo: int, code: int, context_addr: int) -> Message:
    return Message(MSG_SIGNAL, struct.pack("<III", signo, code, context_addr))


def exited(status: int) -> Message:
    return Message(MSG_EXITED, struct.pack("<i", status))


def data(value_bytes: bytes) -> Message:
    return Message(MSG_DATA, value_bytes)


def ok() -> Message:
    return Message(MSG_OK)


def error(code: int) -> Message:
    return Message(MSG_ERROR, struct.pack("<I", code))


# -- payload readers ---------------------------------------------------------

def parse_fetch(msg: Message) -> Tuple[str, int, int]:
    space, address, size = struct.unpack("<BII", _payload(msg, 9, "FETCH"))
    return chr(space), address, size


def parse_store(msg: Message) -> Tuple[str, int, bytes]:
    raw = _payload(msg, 6, "STORE", exact=False)
    space, address = struct.unpack("<BI", raw[:5])
    if len(raw) - 5 not in VALUE_SIZES:
        raise ProtocolError("bad STORE data size %d" % (len(raw) - 5))
    return chr(space), address, raw[5:]


def parse_blockfetch(msg: Message) -> Tuple[str, int, int]:
    space, address, length = struct.unpack(
        "<BII", _payload(msg, 9, "BLOCKFETCH"))
    if not 1 <= length <= MAX_BLOCK:
        raise ProtocolError("bad BLOCKFETCH length %d" % length)
    return chr(space), address, length


def parse_blockstore(msg: Message) -> Tuple[str, int, bytes]:
    raw = _payload(msg, 6, "BLOCKSTORE", exact=False)
    space, address = struct.unpack("<BI", raw[:5])
    if len(raw) - 5 > MAX_BLOCK:
        raise ProtocolError("bad BLOCKSTORE length %d" % (len(raw) - 5))
    return chr(space), address, raw[5:]


def parse_signal(msg: Message) -> Tuple[int, int, int]:
    return struct.unpack("<III", _payload(msg, 12, "SIGNAL"))


def parse_exited(msg: Message) -> int:
    return struct.unpack("<i", _payload(msg, 4, "EXITED"))[0]


def parse_error(msg: Message) -> int:
    return struct.unpack("<I", _payload(msg, 4, "ERROR"))[0]


def parse_hello(msg: Message) -> Tuple[int, int]:
    version, features = struct.unpack("<BI", _payload(msg, 5, "HELLO"))
    return version, features


def parse_restore(msg: Message) -> int:
    return struct.unpack("<I", _payload(msg, 4, "RESTORE"))[0]


def parse_drop_checkpoint(msg: Message) -> int:
    return struct.unpack("<I", _payload(msg, 4, "DROPCKPT"))[0]


def parse_runto(msg: Message) -> int:
    return struct.unpack("<Q", _payload(msg, 8, "RUNTO"))[0]


def parse_ckpt(msg: Message) -> Tuple[int, int]:
    """(checkpoint id, retired-instruction count)."""
    return struct.unpack("<IQ", _payload(msg, 12, "CKPT"))


# -- the breakpoint extension (paper Sec. 7.1) --------------------------------

def plant(address: int, trap_bytes: bytes) -> Message:
    """A store used only for planting breakpoints: the nub records the
    overwritten instruction so a later debugger can recover it."""
    if len(trap_bytes) not in VALUE_SIZES:
        raise ProtocolError("bad trap size %d" % len(trap_bytes))
    return Message(MSG_PLANT, struct.pack("<I", address) + trap_bytes)


def unplant(address: int) -> Message:
    return Message(MSG_UNPLANT, struct.pack("<I", address))


def breaks() -> Message:
    """Ask the nub for the breakpoints currently planted."""
    return Message(MSG_BREAKS)


def breaklist(entries) -> Message:
    """entries: iterable of (address, original little-endian bytes)."""
    payload = bytearray()
    for address, original in entries:
        payload += struct.pack("<IB", address, len(original)) + original
    return Message(MSG_BREAKLIST, bytes(payload))


def parse_plant(msg: Message):
    raw = _payload(msg, 5, "PLANT", exact=False)
    address = struct.unpack("<I", raw[:4])[0]
    if len(raw) - 4 not in VALUE_SIZES:
        raise ProtocolError("bad PLANT trap size %d" % (len(raw) - 4))
    return address, raw[4:]


def parse_unplant(msg: Message) -> int:
    return struct.unpack("<I", _payload(msg, 4, "UNPLANT"))[0]


def parse_breaklist(msg: Message):
    entries = []
    data_bytes = msg.payload
    offset = 0
    while offset < len(data_bytes):
        if offset + 5 > len(data_bytes):
            raise ProtocolError("truncated BREAKLIST entry header at "
                                "offset %d" % offset)
        address, size = struct.unpack_from("<IB", data_bytes, offset)
        offset += 5
        if offset + size > len(data_bytes):
            raise ProtocolError("truncated BREAKLIST entry for 0x%x: "
                                "%d of %d instruction bytes"
                                % (address, len(data_bytes) - offset, size))
        entries.append((address, data_bytes[offset: offset + size]))
        offset += size
    return entries
