"""Deterministic fault injection for nub channels.

Robustness claims are only as good as the failures they were tested
against, so this module makes failure a first-class, *reproducible*
input: a :class:`FaultInjectingChannel` wraps any :class:`Channel` and
mangles outgoing frames according to a seeded :class:`FaultSchedule`.
The same seed always yields the same fault sequence, so a recovery bug
found by the fault matrix replays exactly.

Fault kinds (per outgoing frame):

* ``drop``      — the frame is silently discarded (a lost datagram /
  half-dead connection); the peer never sees the request;
* ``corrupt``   — one payload byte is flipped; with CRC framing the
  receiver detects it and answers ``ERROR ERR_BAD_MESSAGE``;
* ``truncate``  — only a prefix of the frame is written and the socket
  is closed: a connection cut mid-frame (the "debugger crash" of paper
  Sec. 7.1 at its least convenient moment);
* ``duplicate`` — the frame is sent twice (a retransmit gone wrong);
  sequence-numbered framing lets the receiver discard the echo;
* ``delay``     — the frame is delivered after ``latency`` seconds of
  artificial latency.

One failure is deliberately *not* in :data:`FAULT_KINDS` (it is not a
frame fault the retry layer can absorb): **process death**.  A schedule
built with ``kill_after=N`` (or a scripted ``"kill"`` action) tears the
connection down on the N-th frame and raises :class:`NubKilled` in the
nub, simulating the target process dying mid-session — the case where
the debugger must stop retrying and degrade to post-mortem debugging.

Corruption deliberately avoids the length field: a mangled length is a
different failure (unframeable stream) exercised separately by the
serve-loop fuzz tests.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from .channel import Channel, ChannelClosed
from .protocol import Message, encode

#: every *recoverable* fault kind a schedule can inject; process death
#: ("kill") is separate — it is terminal, not absorbable by retries
FAULT_KINDS = ("drop", "corrupt", "truncate", "duplicate", "delay")


class NubKilled(Exception):
    """Injected process death: the nub (and with it the target) died
    mid-session.  Raised out of the nub's send path so the nub's main
    loop can fall over the way a killed process would — after leaving a
    core behind, if it was configured to."""


class FaultSchedule:
    """A deterministic, seeded schedule of frame faults.

    Two modes:

    * probabilistic — per-kind rates (``drop=0.2, corrupt=0.1, ...``)
      drawn from ``random.Random(seed)``; ``limit`` caps the total
      number of injected faults so retries eventually meet a clean
      channel and the workload converges;
    * scripted — an explicit ``script`` of actions (``"ok"`` or a fault
      kind) consumed one per frame, then clean forever.
    """

    def __init__(self, seed: int = 0, drop: float = 0.0, corrupt: float = 0.0,
                 truncate: float = 0.0, duplicate: float = 0.0,
                 delay: float = 0.0, latency: float = 0.01,
                 limit: Optional[int] = None,
                 script: Optional[List[str]] = None,
                 kill_after: Optional[int] = None,
                 after: int = 0):
        self.rates = {"drop": drop, "corrupt": corrupt, "truncate": truncate,
                      "duplicate": duplicate, "delay": delay}
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError("bad %s rate %r" % (kind, rate))
        self.latency = latency
        self.limit = limit
        self.script = list(script) if script else []
        for action in self.script:
            if action != "ok" and action != "kill" and action not in FAULT_KINDS:
                raise ValueError("unknown scripted action %r" % action)
        if kill_after is not None and kill_after < 0:
            raise ValueError("bad kill_after %r" % kill_after)
        #: kill the process on this (0-based) outgoing frame
        self.kill_after = kill_after
        if after < 0:
            raise ValueError("bad after %r" % after)
        #: frames before this index pass clean — lets a chaos schedule
        #: spare the spawn handshake and strike mid-session
        self.after = after
        self._frames = 0
        self.seed = seed
        self._rng = random.Random(seed)
        self.injected = 0
        self.counts: Dict[str, int] = {}

    #: every key a serialized spec may carry (the JSON gateway accepts
    #: exactly these in a spawn request's ``fault`` object)
    SPEC_KEYS = ("seed", "drop", "corrupt", "truncate", "duplicate", "delay",
                 "latency", "limit", "script", "kill_after", "after")

    @classmethod
    def from_spec(cls, spec: Dict) -> "FaultSchedule":
        """Build a schedule from a plain JSON-able dict — the form a
        session server receives inside a spawn request.  Unknown keys
        are rejected loudly: a typo'd chaos spec that silently injects
        nothing would make a whole chaos run vacuous."""
        unknown = sorted(set(spec) - set(cls.SPEC_KEYS))
        if unknown:
            raise ValueError("unknown fault spec keys: %s"
                             % ", ".join(unknown))
        return cls(**spec)

    def spec(self) -> Dict:
        """The JSON-able description of this schedule's *configuration*
        (not its consumed state): round-trips through :meth:`from_spec`."""
        out: Dict = {"seed": self.seed}
        for kind, rate in self.rates.items():
            if rate:
                out[kind] = rate
        if self.latency != 0.01:
            out["latency"] = self.latency
        if self.limit is not None:
            out["limit"] = self.limit
        if self.script:
            out["script"] = list(self.script)
        if self.kill_after is not None:
            out["kill_after"] = self.kill_after
        if self.after:
            out["after"] = self.after
        return out

    def next_action(self) -> str:
        """The action for the next outgoing frame."""
        frame = self._frames
        self._frames += 1
        if frame < self.after:
            return "ok"
        if self.kill_after is not None and frame >= self.kill_after:
            self.injected += 1
            self.counts["kill"] = self.counts.get("kill", 0) + 1
            return "kill"
        if self.script:
            action = self.script.pop(0)
        elif self.limit is not None and self.injected >= self.limit:
            action = "ok"
        else:
            action = "ok"
            roll = self._rng.random()
            total = 0.0
            for kind in FAULT_KINDS:
                total += self.rates[kind]
                if roll < total:
                    action = kind
                    break
        if action != "ok":
            self.injected += 1
            self.counts[action] = self.counts.get(action, 0) + 1
        return action


class FaultInjectingChannel:
    """A :class:`Channel` look-alike that injects scheduled faults into
    the frames it sends.  Receiving is passed through untouched — wrap
    whichever end's sends should suffer."""

    def __init__(self, channel: Channel, schedule: FaultSchedule):
        self.inner = channel
        self.schedule = schedule

    # the negotiated framing state lives on the wrapped channel, so the
    # wrapper stays transparent to the HELLO handshake
    @property
    def sock(self):
        return self.inner.sock

    @property
    def crc(self) -> bool:
        return self.inner.crc

    @crc.setter
    def crc(self, value: bool) -> None:
        self.inner.crc = value

    @property
    def seq_mode(self) -> bool:
        return self.inner.seq_mode

    @seq_mode.setter
    def seq_mode(self, value: bool) -> None:
        self.inner.seq_mode = value

    def send(self, msg: Message) -> None:
        raw = encode(msg, crc=self.inner.crc, seq_mode=self.inner.seq_mode)
        action = self.schedule.next_action()
        if action == "kill":
            # process death: the socket dies with the process, and the
            # nub's main loop unwinds on NubKilled
            try:
                self.inner.sock.close()
            except OSError:
                pass
            raise NubKilled("injected nub process death")
        if action == "drop":
            return
        if action == "delay":
            time.sleep(self.schedule.latency)
        try:
            if action == "corrupt":
                self.inner.sock.sendall(_flip_byte(raw, self.inner.seq_mode,
                                                   self.schedule))
            elif action == "truncate":
                cut = max(1, len(raw) // 2)
                self.inner.sock.sendall(raw[:cut])
                self.inner.sock.close()  # the connection dies mid-frame
            elif action == "duplicate":
                self.inner.sock.sendall(raw)
                self.inner.sock.sendall(raw)
            else:
                self.inner.sock.sendall(raw)
        except OSError as err:
            raise ChannelClosed(str(err))

    def recv(self, timeout: Optional[float] = None) -> Message:
        return self.inner.recv(timeout)

    def drain(self) -> int:
        return self.inner.drain()

    def close(self) -> None:
        self.inner.close()


def _flip_byte(raw: bytes, seq_mode: bool, schedule: FaultSchedule) -> bytes:
    """Flip one bit of a frame, sparing the length field so the stream
    stays framed (length corruption is the serve-loop fuzz tests' job)."""
    header = 9 if seq_mode else 5
    if len(raw) > header:
        index = header + schedule._rng.randrange(len(raw) - header)
    else:
        index = 0  # no payload and no trailer: the type byte it is
    bit = 1 << schedule._rng.randrange(8)
    return raw[:index] + bytes([raw[index] ^ bit]) + raw[index + 1:]
