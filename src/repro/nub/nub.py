"""The debug nub (paper Sec. 4.2).

The nub is loaded with the target program and runs in user space: its
data — the context save area — lives in the *target's own memory* at a
fixed low address, which is why a faulty program can destroy it (the
vulnerability the paper discusses).  When the target faults or hits a
breakpoint, the nub saves a context, notifies the debugger (signal
number, code, context address), and services fetch and store requests
until told to continue, to terminate, or to break the connection.

When a connection breaks — even by a debugger crash — the nub preserves
the state of the target and waits for a new connection from another
debugger instance.

Machine-dependent nub code is isolated in the ``*NubMD`` classes:

* rmips (big-endian): doubleword fetches/stores of saved floating-point
  registers must swap words, because the kernel-saved context stores
  them least-significant-word first (the paper's footnote 3);
* rm68k: 80-bit float fetch/store needs its own code (the paper's
  assembly-language case);
* rvax/rm68k: a custom context representation (``struct sigcontext``
  will not do, Sec. 4.3);
* rsparc: nothing — the operating system provides the registers.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..machines import ExitEvent, FaultEvent, Process, SIGTRAP
from ..machines.core import core_from_process
from ..machines.loader import NUB_AREA
from ..machines.machstate import MachineState
from . import protocol
from .channel import Channel, ChannelClosed, Listener
from .faults import FaultInjectingChannel, FaultSchedule, NubKilled


class NubMD:
    """Machine-independent context save/restore, parameterized by the
    machine-dependent context-field description (paper Sec. 4.3)."""

    def __init__(self, arch):
        self.arch = arch
        self.fields = arch.context_fields()
        self.context_size = arch.context_size()

    def save_context(self, cpu, mem, base: int, pc: int) -> None:
        for field in self.fields:
            address = base + field.offset
            if field.kind == "pc":
                mem.write_u32(address, pc)
            elif field.kind == "reg":
                index = int(field.name[1:])
                mem.write_u32(address, cpu.regs[index])
            elif field.kind == "freg":
                index = int(field.name[1:])
                self.save_freg(mem, address, cpu.fregs[index], field.size)
            else:  # flags
                flags = (int(cpu.cc_lt) | (int(cpu.cc_eq) << 1)
                         | (int(cpu.cc_ltu) << 2))
                mem.write_u32(address, flags)

    def restore_context(self, cpu, mem, base: int) -> int:
        pc = 0
        for field in self.fields:
            address = base + field.offset
            if field.kind == "pc":
                pc = mem.read_u32(address)
            elif field.kind == "reg":
                index = int(field.name[1:])
                cpu.regs[index] = mem.read_u32(address)
            elif field.kind == "freg":
                index = int(field.name[1:])
                cpu.fregs[index] = self.restore_freg(mem, address, field.size)
            else:
                flags = mem.read_u32(address)
                cpu.cc_lt = bool(flags & 1)
                cpu.cc_eq = bool(flags & 2)
                cpu.cc_ltu = bool(flags & 4)
        return pc

    def save_freg(self, mem, address: int, value: float, size: int) -> None:
        mem.write_f64(address, value)

    def restore_freg(self, mem, address: int, size: int) -> float:
        return mem.read_f64(address)

    def freg_region(self, base: int):
        """(start, end) of the saved floating registers in the context."""
        fregs = [f for f in self.fields if f.kind == "freg"]
        if not fregs:
            return (0, 0)
        return (base + fregs[0].offset, base + fregs[-1].offset + fregs[-1].size)

    def fix_fetched(self, address: int, raw_le: bytes, context_base: int) -> bytes:
        """Hook for targets whose saved floats need fixing on the wire."""
        return raw_le

    def fix_stored(self, address: int, raw_le: bytes, context_base: int) -> bytes:
        return raw_le


class MipsNubMD(NubMD):
    """Big-endian rmips: the kernel saves doubleword floating-point
    registers least-significant word first (footnote 3), so nub code for
    doubleword fetches and stores of saved f-registers swaps the words."""

    def save_freg(self, mem, address: int, value: float, size: int) -> None:
        import struct
        raw = struct.pack(">d", value)
        mem.write_bytes(address, raw[4:] + raw[:4])  # LSW first: the quirk

    def restore_freg(self, mem, address: int, size: int) -> float:
        import struct
        raw = mem.read_bytes(address, 8)
        return struct.unpack(">d", raw[4:] + raw[:4])[0]

    def _in_freg_area(self, address: int, size: int, context_base: int) -> bool:
        start, end = self.freg_region(context_base)
        return size == 8 and start <= address < end

    def fix_fetched(self, address: int, raw_le: bytes, context_base: int) -> bytes:
        if self._in_freg_area(address, len(raw_le), context_base):
            return raw_le[4:] + raw_le[:4]
        return raw_le

    def fix_stored(self, address: int, raw_le: bytes, context_base: int) -> bytes:
        if self._in_freg_area(address, len(raw_le), context_base):
            return raw_le[4:] + raw_le[:4]
        return raw_le


class M68kNubMD(NubMD):
    """rm68k: 80-bit extended floats need their own fetch/store code (the
    paper's assembly-language case), and the context is a custom layout
    rather than a sigcontext."""

    def save_freg(self, mem, address: int, value: float, size: int) -> None:
        mem.write_f80(address, value)

    def restore_freg(self, mem, address: int, size: int) -> float:
        return mem.read_f80(address)


class VaxNubMD(NubMD):
    """rvax: a custom context representation (Sec. 4.3)."""


class SparcNubMD(NubMD):
    """rsparc: the OS provides the registers; no machine-dependent dirt."""


def nub_md_for(arch) -> NubMD:
    table = {"rmips": MipsNubMD, "rmipsel": NubMD, "rsparc": SparcNubMD,
             "rm68k": M68kNubMD, "rvax": VaxNubMD}
    return table.get(arch.name, NubMD)(arch)


class Nub:
    """The nub controlling one target process."""

    #: where the nub's data structures live in target memory (user space,
    #: and therefore vulnerable to the target program)
    CONTEXT_ADDR = NUB_AREA

    def __init__(self, process: Process, channel: Optional[Channel] = None,
                 listener: Optional[Listener] = None,
                 stop_at_entry: bool = True,
                 accept_timeout: Optional[float] = 30.0,
                 breakpoint_extension: bool = True,
                 block_extension: bool = True,
                 timetravel_extension: bool = True,
                 core_extension: bool = True,
                 core_path: Optional[str] = None,
                 loader_ps: Optional[str] = None,
                 fault_schedule: Optional[FaultSchedule] = None,
                 obs=None):
        if obs is None:
            # imported here: repro.obs decodes frames via repro.nub, so
            # a module-level import would be circular
            from ..obs import Observability
            obs = Observability()
        #: tracing + metrics for the nub side (``nub.*`` names).  Kept
        #: separate from the debugger's hub by default: the nub runs on
        #: its own thread, and interleaving its records into the
        #: debugger's trace would make transcripts racy.
        self.obs = obs
        self.process = process
        self.arch = process.arch
        #: fault injection on the *nub's* sends (tests, chaos runs): the
        #: schedule wraps the given channel and every accepted one, so a
        #: scripted "kill" dies inside the nub whatever the topology
        self.fault_schedule = fault_schedule
        if fault_schedule is not None and channel is not None:
            channel = FaultInjectingChannel(channel, fault_schedule)
        self.channel = channel
        self.listener = listener
        self.stop_at_entry = stop_at_entry
        self.accept_timeout = accept_timeout
        self.md = nub_md_for(self.arch)
        self.context_addr = self.CONTEXT_ADDR
        self.entry_pause = process.exe.symbols.get("__nub_pause")
        self.exit_status: Optional[int] = None
        self.killed = False
        #: the Sec. 7.1 extension: remember instructions overwritten by
        #: PLANT stores so a new debugger can recover them after a crash
        self.breakpoint_extension = breakpoint_extension
        #: block transfers (BLOCKFETCH/BLOCKSTORE): a legacy nub built
        #: without them keeps working — the debugger falls back per-word
        self.block_extension = block_extension
        #: time travel (CHECKPOINT/RESTORE/ICOUNT/RUNTO): checkpoints
        #: live here, nub-side, so images never cross the wire
        self.timetravel_extension = timetravel_extension
        #: post-mortem (DUMPCORE): serialize the stopped target on demand
        self.core_extension = core_extension
        #: where to auto-write a core on a fatal fault or injected death
        #: (None: no automatic cores)
        self.core_path = core_path
        #: the loader symbol table to embed in cores, so they open
        #: standalone; falls back to the executable's own copy
        self.loader_ps = (loader_ps if loader_ps is not None
                          else getattr(process.exe, "loader_ps", None))
        #: the stop currently being served (the fault record a core records)
        self._last_event: Optional[FaultEvent] = None
        #: last-folded execution-engine counters (see _fold_sim_metrics)
        self._sim_folded: dict = {}
        self.checkpoints: dict = {}  # id -> (ProcessSnapshot, planted copy)
        self._next_checkpoint = 1
        #: seq/id of the last CHECKPOINT served, so a retried request
        #: (lost reply) does not mint a second, leaked snapshot
        self._last_ckpt_seq = None
        self._last_ckpt_id = None
        #: a pending RUNTO target icount (None: plain CONTINUE)
        self._runto: Optional[int] = None
        self.planted: dict = {}  # address -> original little-endian bytes
        #: negotiated per-connection: acknowledge control messages (HELLO)
        self.ack_active = False
        #: sequence id of the request being served (FEATURE_SEQ)
        self._reply_seq = None
        #: seq of the last control acted on: a duplicated CONTINUE can
        #: arrive after the *next* stop (in flight past the drain), and
        #: resuming on it would desynchronize the debugger
        self._last_control_seq = None

    # -- main loop -----------------------------------------------------------

    def run(self) -> Optional[int]:
        """Run the target to completion, handling signals."""
        try:
            return self._run_loop()
        except NubKilled:
            # injected process death: the target dies with the nub, so
            # nothing survives but the core (when one is configured)
            self.obs.tracer.warn("nub.process_died")
            self.obs.metrics.inc("nub.process_deaths")
            if self._last_event is not None:
                self._write_auto_core(self._last_event)
            if self.channel is not None:
                try:
                    self.channel.close()
                except Exception:
                    pass
                self.channel = None
            if self.listener is not None:
                self.listener.close()
                self.listener = None
            self.killed = True
            return None

    def _fold_sim_metrics(self) -> None:
        """Fold execution-engine block-cache deltas into ``sim.*``
        metrics.  Done per stop, not per dispatch, so the simulation's
        hot path never touches the metrics lock."""
        engine = self.process.cpu.engine
        stats = engine.stats
        folded = self._sim_folded
        metrics = self.obs.metrics
        for name, value in (("sim.blocks_compiled", stats.compiled),
                            ("sim.block_hits", stats.hits),
                            ("sim.blocks_invalidated", stats.invalidated)):
            delta = value - folded.get(name, 0)
            if delta:
                metrics.inc(name, delta)
                folded[name] = value

    def _run_loop(self) -> Optional[int]:
        while True:
            stop_at = self._runto
            self._runto = None
            event = self.process.run_until_event(stop_at_icount=stop_at)
            self._fold_sim_metrics()
            if isinstance(event, ExitEvent):
                self.exit_status = event.status
                self.obs.tracer.event("nub.exit", status=event.status)
                self._send(protocol.exited(event.status))
                if self.channel is not None:
                    self.channel.close()
                return event.status
            if self._is_entry_pause(event) and not self._should_stop_at_entry():
                self._runto = stop_at  # the pause does not consume RUNTO
                self.process.cpu.pc = event.pc + self.arch.noop_advance
                continue
            outcome = self.handle_signal(event)
            if outcome == "killed":
                self.killed = True
                return None

    def _is_entry_pause(self, event: FaultEvent) -> bool:
        return event.signo == SIGTRAP and event.pc == self.entry_pause

    def _should_stop_at_entry(self) -> bool:
        return self.stop_at_entry and (self.channel is not None
                                       or self.listener is not None)

    def debuggable(self) -> bool:
        return self.channel is not None or self.listener is not None

    # -- signal handling ---------------------------------------------------------

    def handle_signal(self, event: FaultEvent) -> str:
        """Save a context, notify the debugger, service requests."""
        cpu = self.process.cpu
        self.obs.metrics.inc("nub.stops")
        self.obs.tracer.event("nub.stop", signo=event.signo, code=event.code,
                              pc="0x%x" % event.pc)
        self.md.save_context(cpu, self.process.mem, self.context_addr, event.pc)
        self._last_event = event
        if event.signo != SIGTRAP:
            # a fatal fault: leave a core behind before anything else can
            # go wrong (the debugger may never connect, or die with us)
            self._write_auto_core(event)
        while True:
            if self.channel is None:
                if self.listener is None:
                    return "killed"  # fatal signal, nobody debugging
                accepted = self.listener.accept(self.accept_timeout)
                if self.fault_schedule is not None:
                    accepted = FaultInjectingChannel(accepted,
                                                     self.fault_schedule)
                self.channel = accepted
                self.ack_active = False
                self._last_control_seq = None
            try:
                # the conversation is lockstep, so input queued from
                # before this stop is stale (e.g. duplicated frames)
                self.channel.drain()
                self.channel.send(protocol.signal(event.signo, event.code,
                                                  self.context_addr))
                outcome = self.serve()
            except ChannelClosed:
                # debugger crash: preserve state, wait for a new debugger
                self.channel = None
                self.ack_active = False
                continue
            if outcome == "continue":
                pc = self.md.restore_context(cpu, self.process.mem,
                                             self.context_addr)
                cpu.pc = pc
                return "continued"
            if outcome == "killed":
                return "killed"
            # detached, or an unframeable stream was dropped: keep the
            # target stopped and await a new connection
            self.channel = None
            self.ack_active = False

    def serve(self) -> str:
        """Service fetch/store requests until continue/kill/detach.

        Malformed input never tears the target down: payloads that fail
        validation are answered with ``ERROR ERR_BAD_MESSAGE``, and an
        unframeable stream (hostile length field) drops only the
        *connection* — the target stays stopped for the next debugger.
        """
        while True:
            try:
                msg = self.channel.recv()
            except protocol.CrcError:
                self.obs.metrics.inc("nub.bad_frames")
                self._reply_seq = None
                self.channel.send(protocol.error(protocol.ERR_BAD_MESSAGE))
                continue
            except protocol.FrameError:
                self.obs.metrics.inc("nub.framing_lost")
                return "reset"  # recv already dropped the connection
            self.obs.metrics.inc("nub.frames")
            self._trace_frame("nub.recv", msg)
            self._reply_seq = msg.seq
            try:
                outcome = self._dispatch(msg)
            except protocol.ProtocolError:
                self.obs.metrics.inc("nub.bad_frames")
                self._reply(protocol.error(protocol.ERR_BAD_MESSAGE))
                continue
            if outcome is not None:
                return outcome

    def _dispatch(self, msg) -> Optional[str]:
        if msg.mtype == protocol.MSG_FETCH:
            self._do_fetch(msg)
        elif msg.mtype == protocol.MSG_STORE:
            self._do_store(msg)
        elif msg.mtype == protocol.MSG_BLOCKFETCH:
            self._do_blockfetch(msg)
        elif msg.mtype == protocol.MSG_BLOCKSTORE:
            self._do_blockstore(msg)
        elif msg.mtype == protocol.MSG_PLANT:
            self._do_plant(msg)
        elif msg.mtype == protocol.MSG_UNPLANT:
            self._do_unplant(msg)
        elif msg.mtype == protocol.MSG_BREAKS:
            self._require_empty(msg)
            self._do_breaks()
        elif msg.mtype == protocol.MSG_HELLO:
            self._do_hello(msg)
        elif msg.mtype == protocol.MSG_CHECKPOINT:
            self._do_checkpoint(msg)
        elif msg.mtype == protocol.MSG_RESTORE:
            self._do_restore(msg)
        elif msg.mtype == protocol.MSG_DROPCKPT:
            self._do_dropckpt(msg)
        elif msg.mtype == protocol.MSG_ICOUNT:
            self._do_icount(msg)
        elif msg.mtype == protocol.MSG_DUMPCORE:
            self._do_dumpcore(msg)
        elif msg.mtype == protocol.MSG_SPILL:
            self._do_spill(msg)
        elif msg.mtype == protocol.MSG_RUNTO:
            target = protocol.parse_runto(msg)
            if not self._tt_enabled():
                return None
            if self._stale_control(msg):
                return None
            self._ack()
            self._runto = target
            return "continue"
        elif msg.mtype == protocol.MSG_CONTINUE:
            self._require_empty(msg)
            if self._stale_control(msg):
                return None
            self._ack()
            return "continue"
        elif msg.mtype == protocol.MSG_KILL:
            self._require_empty(msg)
            if self._stale_control(msg):
                return None
            self._ack()
            return "killed"
        elif msg.mtype == protocol.MSG_DETACH:
            self._require_empty(msg)
            if self._stale_control(msg):
                return None
            self._ack()
            self.channel.close()
            return "detached"
        else:
            self._reply(protocol.error(protocol.ERR_BAD_MESSAGE))
        return None

    def _require_empty(self, msg) -> None:
        # a control message carrying a payload is corruption, not intent
        if msg.payload:
            raise protocol.ProtocolError("unexpected payload on control")

    def _stale_control(self, msg) -> bool:
        """True for a duplicated control (same sequence id as the last
        one acted on) — a frame duplicated on the wire can outrun the
        drain and arrive after the next stop; act on it once only.  The
        duplicate is re-acknowledged so a still-waiting debugger gets
        its reply, and the echo is discarded as stale otherwise."""
        if msg.seq is None or msg.seq == protocol.NO_SEQ:
            return False
        if msg.seq == self._last_control_seq:
            self._ack()
            return True
        self._last_control_seq = msg.seq
        return False

    def _ack(self) -> None:
        if self.ack_active:
            self._reply(protocol.ok())

    def _reply(self, msg) -> None:
        """Send a reply echoing the request's sequence id, so a
        retrying debugger can match it."""
        msg.seq = self._reply_seq
        self.obs.metrics.inc("nub.replies")
        self._trace_frame("nub.send", msg)
        self.channel.send(msg)

    def _trace_frame(self, name: str, msg) -> None:
        tracer = self.obs.tracer
        if not tracer.enabled:
            return
        from ..obs import wiretap  # deferred: see __init__
        tracer.event(name, **wiretap.describe(msg))

    def _do_hello(self, msg) -> None:
        _version, features = protocol.parse_hello(msg)
        accepted = features & protocol.ALL_FEATURES
        if not self.block_extension:
            accepted &= ~protocol.FEATURE_BLOCK
        if not self.timetravel_extension:
            accepted &= ~protocol.FEATURE_TIMETRAVEL
        if not self.core_extension:
            accepted &= ~protocol.FEATURE_CORE
        self._reply(protocol.hello(protocol.PROTOCOL_VERSION, accepted))
        # frames after the reply carry the negotiated extras
        self.channel.crc = bool(accepted & protocol.FEATURE_CRC)
        self.channel.seq_mode = bool(accepted & protocol.FEATURE_SEQ)
        self.ack_active = bool(accepted & protocol.FEATURE_ACK)

    # -- fetch/store ---------------------------------------------------------------

    def _do_fetch(self, msg) -> None:
        space, address, size = protocol.parse_fetch(msg)
        if space not in "cd":
            # the nub answers only for code and data (paper Sec. 4.1)
            self._reply(protocol.error(protocol.ERR_BAD_SPACE))
            return
        if size == 10 and not self.arch.has_f80:
            self._reply(protocol.error(protocol.ERR_UNSUPPORTED))
            return
        try:
            raw = self.process.mem.read_bytes(address, size)
        except Exception:
            self._reply(protocol.error(protocol.ERR_BAD_ADDRESS))
            return
        # the nub reads with the target's byte order and replies in
        # little-endian order (paper Sec. 4.1)
        raw_le = raw if self.arch.byteorder == "little" else raw[::-1]
        raw_le = self.md.fix_fetched(address, raw_le, self.context_addr)
        self._reply(protocol.data(raw_le))

    def _do_store(self, msg) -> None:
        space, address, raw_le = protocol.parse_store(msg)
        if space not in "cd":
            self._reply(protocol.error(protocol.ERR_BAD_SPACE))
            return
        raw_le = self.md.fix_stored(address, raw_le, self.context_addr)
        raw = raw_le if self.arch.byteorder == "little" else raw_le[::-1]
        try:
            self.process.mem.write_bytes(address, raw)
        except Exception:
            self._reply(protocol.error(protocol.ERR_BAD_ADDRESS))
            return
        self._reply(protocol.ok())

    # -- block transfers ------------------------------------------------------

    def _do_blockfetch(self, msg) -> None:
        """A span of raw memory in one round-trip.

        The reply is the memory image in ascending address order — no
        byte-order normalization and no saved-float fixing; the debugger
        interprets values out of the block, so the cached path can
        reproduce the per-value path byte for byte.  A span that runs
        off the end of mapped memory is answered with the readable
        prefix; a span that starts unmapped gets ERR_BAD_ADDRESS.
        """
        space, address, length = protocol.parse_blockfetch(msg)
        if not self.block_extension:
            self._reply(protocol.error(protocol.ERR_UNSUPPORTED))
            return
        if space not in "cd":
            self._reply(protocol.error(protocol.ERR_BAD_SPACE))
            return
        raw = self._readable_prefix(address, length)
        if raw is None:
            self._reply(protocol.error(protocol.ERR_BAD_ADDRESS))
            return
        self._reply(protocol.data(raw))

    def _readable_prefix(self, address: int, length: int):
        mem = self.process.mem
        try:
            return mem.read_bytes(address, length)
        except Exception:
            pass
        lo, hi = 0, length  # binary-search the longest readable prefix
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            try:
                mem.read_bytes(address, mid)
                lo = mid
            except Exception:
                hi = mid
        if lo == 0:
            return None
        return mem.read_bytes(address, lo)

    def _do_blockstore(self, msg) -> None:
        space, address, raw = protocol.parse_blockstore(msg)
        if not self.block_extension:
            self._reply(protocol.error(protocol.ERR_UNSUPPORTED))
            return
        if space not in "cd":
            self._reply(protocol.error(protocol.ERR_BAD_SPACE))
            return
        try:
            self.process.mem.write_bytes(address, raw)
        except Exception:
            self._reply(protocol.error(protocol.ERR_BAD_ADDRESS))
            return
        self._reply(protocol.ok())

    # -- the breakpoint extension (Sec. 7.1) ---------------------------------

    def _extension_enabled(self) -> bool:
        if not self.breakpoint_extension:
            # a minimal nub: the debugger falls back to plain stores
            self._reply(protocol.error(protocol.ERR_UNSUPPORTED))
            return False
        return True

    def _do_plant(self, msg) -> None:
        if not self._extension_enabled():
            return
        address, trap = protocol.parse_plant(msg)
        size = len(trap)
        if address not in self.planted:
            # idempotent: a duplicated or retried PLANT must not re-read
            # the (already trapped) instruction as the saved original
            try:
                original = self.process.mem.read_bytes(address, size)
            except Exception:
                self._reply(protocol.error(protocol.ERR_BAD_ADDRESS))
                return
            self.planted[address] = (original
                                     if self.arch.byteorder == "little"
                                     else original[::-1])
        raw = trap if self.arch.byteorder == "little" else trap[::-1]
        self.process.mem.write_bytes(address, raw)
        self._reply(protocol.ok())

    def _do_unplant(self, msg) -> None:
        if not self._extension_enabled():
            return
        address = protocol.parse_unplant(msg)
        original_le = self.planted.pop(address, None)
        if original_le is None:
            self._reply(protocol.error(protocol.ERR_BAD_ADDRESS))
            return
        raw = original_le if self.arch.byteorder == "little"             else original_le[::-1]
        self.process.mem.write_bytes(address, raw)
        self._reply(protocol.ok())

    def _do_breaks(self) -> None:
        if not self._extension_enabled():
            return
        self._reply(protocol.breaklist(sorted(self.planted.items())))

    # -- the time-travel extension -------------------------------------------

    def _tt_enabled(self) -> bool:
        if not self.timetravel_extension:
            # a legacy nub: the debugger must degrade gracefully
            self._reply(protocol.error(protocol.ERR_UNSUPPORTED))
            return False
        return True

    def _do_checkpoint(self, msg) -> None:
        """Snapshot the whole process *nub-side*: CPU, COW memory pages,
        and the planted-trap table.  Only a small id and the retired
        instruction count cross the wire — never the image itself."""
        if not self._tt_enabled():
            return
        self._require_empty(msg)
        if (msg.seq is not None and msg.seq != protocol.NO_SEQ
                and msg.seq == self._last_ckpt_seq
                and self._last_ckpt_id in self.checkpoints):
            # a retried CHECKPOINT (its reply was lost): answer again
            snap, _planted = self.checkpoints[self._last_ckpt_id]
            self._reply(protocol.ckpt(self._last_ckpt_id, snap.icount))
            return
        cid = self._next_checkpoint
        self._next_checkpoint += 1
        self.checkpoints[cid] = (self.process.snapshot(), dict(self.planted))
        self._last_ckpt_seq = msg.seq
        self._last_ckpt_id = cid
        self._reply(protocol.ckpt(cid, self.process.cpu.icount))

    def _do_restore(self, msg) -> None:
        cid = protocol.parse_restore(msg)
        if not self._tt_enabled():
            return
        entry = self.checkpoints.get(cid)
        if entry is None:
            self._reply(protocol.error(protocol.ERR_BAD_CHECKPOINT))
            return
        snap, planted = entry
        self.process.restore(snap)
        # memory came back with the checkpoint-time traps in place;
        # realign the bookkeeping with it (restore is idempotent, so a
        # retried RESTORE is harmless)
        self.planted = dict(planted)
        self._reply(protocol.ckpt(cid, self.process.cpu.icount))

    def _do_dropckpt(self, msg) -> None:
        cid = protocol.parse_drop_checkpoint(msg)
        if not self._tt_enabled():
            return
        entry = self.checkpoints.pop(cid, None)
        if entry is not None:
            self.process.release_snapshot(entry[0])
        self._reply(protocol.ok())  # dropping twice is not an error

    def _do_icount(self, msg) -> None:
        if not self._tt_enabled():
            return
        self._require_empty(msg)
        self._reply(protocol.ckpt(protocol.NO_CKPT, self.process.cpu.icount))

    # -- the post-mortem extension --------------------------------------------

    def _build_core(self, event: FaultEvent):
        return core_from_process(self.process, event.signo, event.code,
                                 event.pc, self.context_addr,
                                 planted=self.planted,
                                 loader_ps=self.loader_ps)

    def _do_dumpcore(self, msg) -> None:
        """Serialize the stopped target into a core image, answered as
        DATA.  The context is already saved at ``context_addr``, so the
        core captures exactly what the live session sees."""
        if not self.core_extension:
            # a legacy nub: the debugger must degrade gracefully
            self._reply(protocol.error(protocol.ERR_UNSUPPORTED))
            return
        self._require_empty(msg)
        if self._last_event is None:
            self._reply(protocol.error(protocol.ERR_BAD_MESSAGE))
            return
        raw = self._build_core(self._last_event).to_bytes()
        self.obs.metrics.inc("nub.core_dumps")
        self.obs.tracer.event("nub.core_dump", bytes=len(raw))
        self._reply(protocol.data(raw))

    def _do_spill(self, msg) -> None:
        """Serialize the complete resumable machine state as DATA.

        A core (:meth:`_do_dumpcore`) carries what a dead target needs;
        a recording checkpoint needs *everything* — including simulator
        bookkeeping like the rmips load-delay slot that the saved
        context has no field for — so recording gets its own verb."""
        if not self._tt_enabled():
            return
        self._require_empty(msg)
        if self._last_event is None:
            self._reply(protocol.error(protocol.ERR_BAD_MESSAGE))
            return
        state = MachineState.capture(self.process, self.planted)
        raw = state.to_bytes()
        self.obs.metrics.inc("nub.spills")
        self.obs.tracer.event("nub.spill", bytes=len(raw),
                              icount=state.icount)
        self._reply(protocol.data(raw))

    def _write_auto_core(self, event: FaultEvent) -> None:
        """Best-effort automatic core at ``core_path``; a failed write
        must never take down the nub on top of the target's own fault."""
        if self.core_path is None:
            return
        try:
            self._build_core(event).dump(self.core_path)
        except OSError:
            self.obs.tracer.warn("nub.core_write_failed", path=self.core_path)
            return
        self.obs.metrics.inc("nub.core_writes")
        self.obs.tracer.event("nub.core_write", path=self.core_path,
                              signo=event.signo)

    def _send(self, msg) -> None:
        if self.channel is not None:
            try:
                self.channel.send(msg)
            except ChannelClosed:
                self.channel = None


class NubRunner:
    """Runs a nub (and its target) on a background thread."""

    def __init__(self, nub: Nub):
        self.nub = nub
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.error: Optional[BaseException] = None

    def _run(self) -> None:
        try:
            self.nub.run()
        except BaseException as exc:  # surfaced via .error in tests
            self.error = exc

    def start(self) -> "NubRunner":
        self.thread.start()
        return self

    def join(self, timeout: Optional[float] = 10.0) -> None:
        self.thread.join(timeout)
