"""The debug nub and its wire protocol (paper Sec. 4.2)."""

from . import protocol
from .channel import Channel, ChannelClosed, Listener, connect, pair
from .faults import FaultInjectingChannel, FaultSchedule, NubKilled
from .nub import Nub, NubMD, NubRunner, nub_md_for
from .session import (
    ChannelTransport,
    NubError,
    NubSession,
    RetryPolicy,
    SessionError,
    Transport,
    TransportError,
)

__all__ = ["Channel", "ChannelClosed", "ChannelTransport",
           "FaultInjectingChannel", "FaultSchedule", "Listener", "Nub",
           "NubError", "NubKilled", "NubMD", "NubRunner", "NubSession",
           "RetryPolicy",
           "SessionError", "Transport", "TransportError", "connect",
           "nub_md_for", "pair", "protocol"]
