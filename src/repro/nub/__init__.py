"""The debug nub and its wire protocol (paper Sec. 4.2)."""

from . import protocol
from .channel import Channel, ChannelClosed, Listener, connect, pair
from .faults import FaultInjectingChannel, FaultSchedule
from .nub import Nub, NubMD, NubRunner, nub_md_for
from .session import NubSession, RetryPolicy, SessionError

__all__ = ["Channel", "ChannelClosed", "FaultInjectingChannel",
           "FaultSchedule", "Listener", "Nub", "NubMD", "NubRunner",
           "NubSession", "RetryPolicy", "SessionError", "connect",
           "nub_md_for", "pair", "protocol"]
