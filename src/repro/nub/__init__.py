"""The debug nub and its wire protocol (paper Sec. 4.2)."""

from . import protocol
from .channel import Channel, ChannelClosed, Listener, connect, pair
from .nub import Nub, NubMD, NubRunner, nub_md_for

__all__ = ["Channel", "ChannelClosed", "Listener", "Nub", "NubMD",
           "NubRunner", "connect", "nub_md_for", "pair", "protocol"]
