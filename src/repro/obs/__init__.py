"""Unified observability for the debug stack (tracing + metrics).

Hanson's follow-up (MSR-TR-99-4) argues the debugger/nub interface
should be a small, precisely specified abstraction; measuring one
requires instrumentation that is part of the system, not a pile of
per-module counters.  This package is that substrate:

* :class:`~repro.obs.metrics.Metrics` — a registry of named counters,
  gauges, and histograms with one ``snapshot()``/``diff()`` reading
  API, shared by the session, the memory DAG, the replay controller,
  the nub, and every benchmark;
* :class:`~repro.obs.trace.Tracer` — nested spans and structured
  events in a bounded ring, dumpable as deterministic JSONL;
* :func:`~repro.obs.wiretap.describe` — decoded wire frames for
  human-readable, diffable protocol transcripts.

:class:`Observability` bundles one of each; an :class:`~repro.ldb.Ldb`
owns one and threads it through every target it creates, so a whole
multi-target session reads from a single registry and one trace.
"""

from __future__ import annotations

from typing import Optional

from .metrics import Counter, Gauge, Histogram, Metrics
from .trace import NONDETERMINISTIC_FIELDS, Span, Tracer
from .wiretap import describe, feature_names, frame_size, opcode_name


class Observability:
    """One metrics registry + one tracer, shared down a debug stack."""

    def __init__(self, metrics: Optional[Metrics] = None,
                 tracer: Optional[Tracer] = None):
        self.metrics = metrics if metrics is not None else Metrics()
        self.tracer = tracer if tracer is not None else Tracer()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NONDETERMINISTIC_FIELDS",
    "Observability",
    "Span",
    "Tracer",
    "describe",
    "feature_names",
    "frame_size",
    "opcode_name",
]
