"""Structured tracing: nested spans and point events in a ring buffer.

The paper's Sec. 7 evaluation was done by hand-instrumenting ldb; this
module makes that instrumentation a permanent, queryable part of the
system.  A :class:`Tracer` records two kinds of entries:

* **events** — one structured record (a flat dict) for a moment in
  time: a decoded wire frame, a target stop, a reconnect warning;
* **spans** — a named region with nesting (``reverse_continue`` →
  ``replay.scan`` → per-chunk wire traffic), recorded as ``begin`` and
  ``end`` entries carrying the nesting depth, so the transcript reads
  like an indented call tree.

Records land in a bounded in-memory ring (old entries fall off) and,
optionally, stream to a JSONL sink as they happen.  Two invariants keep
the tracer honest:

* **behaviour-neutral** — recording never touches the target, sends
  wire messages, or changes control flow; a traced session is
  byte-identical to an untraced one (asserted by a property test across
  all five ISAs);
* **deterministic transcripts** — every record carries a logical
  sequence number; wall-clock fields (``t_us``, ``dur_us``) are
  stripped by the default :meth:`Tracer.dump`, so two runs of the same
  scripted session produce identical, diffable JSONL.

Warning-level events are recorded even while tracing is off: a
reconnect or a checkpoint-restore resync is operator-relevant whether
or not anyone asked for a flight recording.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: wall-clock fields stripped from deterministic dumps
NONDETERMINISTIC_FIELDS = ("t_us", "dur_us", "latency_us")

LEVELS = ("debug", "info", "warning", "error")


class Span:
    """A live traced region; use via ``with tracer.span(...)``."""

    __slots__ = ("tracer", "name", "fields", "depth", "_t0", "_closed")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.fields = fields
        self.depth = 0
        self._t0 = 0.0
        self._closed = False

    def note(self, **fields) -> None:
        """Attach late fields, reported on the span's ``end`` record."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        self.depth = self.tracer._enter_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:
            return
        self._closed = True
        dur_us = int((time.perf_counter() - self._t0) * 1e6)
        self.tracer._exit_span(self, dur_us, error=exc is not None)


class _NullSpan:
    """The disabled-tracer span: free to enter, records nothing."""

    __slots__ = ()

    def note(self, **fields) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans and events into a bounded ring, optionally
    streaming JSONL to a sink.

    The ring and sequence counter are shared across threads (the nub
    serve loop traces from its own thread); the span *stack* is
    per-thread, so nesting depths never interleave.
    """

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self.enabled = False
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._local = threading.local()
        self._t0 = time.perf_counter()
        #: an optional file-like object receiving one JSON line per
        #: record as it is recorded (the streaming mode of `trace on`)
        self.sink = None

    # -- switching ---------------------------------------------------------

    def enable(self, sink=None) -> None:
        self.enabled = True
        if sink is not None:
            self.sink = sink

    def disable(self) -> None:
        self.enabled = False
        self.sink = None

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seq = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **fields):
        """A nested traced region: ``with tracer.span("reverse_continue"):``.

        Returns a no-op span while tracing is off, so instrumented code
        pays one attribute check and nothing else.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, fields)

    def event(self, name: str, level: str = "info", **fields) -> None:
        """Record a point event.  ``warning``/``error`` events are
        recorded even while tracing is disabled."""
        if not self.enabled and level not in ("warning", "error"):
            return
        record = {"ev": "event", "name": name, "level": level,
                  "depth": self._depth()}
        record.update(fields)
        self._record(record)

    def warn(self, name: str, **fields) -> None:
        self.event(name, level="warning", **fields)

    # -- span plumbing -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _depth(self) -> int:
        return len(self._stack())

    def _enter_span(self, span: Span) -> int:
        stack = self._stack()
        depth = len(stack)
        stack.append(span)
        record = {"ev": "begin", "name": span.name, "depth": depth}
        record.update(span.fields)
        self._record(record)
        return depth

    def _exit_span(self, span: Span, dur_us: int, error: bool) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = {"ev": "end", "name": span.name, "depth": span.depth}
        record.update(span.fields)
        if error:
            record["error"] = True
        record["dur_us"] = dur_us
        self._record(record)

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            record["t_us"] = int((time.perf_counter() - self._t0) * 1e6)
            self._ring.append(record)
            sink = self.sink
        if sink is not None:
            try:
                sink.write(json.dumps(record, sort_keys=True) + "\n")
            except (OSError, ValueError):
                self.sink = None  # a dead sink never breaks the session

    # -- reading -----------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """A snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def find(self, name: str, level: Optional[str] = None) -> List[Dict[str, Any]]:
        """Every recorded entry with the given name (and level)."""
        return [r for r in self.records()
                if r.get("name") == name
                and (level is None or r.get("level") == level)]

    def dump(self, file=None, deterministic: bool = True) -> str:
        """The ring as JSONL, one record per line, oldest first.

        The default strips wall-clock fields (:data:`NONDETERMINISTIC_FIELDS`)
        so two runs of the same scripted session diff clean; pass
        ``deterministic=False`` to keep timings.  Writes to ``file``
        when given and always returns the text.
        """
        lines = []
        for record in self.records():
            if deterministic:
                record = {k: v for k, v in record.items()
                          if k not in NONDETERMINISTIC_FIELDS}
            lines.append(json.dumps(record, sort_keys=True))
        text = "\n".join(lines) + ("\n" if lines else "")
        if file is not None:
            file.write(text)
        return text
