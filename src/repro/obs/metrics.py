"""The metrics registry: named counters, gauges, and histograms.

Before this layer every module kept its own hand-rolled counters — a
``MemoryStats`` dict here, a ``retries`` attribute there — and each
benchmark reached into a different private place to read them.  The
registry gives the whole debug stack one vocabulary:

* a **counter** only goes up (round-trips, cache misses, retries);
* a **gauge** holds the latest value (checkpoint-ring occupancy);
* a **histogram** summarizes a distribution (round-trip latency) as
  count/sum/min/max — enough for benchmarks without holding samples.

Everything is addressed by a dotted name (``session.round_trips``,
``cache.miss``, ``replay.restores``) and read with one call:
:meth:`Metrics.snapshot` freezes the registry into a flat dict, and
:meth:`Metrics.diff` yields the increments since an earlier snapshot —
the same snapshot/diff idiom :class:`~repro.ldb.memories.MemoryStats`
established, now covering every subsystem.

The registry is thread-safe: the nub serve loop runs on a background
thread and shares the registry with the debugger side in tests.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self.value += amount

    def __repr__(self) -> str:
        return "<counter %s=%d>" % (self.name, self.value)


class Gauge:
    """The latest observed value of some level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "<gauge %s=%r>" % (self.name, self.value)


class Histogram:
    """A streaming summary of a distribution: count, sum, min, max —
    plus a *bounded* reservoir of samples for percentiles.

    The full sample stream is not retained (a long traced session
    would grow without bound); instead a fixed-size reservoir holds a
    uniform random subset (Vitter's Algorithm R) from which
    :meth:`percentile` answers p50/p99-style questions — the fleet
    benchmark's command-latency numbers come straight from here.  The
    reservoir RNG is seeded per-histogram-name, so equal workloads
    sample identically run to run.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_reservoir", "_rng")

    RESERVOIR_SIZE = 1024

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._reservoir: list = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) estimated from the
        reservoir, with linear interpolation between samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile %r not in [0, 1]" % q)
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return float(ordered[0])
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def __repr__(self) -> str:
        return ("<histogram %s n=%d mean=%.3g>"
                % (self.name, self.count, self.mean()))


class Metrics:
    """A registry of named instruments, created on first use.

    One kind per name: asking for ``counter("x")`` after ``gauge("x")``
    is a programming error and raises ``TypeError``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError("metric %r is a %s, not a %s"
                                % (name, type(inst).__name__, cls.__name__))
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- shortcuts (mutate under the lock: concurrent increments from
    # -- the nub thread and the debugger thread must not be lost) ----------

    def inc(self, name: str, amount: int = 1) -> None:
        inst = self.counter(name)
        with self._lock:
            inst.inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        inst = self.gauge(name)
        with self._lock:
            inst.set(value)

    def observe(self, name: str, value: Number) -> None:
        inst = self.histogram(name)
        with self._lock:
            inst.observe(value)

    # -- reading -----------------------------------------------------------

    def get(self, name: str, default: Number = 0) -> Number:
        """The current value of a counter or gauge (0 when absent)."""
        with self._lock:
            inst = self._instruments.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            return inst.count
        return inst.value

    def percentile(self, name: str, q: float) -> float:
        """A histogram's ``q``-quantile (0 when the name is unknown)."""
        with self._lock:
            inst = self._instruments.get(name)
            if not isinstance(inst, Histogram):
                return 0.0
            return inst.percentile(q)

    def total(self, prefix: str) -> int:
        """Sum of every counter whose name starts with ``prefix``."""
        with self._lock:
            return sum(inst.value for name, inst in self._instruments.items()
                       if name.startswith(prefix) and isinstance(inst, Counter))

    def snapshot(self) -> Dict[str, Number]:
        """Freeze the registry into a flat name -> value dict.

        Histograms flatten to ``name.count``, ``name.sum``, ``name.min``
        and ``name.max`` entries so the snapshot stays JSON-trivial.
        """
        out: Dict[str, Number] = {}
        with self._lock:
            for name, inst in sorted(self._instruments.items()):
                if isinstance(inst, Histogram):
                    out[name + ".count"] = inst.count
                    out[name + ".sum"] = inst.total
                    if inst.count:
                        out[name + ".min"] = inst.min
                        out[name + ".max"] = inst.max
                else:
                    out[name] = inst.value
        return out

    def diff(self, earlier: Dict[str, Number]) -> Dict[str, Number]:
        """The changes since an earlier :meth:`snapshot`; unchanged
        entries are omitted (gauges diff like counters: new - old)."""
        now = self.snapshot()
        out: Dict[str, Number] = {}
        for key, value in now.items():
            delta = value - earlier.get(key, 0)
            if delta:
                out[key] = delta
        return out
