"""Decoded-frame descriptions: the protocol trace recorder.

A session transcript full of raw payload bytes is write-only; this
module renders every wire :class:`~repro.nub.protocol.Message` as a
flat dict of *decoded* fields (opcode name, space, address, size,
value bytes as hex) so a ``trace dump`` reads like the protocol
specification and two transcripts diff meaningfully.

The decoding reuses the protocol's own ``parse_*`` readers, so the
trace can never disagree with what the nub or session actually parsed.
A malformed payload falls back to a hex rendering plus a ``bad`` flag
instead of raising — the tracer must never turn a survivable protocol
error into a crash.
"""

from __future__ import annotations

from typing import Any, Dict

from ..nub import protocol

#: cap on hex-rendered payload bytes in a trace record
_HEX_LIMIT = 32


def _hex(raw: bytes) -> str:
    if len(raw) > _HEX_LIMIT:
        return raw[:_HEX_LIMIT].hex() + "...(%d bytes)" % len(raw)
    return raw.hex()


_ERROR_NAMES = {
    protocol.ERR_BAD_SPACE: "ERR_BAD_SPACE",
    protocol.ERR_BAD_ADDRESS: "ERR_BAD_ADDRESS",
    protocol.ERR_BAD_MESSAGE: "ERR_BAD_MESSAGE",
    protocol.ERR_UNSUPPORTED: "ERR_UNSUPPORTED",
    protocol.ERR_BAD_CHECKPOINT: "ERR_BAD_CHECKPOINT",
}

_FEATURE_NAMES = (
    (protocol.FEATURE_CRC, "CRC"),
    (protocol.FEATURE_SEQ, "SEQ"),
    (protocol.FEATURE_ACK, "ACK"),
    (protocol.FEATURE_BLOCK, "BLOCK"),
    (protocol.FEATURE_TIMETRAVEL, "TIMETRAVEL"),
)


def feature_names(bits: int) -> str:
    """Render a HELLO feature mask symbolically (``CRC+SEQ+ACK``)."""
    names = [name for bit, name in _FEATURE_NAMES if bits & bit]
    return "+".join(names) if names else "none"


def opcode_name(mtype: int) -> str:
    return protocol._NAMES.get(mtype, "UNKNOWN(%d)" % mtype)


def describe(msg: protocol.Message) -> Dict[str, Any]:
    """One wire message as a flat dict of decoded fields.

    Always contains ``op``; sequenced frames add ``wire_seq``.  The
    remaining keys depend on the opcode and mirror the payload layout
    documented in PROTOCOL.md.
    """
    out: Dict[str, Any] = {"op": opcode_name(msg.mtype)}
    if msg.seq is not None and msg.seq != protocol.NO_SEQ:
        out["wire_seq"] = msg.seq
    try:
        _describe_payload(msg, out)
    except protocol.ProtocolError as err:
        out["bad"] = str(err)
        out["payload"] = _hex(msg.payload)
    return out


def _describe_payload(msg: protocol.Message, out: Dict[str, Any]) -> None:
    mtype = msg.mtype
    if mtype == protocol.MSG_FETCH:
        space, address, size = protocol.parse_fetch(msg)
        out.update(space=space, addr="0x%x" % address, size=size)
    elif mtype == protocol.MSG_STORE:
        space, address, raw = protocol.parse_store(msg)
        out.update(space=space, addr="0x%x" % address, size=len(raw),
                   bytes=_hex(raw))
    elif mtype == protocol.MSG_BLOCKFETCH:
        space, address, length = protocol.parse_blockfetch(msg)
        out.update(space=space, addr="0x%x" % address, len=length)
    elif mtype == protocol.MSG_BLOCKSTORE:
        space, address, raw = protocol.parse_blockstore(msg)
        out.update(space=space, addr="0x%x" % address, len=len(raw),
                   bytes=_hex(raw))
    elif mtype == protocol.MSG_PLANT:
        address, trap = protocol.parse_plant(msg)
        out.update(addr="0x%x" % address, trap=_hex(trap))
    elif mtype == protocol.MSG_UNPLANT:
        out.update(addr="0x%x" % protocol.parse_unplant(msg))
    elif mtype == protocol.MSG_BREAKLIST:
        entries = protocol.parse_breaklist(msg)
        out.update(count=len(entries),
                   breaks=["0x%x" % address for address, _orig in entries])
    elif mtype == protocol.MSG_HELLO:
        version, features = protocol.parse_hello(msg)
        out.update(version=version, features=feature_names(features))
    elif mtype == protocol.MSG_SIGNAL:
        signo, code, context = protocol.parse_signal(msg)
        out.update(signo=signo, code=code, context="0x%x" % context)
    elif mtype == protocol.MSG_EXITED:
        out.update(status=protocol.parse_exited(msg))
    elif mtype == protocol.MSG_DATA:
        out.update(len=len(msg.payload), bytes=_hex(msg.payload))
    elif mtype == protocol.MSG_ERROR:
        code = protocol.parse_error(msg)
        out.update(code=code, error=_ERROR_NAMES.get(code, "ERR_%d" % code))
    elif mtype == protocol.MSG_RESTORE:
        out.update(ckpt=protocol.parse_restore(msg))
    elif mtype == protocol.MSG_DROPCKPT:
        out.update(ckpt=protocol.parse_drop_checkpoint(msg))
    elif mtype == protocol.MSG_RUNTO:
        out.update(icount=protocol.parse_runto(msg))
    elif mtype == protocol.MSG_CKPT:
        cid, icount = protocol.parse_ckpt(msg)
        out.update(ckpt=(None if cid == protocol.NO_CKPT else cid),
                   icount=icount)
    elif mtype in (protocol.MSG_CONTINUE, protocol.MSG_DETACH,
                   protocol.MSG_KILL, protocol.MSG_OK, protocol.MSG_BREAKS,
                   protocol.MSG_CHECKPOINT, protocol.MSG_ICOUNT):
        if msg.payload:
            out.update(payload=_hex(msg.payload))
    else:
        out.update(payload=_hex(msg.payload))


def frame_size(msg: protocol.Message, crc: bool = False,
               seq_mode: bool = False) -> int:
    """The encoded size of a frame in bytes, without re-encoding it."""
    return ((9 if seq_mode else 5) + len(msg.payload) + (4 if crc else 0))
